// Minimal SQL SELECT parser covering the query shapes the engine executes
// (the paper's workloads): sums of columns, COUNT(*), group-by on one
// column, range predicates, and LIKE '%pattern%' matching.
//
//   SELECT SUM(C0 + C1), COUNT(*) FROM t
//   WHERE C2 BETWEEN 10 AND 99 AND SEQ LIKE '%ACGT%'
//   GROUP BY CIGAR;
//
// Column names resolve against the table schema. Produces a QuerySpec for
// the execution engine.
#ifndef SCANRAW_SQL_SQL_PARSER_H_
#define SCANRAW_SQL_SQL_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "exec/query.h"
#include "format/schema.h"

namespace scanraw {

struct ParsedSelect {
  std::string table;
  QuerySpec spec;
  // True when the select list used AVG(...): the caller reports
  // QueryResult::Average() instead of the raw sum.
  bool has_avg = false;
};

// Parses a single SELECT statement (optional trailing ';'). The schema is
// used to resolve column names and validate predicate types.
Result<ParsedSelect> ParseSelect(std::string_view sql, const Schema& schema);

// Extracts just the table name of a SELECT without resolving columns, so a
// caller can look up the schema first.
Result<std::string> ParseSelectTable(std::string_view sql);

}  // namespace scanraw

#endif  // SCANRAW_SQL_SQL_PARSER_H_
