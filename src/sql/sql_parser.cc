#include "sql/sql_parser.h"

#include <algorithm>
#include <cctype>
#include <vector>

#include "common/string_util.h"
#include "format/parser.h"

namespace scanraw {

namespace {

enum class TokenKind {
  kIdent,
  kNumber,
  kString,   // 'single quoted'
  kSymbol,   // ( ) , + * = < > <= >=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // upper-cased for idents; raw for strings/numbers
  std::string raw;   // original spelling (for error messages / idents)
};

Result<std::vector<Token>> Lex(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[j])) ||
              sql[j] == '_')) {
        ++j;
      }
      Token t;
      t.kind = TokenKind::kIdent;
      t.raw = std::string(sql.substr(i, j - i));
      t.text = t.raw;
      std::transform(t.text.begin(), t.text.end(), t.text.begin(),
                     [](unsigned char ch) { return std::toupper(ch); });
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < sql.size() &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      while (j < sql.size() &&
             std::isdigit(static_cast<unsigned char>(sql[j]))) {
        ++j;
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.text = t.raw = std::string(sql.substr(i, j - i));
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      const size_t close = sql.find('\'', i + 1);
      if (close == std::string_view::npos) {
        return Status::InvalidArgument("unterminated string literal");
      }
      Token t;
      t.kind = TokenKind::kString;
      t.text = t.raw = std::string(sql.substr(i + 1, close - i - 1));
      tokens.push_back(std::move(t));
      i = close + 1;
      continue;
    }
    if (c == '<' || c == '>') {
      Token t;
      t.kind = TokenKind::kSymbol;
      if (i + 1 < sql.size() && sql[i + 1] == '=') {
        t.text = t.raw = std::string(sql.substr(i, 2));
        i += 2;
      } else {
        t.text = t.raw = std::string(1, c);
        ++i;
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::string_view("(),+*=;").find(c) != std::string_view::npos) {
      Token t;
      t.kind = TokenKind::kSymbol;
      t.text = t.raw = std::string(1, c);
      tokens.push_back(std::move(t));
      ++i;
      continue;
    }
    return Status::InvalidArgument(
        StringPrintf("unexpected character '%c' in SQL", c));
  }
  tokens.push_back(Token{});  // kEnd sentinel
  return tokens;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, const Schema* schema)
      : tokens_(std::move(tokens)), schema_(schema) {}

  Result<ParsedSelect> Parse() {
    SCANRAW_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    ParsedSelect out;
    SCANRAW_RETURN_IF_ERROR(ParseSelectList(&out.spec, &out.has_avg));
    SCANRAW_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    if (Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected table name after FROM");
    }
    out.table = Next().raw;
    if (PeekKeyword("WHERE")) {
      Next();
      SCANRAW_RETURN_IF_ERROR(ParseWhere(&out.spec));
    }
    if (PeekKeyword("GROUP")) {
      Next();
      SCANRAW_RETURN_IF_ERROR(ExpectKeyword("BY"));
      size_t col = 0;
      SCANRAW_RETURN_IF_ERROR(ParseColumn(&col));
      out.spec.group_by_column = col;
    }
    if (Peek().kind == TokenKind::kSymbol && Peek().text == ";") Next();
    if (Peek().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("unexpected trailing input: '" +
                                     Peek().raw + "'");
    }
    // Validate: bare select columns must be the group-by key.
    for (size_t col : bare_columns_) {
      if (!out.spec.group_by_column.has_value() ||
          *out.spec.group_by_column != col) {
        return Status::InvalidArgument(
            "selected column must appear in GROUP BY");
      }
    }
    return out;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  bool PeekKeyword(std::string_view kw) const {
    return Peek().kind == TokenKind::kIdent && Peek().text == kw;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!PeekKeyword(kw)) {
      return Status::InvalidArgument("expected " + std::string(kw) +
                                     ", got '" + Peek().raw + "'");
    }
    Next();
    return Status::OK();
  }

  Status ExpectSymbol(std::string_view symbol) {
    if (Peek().kind != TokenKind::kSymbol || Peek().text != symbol) {
      return Status::InvalidArgument("expected '" + std::string(symbol) +
                                     "', got '" + Peek().raw + "'");
    }
    Next();
    return Status::OK();
  }

  Status ParseColumn(size_t* out) {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected column name, got '" +
                                     Peek().raw + "'");
    }
    const std::string name = Next().raw;
    auto index = schema_->ColumnIndex(name);
    if (!index.ok()) {
      return Status::InvalidArgument("unknown column '" + name + "'");
    }
    *out = *index;
    return Status::OK();
  }

  Status ParseSelectList(QuerySpec* spec, bool* has_avg) {
    while (true) {
      if (PeekKeyword("SUM") || PeekKeyword("AVG")) {
        const bool is_avg = Peek().text == "AVG";
        Next();
        SCANRAW_RETURN_IF_ERROR(ExpectSymbol("("));
        while (true) {
          size_t col = 0;
          SCANRAW_RETURN_IF_ERROR(ParseColumn(&col));
          if (schema_->column(col).type == FieldType::kString) {
            return Status::InvalidArgument(
                "cannot aggregate a string column");
          }
          spec->sum_columns.push_back(col);
          if (Peek().kind == TokenKind::kSymbol && Peek().text == "+") {
            Next();
            continue;
          }
          break;
        }
        SCANRAW_RETURN_IF_ERROR(ExpectSymbol(")"));
        if (is_avg) *has_avg = true;
      } else if (PeekKeyword("MIN") || PeekKeyword("MAX")) {
        Next();
        SCANRAW_RETURN_IF_ERROR(ExpectSymbol("("));
        size_t col = 0;
        SCANRAW_RETURN_IF_ERROR(ParseColumn(&col));
        if (schema_->column(col).type == FieldType::kString) {
          return Status::InvalidArgument("cannot MIN/MAX a string column");
        }
        spec->minmax_columns.push_back(col);
        SCANRAW_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else if (PeekKeyword("COUNT")) {
        Next();
        SCANRAW_RETURN_IF_ERROR(ExpectSymbol("("));
        SCANRAW_RETURN_IF_ERROR(ExpectSymbol("*"));
        SCANRAW_RETURN_IF_ERROR(ExpectSymbol(")"));
        // COUNT(*) is always reported (rows_matched / group counts).
      } else if (Peek().kind == TokenKind::kIdent) {
        size_t col = 0;
        SCANRAW_RETURN_IF_ERROR(ParseColumn(&col));
        bare_columns_.push_back(col);
      } else {
        return Status::InvalidArgument("expected select item, got '" +
                                       Peek().raw + "'");
      }
      if (Peek().kind == TokenKind::kSymbol && Peek().text == ",") {
        Next();
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Result<int64_t> ParseNumber() {
    if (Peek().kind != TokenKind::kNumber) {
      return Status::InvalidArgument("expected number, got '" + Peek().raw +
                                     "'");
    }
    return ParseInt64(Next().text);
  }

  Status ParseWhere(QuerySpec* spec) {
    // Range predicates on one numeric column accumulate into [lo, hi];
    // at most one LIKE predicate on a string column.
    std::optional<size_t> range_column;
    int64_t lo = INT64_MIN;
    int64_t hi = INT64_MAX;
    while (true) {
      size_t col = 0;
      SCANRAW_RETURN_IF_ERROR(ParseColumn(&col));
      const bool is_string = schema_->column(col).type == FieldType::kString;
      if (PeekKeyword("LIKE")) {
        Next();
        if (!is_string) {
          return Status::InvalidArgument("LIKE requires a string column");
        }
        if (Peek().kind != TokenKind::kString) {
          return Status::InvalidArgument("LIKE requires a string literal");
        }
        std::string pattern = Next().text;
        // Only '%substring%' patterns are supported.
        if (pattern.size() >= 1 && pattern.front() == '%') {
          pattern.erase(pattern.begin());
        }
        if (!pattern.empty() && pattern.back() == '%') pattern.pop_back();
        if (pattern.find('%') != std::string::npos ||
            pattern.find('_') != std::string::npos) {
          return Status::Unimplemented(
              "only '%substring%' LIKE patterns are supported");
        }
        if (spec->predicate.pattern.has_value()) {
          return Status::Unimplemented("only one LIKE predicate supported");
        }
        spec->predicate.pattern = PatternPredicate{col, std::move(pattern)};
      } else {
        if (is_string) {
          return Status::InvalidArgument(
              "range predicates require a numeric column");
        }
        if (range_column.has_value() && *range_column != col) {
          return Status::Unimplemented(
              "range predicates on multiple columns are not supported");
        }
        range_column = col;
        if (PeekKeyword("BETWEEN")) {
          Next();
          int64_t a = 0;
          SCANRAW_ASSIGN_OR_RETURN(a, ParseNumber());
          SCANRAW_RETURN_IF_ERROR(ExpectKeyword("AND"));
          int64_t b = 0;
          SCANRAW_ASSIGN_OR_RETURN(b, ParseNumber());
          lo = std::max(lo, a);
          hi = std::min(hi, b);
        } else if (Peek().kind == TokenKind::kSymbol) {
          const std::string op = Next().text;
          int64_t v = 0;
          SCANRAW_ASSIGN_OR_RETURN(v, ParseNumber());
          if (op == "=") {
            lo = std::max(lo, v);
            hi = std::min(hi, v);
          } else if (op == "<=") {
            hi = std::min(hi, v);
          } else if (op == ">=") {
            lo = std::max(lo, v);
          } else if (op == "<") {
            hi = std::min(hi, v - 1);
          } else if (op == ">") {
            lo = std::max(lo, v + 1);
          } else {
            return Status::InvalidArgument("unsupported operator '" + op +
                                           "'");
          }
        } else {
          return Status::InvalidArgument("expected predicate after column");
        }
      }
      if (PeekKeyword("AND")) {
        Next();
        continue;
      }
      break;
    }
    if (range_column.has_value()) {
      spec->predicate.range = RangePredicate{*range_column, lo, hi};
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  const Schema* schema_;
  size_t pos_ = 0;
  std::vector<size_t> bare_columns_;
};

}  // namespace

Result<ParsedSelect> ParseSelect(std::string_view sql, const Schema& schema) {
  auto tokens = Lex(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens), &schema);
  return parser.Parse();
}

Result<std::string> ParseSelectTable(std::string_view sql) {
  auto tokens = Lex(sql);
  if (!tokens.ok()) return tokens.status();
  const auto& ts = *tokens;
  for (size_t i = 0; i + 1 < ts.size(); ++i) {
    if (ts[i].kind == TokenKind::kIdent && ts[i].text == "FROM") {
      if (ts[i + 1].kind != TokenKind::kIdent) {
        return Status::InvalidArgument("expected table name after FROM");
      }
      return ts[i + 1].raw;
    }
  }
  return Status::InvalidArgument("no FROM clause found");
}

}  // namespace scanraw
