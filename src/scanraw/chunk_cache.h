// Binary chunk cache (§3.1 "Caching"): converted chunks stay resident so
// subsequent queries skip READ/TOKENIZE/PARSE entirely. Eviction is LRU,
// biased toward chunks already loaded inside the database ("chunks stored in
// binary format are more likely to be replaced"). The speculative-loading
// WRITE policy asks for the oldest unloaded resident chunk.
#ifndef SCANRAW_SCANRAW_CHUNK_CACHE_H_
#define SCANRAW_SCANRAW_CHUNK_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <vector>

#include "columnar/binary_chunk.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace scanraw {

// A chunk evicted by an insert; buffered loading writes unloaded victims to
// the database.
struct EvictedChunk {
  uint64_t chunk_index = 0;
  BinaryChunkPtr chunk;
  bool was_loaded = false;
};

class ChunkCache {
 public:
  // `capacity_chunks` == 0 disables caching entirely.
  explicit ChunkCache(size_t capacity_chunks, bool bias_evict_loaded = true)
      : capacity_(capacity_chunks), bias_evict_loaded_(bias_evict_loaded) {}

  // Inserts (or refreshes) a chunk; returns any evicted entries. `loaded`
  // marks the chunk as already stored in the database.
  std::vector<EvictedChunk> Insert(uint64_t chunk_index, BinaryChunkPtr chunk,
                                   bool loaded) EXCLUDES(mu_);

  // Returns the cached chunk and refreshes its recency, or nullptr.
  BinaryChunkPtr Lookup(uint64_t chunk_index) EXCLUDES(mu_);

  // True when the cached entry for `chunk_index` exists (does not touch
  // recency).
  bool Contains(uint64_t chunk_index) const EXCLUDES(mu_);

  // Marks a resident chunk as loaded into the database.
  void MarkLoaded(uint64_t chunk_index) EXCLUDES(mu_);

  // Oldest (by insertion sequence) resident chunk not yet loaded, if any —
  // the speculative WRITE candidate (§4: "only the 'oldest' chunk in the
  // binary cache that was not previously loaded ... is written at a time").
  std::optional<std::pair<uint64_t, BinaryChunkPtr>> OldestUnloaded() const
      EXCLUDES(mu_);

  // All resident unloaded chunks in insertion order — the safeguard flush
  // set (§4).
  std::vector<std::pair<uint64_t, BinaryChunkPtr>> UnloadedChunks() const
      EXCLUDES(mu_);

  // Indexes of all resident chunks (unordered snapshot).
  std::vector<uint64_t> ResidentChunks() const EXCLUDES(mu_);

  size_t size() const EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }

  uint64_t hits() const EXCLUDES(mu_);
  uint64_t misses() const EXCLUDES(mu_);
  // Total evictions, and the subset where the biased-LRU policy displaced
  // an already-loaded chunk (the paper's "chunks stored in binary format
  // are more likely to be replaced").
  uint64_t evictions() const EXCLUDES(mu_);
  uint64_t biased_evictions() const EXCLUDES(mu_);

  // Mirrors hit/miss/eviction counts into registry-backed counters.
  // Typically called once right after construction; nullptr detaches.
  void BindMetrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Counter* evictions, obs::Counter* biased_evictions)
      EXCLUDES(mu_);

 private:
  struct Entry {
    BinaryChunkPtr chunk;
    bool loaded = false;
    uint64_t insert_seq = 0;
    std::list<uint64_t>::iterator lru_pos;  // into lru_, MRU at front
  };

  void EvictOne(std::vector<EvictedChunk>* evicted) REQUIRES(mu_);

  const size_t capacity_;
  const bool bias_evict_loaded_;
  mutable Mutex mu_{LockRank::kChunkCache, "ChunkCache.mu"};
  std::map<uint64_t, Entry> entries_ GUARDED_BY(mu_);
  std::list<uint64_t> lru_ GUARDED_BY(mu_);  // front = most recently used
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
  uint64_t biased_evictions_ GUARDED_BY(mu_) = 0;
  obs::Counter* hits_metric_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* misses_metric_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* evictions_metric_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* biased_evictions_metric_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace scanraw

#endif  // SCANRAW_SCANRAW_CHUNK_CACHE_H_
