#include "scanraw/scanraw_manager.h"

#include "common/string_util.h"
#include "io/fault_injection.h"
#include "io/file.h"
#include "obs/log.h"

namespace scanraw {

HeapScanStream::HeapScanStream(const TableMetadata& table,
                               const StorageManager* storage,
                               std::vector<size_t> columns,
                               std::optional<RangePredicate> filter,
                               obs::SpanProfiler* profiler)
    : scan_(table, storage, std::move(columns)), profiler_(profiler) {
  if (filter.has_value()) {
    scan_.SetRangeFilter(filter->column, filter->lo, filter->hi);
  }
}

Result<std::optional<BinaryChunkPtr>> HeapScanStream::Next() {
  obs::SpanProfiler::Scope span(profiler_, obs::QueryStage::kHeapScan);
  auto chunk = scan_.Next();
  if (!chunk.ok()) return chunk.status();
  if (!chunk->has_value()) return std::optional<BinaryChunkPtr>();
  return std::optional<BinaryChunkPtr>(
      std::make_shared<const BinaryChunk>(std::move(**chunk)));
}

Result<std::unique_ptr<ScanRawManager>> ScanRawManager::Create(
    const Config& config) {
  std::unique_ptr<ScanRawManager> manager(new ScanRawManager(config));
  auto storage =
      config.reuse_existing_db
          ? StorageManager::OpenExisting(config.db_path,
                                         manager->limiter_.get(),
                                         &manager->io_stats_)
          : StorageManager::Create(config.db_path, manager->limiter_.get(),
                                   &manager->io_stats_);
  if (!storage.ok()) return storage.status();
  manager->storage_ = std::move(*storage);
  manager->storage_->SetCompression(config.compress_segments);
  obs::MetricsRegistry& registry = manager->telemetry_.metrics();
  manager->arbiter_.BindMetrics(
      registry.GetHistogram("disk.reader_wait_nanos"),
      registry.GetHistogram("disk.writer_wait_nanos"),
      registry.GetHistogram("disk.reader_hold_nanos"),
      registry.GetHistogram("disk.writer_hold_nanos"));
  manager->storage_->BindMetrics(
      registry.GetCounter("storage.segments_written"),
      registry.GetCounter("storage.bytes_written"),
      registry.GetHistogram("storage.segment_write_nanos"));
  if (manager->limiter_ != nullptr) {
    manager->limiter_->BindMetrics(
        registry.GetHistogram("disk.limiter_wait_nanos"),
        registry.GetCounter("disk.limiter_throttle_events"));
  }
  // The arbiter beats into the manager-wide board so blocked disk waits are
  // watchdog-visible even before any operator exists. (Operators carrying
  // their own telemetry sink rebind it to theirs.)
  manager->arbiter_.BindHeartbeats(&manager->telemetry_.heartbeats());
  if (config.watchdog_ms > 0) {
    obs::WatchdogOptions wd;
    wd.window_ms = config.watchdog_ms;
    wd.abort_on_stall = config.watchdog_abort;
    wd.flight_dump_path = config.watchdog_dump_path;
    manager->watchdog_ = std::make_unique<obs::Watchdog>(
        &manager->telemetry_.heartbeats(), wd);
    manager->watchdog_->Start();
  }
  return manager;
}

ScanRawManager::ScanRawManager(const Config& config)
    : config_(config),
      limiter_(config.disk_bandwidth > 0
                   ? std::make_unique<RateLimiter>(config.disk_bandwidth)
                   : nullptr) {}

Status ScanRawManager::RegisterRawFile(const std::string& table,
                                       const std::string& path,
                                       const Schema& schema,
                                       const ScanRawOptions& options) {
  SCANRAW_RETURN_IF_ERROR(
      catalog_.CreateTable(table, path, schema, options.chunk_rows));
  MutexLock lock(mu_);
  options_[table] = options;
  return Status::OK();
}

Status ScanRawManager::SaveCatalog(const std::string& path) const {
  // Drain in-flight background writes (speculative / safeguard flushes)
  // first: a segment that lands after the snapshot would be durable but
  // unreferenced, and its chunk would be re-extracted on restart.
  {
    MutexLock lock(mu_);
    for (const auto& [name, op] : operators_) op->WaitForWrites();
  }
  // Durability ordering: every segment byte reaches stable storage before
  // the catalog that references it. The write path also syncs per segment;
  // this is the catch-all for anything buffered since.
  SCANRAW_RETURN_IF_ERROR(storage_->Sync());
  // Posmap sidecars follow the same data-before-metadata rule: each one is
  // written (atomically) before the catalog whose restart path will trust
  // it. The sidecars are advisory — a failed save degrades the next restart
  // to re-tokenizing, so it is logged but never fails the catalog save.
  {
    MutexLock lock(mu_);
    posmap_base_path_ = path;
    for (const auto& [name, op] : operators_) {
      if (!op->options().persist_positional_maps) continue;
      const Status saved =
          op->SavePositionalMaps(PosmapSidecarPath(path, name));
      if (!saved.ok()) {
        LOG_WARN("scanraw: posmap sidecar save failed for %s: %s",
                 name.c_str(), saved.ToString().c_str());
      }
    }
  }
  FaultKillPoint("manager.save_catalog.before");
  Status s = catalog_.SaveToFile(path);
  FaultKillPoint("manager.save_catalog.after");
  return s;
}

Status ScanRawManager::LoadCatalog(const std::string& path) {
  {
    MutexLock lock(mu_);
    if (!operators_.empty()) {
      return Status::InvalidArgument(
          "cannot load a catalog while operators are live");
    }
  }
  Catalog::LoadStats load_stats;
  SCANRAW_RETURN_IF_ERROR(catalog_.LoadFromFile(path, &load_stats));
  ReconcileReport report = ReconcileCatalogWithStorage(
      catalog_, *storage_, config_.verify_segments_on_load);
  obs::MetricsRegistry& registry = telemetry_.metrics();
  registry.GetCounter("recovery.segments_checked")
      ->Add(report.segments_checked);
  registry.GetCounter("recovery.segments_dropped")
      ->Add(report.segments_dropped);
  registry.GetCounter("recovery.chunks_reverted")->Add(report.chunks_reverted);
  if (load_stats.torn_tail_dropped) {
    registry.GetCounter("recovery.catalog_torn_tail_dropped")->Add(1);
    report.details.push_back("catalog: dropped torn trailing line: " +
                             load_stats.torn_tail);
  }
  // Posmap reconciliation: stage each table's sidecar for the operator that
  // will be created on first query. A torn, corrupt, or stale sidecar is
  // dropped here — the maps are derived data, so the only consequence is
  // that the table re-tokenizes on its next scan.
  std::map<std::string, PosmapSidecar> staged;
  for (const auto& [name, table] : catalog_.Snapshot()) {
    const std::string sidecar_path = PosmapSidecarPath(path, name);
    if (!FileExists(sidecar_path)) continue;
    auto sidecar = LoadPosmapSidecar(sidecar_path, table);
    if (!sidecar.ok()) {
      ++report.posmaps_dropped;
      registry.GetCounter("recovery.posmap_dropped")->Add(1);
      report.details.push_back("posmap " + name + ": dropped sidecar: " +
                               sidecar.status().ToString());
      continue;
    }
    registry.GetCounter("recovery.posmap_chunks_loaded")
        ->Add(sidecar->entries.size());
    staged.emplace(name, std::move(*sidecar));
  }
  MutexLock lock(mu_);
  posmap_base_path_ = path;
  pending_posmaps_ = std::move(staged);
  last_recovery_ = std::move(report);
  return Status::OK();
}

std::string ScanRawManager::Statusz() const {
  std::string out;
  for (const std::string& table : catalog_.TableNames()) {
    auto meta = catalog_.GetTable(table);
    if (!meta.ok()) continue;
    out += "table " + table + ":\n";
    ScanRaw* op = nullptr;
    {
      MutexLock lock(mu_);
      auto it = operators_.find(table);
      if (it != operators_.end()) op = it->second.get();
    }
    if (op != nullptr) {
      out += op->StatuszSection();
    } else {
      out += StringPrintf("  loaded_fraction: %.3f\n", meta->LoadedFraction());
      out += meta->FullyLoaded() ? "  operator: retired (heap scan)\n"
                                 : "  operator: not yet created\n";
    }
  }
  if (watchdog_ != nullptr) {
    out += StringPrintf("watchdog: window=%lldms stalls=%llu\n",
                        static_cast<long long>(watchdog_->window_ms()),
                        static_cast<unsigned long long>(
                            watchdog_->stalls_detected()));
  }
  return out;
}

ReconcileReport ScanRawManager::last_recovery() const {
  MutexLock lock(mu_);
  return last_recovery_;
}

Status ScanRawManager::AttachOptions(const std::string& table,
                                     const ScanRawOptions& options) {
  if (!catalog_.HasTable(table)) {
    return Status::NotFound("table " + table + " not in catalog");
  }
  MutexLock lock(mu_);
  options_[table] = options;
  return Status::OK();
}

ScanRaw* ScanRawManager::GetOperator(const std::string& table) {
  MutexLock lock(mu_);
  auto it = operators_.find(table);
  return it == operators_.end() ? nullptr : it->second.get();
}

bool ScanRawManager::IsRetired(const std::string& table) {
  auto meta = catalog_.GetTable(table);
  if (!meta.ok() || !meta->FullyLoaded()) return false;
  MutexLock lock(mu_);
  return operators_.find(table) == operators_.end();
}

Result<QueryResult> ScanRawManager::Query(const std::string& table,
                                          const QuerySpec& spec) {
  return Query(table, spec, nullptr);
}

Result<QueryResult> ScanRawManager::Query(const std::string& table,
                                          const QuerySpec& spec,
                                          obs::ExplainReport* explain) {
  auto meta = catalog_.GetTable(table);
  if (!meta.ok()) return meta.status();

  ScanRaw* op = nullptr;
  {
    MutexLock lock(mu_);
    auto it = operators_.find(table);
    if (it != operators_.end()) {
      // Retire the operator once the whole raw file is in the database and
      // its background writes have drained (§3.3: "Whenever it loaded the
      // entire raw file").
      if (meta->FullyLoaded()) {
        it->second->WaitForWrites();
        operators_.erase(it);
      } else {
        op = it->second.get();
      }
    } else if (!meta->FullyLoaded()) {
      auto opt_it = options_.find(table);
      if (opt_it == options_.end()) {
        return Status::Internal("no ScanRaw options for table " + table);
      }
      ScanRawOptions op_options = opt_it->second;
      if (op_options.telemetry == nullptr) {
        op_options.telemetry = &telemetry_;
      }
      // Derive the sidecar path from the last catalog save/load so the
      // after-cold-scan hook can persist without waiting for SaveCatalog.
      if (op_options.persist_positional_maps &&
          op_options.posmap_sidecar_path.empty() &&
          !posmap_base_path_.empty()) {
        op_options.posmap_sidecar_path =
            PosmapSidecarPath(posmap_base_path_, table);
      }
      auto created = std::make_unique<ScanRaw>(
          table, &catalog_, storage_.get(), &arbiter_, limiter_.get(),
          op_options);
      op = created.get();
      // Consume the sidecar staged by LoadCatalog (if any). Prepopulate
      // validates the dialect against the operator's live TokenizeOptions
      // and refuses a mismatched sidecar wholesale — those maps were built
      // under different delimiter/quote rules and must be rebuilt.
      auto pending = pending_posmaps_.find(table);
      if (pending != pending_posmaps_.end()) {
        const size_t staged_count = pending->second.entries.size();
        const size_t inserted = op->PrepopulatePositionalMaps(
            pending->second.dialect, std::move(pending->second.entries));
        pending_posmaps_.erase(pending);
        obs::MetricsRegistry& registry = telemetry_.metrics();
        if (inserted > 0) {
          registry.GetCounter("scanraw.posmap.loaded_from_disk")
              ->Add(inserted);
        } else if (staged_count > 0) {
          ++last_recovery_.posmaps_dropped;
          registry.GetCounter("recovery.posmap_dropped")->Add(1);
          last_recovery_.details.push_back(
              "posmap " + table +
              ": dropped sidecar: dialect mismatch with attached options");
        }
      }
      operators_.emplace(table, std::move(created));
    }
  }

  if (op != nullptr) return op->ExecuteQuery(spec, explain);

  // Fully loaded: plain database processing through the heap scan.
  obs::SpanProfiler profiler;
  HeapScanStream stream(*meta, storage_.get(), spec.RequiredColumns(),
                        spec.predicate.range,
                        explain != nullptr ? &profiler : nullptr);
  stream.scan().BindMetrics(
      telemetry_.metrics().GetCounter("heapscan.chunks_scanned"),
      telemetry_.metrics().GetCounter("heapscan.chunks_skipped"));
  auto result = RunQuery(spec, &stream,
                         explain != nullptr ? &profiler : nullptr);
  if (explain != nullptr && result.ok()) {
    profiler.End();
    explain->table = table;
    explain->policy = "heap-scan (retired)";
    explain->workers = 1;
    explain->FillFromProfile(profiler.Aggregate());
    explain->chunks_from_db = stream.scan().chunks_scanned();
    explain->chunks_skipped = stream.scan().chunks_skipped();
    explain->loaded_fraction_before = 1.0;
    explain->loaded_fraction_after = 1.0;
  }
  return result;
}

}  // namespace scanraw
