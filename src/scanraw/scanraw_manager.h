// ScanRawManager: the database-integration layer of §3.3. ScanRaw operators
// are keyed by raw file and persist across queries ("SCANRAW is not attached
// to a query but rather to the raw file"); when a file is fully loaded the
// operator is retired and queries run through the plain heap scan. The
// manager owns the substrate every operator shares: catalog, storage
// manager, disk arbiter and the bandwidth limiter emulating one disk.
#ifndef SCANRAW_SCANRAW_SCANRAW_MANAGER_H_
#define SCANRAW_SCANRAW_SCANRAW_MANAGER_H_

#include <map>
#include <memory>
#include <string>

#include "common/thread_annotations.h"

#include "db/catalog.h"
#include "db/heap_scan.h"
#include "db/recovery.h"
#include "db/storage_manager.h"
#include "exec/query.h"
#include "io/disk_arbiter.h"
#include "io/rate_limiter.h"
#include "obs/telemetry.h"
#include "obs/watchdog.h"
#include "scanraw/scan_raw.h"

namespace scanraw {

// Adapts HeapScan to the engine's pull interface. When `profiler` is set,
// each materialized chunk is recorded as a HEAP_SCAN span.
class HeapScanStream : public ChunkStream {
 public:
  HeapScanStream(const TableMetadata& table, const StorageManager* storage,
                 std::vector<size_t> columns,
                 std::optional<RangePredicate> filter = std::nullopt,
                 obs::SpanProfiler* profiler = nullptr);
  Result<std::optional<BinaryChunkPtr>> Next() override;

  HeapScan& scan() { return scan_; }

 private:
  HeapScan scan_;
  obs::SpanProfiler* profiler_;
};

class ScanRawManager {
 public:
  struct Config {
    // Database storage file.
    std::string db_path;
    // Shared disk bandwidth in bytes/second (0 = unlimited). Raw-file reads
    // and database I/O draw from the same budget, like the paper's single
    // RAID array.
    uint64_t disk_bandwidth = 0;
    // Reopen an existing database file instead of truncating (restart
    // recovery; pair with LoadCatalog).
    bool reuse_existing_db = false;
    // Delta-compress integer columns in stored segments.
    bool compress_segments = false;
    // Checksum-verify every catalog segment against storage during
    // LoadCatalog (drops torn segments instead of serving Corruption
    // later). The EOF bound is always enforced.
    bool verify_segments_on_load = true;
    // Stall watchdog over the shared heartbeat board: a pipeline stage that
    // is active but makes no progress for this long produces a structured
    // report and a flight-recorder dump. 0 disables the watchdog thread.
    int64_t watchdog_ms = 0;
    // Abort the process after reporting a stall (CI wants the core; a
    // resident server wants the report only).
    bool watchdog_abort = false;
    // Flight-recorder dump destination on stall. Empty = the
    // SCANRAW_FLIGHT_DUMP env var, then stderr.
    std::string watchdog_dump_path;
  };

  static Result<std::unique_ptr<ScanRawManager>> Create(const Config& config);

  // Registers a raw file as a queryable table. No data is read yet — zero
  // time-to-query.
  Status RegisterRawFile(const std::string& table, const std::string& path,
                         const Schema& schema, const ScanRawOptions& options);

  // Runs a query, creating the table's ScanRaw operator on first use and
  // retiring it once the raw file is fully loaded (§3.3).
  Result<QueryResult> Query(const std::string& table, const QuerySpec& spec);

  // EXPLAIN ANALYZE variant: fills `explain` (when non-null) with the span
  // profile, critical path, chunk provenance, and cache statistics. Works
  // for both the live-operator path and the retired heap-scan path.
  Result<QueryResult> Query(const std::string& table, const QuerySpec& spec,
                            obs::ExplainReport* explain);

  // The live operator for `table`, or nullptr if none exists (not yet
  // queried, or retired).
  ScanRaw* GetOperator(const std::string& table);

  // True when queries on `table` run purely from the database.
  bool IsRetired(const std::string& table);

  // Restart recovery: persist / restore catalog metadata (tables, chunk
  // layouts, loaded segments, statistics). SaveCatalog syncs storage first
  // and writes atomically, so the saved catalog never references unsynced
  // bytes. LoadCatalog tolerates a torn trailing catalog line and
  // reconciles every recorded segment against the storage file (see
  // db/recovery.h); what was dropped is available via last_recovery() and
  // the recovery.* telemetry counters. Register the same raw files with
  // AttachOptions after LoadCatalog to re-attach operators.
  //
  // Tables whose options set persist_positional_maps also get a posmap
  // sidecar (`<catalog>.posmap.<table>`): SaveCatalog writes the sidecars
  // before the catalog (data-before-metadata), and LoadCatalog stages valid
  // sidecars so the first query on each table starts with its positional
  // maps pre-populated (`posmap-disk` provenance in EXPLAIN). Torn, stale,
  // or dialect-mismatched sidecars are dropped — counted in
  // last_recovery().posmaps_dropped and recovery.posmap_dropped — and the
  // table simply re-tokenizes.
  Status SaveCatalog(const std::string& path) const;
  Status LoadCatalog(const std::string& path);

  // Report of the most recent LoadCatalog reconciliation (empty before).
  ReconcileReport last_recovery() const;

  // Like RegisterRawFile but for a table restored by LoadCatalog: only the
  // ScanRaw options are (re)attached; the catalog entry must already exist.
  Status AttachOptions(const std::string& table,
                       const ScanRawOptions& options);

  Catalog* catalog() { return &catalog_; }
  StorageManager* storage() { return storage_.get(); }
  DiskArbiter* arbiter() { return &arbiter_; }
  RateLimiter* limiter() { return limiter_.get(); }
  IoStats* io_stats() { return &io_stats_; }
  // The manager-wide telemetry sink. The arbiter and storage manager are
  // bound at Create; operators created by Query record here too unless the
  // registered ScanRawOptions carry their own sink.
  obs::Telemetry* telemetry() { return &telemetry_; }
  // The stall watchdog, or nullptr when Config::watchdog_ms was 0.
  obs::Watchdog* watchdog() { return watchdog_.get(); }

  // Human-readable status page body: catalog tables with load state, cache
  // occupancy per live operator, and — when a query is running — its
  // per-stage span state. Served by the stats server's /statusz.
  std::string Statusz() const EXCLUDES(mu_);

 private:
  explicit ScanRawManager(const Config& config);

  Config config_;
  obs::Telemetry telemetry_;
  Catalog catalog_;
  std::unique_ptr<RateLimiter> limiter_;
  DiskArbiter arbiter_;
  IoStats io_stats_;
  std::unique_ptr<StorageManager> storage_;
  // Owns the stall-detector thread; started at Create, stopped on destroy.
  // Declared after telemetry_ (it watches telemetry_'s heartbeat board).
  std::unique_ptr<obs::Watchdog> watchdog_;

  mutable Mutex mu_{LockRank::kScanRawManager, "ScanRawManager.mu"};
  std::map<std::string, ScanRawOptions> options_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<ScanRaw>> operators_ GUARDED_BY(mu_);
  ReconcileReport last_recovery_ GUARDED_BY(mu_);
  // Catalog path of the last SaveCatalog/LoadCatalog — the base the posmap
  // sidecar paths derive from. Mutable: SaveCatalog (const) records it so
  // operators created later know where their sidecar lives.
  mutable std::string posmap_base_path_ GUARDED_BY(mu_);
  // Posmap sidecars staged by LoadCatalog, consumed (and dialect-checked)
  // when each table's operator is first created — options attach after the
  // catalog loads, so dialect validation cannot happen any earlier.
  std::map<std::string, PosmapSidecar> pending_posmaps_ GUARDED_BY(mu_);
};

}  // namespace scanraw

#endif  // SCANRAW_SCANRAW_SCANRAW_MANAGER_H_
