#include "scanraw/raw_reader.h"

#include <algorithm>

#include "common/string_util.h"

namespace scanraw {

namespace {
constexpr size_t kReadBlockBytes = 1 << 20;  // 1 MB sequential read unit
}  // namespace

Result<std::unique_ptr<SequentialChunker>> SequentialChunker::Open(
    const std::string& path, uint64_t chunk_rows, RateLimiter* limiter,
    IoStats* stats) {
  if (chunk_rows == 0) {
    return Status::InvalidArgument("chunk_rows must be > 0");
  }
  auto file = RandomAccessFile::Open(path, limiter, stats);
  if (!file.ok()) return file.status();
  return std::unique_ptr<SequentialChunker>(
      new SequentialChunker(std::move(*file), chunk_rows));
}

SequentialChunker::SequentialChunker(std::unique_ptr<RandomAccessFile> file,
                                     uint64_t chunk_rows)
    : file_(std::move(file)), chunk_rows_(chunk_rows) {}

Result<std::optional<TextChunk>> SequentialChunker::Next() {
  std::string data = std::move(carry_);
  carry_.clear();
  uint64_t lines = 0;
  size_t scan_from = 0;
  // Count complete lines already in `data` (carry can hold several when
  // chunk_rows is tiny).
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i] == '\n') {
      ++lines;
      scan_from = i + 1;
      if (lines >= chunk_rows_) break;
    }
  }
  while (lines < chunk_rows_ && !eof_) {
    const size_t old = data.size();
    data.resize(old + kReadBlockBytes);
    auto n = file_->ReadAt(file_pos_, kReadBlockBytes, data.data() + old);
    if (!n.ok()) return n.status();
    data.resize(old + *n);
    file_pos_ += *n;
    if (*n == 0) {
      eof_ = true;
      break;
    }
    for (size_t i = old; i < data.size(); ++i) {
      if (data[i] == '\n') {
        ++lines;
        scan_from = i + 1;
        if (lines >= chunk_rows_) break;
      }
    }
  }

  size_t cut = data.size();
  if (lines >= chunk_rows_) {
    cut = scan_from;
  } else if (eof_ && !data.empty() && data.back() != '\n') {
    ++lines;  // final unterminated line
  }
  carry_ = data.substr(cut);
  data.resize(cut);
  if (data.empty()) return std::optional<TextChunk>();

  const uint64_t offset =
      file_pos_ - carry_.size() - data.size();
  TextChunk chunk = MakeTextChunk(std::move(data), next_chunk_index_, offset);
  ++next_chunk_index_;
  return std::optional<TextChunk>(std::move(chunk));
}

Result<TextChunk> ReadChunkAt(const RandomAccessFile& file,
                              const ChunkMetadata& meta) {
  std::string data(meta.raw_size, '\0');
  auto n = file.ReadAt(meta.raw_offset, meta.raw_size, data.data());
  if (!n.ok()) return n.status();
  if (*n != meta.raw_size) {
    return Status::Corruption(StringPrintf(
        "short read of chunk %llu: got %zu of %llu bytes",
        static_cast<unsigned long long>(meta.chunk_index), *n,
        static_cast<unsigned long long>(meta.raw_size)));
  }
  TextChunk chunk =
      MakeTextChunk(std::move(data), meta.chunk_index, meta.raw_offset);
  if (chunk.num_rows() != meta.num_rows) {
    return Status::Corruption(StringPrintf(
        "chunk %llu: expected %llu rows, found %zu",
        static_cast<unsigned long long>(meta.chunk_index),
        static_cast<unsigned long long>(meta.num_rows), chunk.num_rows()));
  }
  return chunk;
}

}  // namespace scanraw
