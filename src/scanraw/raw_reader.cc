#include "scanraw/raw_reader.h"

#include <algorithm>

#include "common/byte_scan.h"
#include "common/string_util.h"
#include "scanraw/chunk_buffer_pool.h"

namespace scanraw {

namespace {
constexpr size_t kReadBlockBytes = 1 << 20;  // 1 MB sequential read unit
}  // namespace

Result<std::unique_ptr<SequentialChunker>> SequentialChunker::Open(
    const std::string& path, uint64_t chunk_rows, RateLimiter* limiter,
    IoStats* stats, ChunkBufferPool* pool, RecordDialect dialect,
    ThreadPool* scan_pool) {
  if (chunk_rows == 0) {
    return Status::InvalidArgument("chunk_rows must be > 0");
  }
  auto file = RandomAccessFile::Open(path, limiter, stats);
  if (!file.ok()) return file.status();
  return std::unique_ptr<SequentialChunker>(new SequentialChunker(
      std::move(*file), chunk_rows, pool, dialect, scan_pool));
}

SequentialChunker::SequentialChunker(std::unique_ptr<RandomAccessFile> file,
                                     uint64_t chunk_rows,
                                     ChunkBufferPool* pool,
                                     RecordDialect dialect,
                                     ThreadPool* scan_pool)
    : file_(std::move(file)),
      chunk_rows_(chunk_rows),
      pool_(pool),
      dialect_(dialect),
      scan_pool_(scan_pool) {}

Result<std::optional<TextChunk>> SequentialChunker::Next() {
  std::string data;
  if (pool_ != nullptr) {
    // Recycled buffer; the carry (usually a partial line) is copied in.
    data = pool_->AcquireText();
    data.assign(carry_);
  } else {
    data = std::move(carry_);
  }
  carry_.clear();
  newline_scratch_.clear();

  uint64_t lines = 0;
  if (!dialect_.quoted) {
    // Unquoted fast path (frozen from before the quoted dialect existed):
    // one bulk scan per byte range, budgeted to chunk_rows hits. Newline
    // positions land in the scratch vector, which both sizes the chunk and
    // becomes its line starts below.
    lines = bytescan::FindAll(data.data(), 0, data.size(), '\n', chunk_rows_,
                              0, &newline_scratch_);
    while (lines < chunk_rows_ && !eof_) {
      const size_t old = data.size();
      data.resize(old + kReadBlockBytes);
      auto n = file_->ReadAt(file_pos_, kReadBlockBytes, data.data() + old);
      if (!n.ok()) return n.status();
      data.resize(old + *n);
      file_pos_ += *n;
      if (*n == 0) {
        eof_ = true;
        break;
      }
      lines += bytescan::FindAll(data.data(), old, data.size(), '\n',
                                 chunk_rows_ - lines, 0, &newline_scratch_);
    }
  } else {
    // Quote-aware record discovery. The carry always begins at a record
    // boundary (it is the tail after the previous chunk's cut), so every
    // Next() starts at outside-quote parity; `inside` threads the parity
    // across the incremental block reads. With a scan pool this is the
    // speculative parallel range scan; otherwise the sequential FSM.
    RecordScanOptions sopts;
    sopts.dialect = dialect_;
    sopts.pool = scan_pool_;
    bool inside =
        ParallelFindRecordNewlines(data.data(), 0, data.size(),
                                   /*start_inside=*/false, sopts,
                                   &spec_stats_, &newline_scratch_);
    lines = newline_scratch_.size();
    while (lines < chunk_rows_ && !eof_) {
      const size_t old = data.size();
      data.resize(old + kReadBlockBytes);
      auto n = file_->ReadAt(file_pos_, kReadBlockBytes, data.data() + old);
      if (!n.ok()) return n.status();
      data.resize(old + *n);
      file_pos_ += *n;
      if (*n == 0) {
        eof_ = true;
        break;
      }
      inside = ParallelFindRecordNewlines(data.data(), old, data.size(),
                                          inside, sopts, &spec_stats_,
                                          &newline_scratch_);
      lines = newline_scratch_.size();
    }
  }

  size_t cut = data.size();
  if (lines >= chunk_rows_) {
    cut = static_cast<size_t>(newline_scratch_[chunk_rows_ - 1]) + 1;
  } else if (eof_ && !data.empty() && data.back() != '\n') {
    ++lines;  // final unterminated line
  }
  carry_.assign(data, cut, std::string::npos);
  data.resize(cut);
  if (data.empty()) {
    if (pool_ != nullptr) pool_->ReleaseString(std::move(data));
    return std::optional<TextChunk>();
  }

  // Line starts from the newline positions already in hand: 0, then one past
  // every newline except a final-byte terminator.
  std::vector<uint32_t> starts;
  if (pool_ != nullptr) starts = pool_->AcquireLineStarts();
  starts.clear();
  starts.push_back(0);
  for (const uint32_t nl : newline_scratch_) {
    const size_t next_line = static_cast<size_t>(nl) + 1;
    if (next_line >= cut) break;
    starts.push_back(static_cast<uint32_t>(next_line));
  }

  const uint64_t offset = file_pos_ - carry_.size() - data.size();
  TextChunk chunk = MakeTextChunk(std::move(data), std::move(starts),
                                  next_chunk_index_, offset);
  ++next_chunk_index_;
  return std::optional<TextChunk>(std::move(chunk));
}

Result<TextChunk> ReadChunkAt(const RandomAccessFile& file,
                              const ChunkMetadata& meta,
                              ChunkBufferPool* pool, RecordDialect dialect,
                              ThreadPool* scan_pool,
                              SpeculationStats* spec_stats) {
  std::string data;
  if (pool != nullptr) data = pool->AcquireText();
  data.resize(meta.raw_size);
  auto n = file.ReadAt(meta.raw_offset, meta.raw_size, data.data());
  if (!n.ok()) return n.status();
  if (*n != meta.raw_size) {
    return Status::Corruption(StringPrintf(
        "short read of chunk %llu: got %zu of %llu bytes",
        static_cast<unsigned long long>(meta.chunk_index), *n,
        static_cast<unsigned long long>(meta.raw_size)));
  }
  std::vector<uint32_t> starts;
  if (pool != nullptr) starts = pool->AcquireLineStarts();
  if (!dialect.quoted) {
    FindLineStarts(data, &starts);
  } else {
    // Chunk extents were cut at record boundaries during discovery, so the
    // buffer starts at outside-quote parity; record starts follow every
    // record-terminating newline (except a final-byte terminator).
    RecordScanOptions sopts;
    sopts.dialect = dialect;
    sopts.pool = scan_pool;
    std::vector<uint32_t> record_newlines;
    ParallelFindRecordNewlines(data.data(), 0, data.size(),
                               /*start_inside=*/false, sopts, spec_stats,
                               &record_newlines);
    starts.clear();
    if (!data.empty()) {
      starts.push_back(0);
      for (const uint32_t nl : record_newlines) {
        const size_t next_record = static_cast<size_t>(nl) + 1;
        if (next_record >= data.size()) break;
        starts.push_back(static_cast<uint32_t>(next_record));
      }
    }
  }
  TextChunk chunk = MakeTextChunk(std::move(data), std::move(starts),
                                  meta.chunk_index, meta.raw_offset);
  if (chunk.num_rows() != meta.num_rows) {
    return Status::Corruption(StringPrintf(
        "chunk %llu: expected %llu rows, found %zu",
        static_cast<unsigned long long>(meta.chunk_index),
        static_cast<unsigned long long>(meta.num_rows), chunk.num_rows()));
  }
  return chunk;
}

}  // namespace scanraw
