#include "scanraw/chunk_cache.h"

#include <algorithm>

namespace scanraw {

std::vector<EvictedChunk> ChunkCache::Insert(uint64_t chunk_index,
                                             BinaryChunkPtr chunk,
                                             bool loaded) {
  std::vector<EvictedChunk> evicted;
  if (capacity_ == 0) return evicted;
  MutexLock lock(mu_);
  auto it = entries_.find(chunk_index);
  if (it != entries_.end()) {
    // Refresh: replace payload (it may now carry more columns), keep the
    // loaded flag sticky, move to MRU.
    it->second.chunk = std::move(chunk);
    it->second.loaded = it->second.loaded || loaded;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(chunk_index);
    it->second.lru_pos = lru_.begin();
    return evicted;
  }
  while (entries_.size() >= capacity_) EvictOne(&evicted);
  Entry entry;
  entry.chunk = std::move(chunk);
  entry.loaded = loaded;
  entry.insert_seq = next_seq_++;
  lru_.push_front(chunk_index);
  entry.lru_pos = lru_.begin();
  entries_.emplace(chunk_index, std::move(entry));
  return evicted;
}

void ChunkCache::EvictOne(std::vector<EvictedChunk>* evicted) {
  // Called with mu_ held and entries_ non-empty. Prefer the LRU loaded
  // chunk; fall back to the global LRU victim.
  uint64_t victim = lru_.back();
  bool biased = false;
  if (bias_evict_loaded_) {
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (entries_.at(*it).loaded) {
        biased = *it != lru_.back();
        victim = *it;
        break;
      }
    }
  }
  auto it = entries_.find(victim);
  evicted->push_back(
      EvictedChunk{victim, std::move(it->second.chunk), it->second.loaded});
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  ++evictions_;
  if (evictions_metric_ != nullptr) evictions_metric_->Add(1);
  if (biased) {
    ++biased_evictions_;
    if (biased_evictions_metric_ != nullptr) biased_evictions_metric_->Add(1);
  }
}

BinaryChunkPtr ChunkCache::Lookup(uint64_t chunk_index) {
  MutexLock lock(mu_);
  auto it = entries_.find(chunk_index);
  if (it == entries_.end()) {
    ++misses_;
    if (misses_metric_ != nullptr) misses_metric_->Add(1);
    return nullptr;
  }
  ++hits_;
  if (hits_metric_ != nullptr) hits_metric_->Add(1);
  lru_.erase(it->second.lru_pos);
  lru_.push_front(chunk_index);
  it->second.lru_pos = lru_.begin();
  return it->second.chunk;
}

bool ChunkCache::Contains(uint64_t chunk_index) const {
  MutexLock lock(mu_);
  return entries_.count(chunk_index) > 0;
}

void ChunkCache::MarkLoaded(uint64_t chunk_index) {
  MutexLock lock(mu_);
  auto it = entries_.find(chunk_index);
  if (it != entries_.end()) it->second.loaded = true;
}

std::optional<std::pair<uint64_t, BinaryChunkPtr>> ChunkCache::OldestUnloaded()
    const {
  MutexLock lock(mu_);
  const Entry* best = nullptr;
  uint64_t best_index = 0;
  for (const auto& [index, entry] : entries_) {
    if (entry.loaded) continue;
    if (best == nullptr || entry.insert_seq < best->insert_seq) {
      best = &entry;
      best_index = index;
    }
  }
  if (best == nullptr) return std::nullopt;
  return std::make_pair(best_index, best->chunk);
}

std::vector<std::pair<uint64_t, BinaryChunkPtr>> ChunkCache::UnloadedChunks()
    const {
  MutexLock lock(mu_);
  std::vector<std::pair<uint64_t, const Entry*>> unloaded;
  for (const auto& [index, entry] : entries_) {
    if (!entry.loaded) unloaded.emplace_back(index, &entry);
  }
  std::sort(unloaded.begin(), unloaded.end(),
            [](const auto& a, const auto& b) {
              return a.second->insert_seq < b.second->insert_seq;
            });
  std::vector<std::pair<uint64_t, BinaryChunkPtr>> out;
  out.reserve(unloaded.size());
  for (const auto& [index, entry] : unloaded) {
    out.emplace_back(index, entry->chunk);
  }
  return out;
}

std::vector<uint64_t> ChunkCache::ResidentChunks() const {
  MutexLock lock(mu_);
  std::vector<uint64_t> out;
  out.reserve(entries_.size());
  for (const auto& [index, _] : entries_) out.push_back(index);
  return out;
}

size_t ChunkCache::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

uint64_t ChunkCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

uint64_t ChunkCache::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

uint64_t ChunkCache::evictions() const {
  MutexLock lock(mu_);
  return evictions_;
}

uint64_t ChunkCache::biased_evictions() const {
  MutexLock lock(mu_);
  return biased_evictions_;
}

void ChunkCache::BindMetrics(obs::Counter* hits, obs::Counter* misses,
                             obs::Counter* evictions,
                             obs::Counter* biased_evictions) {
  MutexLock lock(mu_);
  hits_metric_ = hits;
  misses_metric_ = misses;
  evictions_metric_ = evictions;
  biased_evictions_metric_ = biased_evictions;
}

}  // namespace scanraw
