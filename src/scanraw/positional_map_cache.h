// Cache for per-chunk positional maps (§2: "when the vector is passed to
// PARSE, it is also cached in memory"). The paper argues this cache is
// less valuable than the binary chunk cache (§3.1) — it cannot avoid
// reading or parsing — so it is off by default and bounded separately;
// when enabled it lets a re-scan of a raw chunk skip TOKENIZE entirely, or
// extend a partial map instead of rescanning the line prefix.
#ifndef SCANRAW_SCANRAW_POSITIONAL_MAP_CACHE_H_
#define SCANRAW_SCANRAW_POSITIONAL_MAP_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "common/thread_annotations.h"
#include "format/positional_map.h"
#include "obs/metrics.h"

namespace scanraw {

class PositionalMapCache {
 public:
  explicit PositionalMapCache(size_t capacity_chunks)
      : capacity_(capacity_chunks) {}

  // Returns the cached map for `chunk_index`, or nullptr. The map may be
  // partial — the caller checks fields_per_row().
  std::shared_ptr<const PositionalMap> Lookup(uint64_t chunk_index) const
      EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto it = entries_.find(chunk_index);
    if (it == entries_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (miss_counter_ != nullptr) miss_counter_->Add(1);
      return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (hit_counter_ != nullptr) hit_counter_->Add(1);
    return it->second;
  }

  // Stores (or widens) the map for a chunk. A narrower map never replaces
  // a wider one.
  void Insert(uint64_t chunk_index,
              std::shared_ptr<const PositionalMap> map) EXCLUDES(mu_) {
    if (capacity_ == 0 || map == nullptr) return;
    MutexLock lock(mu_);
    auto it = entries_.find(chunk_index);
    if (it != entries_.end()) {
      if (map->fields_per_row() > it->second->fields_per_row()) {
        it->second = std::move(map);
      }
      return;
    }
    while (entries_.size() >= capacity_ && !fifo_.empty()) {
      entries_.erase(fifo_.front());
      fifo_.pop_front();
    }
    fifo_.push_back(chunk_index);
    entries_.emplace(chunk_index, std::move(map));
  }

  size_t size() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return entries_.size();
  }

  size_t MemoryBytes() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    size_t total = 0;
    for (const auto& [_, map] : entries_) total += map->MemoryBytes();
    return total;
  }

  // Lifetime lookup outcomes; per-query deltas feed the positional-map hit
  // rate in EXPLAIN ANALYZE reports.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  // Optional registry counters (e.g. "posmap.hits" / "posmap.misses").
  // Bind during setup; pass nullptr to detach.
  void BindMetrics(obs::Counter* hits, obs::Counter* misses) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    hit_counter_ = hits;
    miss_counter_ = misses;
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_{LockRank::kPositionalMapCache, "PositionalMapCache.mu"};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  obs::Counter* hit_counter_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* miss_counter_ GUARDED_BY(mu_) = nullptr;
  std::map<uint64_t, std::shared_ptr<const PositionalMap>> entries_
      GUARDED_BY(mu_);
  std::deque<uint64_t> fifo_ GUARDED_BY(mu_);
};

}  // namespace scanraw

#endif  // SCANRAW_SCANRAW_POSITIONAL_MAP_CACHE_H_
