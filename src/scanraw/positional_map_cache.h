// Cache for per-chunk positional maps (§2: "when the vector is passed to
// PARSE, it is also cached in memory"). The paper argues this cache is
// less valuable than the binary chunk cache (§3.1) — it cannot avoid
// reading or parsing — so it is off by default and bounded separately;
// when enabled it lets a re-scan of a raw chunk skip TOKENIZE entirely, or
// extend a partial map instead of rescanning the line prefix.
//
// Entries are dialect-tagged: a map is only valid against the exact
// delimiter/quote rules it was built under, so a lookup under a different
// dialect drops the entry rather than silently reusing it. Eviction is FIFO
// by insertion order, bounded by both entry count and a running byte total;
// widening an entry (replacing a partial map with a wider one) refreshes its
// FIFO position, since the widened map represents fresh tokenize work.
#ifndef SCANRAW_SCANRAW_POSITIONAL_MAP_CACHE_H_
#define SCANRAW_SCANRAW_POSITIONAL_MAP_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "format/posmap_serde.h"
#include "format/positional_map.h"
#include "obs/metrics.h"

namespace scanraw {

// Where a cached map came from: built by this process's TOKENIZE stage, or
// loaded from a persisted sidecar at startup. Surfaced per-chunk so EXPLAIN
// can report `posmap-disk` provenance for warm-restart scans.
enum class PosmapOrigin : uint8_t { kBuilt = 0, kDisk = 1 };

class PositionalMapCache {
 public:
  // `capacity_chunks` == 0 disables the cache entirely. `capacity_bytes`
  // == 0 means no byte bound (entry-count bound only).
  explicit PositionalMapCache(size_t capacity_chunks,
                              size_t capacity_bytes = 0)
      : capacity_(capacity_chunks), capacity_bytes_(capacity_bytes) {}

  // Returns the cached map for `chunk_index`, or nullptr. The map may be
  // partial — the caller checks fields_per_row(). An entry whose dialect
  // does not match `dialect` is stale (e.g. --quoted-csv toggled between
  // runs): it is dropped and the lookup counts as a miss. On a hit,
  // `*origin` (if non-null) reports the entry's provenance.
  std::shared_ptr<const PositionalMap> Lookup(
      uint64_t chunk_index, const PosmapDialect& dialect,
      PosmapOrigin* origin = nullptr) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto it = entries_.find(chunk_index);
    if (it != entries_.end() && it->second.dialect != dialect) {
      dialect_drops_.fetch_add(1, std::memory_order_relaxed);
      if (dialect_drop_counter_ != nullptr) dialect_drop_counter_->Add(1);
      EraseLocked(it);
      it = entries_.end();
    }
    if (it == entries_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (miss_counter_ != nullptr) miss_counter_->Add(1);
      return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (hit_counter_ != nullptr) hit_counter_->Add(1);
    if (it->second.origin == PosmapOrigin::kDisk &&
        disk_hit_counter_ != nullptr) {
      disk_hit_counter_->Add(1);
    }
    if (origin != nullptr) *origin = it->second.origin;
    return it->second.map;
  }

  // Stores (or widens) the map for a chunk. Within one dialect a narrower
  // map never replaces a wider one; a dialect change replaces the entry
  // outright (the old map is useless under the new rules). Widening counts
  // as a fresh insertion for eviction purposes: the entry's FIFO position is
  // refreshed and the byte growth is charged against the byte bound.
  void Insert(uint64_t chunk_index, std::shared_ptr<const PositionalMap> map,
              const PosmapDialect& dialect,
              PosmapOrigin origin = PosmapOrigin::kBuilt) EXCLUDES(mu_) {
    if (capacity_ == 0 || map == nullptr) return;
    const size_t incoming_bytes = map->MemoryBytes();
    MutexLock lock(mu_);
    auto it = entries_.find(chunk_index);
    if (it != entries_.end()) {
      Entry& entry = it->second;
      if (entry.dialect == dialect &&
          map->fields_per_row() <= entry.map->fields_per_row()) {
        return;
      }
      bytes_ -= entry.map->MemoryBytes();
      bytes_ += incoming_bytes;
      entry.map = std::move(map);
      entry.dialect = dialect;
      entry.origin = origin;
      fifo_.splice(fifo_.end(), fifo_, entry.fifo_pos);
      EvictLocked(chunk_index);
      return;
    }
    // Make room first so the new entry itself is never the eviction victim.
    while (!fifo_.empty() &&
           (entries_.size() >= capacity_ ||
            (capacity_bytes_ > 0 && bytes_ + incoming_bytes > capacity_bytes_))) {
      entries_.erase(PopFrontLocked());
    }
    Entry entry;
    entry.map = std::move(map);
    entry.dialect = dialect;
    entry.origin = origin;
    entry.fifo_pos = fifo_.insert(fifo_.end(), chunk_index);
    bytes_ += incoming_bytes;
    entries_.emplace(chunk_index, std::move(entry));
  }

  // All entries matching `dialect`, in chunk order — the persistence path's
  // view of the cache. Entries under other dialects are skipped (they are
  // about to be dropped by Lookup anyway).
  std::vector<std::pair<uint64_t, std::shared_ptr<const PositionalMap>>>
  Snapshot(const PosmapDialect& dialect) const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    std::vector<std::pair<uint64_t, std::shared_ptr<const PositionalMap>>> out;
    out.reserve(entries_.size());
    for (const auto& [index, entry] : entries_) {
      if (entry.dialect == dialect) out.emplace_back(index, entry.map);
    }
    return out;
  }

  size_t size() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return entries_.size();
  }

  // Running byte total of all cached maps, O(1).
  size_t MemoryBytes() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return bytes_;
  }

  // Lifetime lookup outcomes, for /metrics and tests. EXPLAIN's per-query
  // numbers are counted at the lookup sites instead (see ScanRaw), so
  // concurrent queries cannot pollute each other's deltas.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t dialect_drops() const {
    return dialect_drops_.load(std::memory_order_relaxed);
  }

  // Optional registry counters. Bind during setup; pass nullptr to detach.
  void BindMetrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Counter* disk_hits = nullptr,
                   obs::Counter* dialect_drops = nullptr) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    hit_counter_ = hits;
    miss_counter_ = misses;
    disk_hit_counter_ = disk_hits;
    dialect_drop_counter_ = dialect_drops;
  }

 private:
  struct Entry {
    std::shared_ptr<const PositionalMap> map;
    PosmapDialect dialect;
    PosmapOrigin origin = PosmapOrigin::kBuilt;
    std::list<uint64_t>::iterator fifo_pos;
  };

  void EraseLocked(std::map<uint64_t, Entry>::iterator it) REQUIRES(mu_) {
    bytes_ -= it->second.map->MemoryBytes();
    fifo_.erase(it->second.fifo_pos);
    entries_.erase(it);
  }

  // Pops the FIFO head and returns its key; the caller erases the entry.
  uint64_t PopFrontLocked() REQUIRES(mu_) {
    const uint64_t victim = fifo_.front();
    fifo_.pop_front();
    bytes_ -= entries_.at(victim).map->MemoryBytes();
    return victim;
  }

  // Evicts until both bounds hold, never evicting `keep` (the entry that
  // was just widened — it sits at the FIFO tail, so it is only reachable
  // here when it is the sole entry left).
  void EvictLocked(uint64_t keep) REQUIRES(mu_) {
    while (!fifo_.empty() && fifo_.front() != keep &&
           (entries_.size() > capacity_ ||
            (capacity_bytes_ > 0 && bytes_ > capacity_bytes_))) {
      entries_.erase(PopFrontLocked());
    }
  }

  const size_t capacity_;
  const size_t capacity_bytes_;
  mutable Mutex mu_{LockRank::kPositionalMapCache, "PositionalMapCache.mu"};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> dialect_drops_{0};
  obs::Counter* hit_counter_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* miss_counter_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* disk_hit_counter_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* dialect_drop_counter_ GUARDED_BY(mu_) = nullptr;
  size_t bytes_ GUARDED_BY(mu_) = 0;
  std::map<uint64_t, Entry> entries_ GUARDED_BY(mu_);
  std::list<uint64_t> fifo_ GUARDED_BY(mu_);
};

}  // namespace scanraw

#endif  // SCANRAW_SCANRAW_POSITIONAL_MAP_CACHE_H_
