#include "scanraw/chunk_buffer_pool.h"

#include <utility>

namespace scanraw {

namespace {

// Acquire/release over one free list. Buffers come back cleared but with
// their capacity intact; releases past the cap and buffers holding no heap
// allocation (capacity no better than a fresh buffer's — for std::string
// that means within the SSO size) are dropped on the floor.
template <typename Buffer>
bool PopBuffer(std::vector<Buffer>* list, Buffer* out) {
  if (list->empty()) return false;
  *out = std::move(list->back());
  list->pop_back();
  return true;
}

template <typename Buffer>
void PushBuffer(std::vector<Buffer>* list, Buffer buffer, size_t max_pooled) {
  if (buffer.capacity() <= Buffer().capacity() || list->size() >= max_pooled) {
    return;
  }
  buffer.clear();
  list->push_back(std::move(buffer));
}

}  // namespace

void ChunkBufferPool::UpdateIdle() {
  if (idle_ != nullptr) {
    idle_->Set(static_cast<int64_t>(fixed_.size() + strings_.size() +
                                    offsets_.size()));
  }
}

std::vector<uint8_t> ChunkBufferPool::AcquireFixed() {
  std::vector<uint8_t> buffer;
  bool hit = false;
  {
    MutexLock lock(mu_);
    hit = PopBuffer(&fixed_, &buffer);
    UpdateIdle();
  }
  if (hit && hits_ != nullptr) hits_->Add();
  if (!hit && misses_ != nullptr) misses_->Add();
  return buffer;
}

std::string ChunkBufferPool::AcquireString() {
  std::string buffer;
  bool hit = false;
  {
    MutexLock lock(mu_);
    hit = PopBuffer(&strings_, &buffer);
    UpdateIdle();
  }
  if (hit && hits_ != nullptr) hits_->Add();
  if (!hit && misses_ != nullptr) misses_->Add();
  return buffer;
}

std::vector<uint32_t> ChunkBufferPool::AcquireOffsets() {
  std::vector<uint32_t> buffer;
  bool hit = false;
  {
    MutexLock lock(mu_);
    hit = PopBuffer(&offsets_, &buffer);
    UpdateIdle();
  }
  if (hit && hits_ != nullptr) hits_->Add();
  if (!hit && misses_ != nullptr) misses_->Add();
  return buffer;
}

void ChunkBufferPool::ReleaseFixed(std::vector<uint8_t> buffer) {
  MutexLock lock(mu_);
  PushBuffer(&fixed_, std::move(buffer), max_pooled_);
  UpdateIdle();
}

void ChunkBufferPool::ReleaseString(std::string buffer) {
  MutexLock lock(mu_);
  PushBuffer(&strings_, std::move(buffer), max_pooled_);
  UpdateIdle();
}

void ChunkBufferPool::ReleaseOffsets(std::vector<uint32_t> buffer) {
  MutexLock lock(mu_);
  PushBuffer(&offsets_, std::move(buffer), max_pooled_);
  UpdateIdle();
}

void ChunkBufferPool::ReleaseText(TextChunk* chunk) {
  ReleaseString(std::move(chunk->data));
  ReleaseOffsets(std::move(chunk->line_starts));
  chunk->data.clear();
  chunk->line_starts.clear();
}

size_t ChunkBufferPool::idle_buffers() const {
  MutexLock lock(mu_);
  return fixed_.size() + strings_.size() + offsets_.size();
}

std::shared_ptr<TextChunk> ChunkBufferPool::WrapText(
    TextChunk chunk, std::shared_ptr<ChunkBufferPool> pool) {
  if (pool == nullptr) return std::make_shared<TextChunk>(std::move(chunk));
  auto* raw = new TextChunk(std::move(chunk));
  return std::shared_ptr<TextChunk>(
      raw, [pool = std::move(pool)](TextChunk* c) {
        pool->ReleaseText(c);
        delete c;
      });
}

BinaryChunkPtr ChunkBufferPool::WrapChunk(
    BinaryChunk chunk, std::shared_ptr<ChunkBufferPool> pool) {
  if (pool == nullptr) {
    return std::make_shared<const BinaryChunk>(std::move(chunk));
  }
  auto* raw = new BinaryChunk(std::move(chunk));
  return BinaryChunkPtr(raw, [pool = std::move(pool)](const BinaryChunk* c) {
    auto* mut = const_cast<BinaryChunk*>(c);
    mut->ReleaseBuffersTo(pool.get());
    delete mut;
  });
}

}  // namespace scanraw
