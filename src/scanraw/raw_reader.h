// READ-stage helpers: sequential chunking of a never-before-seen raw file
// (layout discovery) and positional re-reads of known chunks.
#ifndef SCANRAW_SCANRAW_RAW_READER_H_
#define SCANRAW_SCANRAW_RAW_READER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/catalog.h"
#include "format/text_chunk.h"
#include "io/file.h"

namespace scanraw {

class RateLimiter;
class ChunkBufferPool;

// Splits a raw file sequentially into chunks of `chunk_rows` complete lines,
// recording each chunk's byte extent for the catalog. Single-threaded (used
// only by the READ thread). When `pool` is set, chunk text buffers and
// line-start vectors are drawn from it (and return to it when the consumer
// releases the chunk).
class SequentialChunker {
 public:
  static Result<std::unique_ptr<SequentialChunker>> Open(
      const std::string& path, uint64_t chunk_rows,
      RateLimiter* limiter = nullptr, IoStats* stats = nullptr,
      ChunkBufferPool* pool = nullptr);

  // Returns the next chunk, or nullopt at end of file.
  Result<std::optional<TextChunk>> Next();

  uint64_t chunks_produced() const { return next_chunk_index_; }

 private:
  SequentialChunker(std::unique_ptr<RandomAccessFile> file,
                    uint64_t chunk_rows, ChunkBufferPool* pool);

  std::unique_ptr<RandomAccessFile> file_;
  const uint64_t chunk_rows_;
  ChunkBufferPool* const pool_;  // may be null
  uint64_t file_pos_ = 0;        // next byte to read from the file
  uint64_t next_chunk_index_ = 0;
  std::string carry_;            // bytes after the last complete line
  std::vector<uint32_t> newline_scratch_;  // newline positions, reused
  bool eof_ = false;
};

// Re-reads one chunk of a file whose layout is already in the catalog.
Result<TextChunk> ReadChunkAt(const RandomAccessFile& file,
                              const ChunkMetadata& meta,
                              ChunkBufferPool* pool = nullptr);

}  // namespace scanraw

#endif  // SCANRAW_SCANRAW_RAW_READER_H_
