// READ-stage helpers: sequential chunking of a never-before-seen raw file
// (layout discovery) and positional re-reads of known chunks.
#ifndef SCANRAW_SCANRAW_RAW_READER_H_
#define SCANRAW_SCANRAW_RAW_READER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/catalog.h"
#include "format/parallel_chunker.h"
#include "format/text_chunk.h"
#include "io/file.h"

namespace scanraw {

class RateLimiter;
class ChunkBufferPool;
class ThreadPool;

// Splits a raw file sequentially into chunks of `chunk_rows` complete
// records, recording each chunk's byte extent for the catalog.
// Single-threaded (used only by the READ thread). When `pool` is set, chunk
// text buffers and line-start vectors are drawn from it (and return to it
// when the consumer releases the chunk).
//
// With a quoted `dialect`, record discovery is quote-aware: newlines inside
// quoted fields do not terminate records. When `scan_pool` is also set, the
// quote-parity scan runs as the speculative parallel range scan
// (format/parallel_chunker); without it, the sequential FSM — the frozen
// single-thread reference tier — runs instead. Speculation outcomes
// accumulate in speculation().
class SequentialChunker {
 public:
  static Result<std::unique_ptr<SequentialChunker>> Open(
      const std::string& path, uint64_t chunk_rows,
      RateLimiter* limiter = nullptr, IoStats* stats = nullptr,
      ChunkBufferPool* pool = nullptr, RecordDialect dialect = RecordDialect(),
      ThreadPool* scan_pool = nullptr);

  // Returns the next chunk, or nullopt at end of file.
  Result<std::optional<TextChunk>> Next();

  uint64_t chunks_produced() const { return next_chunk_index_; }
  const SpeculationStats& speculation() const { return spec_stats_; }

 private:
  SequentialChunker(std::unique_ptr<RandomAccessFile> file,
                    uint64_t chunk_rows, ChunkBufferPool* pool,
                    RecordDialect dialect, ThreadPool* scan_pool);

  std::unique_ptr<RandomAccessFile> file_;
  const uint64_t chunk_rows_;
  ChunkBufferPool* const pool_;  // may be null
  const RecordDialect dialect_;
  ThreadPool* const scan_pool_;  // may be null (sequential quote scan)
  SpeculationStats spec_stats_;
  uint64_t file_pos_ = 0;        // next byte to read from the file
  uint64_t next_chunk_index_ = 0;
  std::string carry_;            // bytes after the last complete record
  std::vector<uint32_t> newline_scratch_;  // newline positions, reused
  bool eof_ = false;
};

// Re-reads one chunk of a file whose layout is already in the catalog. The
// dialect/scan_pool/spec_stats trio mirrors SequentialChunker::Open: with a
// quoted dialect, record starts come from the (optionally parallel
// speculative) quote-parity scan instead of the plain newline split.
Result<TextChunk> ReadChunkAt(const RandomAccessFile& file,
                              const ChunkMetadata& meta,
                              ChunkBufferPool* pool = nullptr,
                              RecordDialect dialect = RecordDialect(),
                              ThreadPool* scan_pool = nullptr,
                              SpeculationStats* spec_stats = nullptr);

}  // namespace scanraw

#endif  // SCANRAW_SCANRAW_RAW_READER_H_
