// ScanRaw: the paper's physical operator for in-situ processing over raw
// files (§3). A super-scalar pipeline — READ -> TOKENIZE* -> PARSE* ->
// binary chunk cache -> execution engine — with WRITE speculatively storing
// converted chunks in the database whenever the disk would otherwise idle
// (§4). The operator is attached to a raw file, not to a query: its cache
// and catalog state persist across queries, and it morphs into a heap scan
// as the file gets loaded.
#ifndef SCANRAW_SCANRAW_SCAN_RAW_H_
#define SCANRAW_SCANRAW_SCAN_RAW_H_

#include <atomic>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "db/catalog.h"
#include "db/storage_manager.h"
#include "exec/query.h"
#include "io/disk_arbiter.h"
#include "io/file.h"
#include "io/rate_limiter.h"
#include "db/sketches.h"
#include "obs/explain.h"
#include "obs/progress.h"
#include "obs/span_profiler.h"
#include "obs/telemetry.h"
#include "pipeline/bounded_queue.h"
#include "scanraw/chunk_buffer_pool.h"
#include "scanraw/chunk_cache.h"
#include "scanraw/options.h"
#include "scanraw/positional_map_cache.h"

namespace scanraw {

// Per-stage profiling counters ("special function calls to harness detailed
// profiling data", §5). Stopwatch intervals count processed chunks, so
// TotalSeconds()/intervals() is the per-chunk stage time of Figure 5.
//
// When bound to a metrics registry (Bind), every update is mirrored into
// named registry metrics — per-stage latency histograms with percentiles
// plus the chunk-source and scheduler counters — so the ad-hoc atomics here
// stay as the cheap in-process view while the registry is the export path.
struct PipelineProfile {
  Stopwatch read_time;
  Stopwatch tokenize_time;
  Stopwatch parse_time;
  Stopwatch write_time;
  std::atomic<uint64_t> chunks_from_cache{0};
  std::atomic<uint64_t> chunks_from_db{0};
  std::atomic<uint64_t> chunks_from_raw{0};
  std::atomic<uint64_t> chunks_written{0};
  std::atomic<uint64_t> chunks_skipped{0};  // min/max pruning (§3.3)
  std::atomic<uint64_t> read_blocked_events{0};
  std::atomic<uint64_t> speculative_triggers{0};
  // Failed background WRITEs degraded to raw-side processing (the chunk
  // stays unloaded and will be re-extracted or retried), and speculative
  // triggers suppressed while backing off after such a failure.
  std::atomic<uint64_t> write_failures{0};
  std::atomic<uint64_t> write_backoffs{0};
  // Written-segment bytes attributed (proportionally) to columns the
  // active query required — the "useful" share of the write budget.
  std::atomic<uint64_t> useful_bytes_written{0};
  // Throughput feed for the live-rate rings (rows/s, bytes/s on /metrics):
  // rows delivered to the engine and raw bytes converted by PARSE.
  std::atomic<uint64_t> rows_delivered{0};
  std::atomic<uint64_t> bytes_converted{0};
  // Speculative parallel TOKENIZE (format/parallel_chunker): byte ranges
  // fanned out across record scans and chunk tokenizes, boundary
  // misspeculations caught at stitch points, and bytes re-scanned by the
  // repair path.
  std::atomic<uint64_t> tokenize_ranges{0};
  std::atomic<uint64_t> tokenize_misspeculations{0};
  std::atomic<uint64_t> tokenize_repair_bytes{0};
  // Chunk bytes put through TOKENIZE (full, extend, or parallel path). A
  // warm restart with a persisted posmap answers mapped queries with this
  // staying 0 — the restart_warm bench gates on exactly that.
  std::atomic<uint64_t> bytes_tokenized{0};
  // Chunks whose positional map came from a persisted sidecar
  // (`posmap-disk` provenance).
  std::atomic<uint64_t> posmap_disk_chunks{0};

  // Registry mirrors; null until Bind. Stage histograms record nanoseconds
  // per chunk. Operators sharing one registry share these objects, so the
  // registry view aggregates across operators.
  obs::Histogram* read_latency = nullptr;
  obs::Histogram* tokenize_latency = nullptr;
  obs::Histogram* parse_latency = nullptr;
  obs::Histogram* write_latency = nullptr;
  obs::Counter* from_cache_metric = nullptr;
  obs::Counter* from_db_metric = nullptr;
  obs::Counter* from_raw_metric = nullptr;
  obs::Counter* written_metric = nullptr;
  obs::Counter* skipped_metric = nullptr;
  obs::Counter* read_blocked_metric = nullptr;
  obs::Counter* speculative_metric = nullptr;
  obs::Counter* write_failures_metric = nullptr;
  obs::Counter* write_backoff_metric = nullptr;
  obs::Counter* useful_bytes_metric = nullptr;
  obs::Counter* rows_delivered_metric = nullptr;
  obs::Counter* bytes_converted_metric = nullptr;
  obs::Counter* tokenize_ranges_metric = nullptr;
  obs::Counter* tokenize_misspec_metric = nullptr;
  obs::Counter* tokenize_repair_metric = nullptr;
  obs::Counter* bytes_tokenized_metric = nullptr;
  obs::Counter* posmap_disk_metric = nullptr;

  // Resolves the registry mirrors under the "scanraw." prefix. Call before
  // the pipeline runs.
  void Bind(obs::MetricsRegistry* registry);

  void CountFromCache() { Bump(chunks_from_cache, from_cache_metric); }
  void CountFromDb() { Bump(chunks_from_db, from_db_metric); }
  void CountFromRaw() { Bump(chunks_from_raw, from_raw_metric); }
  void CountWritten() { Bump(chunks_written, written_metric); }
  void CountSkipped() { Bump(chunks_skipped, skipped_metric); }
  void CountReadBlocked() { Bump(read_blocked_events, read_blocked_metric); }
  void CountSpeculativeTrigger() {
    Bump(speculative_triggers, speculative_metric);
  }
  void CountWriteFailure() { Bump(write_failures, write_failures_metric); }
  void CountWriteBackoff() { Bump(write_backoffs, write_backoff_metric); }
  void AddUsefulBytes(uint64_t n) {
    useful_bytes_written.fetch_add(n, std::memory_order_relaxed);
    if (useful_bytes_metric != nullptr) useful_bytes_metric->Add(n);
  }
  void AddRowsDelivered(uint64_t n) {
    rows_delivered.fetch_add(n, std::memory_order_relaxed);
    if (rows_delivered_metric != nullptr) rows_delivered_metric->Add(n);
  }
  void AddBytesConverted(uint64_t n) {
    bytes_converted.fetch_add(n, std::memory_order_relaxed);
    if (bytes_converted_metric != nullptr) bytes_converted_metric->Add(n);
  }
  void AddTokenizeRanges(uint64_t n) {
    if (n == 0) return;
    tokenize_ranges.fetch_add(n, std::memory_order_relaxed);
    if (tokenize_ranges_metric != nullptr) tokenize_ranges_metric->Add(n);
  }
  void AddTokenizeMisspeculations(uint64_t n) {
    if (n == 0) return;
    tokenize_misspeculations.fetch_add(n, std::memory_order_relaxed);
    if (tokenize_misspec_metric != nullptr) tokenize_misspec_metric->Add(n);
  }
  void AddTokenizeRepairBytes(uint64_t n) {
    if (n == 0) return;
    tokenize_repair_bytes.fetch_add(n, std::memory_order_relaxed);
    if (tokenize_repair_metric != nullptr) tokenize_repair_metric->Add(n);
  }
  void AddBytesTokenized(uint64_t n) {
    if (n == 0) return;
    bytes_tokenized.fetch_add(n, std::memory_order_relaxed);
    if (bytes_tokenized_metric != nullptr) bytes_tokenized_metric->Add(n);
  }
  void CountPosmapDiskChunk() { Bump(posmap_disk_chunks, posmap_disk_metric); }

  // Zeroes the stopwatches, the counters, and — when bound — the
  // registry-backed mirrors (histograms included).
  //
  // Contract: reset is single-threaded. Each store is individually atomic,
  // but the fields are cleared one by one, so a concurrently running query
  // would observe (and write into) a half-cleared profile. Quiesce the
  // operator first: finish every QueryRun and drain WaitForWrites().
  void Reset();

 private:
  static void Bump(std::atomic<uint64_t>& local, obs::Counter* mirror) {
    local.fetch_add(1, std::memory_order_relaxed);
    if (mirror != nullptr) mirror->Add(1);
  }
};

// Live pipeline utilization, relayed to the database resource manager
// (§3.3: "the scheduler is in the best position to monitor resource
// utilization since it manages the allocation of worker threads ... These
// data are relayed to the database resource manager as requests for
// additional resources").
struct ResourceSnapshot {
  size_t text_buffer_size = 0;
  size_t text_buffer_capacity = 0;
  size_t position_buffer_size = 0;
  size_t position_buffer_capacity = 0;
  size_t output_buffer_size = 0;
  size_t output_buffer_capacity = 0;
  size_t busy_workers = 0;
  size_t num_workers = 0;
  size_t cache_size = 0;
  size_t cache_capacity = 0;

  enum class Advice {
    // Every worker busy and the text buffer full: "additional CPUs are
    // needed in order to cope with the I/O throughput".
    kNeedMoreCpu,
    // Workers starved and buffers empty: the disk is the bottleneck.
    kIoBound,
    // The engine is not draining the output buffer.
    kEngineBound,
    kBalanced,
  };
  Advice advice = Advice::kBalanced;

  // Classifies the buffer/worker fields into the §3.3 advice states
  // (exposed separately so the classification is unit-testable).
  Advice ComputeAdvice() const;
  void UpdateAdvice() { advice = ComputeAdvice(); }
};

// Stable lowercase-hyphen name for an advice state ("need-more-cpu", ...).
std::string_view AdviceName(ResourceSnapshot::Advice advice);

// The tokenize dialect a ScanRaw with `options` uses for `schema` — the
// single source of truth shared by the TOKENIZE stage, the posmap cache,
// and the sidecar load/save paths, so a persisted map can never be matched
// against rules it was not built under.
PosmapDialect TokenizeDialectFor(const Schema& schema,
                                 const ScanRawOptions& options);

class ScanRaw {
 public:
  // The table must already exist in `catalog` (see ScanRawManager, which
  // creates both). `arbiter` serializes READ/WRITE disk access; pass
  // nullptr to disable arbitration. `raw_limiter` throttles raw-file reads
  // to emulate a fixed-bandwidth device (the StorageManager can carry its
  // own limiter for the database side).
  ScanRaw(std::string table, Catalog* catalog, StorageManager* storage,
          DiskArbiter* arbiter, RateLimiter* raw_limiter,
          ScanRawOptions options);
  ~ScanRaw();
  ScanRaw(const ScanRaw&) = delete;
  ScanRaw& operator=(const ScanRaw&) = delete;

  // A single query's pass over the file. Delivers every chunk exactly once,
  // cached chunks first, then database-resident chunks, then raw chunks
  // (§3.2.1). Obtain via StartQuery; drain with Next() until nullopt; the
  // destructor joins the pipeline (abandoning early is safe).
  class QueryRun : public ChunkStream {
   public:
    ~QueryRun() override;
    QueryRun(const QueryRun&) = delete;
    QueryRun& operator=(const QueryRun&) = delete;

    Result<std::optional<BinaryChunkPtr>> Next() override;

    // Joins this query's pipeline threads (idempotent; the destructor calls
    // it). Background loading keeps draining on the operator's WRITE thread
    // so the safeguard flush overlaps with the next query (§4).
    void Finish();

    // First error raised by any pipeline thread (OK if none).
    Status status() const;

    // Point-in-time utilization of the live pipeline (§3.3 resource
    // management).
    ResourceSnapshot Resources() const;

   private:
    friend class ScanRaw;
    struct Impl;
    explicit QueryRun(std::unique_ptr<Impl> impl);
    std::unique_ptr<Impl> impl_;
  };

  // Starts the pipeline for one query needing `required_columns` (empty =
  // all schema columns). An optional range filter enables statistics-based
  // chunk skipping for database-resident chunks.
  Result<std::unique_ptr<QueryRun>> StartQuery(
      std::vector<size_t> required_columns,
      std::optional<RangePredicate> skip_filter = std::nullopt);

  // Convenience: run a full query through the execution engine. For the
  // synchronous-loading policies (kFullLoad, kInvisibleLoading) this waits
  // for queued writes to drain before returning — loading is part of the
  // query there. Speculative/buffered writes keep draining in the
  // background; the next query's READ contends with them via the arbiter,
  // exactly the §4 admission rule.
  Result<QueryResult> ExecuteQuery(const QuerySpec& spec);

  // EXPLAIN ANALYZE variant: same execution, but when `explain` is non-null
  // it is filled with the query's span profile (per-stage busy time,
  // critical path), chunk provenance and pruning deltas, speculative-write
  // payoff, and cache / positional-map hit rates. Deltas are computed
  // against the operator's shared counters, so the report is meaningful for
  // one query at a time; concurrent queries fold together.
  Result<QueryResult> ExecuteQuery(const QuerySpec& spec,
                                   obs::ExplainReport* explain);

  // Multi-query processing over raw files (the paper's §7 future work):
  // executes several queries in ONE shared pass. The pipeline converts the
  // union of the queries' required columns once; every delivered chunk is
  // fanned out to all query executors. Results are returned in input
  // order. Loading policies apply to the single shared scan.
  Result<std::vector<QueryResult>> ExecuteQueries(
      const std::vector<QuerySpec>& specs);

  // Persists the positional-map cache to the sidecar at `path` through
  // AtomicWriteFile, recording the raw file's exact stat and the operator's
  // tokenize dialect in the header. No-op (returning OK) when persistence
  // is not enabled, the cache is off, or there is nothing to save — an
  // existing sidecar is never clobbered with an empty one. Called after
  // cold scans (when posmap_sidecar_path is set) and by the manager before
  // each catalog save, so the sidecar (data) is durable before the catalog
  // (metadata) that a restart trusts.
  Status SavePositionalMaps(const std::string& path);

  // Pre-populates the cache from a loaded sidecar with `posmap-disk`
  // provenance. Refuses (returning 0) when the sidecar's dialect does not
  // match this operator's tokenize dialect — a map built under different
  // delimiter/quote rules must be rebuilt, not reused. Returns the number
  // of maps inserted.
  size_t PrepopulatePositionalMaps(
      const PosmapDialect& dialect,
      std::vector<std::pair<uint64_t, std::shared_ptr<const PositionalMap>>>
          entries);

  // Blocks until the WRITE queue is empty and no write is in flight.
  void WaitForWrites() EXCLUDES(write_mu_);
  // First error raised by the WRITE thread, sticky (OK if none).
  Status write_status() const EXCLUDES(write_mu_);

  const std::string& table() const { return table_; }
  const ScanRawOptions& options() const { return options_; }
  PipelineProfile& profile() { return profile_; }
  // Telemetry sink wired at construction (null when options.telemetry was
  // unset); tracer() is the chunk-lifecycle trace ring, or nullptr.
  obs::Telemetry* telemetry() const { return options_.telemetry; }
  obs::ChunkTracer* tracer() const {
    return options_.telemetry != nullptr ? &options_.telemetry->tracer()
                                         : nullptr;
  }
  ChunkCache& cache() { return cache_; }
  PositionalMapCache& positional_maps() { return positional_maps_; }
  // Distinct/sample sketches collected during conversion; only populated
  // when options.collect_sketches is set.
  const TableSketches& sketches() const { return sketches_; }

  // /statusz section for this operator: load progress, cache occupancy,
  // and — when a query is running — its per-stage span state from the
  // active SpanProfiler. One line per fact, two-space indented.
  std::string StatuszSection() const EXCLUDES(active_mu_);

  // Loading progress, from the catalog.
  double LoadedFraction() const;
  // True once every chunk/column is in the database — the operator can be
  // retired (§3.3: "Whenever it loaded the entire raw file").
  bool FullyLoaded() const;

 private:
  struct WriteRequest {
    uint64_t chunk_index = 0;
    BinaryChunkPtr chunk;
  };

  // Queues `chunk` for loading unless it is already loaded, pending, or the
  // operator is shutting down. Returns true if the write was queued.
  bool EnqueueWrite(uint64_t chunk_index, BinaryChunkPtr chunk);

  // Speculative trigger: called when READ blocks on a full text buffer.
  // Writes the oldest unloaded cached chunk, one at a time (§4).
  void MaybeTriggerSpeculativeWrite();

  // End-of-scan safeguard (§4): queue every unloaded cached chunk.
  void SafeguardFlush();

  // Stand-alone WRITE thread body (runs for the operator's lifetime).
  void WriteLoop();

  // The WRITE thread outlives any single query, so per-query observers
  // (span profiler, progress tracker) and the query's required-column set
  // (for useful-byte attribution of background writes) register here for
  // the query's duration; cleared before the QueryRun is destroyed.
  void RegisterObservers(obs::SpanProfiler* profiler,
                         obs::ProgressTracker* progress,
                         const std::vector<size_t>& required_columns);
  void UnregisterObservers(obs::SpanProfiler* profiler,
                           obs::ProgressTracker* progress);
  // WRITE-thread hooks into the active observers (no-ops when none).
  void RecordWriteSpan(int64_t start_nanos, int64_t dur_nanos);
  void NoteChunkLoaded();
  // How many of `columns` the active query's spec required.
  size_t CountRequiredOverlap(const std::vector<size_t>& columns) const
      EXCLUDES(active_mu_);

  // Folds a freshly converted chunk into the sketches exactly once.
  void MaybeUpdateSketches(const BinaryChunk& chunk);

  const std::string table_;
  Catalog* const catalog_;
  StorageManager* const storage_;
  DiskArbiter* const arbiter_;
  RateLimiter* const raw_limiter_;
  const ScanRawOptions options_;

  ChunkCache cache_;
  PositionalMapCache positional_maps_;
  // Buffer recycler shared by READ/PARSE and the chunk release paths; null
  // when options.reuse_buffers is off. Set once in the constructor.
  std::shared_ptr<ChunkBufferPool> buffer_pool_;
  TableSketches sketches_;
  // Chunks already folded into the sketches, so re-scans do not bias the
  // reservoir sample (the KMV sketch is naturally idempotent).
  Mutex sketched_mu_{LockRank::kScanSketched, "ScanRaw.sketched_mu"};
  std::set<uint64_t> sketched_chunks_ GUARDED_BY(sketched_mu_);
  PipelineProfile profile_;
  // Advice-state occurrence counters, indexed by ResourceSnapshot::Advice
  // (null when telemetry is unset); bumped by the per-query sampler.
  obs::Counter* advice_counters_[4] = {nullptr, nullptr, nullptr, nullptr};
  // Watchdog heartbeat board from the telemetry sink (null when telemetry
  // is unset); stages beat through this on every chunk boundary.
  obs::StageHeartbeats* heartbeats_ = nullptr;
  IoStats raw_io_stats_;

  // Chunks with a write queued or in flight, to keep loading exactly-once.
  Mutex pending_mu_{LockRank::kScanPending, "ScanRaw.pending_mu"};
  std::set<uint64_t> pending_writes_ GUARDED_BY(pending_mu_);

  // Per-query observers of the shared WRITE thread (see RegisterObservers).
  mutable Mutex active_mu_{LockRank::kScanActive, "ScanRaw.active_mu"};
  obs::SpanProfiler* active_profiler_ GUARDED_BY(active_mu_) = nullptr;
  obs::ProgressTracker* active_progress_ GUARDED_BY(active_mu_) = nullptr;
  std::set<size_t> active_required_ GUARDED_BY(active_mu_);

  // WRITE thread state.
  BoundedQueue<WriteRequest> write_queue_;
  std::thread write_thread_;
  mutable Mutex write_mu_{LockRank::kScanWrite, "ScanRaw.write_mu"};
  CondVar write_cv_;
  size_t writes_outstanding_ GUARDED_BY(write_mu_) = 0;  // queued + in flight
  Status write_status_ GUARDED_BY(write_mu_);
  // Speculative triggers are suppressed until this deadline after a failed
  // background write (graceful degradation; 0 = no backoff active).
  std::atomic<int64_t> write_backoff_until_nanos_{0};
};

}  // namespace scanraw

#endif  // SCANRAW_SCANRAW_SCAN_RAW_H_
