#include "scanraw/scan_raw.h"

#include <algorithm>
#include <cstdio>

#include "common/clock.h"
#include "io/fault_injection.h"
#include "common/string_util.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/load_advisor.h"
#include "obs/query_log.h"
#include "columnar/chunk_sort.h"
#include "db/statistics.h"
#include "format/parallel_chunker.h"
#include "format/parser.h"
#include "format/json_tokenizer.h"
#include "format/tokenizer.h"
#include "pipeline/thread_pool.h"
#include "scanraw/raw_reader.h"

namespace scanraw {

std::string_view LoadPolicyName(LoadPolicy policy) {
  switch (policy) {
    case LoadPolicy::kExternalTables:
      return "external-tables";
    case LoadPolicy::kFullLoad:
      return "full-load";
    case LoadPolicy::kSpeculativeLoading:
      return "speculative-loading";
    case LoadPolicy::kInvisibleLoading:
      return "invisible-loading";
    case LoadPolicy::kBufferedLoading:
      return "buffered-loading";
  }
  return "unknown";
}

std::string_view AdviceName(ResourceSnapshot::Advice advice) {
  switch (advice) {
    case ResourceSnapshot::Advice::kNeedMoreCpu:
      return "need-more-cpu";
    case ResourceSnapshot::Advice::kIoBound:
      return "io-bound";
    case ResourceSnapshot::Advice::kEngineBound:
      return "engine-bound";
    case ResourceSnapshot::Advice::kBalanced:
      return "balanced";
  }
  return "unknown";
}

ResourceSnapshot::Advice ResourceSnapshot::ComputeAdvice() const {
  if (num_workers > 0 && busy_workers == num_workers &&
      text_buffer_size >= text_buffer_capacity) {
    return Advice::kNeedMoreCpu;
  }
  if (output_buffer_size >= output_buffer_capacity) {
    return Advice::kEngineBound;
  }
  if (busy_workers == 0 && text_buffer_size == 0 &&
      position_buffer_size == 0) {
    return Advice::kIoBound;
  }
  return Advice::kBalanced;
}

void PipelineProfile::Bind(obs::MetricsRegistry* registry) {
  read_latency = registry->GetHistogram("scanraw.stage.read_nanos");
  tokenize_latency = registry->GetHistogram("scanraw.stage.tokenize_nanos");
  parse_latency = registry->GetHistogram("scanraw.stage.parse_nanos");
  write_latency = registry->GetHistogram("scanraw.stage.write_nanos");
  from_cache_metric = registry->GetCounter("scanraw.chunks_from_cache");
  from_db_metric = registry->GetCounter("scanraw.chunks_from_db");
  from_raw_metric = registry->GetCounter("scanraw.chunks_from_raw");
  written_metric = registry->GetCounter("scanraw.chunks_written");
  skipped_metric = registry->GetCounter("scanraw.chunks_skipped");
  read_blocked_metric = registry->GetCounter("scanraw.read_blocked_events");
  speculative_metric = registry->GetCounter("scanraw.speculative_triggers");
  write_failures_metric = registry->GetCounter("scanraw.write_failures");
  write_backoff_metric = registry->GetCounter("scanraw.write_backoffs");
  useful_bytes_metric = registry->GetCounter("scanraw.useful_bytes_written");
  rows_delivered_metric = registry->GetCounter("scanraw.rows_delivered");
  bytes_converted_metric = registry->GetCounter("scanraw.bytes_converted");
  tokenize_ranges_metric = registry->GetCounter("scanraw.tokenize.ranges");
  tokenize_misspec_metric =
      registry->GetCounter("scanraw.tokenize.misspeculations");
  tokenize_repair_metric =
      registry->GetCounter("scanraw.tokenize.repair_bytes");
  bytes_tokenized_metric = registry->GetCounter("scanraw.tokenize.bytes");
  posmap_disk_metric = registry->GetCounter("scanraw.posmap.disk_chunks");
}

void PipelineProfile::Reset() {
  read_time.Reset();
  tokenize_time.Reset();
  parse_time.Reset();
  write_time.Reset();
  chunks_from_cache = chunks_from_db = chunks_from_raw = chunks_written = 0;
  chunks_skipped = read_blocked_events = speculative_triggers = 0;
  write_failures = write_backoffs = useful_bytes_written = 0;
  rows_delivered = bytes_converted = 0;
  tokenize_ranges = tokenize_misspeculations = tokenize_repair_bytes = 0;
  bytes_tokenized = posmap_disk_chunks = 0;
  // Registry mirrors follow the same single-threaded-reset contract; the
  // histograms are shared objects, so this clears the aggregated view too.
  for (obs::Histogram* h :
       {read_latency, tokenize_latency, parse_latency, write_latency}) {
    if (h != nullptr) h->Reset();
  }
  for (obs::Counter* c :
       {from_cache_metric, from_db_metric, from_raw_metric, written_metric,
        skipped_metric, read_blocked_metric, speculative_metric,
        write_failures_metric, write_backoff_metric, useful_bytes_metric,
        rows_delivered_metric, bytes_converted_metric, tokenize_ranges_metric,
        tokenize_misspec_metric, tokenize_repair_metric,
        bytes_tokenized_metric, posmap_disk_metric}) {
    if (c != nullptr) c->Reset();
  }
}

namespace {

bool ChunkHasColumns(const BinaryChunk& chunk,
                     const std::vector<size_t>& columns) {
  for (size_t c : columns) {
    if (!chunk.HasColumn(c)) return false;
  }
  return true;
}

}  // namespace

// ------------------------------------------------------------ QueryRun ----

// The per-query pipeline: a READ thread, TOKENIZE/PARSE consumer threads
// backed by a shared worker pool, and the bounded buffers between them.
// Queue members are declared before the pool and the stand-alone threads so
// they outlive every worker during destruction.
struct ScanRaw::QueryRun::Impl {
  struct Tokenized {
    std::shared_ptr<TextChunk> text;
    std::shared_ptr<const PositionalMap> map;
  };

  Impl(ScanRaw* parent_op, std::vector<size_t> columns,
       std::optional<RangePredicate> filter, TableMetadata snapshot)
      : parent(parent_op),
        required_columns(std::move(columns)),
        skip_filter(std::move(filter)),
        meta(std::move(snapshot)),
        text_q(std::max<size_t>(1, parent_op->options_.text_buffer_capacity)),
        pos_q(std::max<size_t>(1,
                               parent_op->options_.position_buffer_capacity)),
        out_q(std::max<size_t>(1, parent_op->options_.output_buffer_capacity)),
        pool(parent_op->options_.num_workers),
        invisible_budget(static_cast<int64_t>(
            parent_op->options_.invisible_chunks_per_query)) {
    obs::Telemetry* telemetry = parent->options_.telemetry;
    if (telemetry != nullptr) {
      obs::MetricsRegistry& registry = telemetry->metrics();
      pool.BindMetrics(registry.GetGauge("scanraw.pool.busy_workers"),
                       registry.GetGauge("scanraw.pool.queue_depth"),
                       registry.GetCounter("scanraw.pool.tasks_submitted"));
      if (parent->options_.resource_sample_interval_ms > 0) {
        sampler = std::make_unique<obs::ResourceSampler>(
            &telemetry->resources(), [this] { return ProbeResources(); },
            std::chrono::milliseconds(
                parent->options_.resource_sample_interval_ms));
      }
    }
    // Progress totals are known only once the layout is (discovery scans
    // report byte counts without a percentage). Skipped chunks are excluded
    // so the fraction reaches 1.0.
    if (meta.layout_known) {
      uint64_t total_bytes = 0;
      uint64_t total_chunks = 0;
      for (const ChunkMetadata& cm : meta.chunks) {
        if (skip_filter.has_value() &&
            cm.CanSkipForRange(skip_filter->column, skip_filter->lo,
                               skip_filter->hi)) {
          continue;
        }
        total_bytes += cm.raw_size;
        ++total_chunks;
      }
      progress.set_totals(total_bytes, total_chunks);
    }
    if (parent->options_.progress_callback) {
      reporter = std::make_unique<obs::ProgressReporter>(
          &progress, parent->options_.progress_callback,
          std::max(1, parent->options_.progress_interval_ms));
    }
  }

  void Start() {
    profiler.Begin();  // re-anchor: setup (catalog reads) is not query time
    parent->RegisterObservers(&profiler, &progress, required_columns);
    read_thread = std::thread([this] { ReadLoop(); });
    tokenize_thread = std::thread([this] { TokenizeLoop(); });
    parse_thread = std::thread([this] { ParseLoop(); });
    if (sampler != nullptr) sampler->Start();
    if (reporter != nullptr) reporter->Start();
  }

  // Point-in-time utilization of the live pipeline (§3.3).
  ResourceSnapshot SnapshotResources() const {
    ResourceSnapshot snapshot;
    snapshot.text_buffer_size = text_q.size();
    snapshot.text_buffer_capacity = text_q.capacity();
    snapshot.position_buffer_size = pos_q.size();
    snapshot.position_buffer_capacity = pos_q.capacity();
    snapshot.output_buffer_size = out_q.size();
    snapshot.output_buffer_capacity = out_q.capacity();
    snapshot.busy_workers = pool.busy_workers();
    snapshot.num_workers = pool.num_workers();
    snapshot.cache_size = parent->cache_.size();
    snapshot.cache_capacity = parent->cache_.capacity();
    snapshot.UpdateAdvice();
    return snapshot;
  }

  // Sampler probe: one §3.3 resource-advice time-series entry, with the
  // advice occurrence mirrored into the registry counters.
  obs::ResourceSample ProbeResources() const {
    const ResourceSnapshot snap = SnapshotResources();
    obs::ResourceSample sample;
    sample.ts_nanos = RealClock::Instance()->NowNanos();
    // Piggyback the time-series rings on the probe cadence: while a query
    // runs, this thread is the sampler; between queries, scrapes are.
    if (parent->options_.telemetry != nullptr) {
      parent->options_.telemetry->timeseries().MaybeSample(sample.ts_nanos);
    }
    sample.advice = std::string(AdviceName(snap.advice));
    sample.text_buffer_size = snap.text_buffer_size;
    sample.text_buffer_capacity = snap.text_buffer_capacity;
    sample.position_buffer_size = snap.position_buffer_size;
    sample.position_buffer_capacity = snap.position_buffer_capacity;
    sample.output_buffer_size = snap.output_buffer_size;
    sample.output_buffer_capacity = snap.output_buffer_capacity;
    sample.busy_workers = snap.busy_workers;
    sample.num_workers = snap.num_workers;
    sample.cache_size = snap.cache_size;
    sample.cache_capacity = snap.cache_capacity;
    if (parent->arbiter_ != nullptr) {
      sample.disk_reader_busy_nanos = parent->arbiter_->reader_busy_nanos();
      sample.disk_writer_busy_nanos = parent->arbiter_->writer_busy_nanos();
    }
    obs::Counter* advice_counter =
        parent->advice_counters_[static_cast<size_t>(snap.advice)];
    if (advice_counter != nullptr) advice_counter->Add(1);
    return sample;
  }

  void ReportError(const Status& status) {
    obs::FlightRecord(obs::FlightEvent::kError,
                      static_cast<uint64_t>(status.code()), 0);
    {
      MutexLock lock(status_mu);
      if (first_error.ok()) first_error = status;
    }
    // Unblock the whole pipeline; Pop drains what is already buffered.
    text_q.Close();
    pos_q.Close();
    out_q.Close();
  }

  Status GetStatus() const {
    MutexLock lock(status_mu);
    return first_error;
  }

  // Pushes a raw text chunk, signalling the speculative trigger when READ
  // blocks on a full buffer (§4). Returns false if the pipeline is aborting.
  bool PushText(TextChunk chunk) {
    if (text_q.TryPush(std::move(chunk))) return true;
    parent->profile_.CountReadBlocked();
    if (obs::ChunkTracer* tracer = parent->tracer()) {
      tracer->RecordInstant(obs::TraceStage::kReadBlocked, chunk.chunk_index);
    }
    parent->MaybeTriggerSpeculativeWrite();
    return text_q.Push(std::move(chunk));
  }

  void ReadLoop() {
    // Active for the whole loop: READ blocked on the arbiter or a full text
    // buffer is still "in" the stage, and a wedge there is exactly what the
    // watchdog must see as active-with-frozen-beats.
    obs::StageHeartbeats::Scope heartbeat(parent->heartbeats_,
                                          obs::HeartbeatStage::kRead);
    if (!meta.layout_known) {
      DiscoveryScan();
    } else {
      KnownLayoutScan();
    }
    text_q.Close();
  }

  // Progress pulse for the stage watchdog; no-op when telemetry is unset.
  void BeatStage(obs::HeartbeatStage stage) const {
    if (parent->heartbeats_ != nullptr) parent->heartbeats_->Beat(stage);
  }

  // Text dialect for record discovery and TOKENIZE, from the options.
  RecordDialect Dialect() const {
    RecordDialect dialect;
    dialect.quoted = parent->options_.quoted_fields &&
                     parent->options_.raw_format == RawFormat::kDelimitedText;
    return dialect;
  }

  // Worker pool for the speculative parallel range scans; null keeps the
  // frozen sequential reference path.
  ThreadPool* ScanPool() {
    return parent->options_.parallel_tokenize && pool.num_workers() > 0
               ? &pool
               : nullptr;
  }

  // Folds newly accrued speculation outcomes into the profile counters
  // (live — per chunk, not per scan).
  void AddSpeculation(const SpeculationStats& cur, SpeculationStats* prev) {
    parent->profile_.AddTokenizeRanges(cur.ranges - prev->ranges);
    parent->profile_.AddTokenizeMisspeculations(cur.misspeculations -
                                                prev->misspeculations);
    parent->profile_.AddTokenizeRepairBytes(cur.repair_bytes -
                                            prev->repair_bytes);
    *prev = cur;
  }

  // First access to the file: sequential scan, chunk layout recorded into
  // the catalog as chunks are produced.
  void DiscoveryScan() {
    auto chunker = SequentialChunker::Open(
        meta.raw_path, parent->options_.chunk_rows, parent->raw_limiter_,
        &parent->raw_io_stats_, parent->buffer_pool_.get(), Dialect(),
        ScanPool());
    if (!chunker.ok()) {
      ReportError(chunker.status());
      return;
    }
    SpeculationStats spec_seen;
    while (true) {
      std::optional<TextChunk> chunk;
      {
        ScopedDiskAccess disk(parent->arbiter_, DiskUser::kReader);
        obs::SpanProfiler::Scope pspan(&profiler, obs::QueryStage::kRead);
        obs::SpanRecorder span(parent->tracer(),
                               parent->profile_.read_latency,
                               obs::TraceStage::kRead, obs::ChunkSource::kRaw);
        ScopedTimer timer(&parent->profile_.read_time);
        auto next = (*chunker)->Next();
        if (!next.ok()) {
          ReportError(next.status());
          return;
        }
        chunk = std::move(*next);
        if (chunk.has_value()) {
          span.set_chunk_index(chunk->chunk_index);
        } else {
          span.Cancel();  // EOF probe, not a chunk read
        }
      }
      AddSpeculation((*chunker)->speculation(), &spec_seen);
      BeatStage(obs::HeartbeatStage::kRead);
      if (!chunk.has_value()) break;
      ChunkMetadata cm;
      cm.chunk_index = chunk->chunk_index;
      cm.raw_offset = chunk->file_offset;
      cm.raw_size = chunk->data.size();
      cm.num_rows = chunk->num_rows();
      obs::FlightRecord(obs::FlightEvent::kRead, chunk->chunk_index,
                        chunk->data.size());
      Status s = parent->catalog_->AppendChunk(parent->table_, cm);
      if (!s.ok()) {
        ReportError(s);
        return;
      }
      parent->profile_.CountFromRaw();
      if (!PushText(std::move(*chunk))) return;
    }
    Status s = parent->catalog_->MarkLayoutComplete(parent->table_);
    if (!s.ok()) ReportError(s);
  }

  // Later accesses: deliver cached chunks first, then database-resident
  // chunks, then re-read the remaining raw chunks (§3.2.1).
  void KnownLayoutScan() {
    std::vector<std::pair<uint64_t, BinaryChunkPtr>> cached;
    std::vector<const ChunkMetadata*> from_db;
    std::vector<const ChunkMetadata*> from_raw;
    for (const ChunkMetadata& cm : meta.chunks) {
      if (skip_filter.has_value() &&
          cm.CanSkipForRange(skip_filter->column, skip_filter->lo,
                             skip_filter->hi)) {
        parent->profile_.CountSkipped();  // min/max proved no match (§3.3)
        continue;
      }
      BinaryChunkPtr hit = parent->cache_.Lookup(cm.chunk_index);
      if (hit != nullptr && ChunkHasColumns(*hit, required_columns)) {
        cached.emplace_back(cm.chunk_index, std::move(hit));
      } else if (cm.HasColumnsLoaded(required_columns)) {
        from_db.push_back(&cm);
      } else {
        from_raw.push_back(&cm);
      }
    }

    for (auto& [index, chunk] : cached) {
      obs::SpanProfiler::Scope pspan(&profiler, obs::QueryStage::kCacheHit);
      parent->profile_.CountFromCache();
      // Invisible loading charges its per-query quota against any unloaded
      // chunk that passes through, cached or freshly converted.
      if (parent->options_.policy == LoadPolicy::kInvisibleLoading) {
        MaybeInvisibleWrite(index, chunk);
      }
      if (index < meta.chunks.size()) {
        progress.AddBytes(meta.chunks[index].raw_size);
      }
      progress.CountChunk();
      BeatStage(obs::HeartbeatStage::kRead);
      if (!out_q.Push(std::move(chunk))) return;
    }

    for (const ChunkMetadata* cm : from_db) {
      BinaryChunkPtr ptr;
      {
        ScopedDiskAccess disk(parent->arbiter_, DiskUser::kReader);
        obs::SpanProfiler::Scope pspan(&profiler, obs::QueryStage::kRead);
        obs::SpanRecorder span(parent->tracer(),
                               parent->profile_.read_latency,
                               obs::TraceStage::kRead, obs::ChunkSource::kDb,
                               cm->chunk_index);
        ScopedTimer timer(&parent->profile_.read_time);
        auto chunk =
            parent->storage_->ReadChunkColumns(*cm, required_columns);
        if (!chunk.ok()) {
          ReportError(chunk.status());
          return;
        }
        ptr = std::make_shared<const BinaryChunk>(std::move(*chunk));
      }
      obs::FlightRecord(obs::FlightEvent::kRead, cm->chunk_index,
                        cm->raw_size);
      parent->profile_.CountFromDb();
      progress.AddBytes(cm->raw_size);
      progress.CountChunk();
      BeatStage(obs::HeartbeatStage::kRead);
      // Database chunks are cached too (pre-fetching works for both sources,
      // §3.1) and arrive already loaded.
      HandleEvictions(
          parent->cache_.Insert(cm->chunk_index, ptr, /*loaded=*/true));
      if (!out_q.Push(std::move(ptr))) return;
    }

    if (from_raw.empty()) return;
    auto file = RandomAccessFile::Open(meta.raw_path, parent->raw_limiter_,
                                       &parent->raw_io_stats_);
    if (!file.ok()) {
      ReportError(file.status());
      return;
    }
    for (const ChunkMetadata* cm : from_raw) {
      TextChunk chunk;
      {
        ScopedDiskAccess disk(parent->arbiter_, DiskUser::kReader);
        obs::SpanProfiler::Scope pspan(&profiler, obs::QueryStage::kRead);
        obs::SpanRecorder span(parent->tracer(),
                               parent->profile_.read_latency,
                               obs::TraceStage::kRead, obs::ChunkSource::kRaw,
                               cm->chunk_index);
        ScopedTimer timer(&parent->profile_.read_time);
        SpeculationStats spec;
        auto read = ReadChunkAt(**file, *cm, parent->buffer_pool_.get(),
                                Dialect(), ScanPool(), &spec);
        parent->profile_.AddTokenizeRanges(spec.ranges);
        parent->profile_.AddTokenizeMisspeculations(spec.misspeculations);
        parent->profile_.AddTokenizeRepairBytes(spec.repair_bytes);
        if (!read.ok()) {
          ReportError(read.status());
          return;
        }
        chunk = std::move(*read);
      }
      obs::FlightRecord(obs::FlightEvent::kRead, cm->chunk_index,
                        cm->raw_size);
      parent->profile_.CountFromRaw();
      BeatStage(obs::HeartbeatStage::kRead);
      if (!PushText(std::move(chunk))) return;
    }
  }

  // Speculative parallel TOKENIZE for one chunk: runs inline on the
  // TOKENIZE consumer thread — the byte ranges fan out to the worker pool
  // and the caller participates in claiming them, so a saturated pool
  // degrades to the caller tokenizing everything rather than deadlocking
  // behind its own queue. Busy time reaches the span profiler as one span
  // per range from whichever thread ran it (no outer kTokenize scope, or
  // the ranges would be double-counted).
  void TokenizeParallel(const std::shared_ptr<TextChunk>& text,
                        const TokenizeOptions& topts,
                        const PosmapDialect& dialect, bool use_map_cache) {
    obs::StageHeartbeats::Scope heartbeat(parent->heartbeats_,
                                          obs::HeartbeatStage::kTokenize);
    SpeculationStats spec;
    auto map = [&]() -> Result<PositionalMap> {
      obs::SpanRecorder span(parent->tracer(),
                             parent->profile_.tokenize_latency,
                             obs::TraceStage::kTokenize,
                             obs::ChunkSource::kRaw, text->chunk_index);
      ScopedTimer timer(&parent->profile_.tokenize_time);
      ParallelTokenizeOptions ptopts;
      ptopts.pool = &pool;
      ptopts.range_span = [this](size_t, int64_t start, int64_t dur) {
        profiler.RecordSpan(obs::QueryStage::kTokenize,
                            obs::CurrentThreadId(), start, dur);
      };
      return ParallelTokenizeChunk(*text, topts, ptopts, &spec);
    }();
    parent->profile_.AddTokenizeRanges(spec.ranges);
    parent->profile_.AddTokenizeMisspeculations(spec.misspeculations);
    parent->profile_.AddTokenizeRepairBytes(spec.repair_bytes);
    parent->profile_.AddBytesTokenized(text->data.size());
    if (map.ok()) {
      obs::FlightRecord(obs::FlightEvent::kTokenize, text->chunk_index,
                        map->num_rows());
      auto shared = std::make_shared<PositionalMap>(std::move(*map));
      if (use_map_cache) {
        parent->positional_maps_.Insert(text->chunk_index, shared, dialect);
      }
      pos_q.Push(Tokenized{text, std::move(shared)});
    } else {
      ReportError(map.status());
    }
  }

  void TokenizeLoop() {
    TokenizeOptions topts;
    topts.delimiter = meta.schema.delimiter();
    topts.schema_fields = meta.schema.num_columns();
    // Selective tokenizing: stop the scan after the last needed attribute.
    // (JSON members are unordered, so its tokenizer always maps the full
    // schema and selective tokenizing does not apply.)
    const bool json = parent->options_.raw_format == RawFormat::kJsonLines;
    size_t max_needed = 0;
    for (size_t c : required_columns) max_needed = std::max(max_needed, c + 1);
    topts.max_fields = json ? 0 : max_needed;
    topts.quoted = Dialect().quoted;

    const bool use_map_cache = parent->options_.cache_positional_maps;
    // Must match TokenizeDialectFor: the dialect tag under which maps are
    // cached, persisted, and validated.
    const PosmapDialect dialect{topts.delimiter, topts.quoted, topts.quote};
    while (auto item = text_q.Pop()) {
      // The chunk is shared by the TOKENIZE and PARSE tasks; wrapping it
      // through the pool returns its text buffer for reuse only when the
      // last holder lets go.
      auto text =
          ChunkBufferPool::WrapText(std::move(*item), parent->buffer_pool_);
      // Positional map cache (§2): a cached map that already covers the
      // needed fields skips TOKENIZE outright; a partial one is extended
      // from its last mapped attribute. A map cached under a different
      // dialect is dropped by the cache and counts as a miss.
      std::shared_ptr<const PositionalMap> cached;
      if (use_map_cache) {
        PosmapOrigin origin = PosmapOrigin::kBuilt;
        cached = parent->positional_maps_.Lookup(text->chunk_index, dialect,
                                                 &origin);
        if (cached != nullptr) {
          posmap_hits.fetch_add(1, std::memory_order_relaxed);
          if (origin == PosmapOrigin::kDisk) {
            posmap_disk_hits.fetch_add(1, std::memory_order_relaxed);
            parent->profile_.CountPosmapDiskChunk();
          }
        } else {
          posmap_misses.fetch_add(1, std::memory_order_relaxed);
        }
        if (cached != nullptr &&
            cached->fields_per_row() >= topts.EffectiveFields()) {
          pos_q.Push(Tokenized{text, cached});
          continue;
        }
      }
      // Speculative parallel tier (on by default). Chunks with a cached
      // partial map stay on the sequential extend path — the cached offsets
      // already skip most of the scan. Chunks too small to split across two
      // ranges (ParallelTokenizeOptions::min_range_bytes) also stay on the
      // submit path: tokenizing them inline would stall this consumer for
      // no fan-out, while a pool task overlaps with the next Pop.
      constexpr size_t kMinParallelBytes = 2 * (size_t{1} << 16);
      if (!json && cached == nullptr && ScanPool() != nullptr &&
          text->data.size() >= kMinParallelBytes) {
        TokenizeParallel(text, topts, dialect, use_map_cache);
        continue;
      }
      {
        MutexLock lock(inflight_mu);
        ++tokenize_inflight;
      }
      pool.Submit([this, text, topts, dialect, cached, use_map_cache, json] {
        obs::StageHeartbeats::Scope heartbeat(parent->heartbeats_,
                                              obs::HeartbeatStage::kTokenize);
        auto map = [&]() -> Result<PositionalMap> {
          obs::SpanProfiler::Scope pspan(&profiler,
                                         obs::QueryStage::kTokenize);
          obs::SpanRecorder span(parent->tracer(),
                                 parent->profile_.tokenize_latency,
                                 obs::TraceStage::kTokenize,
                                 obs::ChunkSource::kRaw, text->chunk_index);
          ScopedTimer timer(&parent->profile_.tokenize_time);
          if (json) return TokenizeJsonChunk(*text, meta.schema);
          // Delimited text: extend a cached partial map when available.
          return cached != nullptr && !cached->explicit_ends()
                     ? ExtendTokenizeMap(*text, *cached, topts)
                     : TokenizeChunk(*text, topts);
        }();
        // The extend path scans only the unmapped suffix, but the whole
        // chunk was subjected to TOKENIZE-stage work; count it all — the
        // fully-mapped skip path above is the only zero-byte outcome.
        parent->profile_.AddBytesTokenized(text->data.size());
        if (map.ok()) {
          obs::FlightRecord(obs::FlightEvent::kTokenize, text->chunk_index,
                            map->num_rows());
          auto shared = std::make_shared<PositionalMap>(std::move(*map));
          if (use_map_cache) {
            parent->positional_maps_.Insert(text->chunk_index, shared,
                                            dialect);
          }
          pos_q.Push(Tokenized{text, std::move(shared)});
        } else {
          ReportError(map.status());
        }
        MutexLock lock(inflight_mu);
        --tokenize_inflight;
        inflight_cv.NotifyAll();
      });
    }
    {
      MutexLock lock(inflight_mu);
      while (tokenize_inflight != 0) inflight_cv.Wait(lock);
    }
    pos_q.Close();
  }

  // Push-down selection applies only when nothing downstream keeps chunk
  // contents (external tables): a filtered chunk must never be cached or
  // loaded (§2).
  bool PushdownActive() const {
    return parent->options_.pushdown_selection &&
           parent->options_.policy == LoadPolicy::kExternalTables &&
           skip_filter.has_value();
  }

  void ParseLoop() {
    ParseOptions popts;
    popts.projected_columns = required_columns;
    popts.recycler = parent->buffer_pool_.get();
    popts.unescape_quotes = Dialect().quoted;
    if (PushdownActive()) {
      popts.pushdown = PushdownFilter{skip_filter->column, skip_filter->lo,
                                      skip_filter->hi};
    }

    while (auto item = pos_q.Pop()) {
      {
        MutexLock lock(inflight_mu);
        ++parse_inflight;
      }
      Tokenized tokenized = std::move(*item);
      pool.Submit([this, tokenized, popts] {
        obs::StageHeartbeats::Scope heartbeat(parent->heartbeats_,
                                              obs::HeartbeatStage::kParse);
        auto parsed = [&] {
          obs::SpanProfiler::Scope pspan(&profiler, obs::QueryStage::kParse);
          obs::SpanRecorder span(parent->tracer(),
                                 parent->profile_.parse_latency,
                                 obs::TraceStage::kParse,
                                 obs::ChunkSource::kRaw,
                                 tokenized.text->chunk_index);
          ScopedTimer timer(&parent->profile_.parse_time);
          return ParseChunk(*tokenized.text, *tokenized.map, meta.schema,
                            popts);
        }();
        if (parsed.ok()) {
          obs::FlightRecord(obs::FlightEvent::kParse,
                            tokenized.text->chunk_index,
                            parsed->num_rows());
          progress.AddBytes(tokenized.text->data.size());
          progress.CountChunk();
          parent->profile_.AddRowsDelivered(parsed->num_rows());
          parent->profile_.AddBytesConverted(tokenized.text->data.size());
          DeliverConverted(ChunkBufferPool::WrapChunk(std::move(*parsed),
                                                      parent->buffer_pool_));
        } else {
          ReportError(parsed.status());
        }
        MutexLock lock(inflight_mu);
        --parse_inflight;
        inflight_cv.NotifyAll();
      });
    }
    {
      MutexLock lock(inflight_mu);
      while (parse_inflight != 0) inflight_cv.Wait(lock);
    }
    // End of scan: every raw chunk is converted and resident (or already
    // delivered). The safeguard flushes the unloaded cache tail (§4).
    if (parent->options_.policy == LoadPolicy::kSpeculativeLoading &&
        parent->options_.safeguard_enabled && GetStatus().ok()) {
      parent->SafeguardFlush();
    }
    out_q.Close();
  }

  // Caches a freshly converted chunk, applies the WRITE policy, and hands
  // the chunk to the execution engine.
  void DeliverConverted(BinaryChunkPtr chunk) {
    const uint64_t index = chunk->chunk_index();
    obs::FlightRecord(obs::FlightEvent::kDeliver, index, chunk->num_rows());
    // Crash point for the recovery matrix: a chunk has been extracted
    // (tokenized + parsed) but nothing about it has been persisted yet.
    FaultKillPoint("scanraw.extract.converted");
    if (PushdownActive()) {
      // Filtered chunks are incomplete: deliver to the engine only.
      out_q.Push(std::move(chunk));
      return;
    }
    if (parent->options_.collect_sketches) {
      parent->MaybeUpdateSketches(*chunk);
    }
    HandleEvictions(parent->cache_.Insert(index, chunk, /*loaded=*/false));
    switch (parent->options_.policy) {
      case LoadPolicy::kFullLoad:
        parent->EnqueueWrite(index, chunk);
        break;
      case LoadPolicy::kInvisibleLoading:
        MaybeInvisibleWrite(index, chunk);
        break;
      case LoadPolicy::kExternalTables:
      case LoadPolicy::kSpeculativeLoading:
      case LoadPolicy::kBufferedLoading:
        break;  // nothing on the conversion path
    }
    out_q.Push(std::move(chunk));
  }

  // Invisible loading: spend one unit of the per-query quota on this chunk
  // if any remains and the chunk is not already loaded or pending.
  void MaybeInvisibleWrite(uint64_t index, const BinaryChunkPtr& chunk) {
    if (invisible_budget.fetch_sub(1, std::memory_order_acq_rel) > 0) {
      if (!parent->EnqueueWrite(index, chunk)) {
        invisible_budget.fetch_add(1, std::memory_order_acq_rel);
      }
    } else {
      invisible_budget.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  // Buffered loading: a chunk expelled from a full cache is written to the
  // database ([10]'s flush-on-full behavior).
  void HandleEvictions(std::vector<EvictedChunk> evicted) {
    for (const EvictedChunk& ev : evicted) {
      obs::FlightRecord(obs::FlightEvent::kCacheEvict, ev.chunk_index,
                        ev.was_loaded ? 1 : 0);
    }
    if (parent->options_.policy != LoadPolicy::kBufferedLoading) return;
    for (EvictedChunk& ev : evicted) {
      if (!ev.was_loaded) {
        parent->EnqueueWrite(ev.chunk_index, std::move(ev.chunk));
      }
    }
  }

  void JoinAll() {
    if (joined) return;
    joined = true;
    if (read_thread.joinable()) read_thread.join();
    if (tokenize_thread.joinable()) tokenize_thread.join();
    if (parse_thread.joinable()) parse_thread.join();
    pool.WaitIdle();
    // A cleanly drained pipeline pins the tracker to 100% so the reporter's
    // final callback always reports completion — even when totals were
    // estimates (discovery scans) or rounding left the fraction short.
    // Abandoned or failed runs skip the pin: their final callback reports
    // honest partial progress.
    if (!abandoned && GetStatus().ok()) progress.MarkComplete();
    // Stop after the pipeline drains so the final sample reflects the
    // settled end state.
    if (sampler != nullptr) sampler->Stop();
    if (reporter != nullptr) reporter->Stop();
  }

  void Abandon() {
    abandoned = true;
    // Unblock producers so JoinAll terminates even with a full pipeline.
    text_q.Close();
    pos_q.Close();
    out_q.Close();
    JoinAll();
    // Only now: the profiler/progress objects are about to be destroyed, so
    // background writes that continue past this run are no longer ours.
    // (Unregistration waits for destruction rather than Finish so the WRITE
    // drain of the synchronous-loading policies is still attributed.)
    parent->UnregisterObservers(&profiler, &progress);
  }

  ScanRaw* parent;
  std::vector<size_t> required_columns;
  std::optional<RangePredicate> skip_filter;
  TableMetadata meta;

  BoundedQueue<TextChunk> text_q;
  BoundedQueue<Tokenized> pos_q;
  BoundedQueue<BinaryChunkPtr> out_q;
  ThreadPool pool;

  std::thread read_thread;
  std::thread tokenize_thread;
  std::thread parse_thread;
  std::unique_ptr<obs::ResourceSampler> sampler;
  // Query-scoped observability: every stage records spans here, and the
  // progress tracker feeds the optional reporter thread.
  obs::SpanProfiler profiler;
  obs::ProgressTracker progress;
  std::unique_ptr<obs::ProgressReporter> reporter;
  bool joined = false;
  bool abandoned = false;

  Mutex inflight_mu{LockRank::kScanInflight, "ScanRaw.inflight_mu"};
  CondVar inflight_cv;
  size_t tokenize_inflight GUARDED_BY(inflight_mu) = 0;
  size_t parse_inflight GUARDED_BY(inflight_mu) = 0;

  // Query-scoped positional-map accounting, counted at the TOKENIZE lookup
  // sites. EXPLAIN reads these instead of deltas over the cache's lifetime
  // counters, so concurrent queries on the same operator cannot pollute
  // each other's numbers.
  std::atomic<uint64_t> posmap_hits{0};
  std::atomic<uint64_t> posmap_misses{0};
  std::atomic<uint64_t> posmap_disk_hits{0};

  std::atomic<int64_t> invisible_budget;

  mutable Mutex status_mu{LockRank::kScanStatus, "ScanRaw.status_mu"};
  Status first_error GUARDED_BY(status_mu);
};

ScanRaw::QueryRun::QueryRun(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

ScanRaw::QueryRun::~QueryRun() {
  if (impl_ != nullptr) impl_->Abandon();
}

Result<std::optional<BinaryChunkPtr>> ScanRaw::QueryRun::Next() {
  auto item = impl_->out_q.Pop();
  if (item.has_value()) {
    return std::optional<BinaryChunkPtr>(std::move(*item));
  }
  Status s = impl_->GetStatus();
  if (!s.ok()) return s;
  return std::optional<BinaryChunkPtr>();
}

void ScanRaw::QueryRun::Finish() { impl_->JoinAll(); }

Status ScanRaw::QueryRun::status() const { return impl_->GetStatus(); }

ResourceSnapshot ScanRaw::QueryRun::Resources() const {
  return impl_->SnapshotResources();
}

// -------------------------------------------------------------- ScanRaw ---

ScanRaw::ScanRaw(std::string table, Catalog* catalog, StorageManager* storage,
                 DiskArbiter* arbiter, RateLimiter* raw_limiter,
                 ScanRawOptions options)
    : table_(std::move(table)),
      catalog_(catalog),
      storage_(storage),
      arbiter_(arbiter),
      raw_limiter_(raw_limiter),
      options_(options),
      cache_(options.cache_capacity_chunks, options.bias_evict_loaded),
      positional_maps_(options.cache_positional_maps
                           ? options.positional_map_cache_chunks
                           : 0,
                       options.cache_positional_maps
                           ? options.positional_map_cache_bytes
                           : 0),
      write_queue_(1 << 20) {
  if (options_.reuse_buffers) {
    buffer_pool_ = std::make_shared<ChunkBufferPool>();
  }
  if (options_.telemetry != nullptr) {
    // Bind every registry mirror before the WRITE thread (or any query
    // pipeline) starts, so the hot paths read the pointers race-free.
    obs::MetricsRegistry& registry = options_.telemetry->metrics();
    profile_.Bind(&registry);
    positional_maps_.BindMetrics(
        registry.GetCounter("scanraw.posmap.hits"),
        registry.GetCounter("scanraw.posmap.misses"),
        registry.GetCounter("scanraw.posmap.disk_hits"),
        registry.GetCounter("scanraw.posmap.dialect_drops"));
    options_.telemetry->tracer().SetLabel("scanraw:" + table_);
    if (buffer_pool_ != nullptr) {
      buffer_pool_->BindMetrics(
          registry.GetCounter("scanraw.pool.buffer_hits"),
          registry.GetCounter("scanraw.pool.buffer_misses"),
          registry.GetGauge("scanraw.pool.idle_buffers"));
    }
    cache_.BindMetrics(registry.GetCounter("scanraw.cache.hits"),
                       registry.GetCounter("scanraw.cache.misses"),
                       registry.GetCounter("scanraw.cache.evictions"),
                       registry.GetCounter("scanraw.cache.biased_evictions"));
    advice_counters_[static_cast<size_t>(
        ResourceSnapshot::Advice::kNeedMoreCpu)] =
        registry.GetCounter("scanraw.advice.need_more_cpu");
    advice_counters_[static_cast<size_t>(ResourceSnapshot::Advice::kIoBound)] =
        registry.GetCounter("scanraw.advice.io_bound");
    advice_counters_[static_cast<size_t>(
        ResourceSnapshot::Advice::kEngineBound)] =
        registry.GetCounter("scanraw.advice.engine_bound");
    advice_counters_[static_cast<size_t>(ResourceSnapshot::Advice::kBalanced)] =
        registry.GetCounter("scanraw.advice.balanced");
    heartbeats_ = &options_.telemetry->heartbeats();
    if (arbiter_ != nullptr) arbiter_->BindHeartbeats(heartbeats_);
    options_.telemetry->timeseries().TrackPipelineDefaults(&registry);
    if (options_.timeseries_interval_ms != 0) {
      options_.telemetry->timeseries().set_interval_nanos(
          options_.timeseries_interval_ms > 0
              ? static_cast<int64_t>(options_.timeseries_interval_ms) *
                    1'000'000
              : 0);
    }
  }
  write_thread_ = std::thread([this] { WriteLoop(); });
}

ScanRaw::~ScanRaw() {
  write_queue_.Close();
  if (write_thread_.joinable()) write_thread_.join();
}

Result<std::unique_ptr<ScanRaw::QueryRun>> ScanRaw::StartQuery(
    std::vector<size_t> required_columns,
    std::optional<RangePredicate> skip_filter) {
  if (options_.delay_admission_for_writes) {
    // §4's alternative admission rule: do not start until the previous
    // query's background flush has drained.
    WaitForWrites();
  }
  auto meta = catalog_->GetTable(table_);
  if (!meta.ok()) return meta.status();
  if (required_columns.empty()) {
    required_columns.resize(meta->schema.num_columns());
    for (size_t i = 0; i < required_columns.size(); ++i) {
      required_columns[i] = i;
    }
  }
  std::sort(required_columns.begin(), required_columns.end());
  required_columns.erase(
      std::unique(required_columns.begin(), required_columns.end()),
      required_columns.end());
  for (size_t c : required_columns) {
    if (c >= meta->schema.num_columns()) {
      return Status::InvalidArgument(
          StringPrintf("column %zu out of range for table %s", c,
                       table_.c_str()));
    }
  }
  auto impl = std::make_unique<QueryRun::Impl>(
      this, std::move(required_columns), std::move(skip_filter),
      std::move(*meta));
  impl->Start();
  return std::unique_ptr<QueryRun>(new QueryRun(std::move(impl)));
}

Result<QueryResult> ScanRaw::ExecuteQuery(const QuerySpec& spec) {
  return ExecuteQuery(spec, nullptr);
}

Result<QueryResult> ScanRaw::ExecuteQuery(const QuerySpec& spec,
                                          obs::ExplainReport* explain) {
  // Baselines for the per-query deltas the report shows. The counters are
  // shared across queries on this operator, so EXPLAIN assumes one query at
  // a time (concurrent queries fold into each other's deltas).
  const uint64_t base_cache = profile_.chunks_from_cache.load();
  const uint64_t base_db = profile_.chunks_from_db.load();
  const uint64_t base_raw = profile_.chunks_from_raw.load();
  const uint64_t base_written = profile_.chunks_written.load();
  const uint64_t base_skipped = profile_.chunks_skipped.load();
  const uint64_t base_triggers = profile_.speculative_triggers.load();
  const uint64_t base_blocked = profile_.read_blocked_events.load();
  const uint64_t base_tok_ranges = profile_.tokenize_ranges.load();
  const uint64_t base_tok_misspec = profile_.tokenize_misspeculations.load();
  const uint64_t base_tok_repair = profile_.tokenize_repair_bytes.load();
  const uint64_t base_cache_hits = cache_.hits();
  const uint64_t base_cache_misses = cache_.misses();
  const uint64_t base_tok_bytes = profile_.bytes_tokenized.load();
  const uint64_t base_bytes = storage_ != nullptr ? storage_->bytes_written()
                                                  : 0;
  const uint64_t base_useful = profile_.useful_bytes_written.load();
  const uint64_t base_bytes_read = raw_io_stats_.bytes_read.load();
  const int64_t base_disk_wait =
      arbiter_ != nullptr
          ? arbiter_->reader_wait_nanos() + arbiter_->writer_wait_nanos()
          : 0;
  const uint64_t base_throttle_wait =
      raw_limiter_ != nullptr ? raw_limiter_->total_wait_nanos() : 0;
  const double loaded_before = LoadedFraction();
  const int64_t query_start_nanos = RealClock::Instance()->NowNanos();

  // On a failed query the full report is unavailable (the profiler may not
  // have ended cleanly), so the log gets a minimal event: spec, policy, and
  // the error. Failed queries still advance the history's recency clock.
  auto log_failure = [&](const Status& failure) {
    if (options_.query_log == nullptr) return;
    obs::QueryLogEvent event;
    event.table = table_;
    event.policy = std::string(LoadPolicyName(options_.policy));
    event.status = failure.ToString();
    event.wall_seconds =
        static_cast<double>(RealClock::Instance()->NowNanos() -
                            query_start_nanos) *
        1e-9;
    event.columns = spec.RequiredColumns();
    if (spec.predicate.range.has_value()) {
      event.predicate_columns.push_back(spec.predicate.range->column);
    }
    if (spec.predicate.pattern.has_value()) {
      event.predicate_columns.push_back(spec.predicate.pattern->column);
    }
    event.advisor_used = options_.advisor != nullptr &&
                         options_.policy == LoadPolicy::kSpeculativeLoading;
    const Status append = options_.query_log->Append(std::move(event));
    if (!append.ok()) {
      LOG_WARN("scanraw: query log append failed: %s",
               append.ToString().c_str());
    }
    obs::FlightRecord(obs::FlightEvent::kQueryEnd, /*a=*/1, /*b=*/0);
  };

  obs::FlightRecord(obs::FlightEvent::kQueryBegin,
                    spec.RequiredColumns().size(),
                    static_cast<uint64_t>(options_.policy));

  std::optional<RangePredicate> skip_filter = spec.predicate.range;
  auto run = StartQuery(spec.RequiredColumns(), skip_filter);
  if (!run.ok()) {
    log_failure(run.status());
    return run.status();
  }
  obs::SpanProfiler& profiler = (*run)->impl_->profiler;
  auto result = RunQuery(spec, run->get(), &profiler);
  (*run)->Finish();
  Status s = (*run)->status();
  if (!s.ok()) {
    log_failure(s);
    return s;
  }
  if (!result.ok()) {
    log_failure(result.status());
    return result.status();
  }
  if (options_.policy == LoadPolicy::kFullLoad ||
      options_.policy == LoadPolicy::kInvisibleLoading) {
    // Synchronous-loading regimes: loading is part of the query.
    WaitForWrites();
    Status ws = write_status();
    if (!ws.ok()) {
      log_failure(ws);
      return ws;
    }
  }

  // The report is filled for an explicit EXPLAIN, and also locally when a
  // query log is attached: the logged event is the report's counters, so
  // logging pays the same (cheap) delta reads EXPLAIN does.
  obs::ExplainReport local_report;
  obs::ExplainReport* report =
      explain != nullptr
          ? explain
          : (options_.query_log != nullptr ? &local_report : nullptr);
  if (report != nullptr) {
    // Include the background-write drain (speculative writes, safeguard
    // flush) in the report's window: EXPLAIN ANALYZE answers "what did this
    // query load", and without the drain those writes would land between
    // the report snapshot and the next query's baseline, credited to
    // neither. The per-query observers stay registered until the run is
    // destroyed, so WRITE spans recorded here still attribute correctly.
    WaitForWrites();

    // The arbiter and limiter expose only cumulative wait totals, so the
    // blocked time enters the profile as one synthetic span per category
    // anchored at query start — correct busy/blocked accounting, excluded
    // from critical-path selection (wait stages always are).
    if (arbiter_ != nullptr) {
      const int64_t d = arbiter_->reader_wait_nanos() +
                        arbiter_->writer_wait_nanos() - base_disk_wait;
      if (d > 0) {
        profiler.RecordSpan(obs::QueryStage::kDiskWait, /*tid=*/0,
                            profiler.start_nanos(), d);
      }
    }
    if (raw_limiter_ != nullptr) {
      const int64_t d = static_cast<int64_t>(raw_limiter_->total_wait_nanos() -
                                             base_throttle_wait);
      if (d > 0) {
        profiler.RecordSpan(obs::QueryStage::kThrottleWait, /*tid=*/0,
                            profiler.start_nanos(), d);
      }
    }
    profiler.End();
    report->table = table_;
    report->policy = std::string(LoadPolicyName(options_.policy));
    report->workers = options_.num_workers;
    report->FillFromProfile(profiler.Aggregate());
    report->chunks_from_cache = profile_.chunks_from_cache.load() - base_cache;
    report->chunks_from_db = profile_.chunks_from_db.load() - base_db;
    report->chunks_from_raw = profile_.chunks_from_raw.load() - base_raw;
    report->chunks_skipped = profile_.chunks_skipped.load() - base_skipped;
    report->chunks_written = profile_.chunks_written.load() - base_written;
    report->speculative_triggers =
        profile_.speculative_triggers.load() - base_triggers;
    report->tokenize_ranges = profile_.tokenize_ranges.load() - base_tok_ranges;
    report->tokenize_misspeculations =
        profile_.tokenize_misspeculations.load() - base_tok_misspec;
    report->tokenize_repair_bytes =
        profile_.tokenize_repair_bytes.load() - base_tok_repair;
    report->read_blocked_events =
        profile_.read_blocked_events.load() - base_blocked;
    report->bytes_written =
        (storage_ != nullptr ? storage_->bytes_written() : 0) - base_bytes;
    report->useful_bytes_written =
        profile_.useful_bytes_written.load() - base_useful;
    report->cache_hits = cache_.hits() - base_cache_hits;
    report->cache_misses = cache_.misses() - base_cache_misses;
    // Positional-map numbers are query-scoped — counted at the TOKENIZE
    // lookup sites of this run, not as deltas over the cache's lifetime
    // counters — so concurrent queries cannot pollute them.
    report->posmap_hits = (*run)->impl_->posmap_hits.load();
    report->posmap_misses = (*run)->impl_->posmap_misses.load();
    report->posmap_disk_hits = (*run)->impl_->posmap_disk_hits.load();
    report->bytes_tokenized = profile_.bytes_tokenized.load() - base_tok_bytes;
    report->loaded_fraction_before = loaded_before;
    report->loaded_fraction_after = LoadedFraction();
    report->speculation_paid_off =
        report->chunks_written > 0 &&
        report->loaded_fraction_after > loaded_before;
    report->advisor_used = options_.advisor != nullptr &&
                           options_.policy == LoadPolicy::kSpeculativeLoading;
    if (report->advisor_used) {
      report->advisor_note = options_.advisor->Plan(table_).note;
    }

    if (options_.query_log != nullptr) {
      obs::QueryLogEvent event;
      event.table = report->table;
      event.policy = report->policy;
      event.wall_seconds = report->wall_seconds;
      event.columns = spec.RequiredColumns();
      if (spec.predicate.range.has_value()) {
        event.predicate_columns.push_back(spec.predicate.range->column);
      }
      if (spec.predicate.pattern.has_value()) {
        event.predicate_columns.push_back(spec.predicate.pattern->column);
      }
      event.rows_scanned = result->rows_scanned;
      event.rows_matched = result->rows_matched;
      for (const obs::ExplainStage& stage : report->stages) {
        event.stage_busy_seconds.emplace_back(stage.name, stage.busy_seconds);
      }
      event.chunks_from_cache = report->chunks_from_cache;
      event.chunks_from_db = report->chunks_from_db;
      event.chunks_from_raw = report->chunks_from_raw;
      event.chunks_skipped = report->chunks_skipped;
      event.chunks_written = report->chunks_written;
      event.speculative_triggers = report->speculative_triggers;
      event.bytes_read = raw_io_stats_.bytes_read.load() - base_bytes_read;
      event.bytes_written = report->bytes_written;
      event.useful_bytes_written = report->useful_bytes_written;
      event.cache_hit_rate =
          report->HitRate(report->cache_hits, report->cache_misses);
      event.posmap_hit_rate =
          report->HitRate(report->posmap_hits, report->posmap_misses);
      event.speculation_paid_off = report->speculation_paid_off;
      event.advisor_used = report->advisor_used;
      const Status append = options_.query_log->Append(std::move(event));
      if (!append.ok()) {
        // The log is advisory: a failed append never fails the query.
        LOG_WARN("scanraw: query log append failed: %s",
                 append.ToString().c_str());
      }
    }
  }
  // After-cold-scan persistence hook: a query that tokenized raw bytes
  // just built (or widened) positional maps; save them now so a crash or
  // restart before the next catalog save still finds a warm index. A scan
  // answered entirely from cached or persisted maps skips the save — the
  // sidecar on disk already covers it, and rewriting would put two fsyncs
  // on the warm-restart fast path. The sidecar is advisory — a failed
  // save never fails the query.
  if (options_.persist_positional_maps &&
      !options_.posmap_sidecar_path.empty() &&
      profile_.bytes_tokenized.load() - base_tok_bytes > 0) {
    const Status saved = SavePositionalMaps(options_.posmap_sidecar_path);
    if (!saved.ok()) {
      LOG_WARN("scanraw: posmap sidecar save failed: %s",
               saved.ToString().c_str());
    }
  }
  obs::FlightRecord(obs::FlightEvent::kQueryEnd, /*a=*/0,
                    result->rows_matched);
  return result;
}

Result<std::vector<QueryResult>> ScanRaw::ExecuteQueries(
    const std::vector<QuerySpec>& specs) {
  if (specs.empty()) return std::vector<QueryResult>();
  // One pass over the union of every query's columns. Chunk skipping is
  // only safe when a chunk is irrelevant to every query, so it is applied
  // only if all queries share the same range predicate.
  std::set<size_t> column_union;
  for (const QuerySpec& spec : specs) {
    for (size_t c : spec.RequiredColumns()) column_union.insert(c);
  }
  std::optional<RangePredicate> shared_filter = specs[0].predicate.range;
  for (const QuerySpec& spec : specs) {
    const auto& r = spec.predicate.range;
    const bool same =
        r.has_value() == shared_filter.has_value() &&
        (!r.has_value() || (r->column == shared_filter->column &&
                            r->lo == shared_filter->lo &&
                            r->hi == shared_filter->hi));
    if (!same) {
      shared_filter.reset();
      break;
    }
  }

  auto run = StartQuery(
      std::vector<size_t>(column_union.begin(), column_union.end()),
      shared_filter);
  if (!run.ok()) return run.status();
  std::vector<QueryExecutor> executors;
  executors.reserve(specs.size());
  for (const QuerySpec& spec : specs) executors.emplace_back(spec);
  while (true) {
    auto next = (*run)->Next();
    if (!next.ok()) return next.status();
    if (!next->has_value()) break;
    for (QueryExecutor& executor : executors) {
      SCANRAW_RETURN_IF_ERROR(executor.Consume(***next));
    }
  }
  (*run)->Finish();
  SCANRAW_RETURN_IF_ERROR((*run)->status());
  if (options_.policy == LoadPolicy::kFullLoad ||
      options_.policy == LoadPolicy::kInvisibleLoading) {
    WaitForWrites();
    SCANRAW_RETURN_IF_ERROR(write_status());
  }
  std::vector<QueryResult> results;
  results.reserve(executors.size());
  for (QueryExecutor& executor : executors) {
    results.push_back(executor.Finish());
  }
  return results;
}

PosmapDialect TokenizeDialectFor(const Schema& schema,
                                 const ScanRawOptions& options) {
  // Mirrors the TokenizeOptions built in TokenizeLoop: the schema's
  // delimiter, RecordDialect's quoting rule (quoting applies to delimited
  // text only), and the tokenizer's fixed quote character.
  PosmapDialect dialect;
  dialect.delimiter = schema.delimiter();
  dialect.quoted = options.quoted_fields &&
                   options.raw_format == RawFormat::kDelimitedText;
  dialect.quote = TokenizeOptions{}.quote;
  return dialect;
}

Status ScanRaw::SavePositionalMaps(const std::string& path) {
  if (!options_.persist_positional_maps || !options_.cache_positional_maps ||
      path.empty()) {
    return Status::OK();
  }
  auto meta = catalog_->GetTable(table_);
  if (!meta.ok()) return meta.status();
  const PosmapDialect dialect = TokenizeDialectFor(meta->schema, options_);
  auto snapshot = positional_maps_.Snapshot(dialect);
  // Nothing cached under the current dialect: leave any existing sidecar
  // alone rather than clobbering a warm index with an empty one (e.g. a
  // restart whose queries were all answered from the database).
  if (snapshot.empty()) return Status::OK();

  auto stat = StatFile(meta->raw_path);
  if (!stat.ok()) return stat.status();
  PosmapSidecarHeader header;
  header.table = table_;
  header.raw_size = stat->size;
  header.raw_mtime_nanos = stat->mtime_nanos;
  header.dialect = dialect;
  std::vector<PosmapSidecarEntry> entries;
  entries.reserve(snapshot.size());
  for (auto& [chunk_index, map] : snapshot) {
    entries.push_back(PosmapSidecarEntry{chunk_index, std::move(map)});
  }
  FaultKillPoint("scanraw.posmap.before_save");
  Status saved = AtomicWriteFile(path, EncodePosmapSidecar(header, entries));
  FaultKillPoint("scanraw.posmap.after_save");
  return saved;
}

size_t ScanRaw::PrepopulatePositionalMaps(
    const PosmapDialect& dialect,
    std::vector<std::pair<uint64_t, std::shared_ptr<const PositionalMap>>>
        entries) {
  if (!options_.cache_positional_maps) return 0;
  auto meta = catalog_->GetTable(table_);
  if (!meta.ok()) return 0;
  // Dialect gate: a sidecar written under different delimiter/quote rules
  // (e.g. --quoted-csv toggled between runs) is useless here — refuse it
  // wholesale and let the table re-tokenize.
  if (dialect != TokenizeDialectFor(meta->schema, options_)) return 0;
  size_t inserted = 0;
  for (auto& [chunk_index, map] : entries) {
    if (map == nullptr) continue;
    positional_maps_.Insert(chunk_index, std::move(map), dialect,
                            PosmapOrigin::kDisk);
    ++inserted;
  }
  return inserted;
}

bool ScanRaw::EnqueueWrite(uint64_t chunk_index, BinaryChunkPtr chunk) {
  {
    MutexLock lock(pending_mu_);
    if (pending_writes_.count(chunk_index)) return false;
    auto meta = catalog_->GetTable(table_);
    if (meta.ok() && chunk_index < meta->chunks.size()) {
      const ChunkMetadata& cm = meta->chunks[chunk_index];
      bool all_loaded = true;
      for (size_t c : chunk->ColumnIds()) {
        if (!cm.loaded_columns.count(c)) {
          all_loaded = false;
          break;
        }
      }
      if (all_loaded) {
        // Already in the database (possibly loaded by an earlier query);
        // repair the cache flag so the chunk is not offered again.
        cache_.MarkLoaded(chunk_index);
        return false;
      }
    }
    pending_writes_.insert(chunk_index);
  }
  {
    MutexLock lock(write_mu_);
    ++writes_outstanding_;
  }
  if (!write_queue_.Push(WriteRequest{chunk_index, std::move(chunk)})) {
    // Operator shutting down.
    {
      MutexLock lock(pending_mu_);
      pending_writes_.erase(chunk_index);
    }
    MutexLock lock(write_mu_);
    --writes_outstanding_;
    write_cv_.NotifyAll();
    return false;
  }
  return true;
}

void ScanRaw::MaybeTriggerSpeculativeWrite() {
  if (options_.policy != LoadPolicy::kSpeculativeLoading) return;
  // Back off after a failed background write: the disk is unhappy (full,
  // erroring); keep serving the query from the raw side and retry later.
  const int64_t backoff_until =
      write_backoff_until_nanos_.load(std::memory_order_relaxed);
  if (backoff_until != 0 &&
      RealClock::Instance()->NowNanos() < backoff_until) {
    profile_.CountWriteBackoff();
    return;
  }
  {
    // One chunk at a time (§4): do not stack writes while one is queued or
    // in flight.
    MutexLock lock(write_mu_);
    if (writes_outstanding_ > 0) return;
  }
  auto victim = cache_.OldestUnloaded();
  if (!victim.has_value()) return;
  const uint64_t victim_index = victim->first;
  if (EnqueueWrite(victim_index, std::move(victim->second))) {
    profile_.CountSpeculativeTrigger();
    obs::FlightRecord(obs::FlightEvent::kSpeculativeTrigger, victim_index, 0);
    if (obs::ChunkTracer* t = tracer()) {
      t->RecordInstant(obs::TraceStage::kSpeculativeTrigger, victim_index);
    }
  }
}

void ScanRaw::SafeguardFlush() {
  if (obs::ChunkTracer* t = tracer()) {
    t->RecordInstant(obs::TraceStage::kSafeguardFlush, /*chunk_index=*/0);
  }
  for (auto& [index, chunk] : cache_.UnloadedChunks()) {
    EnqueueWrite(index, std::move(chunk));
  }
}

void ScanRaw::WriteLoop() {
  while (auto req = write_queue_.Pop()) {
    // Active only while a request is being stored: the idle Pop wait is the
    // normal state for WRITE and must not look like a stall.
    obs::StageHeartbeats::Scope heartbeat(heartbeats_,
                                          obs::HeartbeatStage::kWrite);
    Status status;
    // Optional pre-load clustering (§3.3): sort the chunk's rows on the
    // configured column before it is stored.
    BinaryChunkPtr to_store = req->chunk;
    if (options_.sort_column_before_load.has_value() &&
        to_store->HasColumn(*options_.sort_column_before_load)) {
      auto sorted =
          SortChunkByColumn(*to_store, *options_.sort_column_before_load);
      if (sorted.ok()) {
        to_store = std::make_shared<const BinaryChunk>(std::move(*sorted));
      }
    }
    // History-driven speculative loading: store only the advisor's
    // hot-column subset, in rank order, instead of every converted column.
    // Columns already in the database are dropped either way, so repeated
    // offers of the same chunk never duplicate segments. Results stay
    // byte-identical: skipped columns are re-extracted from the raw side.
    std::vector<size_t> store_columns = to_store->ColumnIds();
    bool skip_write = false;
    if (options_.advisor != nullptr &&
        options_.policy == LoadPolicy::kSpeculativeLoading) {
      store_columns = options_.advisor->FilterColumns(table_, store_columns);
      auto meta = catalog_->GetTable(table_);
      if (meta.ok() && req->chunk_index < meta->chunks.size()) {
        const std::set<size_t>& loaded =
            meta->chunks[req->chunk_index].loaded_columns;
        store_columns.erase(
            std::remove_if(store_columns.begin(), store_columns.end(),
                           [&loaded](size_t c) { return loaded.count(c) != 0; }),
            store_columns.end());
      }
      // Every hot column already resident: nothing worth the write budget.
      skip_write = store_columns.empty();
    }
    const int64_t write_start = RealClock::Instance()->NowNanos();
    if (!skip_write) {
      ScopedDiskAccess disk(arbiter_, DiskUser::kWriter);
      obs::SpanRecorder span(tracer(), profile_.write_latency,
                             obs::TraceStage::kWrite, obs::ChunkSource::kRaw,
                             req->chunk_index);
      ScopedTimer timer(&profile_.write_time);
      auto segment = storage_->WriteSegment(*to_store, store_columns);
      if (!segment.ok()) {
        status = segment.status();
      } else {
        // Write-ordering invariant: the segment's bytes reach stable
        // storage before any catalog record points at them, so a crash
        // can leave orphan bytes in the storage tail (harmless) but never
        // a catalog entry referencing unsynced data.
        if (options_.sync_segment_writes) status = storage_->Sync();
        FaultKillPoint("scanraw.write.before_record");
        if (status.ok()) {
          std::map<size_t, ColumnStats> stats;
          if (options_.collect_stats) stats = ComputeChunkStats(*to_store);
          status = catalog_->RecordSegment(table_, req->chunk_index, *segment,
                                           stats);
          FaultKillPoint("scanraw.write.after_record");
        }
        if (status.ok()) {
          // Useful-write attribution: the segment's bytes, scaled by how
          // many of its columns the active query required (columns in one
          // chunk are near-equal width, so proportional is a fair split).
          const size_t overlap = CountRequiredOverlap(store_columns);
          if (!store_columns.empty()) {
            profile_.AddUsefulBytes(segment->page.size * overlap /
                                    store_columns.size());
          }
          obs::FlightRecord(obs::FlightEvent::kWrite, req->chunk_index,
                            segment->page.size);
        }
      }
    }
    if (!skip_write) {
      RecordWriteSpan(write_start,
                      RealClock::Instance()->NowNanos() - write_start);
    }
    if (status.ok()) {
      cache_.MarkLoaded(req->chunk_index);
      if (!skip_write) {
        profile_.CountWritten();
        NoteChunkLoaded();
      }
    } else if (options_.policy == LoadPolicy::kFullLoad ||
               options_.policy == LoadPolicy::kInvisibleLoading) {
      // Loading is part of the query under these policies; surface it.
      MutexLock lock(write_mu_);
      if (write_status_.ok()) write_status_ = status;
    } else {
      // Graceful degradation (speculative / buffered / safeguard writes):
      // the chunk simply stays unloaded — the query keeps processing it
      // from the raw side — and new speculative triggers back off so a
      // sick disk is not hammered. Retried naturally once the backoff
      // expires.
      profile_.CountWriteFailure();
      LOG_WARN(
          "scanraw: background write of %s chunk %llu failed, "
          "falling back to raw-side processing: %s",
          table_.c_str(), static_cast<unsigned long long>(req->chunk_index),
          std::string(status.message()).c_str());
      if (options_.write_failure_backoff_ms > 0) {
        write_backoff_until_nanos_.store(
            RealClock::Instance()->NowNanos() +
                static_cast<int64_t>(options_.write_failure_backoff_ms) *
                    1'000'000,
            std::memory_order_relaxed);
      }
    }
    {
      MutexLock lock(pending_mu_);
      pending_writes_.erase(req->chunk_index);
    }
    MutexLock lock(write_mu_);
    --writes_outstanding_;
    write_cv_.NotifyAll();
  }
}

void ScanRaw::RegisterObservers(obs::SpanProfiler* profiler,
                                obs::ProgressTracker* progress,
                                const std::vector<size_t>& required_columns) {
  MutexLock lock(active_mu_);
  active_profiler_ = profiler;
  active_progress_ = progress;
  active_required_ =
      std::set<size_t>(required_columns.begin(), required_columns.end());
}

void ScanRaw::UnregisterObservers(obs::SpanProfiler* profiler,
                                  obs::ProgressTracker* progress) {
  MutexLock lock(active_mu_);
  // Identity-checked: a newer query may have registered already.
  if (active_profiler_ == profiler) active_profiler_ = nullptr;
  if (active_progress_ == progress) {
    active_progress_ = nullptr;
    active_required_.clear();
  }
}

size_t ScanRaw::CountRequiredOverlap(
    const std::vector<size_t>& columns) const {
  MutexLock lock(active_mu_);
  size_t overlap = 0;
  for (size_t c : columns) {
    if (active_required_.count(c) != 0) ++overlap;
  }
  return overlap;
}

void ScanRaw::RecordWriteSpan(int64_t start_nanos, int64_t dur_nanos) {
  MutexLock lock(active_mu_);
  if (active_profiler_ != nullptr) {
    active_profiler_->RecordSpan(obs::QueryStage::kWrite,
                                 obs::CurrentThreadId(), start_nanos,
                                 dur_nanos);
  }
}

void ScanRaw::NoteChunkLoaded() {
  MutexLock lock(active_mu_);
  if (active_progress_ != nullptr) active_progress_->CountLoaded();
}

void ScanRaw::MaybeUpdateSketches(const BinaryChunk& chunk) {
  {
    MutexLock lock(sketched_mu_);
    if (!sketched_chunks_.insert(chunk.chunk_index()).second) return;
  }
  sketches_.AddChunk(chunk);
}

void ScanRaw::WaitForWrites() {
  MutexLock lock(write_mu_);
  while (writes_outstanding_ != 0) write_cv_.Wait(lock);
}

Status ScanRaw::write_status() const {
  MutexLock lock(write_mu_);
  return write_status_;
}

std::string ScanRaw::StatuszSection() const {
  std::string out;
  out += StringPrintf("  table: %s\n", table_.c_str());
  out += StringPrintf("  policy: %s\n",
                      std::string(LoadPolicyName(options_.policy)).c_str());
  out += StringPrintf("  loaded_fraction: %.3f\n", LoadedFraction());
  out += StringPrintf("  cache: %zu/%zu chunks\n", cache_.size(),
                      cache_.capacity());
  out += StringPrintf("  writes_outstanding: %zu\n", [this] {
    MutexLock lock(write_mu_);
    return writes_outstanding_;
  }());
  out += StringPrintf(
      "  tokenize: ranges=%llu misspeculations=%llu repair_bytes=%llu\n",
      static_cast<unsigned long long>(profile_.tokenize_ranges.load()),
      static_cast<unsigned long long>(
          profile_.tokenize_misspeculations.load()),
      static_cast<unsigned long long>(profile_.tokenize_repair_bytes.load()));
  if (options_.cache_positional_maps) {
    out += StringPrintf(
        "  posmap cache: %zu maps, %zu bytes, disk_chunks=%llu\n",
        positional_maps_.size(), positional_maps_.MemoryBytes(),
        static_cast<unsigned long long>(profile_.posmap_disk_chunks.load()));
  }
  if (heartbeats_ != nullptr) {
    for (size_t i = 0; i < obs::kNumHeartbeatStages; ++i) {
      const auto stage = static_cast<obs::HeartbeatStage>(i);
      out += StringPrintf(
          "  stage %s: active=%lld beats=%llu\n",
          std::string(obs::HeartbeatStageName(stage)).c_str(),
          static_cast<long long>(heartbeats_->active(stage)),
          static_cast<unsigned long long>(heartbeats_->beats(stage)));
    }
  }
  MutexLock lock(active_mu_);
  if (active_profiler_ == nullptr) {
    out += "  query: idle\n";
    return out;
  }
  out += "  query: running\n";
  const obs::SpanProfiler::Report report = active_profiler_->Aggregate();
  for (size_t i = 0; i < obs::kNumQueryStages; ++i) {
    const auto stage = static_cast<obs::QueryStage>(i);
    const obs::SpanProfiler::StageStats& stats = report.stages[i];
    if (stats.spans == 0) continue;
    out += StringPrintf(
        "  span %s: spans=%llu busy=%.3fs threads=%zu\n",
        std::string(obs::QueryStageName(stage)).c_str(),
        static_cast<unsigned long long>(stats.spans),
        static_cast<double>(stats.busy_nanos) * 1e-9, stats.threads);
  }
  out += StringPrintf(
      "  critical_stage: %s (%.0f%% of wall)\n",
      std::string(obs::QueryStageName(report.critical_stage)).c_str(),
      report.critical_fraction * 100.0);
  return out;
}

double ScanRaw::LoadedFraction() const {
  auto meta = catalog_->GetTable(table_);
  if (!meta.ok()) return 0.0;
  return meta->LoadedFraction();
}

bool ScanRaw::FullyLoaded() const {
  auto meta = catalog_->GetTable(table_);
  if (!meta.ok()) return false;
  return meta->FullyLoaded();
}

}  // namespace scanraw
