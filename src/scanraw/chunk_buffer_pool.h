// ChunkBufferPool: recycles the large allocations of the READ→TOKENIZE→
// PARSE pipeline — TextChunk text buffers, line-start vectors, and
// ColumnVector backing arrays — so steady-state chunk processing reuses
// capacity instead of round-tripping every chunk's buffers through the
// allocator. Buffers are returned when the last reference to a chunk drops
// (see WrapText / WrapChunk) and handed out again by the READ chunker and
// the parser (via ParseOptions::recycler).
#ifndef SCANRAW_SCANRAW_CHUNK_BUFFER_POOL_H_
#define SCANRAW_SCANRAW_CHUNK_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "columnar/binary_chunk.h"
#include "common/thread_annotations.h"
#include "format/text_chunk.h"
#include "obs/metrics.h"

namespace scanraw {

// Thread-safe. One pool serves all pipeline stages of a query; the free
// lists are keyed only by buffer kind (raw text and string arenas share the
// std::string list) because capacity transfers across roles for free.
class ChunkBufferPool : public ColumnBufferSource {
 public:
  // At most `max_pooled_per_kind` idle buffers are retained per free list;
  // releases beyond that are dropped on the floor (freed).
  explicit ChunkBufferPool(size_t max_pooled_per_kind = 64)
      : max_pooled_(max_pooled_per_kind) {}

  // Optional observability hookup; call before the pool is shared across
  // threads. `hits` counts acquires served from a free list, `misses`
  // acquires that fell through to a fresh buffer, `idle` tracks the total
  // number of pooled buffers.
  void BindMetrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Gauge* idle) {
    hits_ = hits;
    misses_ = misses;
    idle_ = idle;
  }

  // -- ColumnBufferSource --
  std::vector<uint8_t> AcquireFixed() override EXCLUDES(mu_);
  std::string AcquireString() override EXCLUDES(mu_);
  std::vector<uint32_t> AcquireOffsets() override EXCLUDES(mu_);
  void ReleaseFixed(std::vector<uint8_t> buffer) override EXCLUDES(mu_);
  void ReleaseString(std::string buffer) override EXCLUDES(mu_);
  void ReleaseOffsets(std::vector<uint32_t> buffer) override EXCLUDES(mu_);

  // Text buffers ride the same free lists: a chunk's raw bytes are a
  // std::string and its line starts a uint32 vector.
  std::string AcquireText() EXCLUDES(mu_) { return AcquireString(); }
  std::vector<uint32_t> AcquireLineStarts() EXCLUDES(mu_) {
    return AcquireOffsets();
  }
  // Takes the chunk's buffers back; the chunk is empty afterwards.
  void ReleaseText(TextChunk* chunk) EXCLUDES(mu_);

  size_t idle_buffers() const EXCLUDES(mu_);

  // Wraps a TextChunk so its buffers return to `pool` when the last
  // reference drops — the chunk is shared by TOKENIZE and PARSE, and only
  // the final release may recycle it. A null pool degrades to plain
  // make_shared.
  static std::shared_ptr<TextChunk> WrapText(
      TextChunk chunk, std::shared_ptr<ChunkBufferPool> pool);

  // Same for a parsed BinaryChunk handed to the engine/cache: the consumer
  // holds an ordinary BinaryChunkPtr and the columns' backing arrays come
  // home when it lets go.
  static BinaryChunkPtr WrapChunk(BinaryChunk chunk,
                                  std::shared_ptr<ChunkBufferPool> pool);

 private:
  void UpdateIdle() REQUIRES(mu_);

  const size_t max_pooled_;
  obs::Counter* hits_ = nullptr;    // set once before concurrent use
  obs::Counter* misses_ = nullptr;
  obs::Gauge* idle_ = nullptr;

  mutable Mutex mu_{LockRank::kChunkBufferPool, "ChunkBufferPool.mu"};
  std::vector<std::vector<uint8_t>> fixed_ GUARDED_BY(mu_);
  std::vector<std::string> strings_ GUARDED_BY(mu_);
  std::vector<std::vector<uint32_t>> offsets_ GUARDED_BY(mu_);
};

}  // namespace scanraw

#endif  // SCANRAW_SCANRAW_CHUNK_BUFFER_POOL_H_
