// Configuration for the ScanRaw operator, including the WRITE scheduling
// policy that selects between the paper's operating regimes (§3, §4).
#ifndef SCANRAW_SCANRAW_OPTIONS_H_
#define SCANRAW_SCANRAW_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace scanraw {

namespace obs {
class Telemetry;
struct QueryProgress;
class QueryLog;
class LoadAdvisor;
}

// WRITE scheduling policy (§3.1: "The scheduling policy for WRITE dictates
// the SCANRAW behavior").
enum class LoadPolicy : int {
  // Never write: ScanRaw is a parallel external-table operator.
  kExternalTables = 0,
  // Write every converted chunk: ScanRaw degenerates into a parallel ETL
  // operator ("load & process" in the evaluation).
  kFullLoad = 1,
  // Write only when the disk is idle (READ blocked on a full text buffer),
  // plus the end-of-scan safeguard flush. The paper's contribution (§4).
  kSpeculativeLoading = 2,
  // Write a fixed number of chunks per query regardless of resource
  // utilization — the invisible-loading baseline [4].
  kInvisibleLoading = 3,
  // Write chunks only when they are evicted from a full binary cache — the
  // buffered-loading baseline (NoDB + flush-on-full, [10]).
  kBufferedLoading = 4,
};

std::string_view LoadPolicyName(LoadPolicy policy);

// Physical encoding of the raw file. Each format supplies its own TOKENIZE
// worker; PARSE and everything downstream are shared (§5: "adding support
// for other file formats requires only the implementation of specific
// TOKENIZE and PARSE workers without changing the basic architecture").
enum class RawFormat : int {
  // Delimiter-separated text (CSV, TSV, SAM, ...), delimiter from the
  // schema.
  kDelimitedText = 0,
  // One flat JSON object per line, one member per schema column.
  kJsonLines = 1,
};

struct ScanRawOptions {
  LoadPolicy policy = LoadPolicy::kSpeculativeLoading;

  RawFormat raw_format = RawFormat::kDelimitedText;

  // Worker threads in the pool shared by TOKENIZE and PARSE tasks. 0 means
  // fully sequential conversion (Figure 4's leftmost configuration).
  size_t num_workers = 8;

  // Speculative intra-file parallel TOKENIZE (format/parallel_chunker):
  // split each chunk into byte ranges, speculate record boundary and quote
  // parity at each range start, tokenize the ranges concurrently on the
  // worker pool, and repair only misspeculated ranges. Off = the frozen
  // sequential SIMD path, kept as the reference tier for equivalence tests
  // and benches. Ignored for JSON (its tokenizer is per-line already).
  bool parallel_tokenize = true;

  // RFC-4180 quoted-field dialect for delimited text: fields may be quoted,
  // with embedded delimiters, doubled-quote escapes, and quoted newlines.
  // Record discovery and TOKENIZE share one quote-parity FSM; PARSE
  // collapses doubled quotes in string fields.
  bool quoted_fields = false;

  // Pipeline buffer capacities, in chunks.
  size_t text_buffer_capacity = 8;
  size_t position_buffer_capacity = 8;
  size_t output_buffer_capacity = 8;

  // Recycle chunk text buffers and column arrays through a per-operator
  // ChunkBufferPool, so steady-state pipeline iterations reuse capacity
  // instead of allocating per chunk. Exposed for the ablation bench.
  bool reuse_buffers = true;

  // Binary chunk cache capacity, in chunks (0 disables caching).
  size_t cache_capacity_chunks = 32;
  // Evict already-loaded chunks first (the paper's biased LRU). Exposed so
  // the ablation bench can turn it off.
  bool bias_evict_loaded = true;

  // Lines per chunk for the first (layout-discovery) scan.
  uint64_t chunk_rows = 1 << 16;

  // kInvisibleLoading: chunks written per query.
  size_t invisible_chunks_per_query = 2;

  // End-of-scan safeguard flush (§4). On by default for speculative
  // loading; exposed for the ablation bench.
  bool safeguard_enabled = true;

  // Collect per-column min/max statistics while loading (§3.3).
  bool collect_stats = true;

  // Durability: fsync the storage file after each segment append, before
  // the catalog records the segment. Keeps the write-ordering invariant
  // (the catalog never points at unsynced bytes) even if the process dies
  // between the append and the next catalog save.
  bool sync_segment_writes = true;

  // Graceful degradation: after a background WRITE fails (disk full, I/O
  // error), suppress new speculative triggers for this long. The failed
  // chunk stays unloaded — queries keep running from the raw side — and
  // loading is retried once the backoff expires. Synchronous-loading
  // policies (kFullLoad, kInvisibleLoading) still surface the error.
  int write_failure_backoff_ms = 100;

  // Cache positional maps across queries so re-scans of raw chunks skip or
  // shorten TOKENIZE (§2's positional map; off by default per the §3.1
  // argument that binary-chunk caching dominates it).
  bool cache_positional_maps = false;
  size_t positional_map_cache_chunks = 64;
  // Byte bound for the positional-map cache, enforced alongside the chunk
  // count; 0 disables the byte bound. A wide-schema table can hit this long
  // before the chunk bound.
  size_t positional_map_cache_bytes = 64u << 20;

  // Persist the positional-map cache to a sidecar file next to the catalog
  // (`<catalog>.posmap.<table>`) so a restarted process skips TOKENIZE for
  // chunks it mapped before. Sidecars are written through AtomicWriteFile
  // after cold scans and on catalog saves, and validated (exact raw-file
  // stat + tokenize dialect) before reuse. Implies nothing unless
  // cache_positional_maps is also on.
  bool persist_positional_maps = false;
  // Where this operator saves its sidecar after cold scans. Normally set by
  // ScanRawManager from the catalog path; explicit for tests. Empty
  // disables the after-cold-scan save hook (manager-driven saves on
  // SaveCatalog still happen).
  std::string posmap_sidecar_path;

  // Push-down selection (§2): evaluate the query's range predicate during
  // PARSE and drop failing rows before they reach the engine. Only honored
  // in external-tables mode: filtered chunks are incomplete, so they are
  // never cached or loaded (§2 explains why the bookkeeping otherwise
  // "is too high to consider push-down selection a viable optimization").
  bool pushdown_selection = false;

  // WRITE sorts each chunk's rows on this column before loading it (§3.3
  // "WRITE can sort data in each chunk prior to loading"), clustering
  // stored pages for future range scans. Disabled when unset.
  std::optional<size_t> sort_column_before_load;

  // Delay admitting a new query until the previous query's background
  // writes (speculative / safeguard) have drained — the alternative
  // admission rule §4 describes for when flushing interferes with the next
  // query's reads.
  bool delay_admission_for_writes = false;

  // Maintain distinct-count and sample sketches per column during
  // conversion (§3.3 "more advanced statistics such as the number of
  // distinct elements ... or even samples").
  bool collect_sketches = false;

  // Telemetry sink: registry-backed stage metrics, chunk-lifecycle tracing,
  // and resource-advice sampling all record here. The ScanRawManager fills
  // this in with its own sink when left null; set explicitly to share a
  // sink across managers or to a standalone obs::Telemetry in tests.
  obs::Telemetry* telemetry = nullptr;

  // Period of the §3.3 resource-advice sampler thread attached to each
  // query (0 disables the thread). Requires `telemetry`. The sampler always
  // records one sample at query start and one at query end, so short
  // queries still leave a series.
  int resource_sample_interval_ms = 0;

  // Cadence of the telemetry time-series rings feeding the /metrics rate
  // gauges (rows/s, bytes/s, cache hit rate). Sampling piggybacks on
  // existing periodic threads (resource sampler, watchdog, stats scrapes) —
  // there is no dedicated sampler thread. 0 leaves the telemetry sink's
  // default (1 s); negative disables sampling. Requires `telemetry`.
  int timeseries_interval_ms = 0;

  // Live progress: when set, each query runs a reporter thread that invokes
  // this callback every `progress_interval_ms` with bytes processed vs.
  // total, chunks delivered/loaded, rolling throughput, and an ETA. Also
  // fired once at query start and once at query end.
  std::function<void(const obs::QueryProgress&)> progress_callback;
  int progress_interval_ms = 200;

  // Persistent query event log: when set, ExecuteQuery appends one event
  // per query (spec, stage timings, provenance, speculative payoff). The
  // log outlives the operator; not owned.
  obs::QueryLog* query_log = nullptr;

  // History-driven speculative loading: when set, the WRITE stage under
  // kSpeculativeLoading stores only the advisor's hot-column subset of
  // each chunk, in rank order, instead of every converted column. Query
  // results are byte-identical either way — columns the advisor skips are
  // simply re-extracted from the raw side until a later query loads them.
  // Shared so the advisor (and its history) can outlive operator retirement.
  std::shared_ptr<const obs::LoadAdvisor> advisor;
};

}  // namespace scanraw

#endif  // SCANRAW_SCANRAW_OPTIONS_H_
