#include "datagen/csv_generator.h"

#include "common/random.h"
#include "common/string_util.h"
#include "io/file.h"

namespace scanraw {

Result<CsvFileInfo> GenerateCsvFile(const std::string& path,
                                    const CsvSpec& spec) {
  if (spec.num_columns == 0) {
    return Status::InvalidArgument("num_columns must be > 0");
  }
  if (spec.max_value == 0) {
    return Status::InvalidArgument("max_value must be > 0");
  }
  if (spec.quoted_columns > spec.num_columns) {
    return Status::InvalidArgument("quoted_columns must be <= num_columns");
  }
  auto file = WritableFile::Create(path);
  if (!file.ok()) return file.status();

  Random rng(spec.seed);
  CsvFileInfo info;
  info.num_rows = spec.num_rows;
  info.num_columns = spec.num_columns;
  info.column_sums.assign(spec.num_columns, 0);

  const size_t numeric_columns = spec.num_columns - spec.quoted_columns;
  std::string buffer;
  buffer.reserve(1 << 20);
  for (uint64_t r = 0; r < spec.num_rows; ++r) {
    for (size_t c = 0; c < spec.num_columns; ++c) {
      if (c > 0) buffer.push_back(spec.delimiter);
      if (c < numeric_columns) {
        const uint32_t v =
            static_cast<uint32_t>(rng.NextUint32() % spec.max_value);
        info.total_sum += v;
        info.column_sums[c] += v;
        AppendUint64(&buffer, v);
        continue;
      }
      // Quoted string field: always enclosed, with the adversarial bytes a
      // quote-blind scanner would trip over sprinkled in at random.
      buffer.push_back('"');
      buffer.push_back('v');
      AppendUint64(&buffer, rng.Uniform(spec.max_value));
      if (rng.OneIn(3)) buffer.push_back(spec.delimiter);
      if (rng.OneIn(4)) {
        buffer.push_back('"');  // doubled-quote escape
        buffer.push_back('"');
      }
      if (spec.quoted_newline_one_in > 0 &&
          rng.OneIn(spec.quoted_newline_one_in)) {
        buffer.push_back('\n');
        ++info.quoted_newlines;
      }
      buffer.push_back('x');
      buffer.push_back('"');
    }
    buffer.push_back('\n');
    if (buffer.size() >= (1 << 20) - 4096) {
      SCANRAW_RETURN_IF_ERROR((*file)->Append(buffer));
      buffer.clear();
    }
  }
  if (!buffer.empty()) {
    SCANRAW_RETURN_IF_ERROR((*file)->Append(buffer));
  }
  info.file_bytes = (*file)->bytes_written();
  SCANRAW_RETURN_IF_ERROR((*file)->Close());
  return info;
}

Schema CsvSchema(const CsvSpec& spec) {
  if (spec.quoted_columns == 0) {
    return Schema::AllUint32(spec.num_columns, spec.delimiter);
  }
  std::vector<ColumnDef> columns;
  columns.reserve(spec.num_columns);
  const size_t numeric_columns = spec.num_columns - spec.quoted_columns;
  for (size_t c = 0; c < spec.num_columns; ++c) {
    ColumnDef def;
    def.name = "C" + std::to_string(c);
    def.type = c < numeric_columns ? FieldType::kUint32 : FieldType::kString;
    columns.push_back(std::move(def));
  }
  return Schema(std::move(columns), spec.delimiter);
}

}  // namespace scanraw
