#include "datagen/jsonl_generator.h"

#include "common/random.h"
#include "common/string_util.h"
#include "io/file.h"

namespace scanraw {

Result<CsvFileInfo> GenerateJsonlFile(const std::string& path,
                                      const CsvSpec& spec) {
  if (spec.num_columns == 0) {
    return Status::InvalidArgument("num_columns must be > 0");
  }
  if (spec.max_value == 0) {
    return Status::InvalidArgument("max_value must be > 0");
  }
  auto file = WritableFile::Create(path);
  if (!file.ok()) return file.status();

  const Schema schema = CsvSchema(spec);
  Random rng(spec.seed);
  CsvFileInfo info;
  info.num_rows = spec.num_rows;
  info.num_columns = spec.num_columns;
  info.column_sums.assign(spec.num_columns, 0);

  std::string buffer;
  buffer.reserve(1 << 20);
  for (uint64_t r = 0; r < spec.num_rows; ++r) {
    buffer.push_back('{');
    for (size_t c = 0; c < spec.num_columns; ++c) {
      if (c > 0) buffer.push_back(',');
      buffer.push_back('"');
      buffer += schema.column(c).name;
      buffer += "\":";
      const uint32_t v =
          static_cast<uint32_t>(rng.NextUint32() % spec.max_value);
      info.total_sum += v;
      info.column_sums[c] += v;
      AppendUint64(&buffer, v);
    }
    buffer += "}\n";
    if (buffer.size() >= (1 << 20) - 8192) {
      SCANRAW_RETURN_IF_ERROR((*file)->Append(buffer));
      buffer.clear();
    }
  }
  if (!buffer.empty()) {
    SCANRAW_RETURN_IF_ERROR((*file)->Append(buffer));
  }
  info.file_bytes = (*file)->bytes_written();
  SCANRAW_RETURN_IF_ERROR((*file)->Close());
  return info;
}

}  // namespace scanraw
