// Synthetic CSV suite generator (§5.1): N rows of K uint32 columns, values
// uniform below 2^31, modeled on the NoDB / invisible-loading datasets.
#ifndef SCANRAW_DATAGEN_CSV_GENERATOR_H_
#define SCANRAW_DATAGEN_CSV_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "format/schema.h"

namespace scanraw {

struct CsvSpec {
  uint64_t num_rows = 0;
  size_t num_columns = 0;
  char delimiter = ',';
  uint64_t seed = 1;
  // Values are uniform in [0, max_value).
  uint32_t max_value = 1u << 31;
  // RFC-4180 dialect: the last `quoted_columns` columns are emitted as
  // quoted string fields exercising embedded delimiters, doubled-quote
  // escapes, and (one row in `quoted_newline_one_in`) quoted newlines.
  // The remaining leading columns stay uint32, so numeric ground truth
  // (total_sum / column_sums) is still exact.
  size_t quoted_columns = 0;
  uint64_t quoted_newline_one_in = 8;
};

struct CsvFileInfo {
  uint64_t num_rows = 0;
  size_t num_columns = 0;
  uint64_t file_bytes = 0;
  // Sum over every value in the file (mod 2^64) — ground truth for the
  // micro-benchmark query.
  uint64_t total_sum = 0;
  // Per-column sums, same ground-truth role for projections. Quoted string
  // columns contribute 0.
  std::vector<uint64_t> column_sums;
  // Newlines embedded inside quoted fields — records crossing these would
  // be mis-split by a quote-blind scanner, which is exactly what the
  // speculative record scan's tests count on.
  uint64_t quoted_newlines = 0;
};

// Writes the file and returns ground-truth aggregates for validation.
Result<CsvFileInfo> GenerateCsvFile(const std::string& path,
                                    const CsvSpec& spec);

// Schema matching a generated file.
Schema CsvSchema(const CsvSpec& spec);

}  // namespace scanraw

#endif  // SCANRAW_DATAGEN_CSV_GENERATOR_H_
