// Synthetic CSV suite generator (§5.1): N rows of K uint32 columns, values
// uniform below 2^31, modeled on the NoDB / invisible-loading datasets.
#ifndef SCANRAW_DATAGEN_CSV_GENERATOR_H_
#define SCANRAW_DATAGEN_CSV_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "format/schema.h"

namespace scanraw {

struct CsvSpec {
  uint64_t num_rows = 0;
  size_t num_columns = 0;
  char delimiter = ',';
  uint64_t seed = 1;
  // Values are uniform in [0, max_value).
  uint32_t max_value = 1u << 31;
};

struct CsvFileInfo {
  uint64_t num_rows = 0;
  size_t num_columns = 0;
  uint64_t file_bytes = 0;
  // Sum over every value in the file (mod 2^64) — ground truth for the
  // micro-benchmark query.
  uint64_t total_sum = 0;
  // Per-column sums, same ground-truth role for projections.
  std::vector<uint64_t> column_sums;
};

// Writes the file and returns ground-truth aggregates for validation.
Result<CsvFileInfo> GenerateCsvFile(const std::string& path,
                                    const CsvSpec& spec);

// Schema matching a generated file.
Schema CsvSchema(const CsvSpec& spec);

}  // namespace scanraw

#endif  // SCANRAW_DATAGEN_CSV_GENERATOR_H_
