// JSON-lines twin of the CSV generator: same value stream and ground-truth
// aggregates for a given CsvSpec, encoded as one flat JSON object per line
// ({"C0":123,"C1":456,...}). Used to exercise the JSON TOKENIZE worker.
#ifndef SCANRAW_DATAGEN_JSONL_GENERATOR_H_
#define SCANRAW_DATAGEN_JSONL_GENERATOR_H_

#include <string>

#include "datagen/csv_generator.h"

namespace scanraw {

// Writes the JSONL file and returns the same ground truth GenerateCsvFile
// would for this spec (values depend only on spec.seed).
Result<CsvFileInfo> GenerateJsonlFile(const std::string& path,
                                      const CsvSpec& spec);

}  // namespace scanraw

#endif  // SCANRAW_DATAGEN_JSONL_GENERATOR_H_
