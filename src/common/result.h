// Result<T>: a value-or-Status holder, the library's exception-free analogue
// of absl::StatusOr<T>.
#ifndef SCANRAW_COMMON_RESULT_H_
#define SCANRAW_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace scanraw {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so functions can `return value;` or
  // `return Status::...;` directly, matching StatusOr ergonomics.
  Result(T value) : value_(std::move(value)) {}        // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK status requires a value");
    if (status_.ok()) status_ = Status::Internal("OK Result without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  // Requires ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value
};

// Propagates the error of a Result-returning expression, otherwise assigns
// the unwrapped value to `lhs` (which must already be declared).
#define SCANRAW_ASSIGN_OR_RETURN(lhs, expr)          \
  do {                                               \
    auto _res = (expr);                              \
    if (!_res.ok()) return _res.status();            \
    lhs = std::move(_res).value();                   \
  } while (0)

}  // namespace scanraw

#endif  // SCANRAW_COMMON_RESULT_H_
