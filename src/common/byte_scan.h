// Bulk byte scanning for the conversion hot path. TOKENIZE and the READ
// chunker spend their cycles locating '\n' and delimiter bytes; doing that
// one byte (or one memchr call) at a time leaves most of the machine idle.
// These helpers scan 16/32 bytes per step with SSE2/AVX2 when the build
// enables SCANRAW_SIMD (the default; see the top-level CMakeLists option)
// and fall back to memchr-based loops otherwise, so behavior is identical
// across configurations.
//
// All offsets are byte indexes into `data`; every scan covers the half-open
// range [from, end). "Not found" is kNpos.
#ifndef SCANRAW_COMMON_BYTE_SCAN_H_
#define SCANRAW_COMMON_BYTE_SCAN_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#if defined(SCANRAW_SIMD) && defined(__SSE2__)
#define SCANRAW_BYTE_SCAN_SIMD 1
#include <immintrin.h>
#else
#define SCANRAW_BYTE_SCAN_SIMD 0
#endif

namespace scanraw {
namespace bytescan {

inline constexpr size_t kNpos = static_cast<size_t>(-1);

namespace detail {

inline size_t FindNScalar(const char* data, size_t from, size_t end,
                          char needle, uint32_t* out, size_t max_hits,
                          uint32_t bias, size_t* next_match) {
  size_t found = 0;
  size_t pos = from;
  while (pos < end) {
    const char* hit = static_cast<const char*>(
        std::memchr(data + pos, needle, end - pos));
    if (hit == nullptr) break;
    const size_t at = static_cast<size_t>(hit - data);
    if (found == max_hits) {
      *next_match = at;
      return found;
    }
    out[found++] = static_cast<uint32_t>(at) + bias;
    pos = at + 1;
  }
  *next_match = kNpos;
  return found;
}

#if SCANRAW_BYTE_SCAN_SIMD

// Drains one 16/32-lane match mask into `out`. Returns false when the hit
// budget ran out (the overflow position lands in *next_match).
inline bool DrainMask(uint32_t mask, size_t base, uint32_t* out,
                      size_t max_hits, uint32_t bias, size_t* found,
                      size_t* next_match) {
  while (mask != 0) {
    const size_t at = base + static_cast<size_t>(__builtin_ctz(mask));
    if (*found == max_hits) {
      *next_match = at;
      return false;
    }
    out[(*found)++] = static_cast<uint32_t>(at) + bias;
    mask &= mask - 1;
  }
  return true;
}

inline size_t FindNSse2(const char* data, size_t from, size_t end,
                        char needle, uint32_t* out, size_t max_hits,
                        uint32_t bias, size_t* next_match) {
  const __m128i vneedle = _mm_set1_epi8(needle);
  size_t found = 0;
  size_t i = from;
  for (; i + 16 <= end; i += 16) {
    const __m128i block =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const uint32_t mask = static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(block, vneedle)));
    if (!DrainMask(mask, i, out, max_hits, bias, &found, next_match)) {
      return found;
    }
  }
  for (; i < end; ++i) {
    if (data[i] == needle) {
      if (found == max_hits) {
        *next_match = i;
        return found;
      }
      out[found++] = static_cast<uint32_t>(i) + bias;
    }
  }
  *next_match = kNpos;
  return found;
}

__attribute__((target("avx2"))) inline size_t FindNAvx2(
    const char* data, size_t from, size_t end, char needle, uint32_t* out,
    size_t max_hits, uint32_t bias, size_t* next_match) {
  const __m256i vneedle = _mm256_set1_epi8(needle);
  size_t found = 0;
  size_t i = from;
  for (; i + 32 <= end; i += 32) {
    const __m256i block =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const uint32_t mask = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(block, vneedle)));
    if (!DrainMask(mask, i, out, max_hits, bias, &found, next_match)) {
      return found;
    }
  }
  for (; i < end; ++i) {
    if (data[i] == needle) {
      if (found == max_hits) {
        *next_match = i;
        return found;
      }
      out[found++] = static_cast<uint32_t>(i) + bias;
    }
  }
  *next_match = kNpos;
  return found;
}

inline size_t FindEitherSse2(const char* data, size_t from, size_t end,
                             char a, char b) {
  const __m128i va = _mm_set1_epi8(a);
  const __m128i vb = _mm_set1_epi8(b);
  size_t i = from;
  for (; i + 16 <= end; i += 16) {
    const __m128i block =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const uint32_t mask = static_cast<uint32_t>(_mm_movemask_epi8(
        _mm_or_si128(_mm_cmpeq_epi8(block, va), _mm_cmpeq_epi8(block, vb))));
    if (mask != 0) return i + static_cast<size_t>(__builtin_ctz(mask));
  }
  for (; i < end; ++i) {
    if (data[i] == a || data[i] == b) return i;
  }
  return kNpos;
}

inline size_t FindAnyOf4Sse2(const char* data, size_t from, size_t end,
                             char a, char b, char c, char d) {
  const __m128i va = _mm_set1_epi8(a);
  const __m128i vb = _mm_set1_epi8(b);
  const __m128i vc = _mm_set1_epi8(c);
  const __m128i vd = _mm_set1_epi8(d);
  size_t i = from;
  for (; i + 16 <= end; i += 16) {
    const __m128i block =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const __m128i eq =
        _mm_or_si128(_mm_or_si128(_mm_cmpeq_epi8(block, va),
                                  _mm_cmpeq_epi8(block, vb)),
                     _mm_or_si128(_mm_cmpeq_epi8(block, vc),
                                  _mm_cmpeq_epi8(block, vd)));
    const uint32_t mask = static_cast<uint32_t>(_mm_movemask_epi8(eq));
    if (mask != 0) return i + static_cast<size_t>(__builtin_ctz(mask));
  }
  for (; i < end; ++i) {
    if (data[i] == a || data[i] == b || data[i] == c || data[i] == d) {
      return i;
    }
  }
  return kNpos;
}

inline bool HaveAvx2() {
  static const bool have = __builtin_cpu_supports("avx2") != 0;
  return have;
}

#endif  // SCANRAW_BYTE_SCAN_SIMD

}  // namespace detail

// First occurrence of `needle` in [from, end), or kNpos. memchr is already
// vectorized by the C library; this wrapper only normalizes the interface.
inline size_t FindByte(const char* data, size_t from, size_t end,
                       char needle) {
  if (from >= end) return kNpos;
  const char* hit =
      static_cast<const char*>(std::memchr(data + from, needle, end - from));
  return hit == nullptr ? kNpos : static_cast<size_t>(hit - data);
}

// First occurrence of `a` or `b` in [from, end), or kNpos. memchr cannot
// search two needles in one pass; the SIMD body can.
inline size_t FindEither(const char* data, size_t from, size_t end, char a,
                         char b) {
  if (from >= end) return kNpos;
#if SCANRAW_BYTE_SCAN_SIMD
  return detail::FindEitherSse2(data, from, end, a, b);
#else
  for (size_t i = from; i < end; ++i) {
    if (data[i] == a || data[i] == b) return i;
  }
  return kNpos;
#endif
}

// First occurrence of any of the four needles in [from, end), or kNpos.
inline size_t FindAnyOf4(const char* data, size_t from, size_t end, char a,
                         char b, char c, char d) {
  if (from >= end) return kNpos;
#if SCANRAW_BYTE_SCAN_SIMD
  return detail::FindAnyOf4Sse2(data, from, end, a, b, c, d);
#else
  for (size_t i = from; i < end; ++i) {
    if (data[i] == a || data[i] == b || data[i] == c || data[i] == d) {
      return i;
    }
  }
  return kNpos;
#endif
}

// Bulk multi-match scan: writes `pos + bias` for the first `max_hits`
// occurrences of `needle` into `out` (which must hold max_hits slots) and
// reports the position of the (max_hits+1)-th occurrence in *next_match
// (kNpos when the range holds at most max_hits matches). Returns the number
// of slots written. The tokenizer passes a positional-map row as `out` with
// bias 1, turning each delimiter hit directly into the next field's start.
inline size_t FindN(const char* data, size_t from, size_t end, char needle,
                    uint32_t* out, size_t max_hits, uint32_t bias,
                    size_t* next_match) {
  if (from >= end) {
    *next_match = kNpos;
    return 0;
  }
#if SCANRAW_BYTE_SCAN_SIMD
  if (detail::HaveAvx2()) {
    return detail::FindNAvx2(data, from, end, needle, out, max_hits, bias,
                             next_match);
  }
  return detail::FindNSse2(data, from, end, needle, out, max_hits, bias,
                           next_match);
#else
  return detail::FindNScalar(data, from, end, needle, out, max_hits, bias,
                             next_match);
#endif
}

// Appends `pos + bias` for up to `max_hits` occurrences of `needle` to
// `out`. Returns the number appended. Batches through FindN so the append
// target never over-reserves for an unknown match count.
inline size_t FindAll(const char* data, size_t from, size_t end, char needle,
                      size_t max_hits, uint32_t bias,
                      std::vector<uint32_t>* out) {
  constexpr size_t kBatch = 1024;
  size_t total = 0;
  size_t pos = from;
  while (total < max_hits && pos < end) {
    const size_t batch = max_hits - total < kBatch ? max_hits - total : kBatch;
    const size_t base = out->size();
    out->resize(base + batch);
    size_t next = kNpos;
    const size_t n =
        FindN(data, pos, end, needle, out->data() + base, batch, bias, &next);
    out->resize(base + n);
    total += n;
    if (n < batch || next == kNpos) break;
    pos = next;  // the overflow match restarts the next batch
  }
  return total;
}

}  // namespace bytescan
}  // namespace scanraw

#endif  // SCANRAW_COMMON_BYTE_SCAN_H_
