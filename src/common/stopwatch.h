// Stopwatch: cumulative interval timer used by the pipeline profiler
// ("special function calls to harness detailed profiling data", §5).
#ifndef SCANRAW_COMMON_STOPWATCH_H_
#define SCANRAW_COMMON_STOPWATCH_H_

#include <atomic>
#include <cstdint>

#include "common/clock.h"

namespace scanraw {

// Accumulates elapsed nanoseconds across Start/Stop intervals. AddNanos is
// thread-safe so many workers can charge time to one shared stage counter.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock = RealClock::Instance())
      : clock_(clock) {}

  void Start() { start_nanos_ = clock_->NowNanos(); }
  void Stop() { AddNanos(clock_->NowNanos() - start_nanos_); }

  void AddNanos(int64_t nanos) {
    total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
    intervals_.fetch_add(1, std::memory_order_relaxed);
  }

  int64_t TotalNanos() const {
    return total_nanos_.load(std::memory_order_relaxed);
  }
  double TotalSeconds() const {
    return static_cast<double>(TotalNanos()) * 1e-9;
  }
  int64_t intervals() const {
    return intervals_.load(std::memory_order_relaxed);
  }

  void Reset() {
    total_nanos_.store(0, std::memory_order_relaxed);
    intervals_.store(0, std::memory_order_relaxed);
  }

 private:
  const Clock* clock_;
  int64_t start_nanos_ = 0;
  std::atomic<int64_t> total_nanos_{0};
  std::atomic<int64_t> intervals_{0};
};

// RAII guard charging the enclosed scope to a Stopwatch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Stopwatch* watch,
                       const Clock* clock = RealClock::Instance())
      : watch_(watch), clock_(clock), start_(clock->NowNanos()) {}
  ~ScopedTimer() {
    if (watch_ != nullptr) watch_->AddNanos(clock_->NowNanos() - start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stopwatch* watch_;
  const Clock* clock_;
  int64_t start_;
};

}  // namespace scanraw

#endif  // SCANRAW_COMMON_STOPWATCH_H_
