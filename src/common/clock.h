// Clock abstraction: the real pipeline uses the monotonic clock; the
// discrete-event simulator and the deterministic tests drive a virtual clock.
#ifndef SCANRAW_COMMON_CLOCK_H_
#define SCANRAW_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace scanraw {

// Clock interface reporting time in nanoseconds since an arbitrary origin.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowNanos() const = 0;
  double NowSeconds() const { return static_cast<double>(NowNanos()) * 1e-9; }
};

// Monotonic wall clock.
class RealClock : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  // Process-wide instance; clocks are stateless so sharing is safe.
  static RealClock* Instance();
};

// Manually advanced clock for simulation and tests.
class VirtualClock : public Clock {
 public:
  int64_t NowNanos() const override { return now_nanos_; }
  void AdvanceNanos(int64_t delta) { now_nanos_ += delta; }
  void AdvanceSeconds(double s) {
    now_nanos_ += static_cast<int64_t>(s * 1e9);
  }
  void SetNanos(int64_t t) { now_nanos_ = t; }

 private:
  int64_t now_nanos_ = 0;
};

}  // namespace scanraw

#endif  // SCANRAW_COMMON_CLOCK_H_
