#include "common/status.h"

namespace scanraw {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code()));
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

}  // namespace scanraw
