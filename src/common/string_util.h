// Small string helpers shared by the library, tools and benchmarks.
#ifndef SCANRAW_COMMON_STRING_UTIL_H_
#define SCANRAW_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace scanraw {

// "1.5 GB", "640 KB", ... (powers of 1024).
std::string HumanBytes(uint64_t bytes);

// "12.34 s", "56.7 ms", ...
std::string HumanDuration(double seconds);

// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string_view> SplitString(std::string_view input,
                                          char delimiter);

// Fast unsigned decimal append (no locale, no allocation churn).
void AppendUint64(std::string* out, uint64_t value);

// printf-style into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace scanraw

#endif  // SCANRAW_COMMON_STRING_UTIL_H_
