// Clang thread-safety annotations plus an annotated Mutex/CondVar wrapper
// over the standard primitives. Under Clang, `-Wthread-safety -Werror` (on
// by default, see the top-level CMakeLists) turns the lock discipline of
// every concurrent structure — the DiskArbiter's READ/WRITE exclusion, the
// BoundedQueue backpressure, the shared cache and catalog state — into a
// compile-time capability analysis: touching a GUARDED_BY field without its
// mutex is a build error on every compile, not a TSan report on the
// interleavings the tests happened to exercise. Under GCC the macros expand
// to nothing and the wrappers are zero-cost pass-throughs, so TSan/ASan
// instrumentation and codegen are unchanged.
//
// On top of the per-class capability analysis, every Mutex declares a
// LockRank — its position in the whole-program acquisition order (see
// DESIGN.md "Lock hierarchy" for the full table and the reasoning behind
// each rank). The invariant: a thread may only acquire a mutex ranked
// strictly BELOW every mutex it already holds, and must never block (file
// I/O, condition waits on other locks) while holding anything ranked below
// LockRank::kIoBoundary. The rank order is enforced three ways:
//  - statically by tools/lock_graph.py over compile_commands.json (a CI
//    job; builds the may-hold-while-acquiring graph and fails on any cycle
//    or rank inversion);
//  - at runtime in debug/sanitizer builds (SCANRAW_LOCK_DEBUG) through the
//    lockdebug:: hooks below, which abort with both lock names and
//    acquisition backtraces on the first violating acquire;
//  - by tools/scanraw_lint.py, which rejects Mutex member declarations in
//    src/ that do not name a rank.
//
// ODR note: rank_/name_ are stored unconditionally and only the hook CALLS
// are gated on SCANRAW_LOCK_DEBUG, so Mutex/MutexLock have identical layout
// in every TU and a debug test TU can safely link against release-built
// libraries (header-only classes like BoundedQueue are instantiated in
// both).
//
// Conventions (see DESIGN.md "Static analysis & sanitizers"):
//  - every shared field is GUARDED_BY its mutex;
//  - private helpers called with the lock held are REQUIRES(mu_);
//  - raw std::mutex / std::condition_variable are banned in src/ outside
//    this header (enforced by tools/scanraw_lint.py); use Mutex, MutexLock
//    and CondVar;
//  - condition waits are written as explicit `while (!cond) cv.Wait(lock);`
//    loops so the guarded reads in the predicate are visible to the
//    analysis (a wait-predicate lambda is analyzed as an unrelated function
//    and would need an escape hatch).
#ifndef SCANRAW_COMMON_THREAD_ANNOTATIONS_H_
#define SCANRAW_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/lock_debug.h"

#if defined(__clang__)
#define SCANRAW_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SCANRAW_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// A type that models a capability (a mutex).
#define CAPABILITY(x) SCANRAW_THREAD_ANNOTATION(capability(x))
// An RAII type that acquires a capability in its constructor and releases
// it in its destructor.
#define SCOPED_CAPABILITY SCANRAW_THREAD_ANNOTATION(scoped_lockable)
// Data members protected by the given capability.
#define GUARDED_BY(x) SCANRAW_THREAD_ANNOTATION(guarded_by(x))
// Pointer members whose pointee is protected by the given capability.
#define PT_GUARDED_BY(x) SCANRAW_THREAD_ANNOTATION(pt_guarded_by(x))
// The function must be called with the capability held (and does not
// release it).
#define REQUIRES(...) \
  SCANRAW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// The function acquires / releases the capability.
#define ACQUIRE(...) SCANRAW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) SCANRAW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// The function acquires the capability when it returns `b`.
#define TRY_ACQUIRE(b, ...) \
  SCANRAW_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))
// The function must NOT be called with the capability held (deadlock
// prevention for public entry points that take the lock themselves).
#define EXCLUDES(...) SCANRAW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) SCANRAW_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch: disables the analysis for one function. Every use must
// carry a comment justifying it; tools/scanraw_lint.py and review keep the
// count at <= 3 repo-wide.
#define NO_THREAD_SAFETY_ANALYSIS \
  SCANRAW_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace scanraw {

// Whole-program lock acquisition order. Higher rank = outermost: a thread
// may acquire a mutex only if its rank is strictly below the rank of every
// mutex the thread already holds (so equal-rank nesting is also a
// violation). Locks ranked below kIoBoundary must never be held across a
// blocking call (file I/O, CondVar waits on other locks).
//
// Values are spaced so new classes slot in without renumbering. The full
// table with the observed nesting edges that justify each rank lives in
// DESIGN.md "Lock hierarchy"; tools/lock_graph.py re-derives the edges from
// the sources on every CI run, so a rank that drifts from reality fails the
// build rather than the 3am query server.
enum class LockRank : int {
  kUnranked = 0,  // rank not declared; exempt from checks, banned in src/

  // --- leaf tier: held only across in-memory state mutation ------------
  kLeaf = 100,             // misc leaf locks with no outgoing edges
  kParallelChunker = 110,  // ParallelFor join state (format/parallel_chunker)
  kMetrics = 120,          // obs::MetricsRegistry map
  kTimeSeriesRing = 140,   // obs::TimeSeriesRing buffer
  kTimeSeries = 160,       // obs::TimeSeries registry (holds ring locks)
  kChunkTracer = 180,      // obs::ChunkTracer event buffer
  kSpanProfiler = 200,     // obs::SpanProfiler span table
  kResourceLog = 210,      // obs::ResourceLog sample ring
  kResourceSampler = 220,  // obs::ResourceSampler thread state
  kProgressReporter = 230, // obs::ProgressReporter thread state
  kProgressTracker = 240,  // obs::ProgressTracker chunk bitmaps
  kSketches = 260,         // db::TableSketches per-chunk zone maps
  kWorkloadHistory = 280,  // obs::WorkloadHistory table stats
  kCatalog = 300,          // Catalog table map
  kFaultInjection = 310,   // FaultInjector config + counters
  kRateLimiter = 320,      // RateLimiter token bucket
  kDiskArbiter = 330,      // DiskArbiter reader/writer turnstile
  kPositionalMapCache = 350,  // PositionalMapCache map
  kChunkBufferPool = 360,  // ChunkBufferPool free list
  kChunkCache = 370,       // ChunkCache chunk map
  kBoundedQueue = 390,     // pipeline::BoundedQueue ring
  kThreadPool = 400,       // pipeline::ThreadPool task queue
  kScanInflight = 420,     // scan_raw.cc speculative in-flight set
  kScanStatus = 430,       // scan_raw.cc first-error latch
  kScanActive = 440,       // ScanRaw per-query profiling registry
  kScanSketched = 450,     // ScanRaw sketched-chunk set
  kScanWrite = 460,        // ScanRaw background-write completion latch
  kScanPending = 480,      // ScanRaw pending-write queue (holds catalog,
                           // chunk cache while marking chunks durable)

  // --- the I/O boundary -------------------------------------------------
  // Everything below this line is a hot-path in-memory lock: holding one
  // across a blocking syscall would stall every pipeline thread touching
  // that structure. Everything above is explicitly allowed to perform I/O
  // under its lock (serialized writers, control-plane singletons).
  kIoBoundary = 500,

  // --- I/O-capable tier: coarse locks that serialize slow paths ---------
  kLogger = 700,        // obs::Logger (writes to the JSONL sink under mu_)
  kStorageRead = 780,   // StorageManager reader cache (lazy file open)
  kStorageWrite = 800,  // StorageManager writer (appends segments)
  kWatchdog = 850,      // obs::Watchdog (logs + dumps flight under mu_)
  kStatsServer = 900,   // obs::StatsServer (socket syscalls under mu_)
  kQueryLog = 950,      // obs::QueryLog (file append + observer fan-out)
  kScanRawManager = 1000,  // ScanRawManager operator map (waits on, creates
                           // and queries operators under mu_): outermost
};

static_assert(static_cast<int>(LockRank::kIoBoundary) ==
                  lockdebug::kIoBoundaryRank,
              "LockRank::kIoBoundary must match lockdebug::kIoBoundaryRank");
static_assert(static_cast<int>(LockRank::kUnranked) ==
                  lockdebug::kUnrankedRank,
              "LockRank::kUnranked must match lockdebug::kUnrankedRank");

class CondVar;

// Annotated mutex. A thin wrapper over std::mutex so the capability
// analysis can name it; prefer the scoped MutexLock over manual
// Lock/Unlock. Declare members with a rank and a stable diagnostic name:
//   mutable Mutex mu_{LockRank::kChunkCache, "ChunkCache.mu"};
// The unranked default constructor exists for tests and scratch code; the
// mutex-rank lint rule keeps it out of src/.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank, const char* name = "")
      : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#if defined(SCANRAW_LOCK_DEBUG)
    lockdebug::OnAcquire(this, static_cast<int>(rank_), name_);
#endif
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
#if defined(SCANRAW_LOCK_DEBUG)
    lockdebug::OnRelease(this);
#endif
  }
  bool TryLock() TRY_ACQUIRE(true) {
    bool acquired = mu_.try_lock();
#if defined(SCANRAW_LOCK_DEBUG)
    if (acquired) {
      lockdebug::OnTryAcquire(this, static_cast<int>(rank_), name_);
    }
#endif
    return acquired;
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = "";
};

// RAII lock for Mutex (the scoped capability the analysis tracks).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu)
      : mu_(&mu), lock_(mu.mu_, std::defer_lock) {
#if defined(SCANRAW_LOCK_DEBUG)
    lockdebug::OnAcquire(mu_, static_cast<int>(mu.rank_), mu.name_);
#endif
    lock_.lock();
  }
  ~MutexLock() RELEASE() {
#if defined(SCANRAW_LOCK_DEBUG)
    if (lock_.owns_lock()) lockdebug::OnRelease(mu_);
#endif
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex* mu_;
  std::unique_lock<std::mutex> lock_;
};

// Condition variable bound to the annotated Mutex through MutexLock. Wait
// atomically releases and reacquires the lock; from the analysis's point of
// view the capability is held across the call, which is exactly the
// invariant the caller's wait loop relies on.
//
// A wait is a blocking call: in SCANRAW_LOCK_DEBUG builds it asserts the
// thread holds nothing below the I/O boundary other than the lock the wait
// itself releases.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) {
#if defined(SCANRAW_LOCK_DEBUG)
    lockdebug::AssertSafeToBlockExcept(lock.mu_, "CondVar::Wait");
#endif
    cv_.wait(lock.lock_);
  }

  // Timed wait; returns std::cv_status::timeout when the duration elapsed.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& dur) {
#if defined(SCANRAW_LOCK_DEBUG)
    lockdebug::AssertSafeToBlockExcept(lock.mu_, "CondVar::WaitFor");
#endif
    return cv_.wait_for(lock.lock_, dur);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace scanraw

#endif  // SCANRAW_COMMON_THREAD_ANNOTATIONS_H_
