// Clang thread-safety annotations plus an annotated Mutex/CondVar wrapper
// over the standard primitives. Under Clang, `-Wthread-safety -Werror` (on
// by default, see the top-level CMakeLists) turns the lock discipline of
// every concurrent structure — the DiskArbiter's READ/WRITE exclusion, the
// BoundedQueue backpressure, the shared cache and catalog state — into a
// compile-time capability analysis: touching a GUARDED_BY field without its
// mutex is a build error on every compile, not a TSan report on the
// interleavings the tests happened to exercise. Under GCC the macros expand
// to nothing and the wrappers are zero-cost pass-throughs, so TSan/ASan
// instrumentation and codegen are unchanged.
//
// Conventions (see DESIGN.md "Static analysis & sanitizers"):
//  - every shared field is GUARDED_BY its mutex;
//  - private helpers called with the lock held are REQUIRES(mu_);
//  - raw std::mutex / std::condition_variable are banned in src/ outside
//    this header (enforced by tools/scanraw_lint.py); use Mutex, MutexLock
//    and CondVar;
//  - condition waits are written as explicit `while (!cond) cv.Wait(lock);`
//    loops so the guarded reads in the predicate are visible to the
//    analysis (a wait-predicate lambda is analyzed as an unrelated function
//    and would need an escape hatch).
#ifndef SCANRAW_COMMON_THREAD_ANNOTATIONS_H_
#define SCANRAW_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define SCANRAW_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SCANRAW_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// A type that models a capability (a mutex).
#define CAPABILITY(x) SCANRAW_THREAD_ANNOTATION(capability(x))
// An RAII type that acquires a capability in its constructor and releases
// it in its destructor.
#define SCOPED_CAPABILITY SCANRAW_THREAD_ANNOTATION(scoped_lockable)
// Data members protected by the given capability.
#define GUARDED_BY(x) SCANRAW_THREAD_ANNOTATION(guarded_by(x))
// Pointer members whose pointee is protected by the given capability.
#define PT_GUARDED_BY(x) SCANRAW_THREAD_ANNOTATION(pt_guarded_by(x))
// The function must be called with the capability held (and does not
// release it).
#define REQUIRES(...) \
  SCANRAW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// The function acquires / releases the capability.
#define ACQUIRE(...) SCANRAW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) SCANRAW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// The function acquires the capability when it returns `b`.
#define TRY_ACQUIRE(b, ...) \
  SCANRAW_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))
// The function must NOT be called with the capability held (deadlock
// prevention for public entry points that take the lock themselves).
#define EXCLUDES(...) SCANRAW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) SCANRAW_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch: disables the analysis for one function. Every use must
// carry a comment justifying it; tools/scanraw_lint.py and review keep the
// count at <= 3 repo-wide.
#define NO_THREAD_SAFETY_ANALYSIS \
  SCANRAW_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace scanraw {

class CondVar;

// Annotated mutex. A thin wrapper over std::mutex so the capability
// analysis can name it; prefer the scoped MutexLock over manual
// Lock/Unlock.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

// RAII lock for Mutex (the scoped capability the analysis tracks).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// Condition variable bound to the annotated Mutex through MutexLock. Wait
// atomically releases and reacquires the lock; from the analysis's point of
// view the capability is held across the call, which is exactly the
// invariant the caller's wait loop relies on.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  // Timed wait; returns std::cv_status::timeout when the duration elapsed.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.lock_, dur);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace scanraw

#endif  // SCANRAW_COMMON_THREAD_ANNOTATIONS_H_
