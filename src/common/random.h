// Fast, seedable PRNG (xoshiro256**) used by the data generators and the
// property tests. Deterministic for a given seed on all platforms, unlike
// std::default_random_engine.
#ifndef SCANRAW_COMMON_RANDOM_H_
#define SCANRAW_COMMON_RANDOM_H_

#include <cstdint>

namespace scanraw {

class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding to spread low-entropy seeds over the full state.
    uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      uint64_t w = z;
      w = (w ^ (w >> 30)) * 0xBF58476D1CE4E5B9ull;
      w = (w ^ (w >> 27)) * 0x94D049BB133111EBull;
      s = w ^ (w >> 31);
    }
  }

  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint32_t NextUint32() { return static_cast<uint32_t>(NextUint64() >> 32); }

  // Uniform in [0, n); n must be > 0.
  uint64_t Uniform(uint64_t n) { return NextUint64() % n; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

}  // namespace scanraw

#endif  // SCANRAW_COMMON_RANDOM_H_
