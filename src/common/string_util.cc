#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace scanraw {

std::string HumanBytes(uint64_t bytes) {
  static const char* const kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string HumanDuration(double seconds) {
  char buf[32];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  }
  return buf;
}

std::vector<std::string_view> SplitString(std::string_view input,
                                          char delimiter) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.push_back(input.substr(start));
      break;
    }
    parts.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

void AppendUint64(std::string* out, uint64_t value) {
  char buf[20];
  int len = 0;
  do {
    buf[len++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  for (int i = len - 1; i >= 0; --i) out->push_back(buf[i]);
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  char stack_buf[256];
  va_list ap_copy;
  va_copy(ap_copy, ap);
  int needed = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, ap);
  va_end(ap);
  if (needed < 0) {
    va_end(ap_copy);
    return std::string();
  }
  if (static_cast<size_t>(needed) < sizeof(stack_buf)) {
    va_end(ap_copy);
    return std::string(stack_buf, needed);
  }
  std::string out(needed, '\0');
  std::vsnprintf(out.data(), needed + 1, fmt, ap_copy);
  va_end(ap_copy);
  return out;
}

}  // namespace scanraw
