#include "common/lock_debug.h"

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <mutex>
#include <vector>

#if defined(__GLIBC__)
#include <execinfo.h>  // backtrace / backtrace_symbols_fd
#include <unistd.h>
#define SCANRAW_LOCK_DEBUG_HAVE_BACKTRACE 1
#endif

// Implementation of the per-thread held-lock stacks. Compiled into
// scanraw_common unconditionally (see lock_debug.h for why); the per-lock
// hooks are only CALLED from TUs built with SCANRAW_LOCK_DEBUG, while the
// AssertSafeToBlock checks at I/O sites run in every build and see empty
// stacks when no debug TU is registering locks.
//
// This file uses raw std::mutex deliberately: the registry lock guards the
// machinery that scanraw::Mutex's own hooks run through, so using
// scanraw::Mutex here would recurse into OnAcquire.

namespace scanraw {
namespace lockdebug {
namespace {

constexpr int kMaxBacktraceFrames = 24;

struct HeldLock {
  const void* mu = nullptr;
  int rank = 0;
  const char* name = "";
  int frame_count = 0;
  void* frames[kMaxBacktraceFrames];
};

// One per thread, owned by a thread_local unique_ptr and registered
// globally so SnapshotAllThreads can walk every live thread's stack. The
// per-state mutex makes cross-thread snapshot reads race-free (TSan-clean):
// the owning thread takes it for the few instructions of a push/pop, the
// snapshotter takes it while copying.
struct ThreadState {
  std::mutex mu;  // scanraw-lint: allow(raw-mutex) sentinel internals
  std::vector<HeldLock> held;  // outermost first
  unsigned long tid = 0;
  bool live = true;
};

struct Registry {
  std::mutex mu;  // scanraw-lint: allow(raw-mutex) sentinel internals
  std::vector<ThreadState*> threads;
};

// Leaked on purpose: thread_local destructors can run after static
// destructors during shutdown, so the registry must outlive everything.
Registry* GlobalRegistry() {
  static Registry* registry = new Registry();
  return registry;
}

unsigned long CurrentTid() {
#if defined(__GLIBC__)
  return static_cast<unsigned long>(gettid());
#else
  return 0;
#endif
}

struct ThreadStateHandle {
  ThreadState* state;

  ThreadStateHandle() : state(new ThreadState()) {
    state->tid = CurrentTid();
    Registry* registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry->mu);
    registry->threads.push_back(state);
  }

  // The state itself is deliberately leaked (a dead thread's entry just
  // reads as empty); mark it dead so snapshots skip it.
  ~ThreadStateHandle() {
    std::lock_guard<std::mutex> lock(state->mu);
    state->held.clear();
    state->live = false;
  }
};

ThreadState& LocalState() {
  thread_local ThreadStateHandle handle;
  return *handle.state;
}

void CaptureBacktrace(HeldLock* entry) {
#if defined(SCANRAW_LOCK_DEBUG_HAVE_BACKTRACE)
  entry->frame_count = backtrace(entry->frames, kMaxBacktraceFrames);
#else
  entry->frame_count = 0;
#endif
}

void DumpBacktrace(const HeldLock& entry) {
#if defined(SCANRAW_LOCK_DEBUG_HAVE_BACKTRACE)
  if (entry.frame_count > 0) {
    backtrace_symbols_fd(entry.frames, entry.frame_count, STDERR_FILENO);
  }
#else
  (void)entry;
#endif
}

const char* DisplayName(const char* name) {
  return (name != nullptr && name[0] != '\0') ? name : "<unnamed>";
}

void DumpHeldStack(const ThreadState& state) {
  // scanraw-lint: allow(stderr-write) abort diagnostics
  std::fprintf(stderr, "  held locks (outermost first):\n");
  for (const HeldLock& held : state.held) {
    // scanraw-lint: allow(stderr-write) abort diagnostics
    std::fprintf(stderr, "    rank %4d  %-32s  (%p)\n", held.rank,
                 DisplayName(held.name), held.mu);
  }
}

[[noreturn]] void LockDisciplineAbort(const ThreadState& state,
                                      const char* kind,
                                      const HeldLock* blocking_entry,
                                      const HeldLock* new_entry,
                                      const char* what) {
  // scanraw-lint: allow(stderr-write) abort diagnostics
  std::fprintf(stderr,
               "\n=== scanraw lock discipline violation: %s (tid %lu) ===\n",
               kind, state.tid);
  if (new_entry != nullptr) {
    // scanraw-lint: allow(stderr-write) abort diagnostics
    std::fprintf(stderr, "  acquiring: rank %d  %s  (%p)\n", new_entry->rank,
                 DisplayName(new_entry->name), new_entry->mu);
  }
  if (what != nullptr) {
    // scanraw-lint: allow(stderr-write) abort diagnostics
    std::fprintf(stderr, "  blocking call: %s\n", what);
  }
  if (blocking_entry != nullptr) {
    // scanraw-lint: allow(stderr-write) abort diagnostics
    std::fprintf(stderr, "  while holding: rank %d  %s  (%p), acquired at:\n",
                 blocking_entry->rank, DisplayName(blocking_entry->name),
                 blocking_entry->mu);
    DumpBacktrace(*blocking_entry);
  }
  DumpHeldStack(state);
  // scanraw-lint: allow(stderr-write) abort diagnostics
  std::fprintf(stderr, "  current stack:\n");
#if defined(SCANRAW_LOCK_DEBUG_HAVE_BACKTRACE)
  {
    void* frames[kMaxBacktraceFrames];
    int n = backtrace(frames, kMaxBacktraceFrames);
    if (n > 0) backtrace_symbols_fd(frames, n, STDERR_FILENO);
  }
#endif
  // scanraw-lint: allow(stderr-write) abort diagnostics
  std::fprintf(stderr, "  (see DESIGN.md \"Lock hierarchy\")\n");
  std::fflush(stderr);
  std::abort();
}

void Push(ThreadState& state, const void* mu, int rank, const char* name) {
  HeldLock entry;
  entry.mu = mu;
  entry.rank = rank;
  entry.name = name;
  CaptureBacktrace(&entry);
  std::lock_guard<std::mutex> lock(state.mu);
  state.held.push_back(entry);
}

}  // namespace

void OnAcquire(const void* mu, int rank, const char* name) {
  ThreadState& state = LocalState();
  if (rank > kUnrankedRank) {
    // Snapshot-free check: only this thread mutates its own stack, so
    // reading it without state.mu here is fine (the lock exists for
    // cross-thread snapshot readers).
    for (const HeldLock& held : state.held) {
      // Strictly decreasing: equal ranks (including self-reacquisition,
      // which would self-deadlock on std::mutex) are violations too.
      if (held.rank > kUnrankedRank && held.rank <= rank) {
        HeldLock entry;
        entry.mu = mu;
        entry.rank = rank;
        entry.name = name;
        LockDisciplineAbort(state, "rank order violation", &held, &entry,
                            nullptr);
      }
    }
  }
  Push(state, mu, rank, name);
}

void OnTryAcquire(const void* mu, int rank, const char* name) {
  Push(LocalState(), mu, rank, name);
}

void OnRelease(const void* mu) {
  ThreadState& state = LocalState();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto it = state.held.rbegin(); it != state.held.rend(); ++it) {
    if (it->mu == mu) {
      state.held.erase(std::next(it).base());
      return;
    }
  }
}

void AssertSafeToBlockExcept(const void* released, const char* what) {
  ThreadState& state = LocalState();
  for (const HeldLock& held : state.held) {
    if (held.mu == released) continue;
    if (held.rank > kUnrankedRank && held.rank < kIoBoundaryRank) {
      LockDisciplineAbort(state, "blocking call below the I/O boundary",
                          &held, nullptr, what);
    }
  }
}

void AssertSafeToBlock(const char* what) {
  AssertSafeToBlockExcept(nullptr, what);
}

size_t HeldCount() {
  ThreadState& state = LocalState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.held.size();
}

std::string SnapshotAllThreads() {
  std::string out;
  Registry* registry = GlobalRegistry();
  std::lock_guard<std::mutex> registry_lock(registry->mu);
  for (ThreadState* state : registry->threads) {
    std::lock_guard<std::mutex> state_lock(state->mu);
    if (!state->live || state->held.empty()) continue;
    char line[160];
    std::snprintf(line, sizeof(line), "tid %lu holds:", state->tid);
    out += line;
    for (const HeldLock& held : state->held) {
      std::snprintf(line, sizeof(line), " [%d] %s", held.rank,
                    DisplayName(held.name));
      out += line;
    }
    out += "\n";
  }
  return out;
}

}  // namespace lockdebug
}  // namespace scanraw
