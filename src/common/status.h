// Status: lightweight error propagation without exceptions, in the style of
// LevelDB/RocksDB. Every fallible operation in the library returns a Status
// (or a Result<T>, see result.h) instead of throwing.
#ifndef SCANRAW_COMMON_STATUS_H_
#define SCANRAW_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace scanraw {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIoError = 3,
  kCorruption = 4,
  kAlreadyExists = 5,
  kOutOfRange = 6,
  kResourceExhausted = 7,
  kAborted = 8,
  kUnimplemented = 9,
  kInternal = 10,
};

// Returns a stable human-readable name, e.g. "IoError".
std::string_view StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  // Creates an OK status. The common case allocates nothing.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_unique<Rep>(Rep{code, std::move(message)})) {}

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  // "OK" or "IoError: <message>".
  std::string ToString() const;

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;  // null means OK
};

// Propagates a non-OK status to the caller.
#define SCANRAW_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::scanraw::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

}  // namespace scanraw

#endif  // SCANRAW_COMMON_STATUS_H_
