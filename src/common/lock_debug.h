// Runtime half of the lock-discipline subsystem (see DESIGN.md "Lock
// hierarchy"). Every Mutex declares a LockRank; in debug/sanitizer builds
// (SCANRAW_LOCK_DEBUG) the annotated Mutex/MutexLock/CondVar wrappers call
// the hooks below to maintain a per-thread held-lock stack and enforce two
// invariants that Clang's capability analysis cannot see:
//
//  1. Rank monotonicity: a thread may only acquire a mutex whose rank is
//     strictly below every rank it already holds. Any ABBA deadlock between
//     ranked mutexes implies one thread acquired upward, so enforcing the
//     order on every acquire makes cross-class deadlock impossible on any
//     schedule — not just the interleavings TSan happened to observe.
//  2. The I/O boundary: a thread holding any lock ranked below
//     LockRank::kIoBoundary must never block (file I/O, CondVar waits on
//     other locks). Low-ranked locks are leaf locks on hot paths; blocking
//     under one stalls every thread that touches that structure.
//
// The hooks are free functions (not Mutex methods) so the call sites in
// thread_annotations.h can be compiled out per-TU while the implementation
// stays in the always-built scanraw_common library: blocking sites such as
// io/file.cc call AssertSafeToBlock unconditionally — with no debug TU
// registering locks the held stacks stay empty and the check is a
// thread-local read plus a predictable branch, far below measurement noise
// on a syscall path (the introspection_overhead gate enforces this).
//
// A violation prints both lock names, both acquisition backtraces, and the
// full held-lock stack to stderr, then aborts — the report is the artifact,
// the abort makes CI red.
#ifndef SCANRAW_COMMON_LOCK_DEBUG_H_
#define SCANRAW_COMMON_LOCK_DEBUG_H_

#include <cstddef>
#include <string>

namespace scanraw {
namespace lockdebug {

// Numeric value of LockRank::kIoBoundary; static_assert-matched in
// thread_annotations.h so the two definitions cannot drift.
inline constexpr int kIoBoundaryRank = 500;

// Ranks <= kUnrankedRank are exempt from ordering checks (rank not
// declared; the mutex-rank lint rule keeps these out of src/).
inline constexpr int kUnrankedRank = 0;

// Called by Mutex::Lock BEFORE blocking on the underlying mutex: asserts
// rank monotonicity against the calling thread's held stack (aborting with
// a full report on violation), then pushes the entry. Checking before the
// blocking lock() means a would-be ABBA reports instead of deadlocking.
void OnAcquire(const void* mu, int rank, const char* name);

// Called by Mutex::TryLock after a successful try_lock. A try-acquire
// cannot deadlock, so the rank check is skipped; the entry is still pushed
// so blocking-call detection sees it.
void OnTryAcquire(const void* mu, int rank, const char* name);

// Called by Mutex::Unlock / ~MutexLock: pops the entry (searched from the
// top, so out-of-order manual unlock still balances).
void OnRelease(const void* mu);

// Blocking-call detection: aborts if the calling thread holds any lock
// with 0 < rank < kIoBoundaryRank. Call at every site that can block on
// the outside world (file read/write/sync, socket waits).
void AssertSafeToBlock(const char* what);

// Same, but exempts `released` — the mutex a CondVar wait atomically
// releases is not held for the duration of the block.
void AssertSafeToBlockExcept(const void* released, const char* what);

// Number of locks the calling thread currently holds (test hook).
size_t HeldCount();

// Human-readable snapshot of every registered thread's held-lock stack,
// outermost first; empty string when no thread holds a ranked lock. The
// watchdog feeds this into its stall report so a post-mortem shows who
// held what when a stage froze.
std::string SnapshotAllThreads();

}  // namespace lockdebug
}  // namespace scanraw

#endif  // SCANRAW_COMMON_LOCK_DEBUG_H_
