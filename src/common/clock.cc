#include "common/clock.h"

namespace scanraw {

RealClock* RealClock::Instance() {
  static RealClock* const kInstance = new RealClock();
  return kInstance;
}

}  // namespace scanraw
