#include "sim/pipeline_sim.h"

#include <algorithm>
#include <deque>

#include "common/random.h"
#include "scanraw/chunk_cache.h"

namespace scanraw {

namespace {

enum class TaskKind { kEngine, kDiskRead, kDiskWrite, kTokenize, kParse };

struct Task {
  double done_at = 0;
  TaskKind kind;
  size_t chunk = 0;
  bool db_read = false;
};

struct ReadOp {
  size_t chunk = 0;
  bool is_db = false;
};

// A resident-set stand-in: the simulator reuses the real ChunkCache policy
// object with one shared empty payload.
BinaryChunkPtr DummyChunk() {
  static const BinaryChunkPtr kChunk = std::make_shared<const BinaryChunk>(0);
  return kChunk;
}

// Fully sequential execution (workers == 0): READ, TOKENIZE, PARSE and
// WRITE are not separated into threads — chunks go through the stages one
// at a time (§5.1, "zero worker threads correspond to sequential
// execution"). Speculative loading degenerates to full loading: with no
// asynchronous threads there is no overlap to exploit, and every converted
// chunk is written in line.
SimResult SimulateSequential(const SimConfig& config,
                             const std::vector<ReadOp>& reads,
                             size_t cached_count) {
  SimResult result;
  result.loaded_after.assign(config.num_chunks, 0);
  result.cached_after.assign(config.num_chunks, 0);
  for (size_t i = 0; i < config.num_chunks; ++i) {
    if (!config.initially_loaded.empty()) {
      result.loaded_after[i] = config.initially_loaded[i];
    }
  }
  ChunkCache cache(config.cache_chunks, config.bias_evict_loaded);
  for (size_t i = 0; i < config.num_chunks; ++i) {
    if (!config.initially_cached.empty() && config.initially_cached[i]) {
      cache.Insert(i, DummyChunk(),
                   !config.initially_loaded.empty() &&
                       config.initially_loaded[i]);
    }
  }

  double t = 0;
  size_t invisible_left = config.invisible_chunks_per_query;
  result.chunks_from_cache = cached_count;
  Random failure_rng(config.failure_seed);
  auto write_chunk = [&](size_t chunk) {
    t += config.costs.write_s;
    // Reserve the chunk either way so a failed write is not retried within
    // this query (the real operator backs off instead of spinning).
    cache.MarkLoaded(chunk);
    if (config.write_failure_rate > 0 &&
        failure_rng.NextDouble() < config.write_failure_rate) {
      ++result.writes_failed;
      return;
    }
    result.loaded_after[chunk] = 1;
    ++result.chunks_written_at_exec;
    ++result.chunks_written_total;
  };
  for (const ReadOp& op : reads) {
    if (op.is_db) {
      t += config.costs.write_s;  // binary read costs what the write did
      ++result.chunks_from_db;
      continue;
    }
    t += config.costs.read_s + config.costs.tokenize_s +
         config.costs.parse_s + 2 * config.dispatch_overhead_s;
    ++result.chunks_from_raw;
    auto evicted = cache.Insert(op.chunk, DummyChunk(), false);
    switch (config.policy) {
      case LoadPolicy::kFullLoad:
      case LoadPolicy::kSpeculativeLoading:
        if (!result.loaded_after[op.chunk]) write_chunk(op.chunk);
        break;
      case LoadPolicy::kInvisibleLoading:
        if (invisible_left > 0 && !result.loaded_after[op.chunk]) {
          --invisible_left;
          write_chunk(op.chunk);
        }
        break;
      case LoadPolicy::kBufferedLoading:
        for (const auto& ev : evicted) {
          if (!ev.was_loaded && !result.loaded_after[ev.chunk_index]) {
            write_chunk(ev.chunk_index);
          }
        }
        break;
      case LoadPolicy::kExternalTables:
        break;
    }
  }
  // Safeguard: flush cached chunks left unloaded (e.g. carried over from a
  // previous query in a sequence).
  if ((config.policy == LoadPolicy::kSpeculativeLoading && config.safeguard) ||
      config.policy == LoadPolicy::kFullLoad) {
    while (auto victim = cache.OldestUnloaded()) {
      write_chunk(victim->first);
    }
  }
  // The engine overlaps with conversion; it only adds its last service time.
  result.exec_seconds = t + config.costs.engine_s;
  result.writes_drained_seconds = result.exec_seconds;
  for (uint64_t idx : cache.ResidentChunks()) result.cached_after[idx] = 1;
  return result;
}

}  // namespace

SimResult SimulatePipeline(const SimConfig& config) {
  // ---- classification: cached -> db -> raw (§3.2.1 delivery order) ----
  std::vector<size_t> cached_chunks;
  std::vector<ReadOp> reads;
  for (size_t i = 0; i < config.num_chunks; ++i) {
    const bool loaded =
        !config.initially_loaded.empty() && config.initially_loaded[i];
    const bool resident =
        !config.initially_cached.empty() && config.initially_cached[i];
    if (resident) {
      cached_chunks.push_back(i);
    } else if (loaded) {
      reads.push_back(ReadOp{i, true});
    }
  }
  for (size_t i = 0; i < config.num_chunks; ++i) {
    const bool loaded =
        !config.initially_loaded.empty() && config.initially_loaded[i];
    const bool resident =
        !config.initially_cached.empty() && config.initially_cached[i];
    if (!resident && !loaded) reads.push_back(ReadOp{i, false});
  }

  if (config.workers == 0) {
    return SimulateSequential(config, reads, cached_chunks.size());
  }

  SimResult result;
  result.loaded_after.assign(config.num_chunks, 0);
  result.cached_after.assign(config.num_chunks, 0);
  std::vector<uint8_t> pending_write(config.num_chunks, 0);
  for (size_t i = 0; i < config.num_chunks; ++i) {
    if (!config.initially_loaded.empty()) {
      result.loaded_after[i] = config.initially_loaded[i];
    }
  }

  ChunkCache cache(config.cache_chunks, config.bias_evict_loaded);
  for (size_t i : cached_chunks) {
    cache.Insert(i, DummyChunk(), result.loaded_after[i] != 0);
  }

  const size_t to_deliver = config.num_chunks;
  double t = 0;
  std::vector<Task> active;
  std::deque<size_t> text_q;   // chunk ids awaiting tokenize
  std::deque<size_t> pos_q;    // chunk ids awaiting parse
  std::deque<size_t> write_q;  // explicit write requests (non-speculative)
  size_t next_read = 0;
  size_t busy_workers = 0;
  size_t tokenize_inflight = 0;
  bool engine_busy = false;
  bool disk_busy = false;
  int disk_mode = 0;  // 1 read, 2 write
  size_t engine_pending = 0;
  size_t engine_processed = 0;
  size_t invisible_left = config.invisible_chunks_per_query;
  bool exec_recorded = false;
  Random failure_rng(config.failure_seed);

  // Initial deliveries from the cache.
  result.chunks_from_cache = cached_chunks.size();
  for (size_t chunk : cached_chunks) {
    ++engine_pending;
    if (config.policy == LoadPolicy::kInvisibleLoading &&
        invisible_left > 0 && !result.loaded_after[chunk] &&
        !pending_write[chunk]) {
      --invisible_left;
      pending_write[chunk] = 1;
      write_q.push_back(chunk);
    }
  }

  auto handle_evictions = [&](const std::vector<EvictedChunk>& evicted) {
    if (config.policy != LoadPolicy::kBufferedLoading) return;
    for (const auto& ev : evicted) {
      if (!ev.was_loaded && !result.loaded_after[ev.chunk_index] &&
          !pending_write[ev.chunk_index]) {
        pending_write[ev.chunk_index] = 1;
        write_q.push_back(ev.chunk_index);
      }
    }
  };

  auto reads_done = [&] { return next_read >= reads.size(); };

  // Returns true if a disk write was started.
  auto try_start_write = [&]() -> bool {
    size_t victim = 0;
    bool have = false;
    if (config.policy == LoadPolicy::kSpeculativeLoading) {
      auto oldest = cache.OldestUnloaded();
      if (oldest.has_value()) {
        victim = oldest->first;
        have = true;
      }
    } else if (!write_q.empty()) {
      victim = write_q.front();
      write_q.pop_front();
      have = true;
    }
    if (!have) return false;
    // Reserve the chunk so the next trigger does not pick it again.
    cache.MarkLoaded(victim);
    disk_busy = true;
    disk_mode = 2;
    active.push_back(Task{t + config.costs.write_s, TaskKind::kDiskWrite,
                          victim, false});
    return true;
  };

  auto try_start = [&] {
    bool progress = true;
    while (progress) {
      progress = false;
      // Execution engine (single consumer).
      if (!engine_busy && engine_pending > 0) {
        engine_busy = true;
        --engine_pending;
        active.push_back(
            Task{t + config.costs.engine_s, TaskKind::kEngine, 0, false});
        progress = true;
      }
      // Worker assignment: PARSE drains first (keeps the pipeline moving),
      // TOKENIZE only when the position buffer has room (§3.2.1: a worker
      // is allocated only if there is empty space in the destination).
      while (busy_workers < config.workers) {
        if (!pos_q.empty()) {
          const size_t chunk = pos_q.front();
          pos_q.pop_front();
          ++busy_workers;
          active.push_back(Task{
              t + config.costs.parse_s + config.dispatch_overhead_s,
              TaskKind::kParse, chunk, false});
          progress = true;
        } else if (!text_q.empty() &&
                   pos_q.size() + tokenize_inflight <
                       config.position_buffer) {
          const size_t chunk = text_q.front();
          text_q.pop_front();
          ++busy_workers;
          ++tokenize_inflight;
          active.push_back(Task{
              t + config.costs.tokenize_s + config.dispatch_overhead_s,
              TaskKind::kTokenize, chunk, false});
          progress = true;
        } else {
          break;
        }
      }
      // Disk: READ has priority; WRITE runs when READ is blocked or done.
      if (!disk_busy) {
        bool read_blocked = false;
        if (!reads_done()) {
          const ReadOp& op = reads[next_read];
          if (op.is_db || text_q.size() < config.text_buffer) {
            ++next_read;
            disk_busy = true;
            disk_mode = 1;
            const double duration =
                op.is_db ? config.costs.write_s : config.costs.read_s;
            active.push_back(
                Task{t + duration, TaskKind::kDiskRead, op.chunk, op.is_db});
            progress = true;
          } else {
            read_blocked = true;
          }
        }
        if (!disk_busy) {
          bool want_write = false;
          if (config.policy == LoadPolicy::kSpeculativeLoading) {
            // Trigger on a blocked READ (§4); after end-of-scan the
            // safeguard keeps flushing the unloaded cache tail.
            want_write = read_blocked || (reads_done() && config.safeguard);
          } else {
            want_write = !write_q.empty() && (read_blocked || reads_done());
          }
          if (want_write && try_start_write()) progress = true;
        }
      }
    }
  };

  auto all_writes_drained = [&] {
    return write_q.empty() &&
           !(disk_busy && disk_mode == 2) &&
           (config.policy != LoadPolicy::kSpeculativeLoading ||
            !config.safeguard || !cache.OldestUnloaded().has_value());
  };

  while (true) {
    try_start();
    if (active.empty()) break;
    // Pop the earliest completion.
    size_t best = 0;
    for (size_t i = 1; i < active.size(); ++i) {
      if (active[i].done_at < active[best].done_at) best = i;
    }
    Task task = active[best];
    active.erase(active.begin() + best);
    if (config.record_trace && task.done_at > t) {
      result.trace.push_back(UtilSample{
          t, task.done_at, static_cast<int>(busy_workers), disk_mode});
    }
    t = task.done_at;
    switch (task.kind) {
      case TaskKind::kEngine:
        engine_busy = false;
        ++engine_processed;
        break;
      case TaskKind::kDiskRead:
        disk_busy = false;
        disk_mode = 0;
        if (task.db_read) {
          ++result.chunks_from_db;
          handle_evictions(cache.Insert(task.chunk, DummyChunk(), true));
          ++engine_pending;
        } else {
          ++result.chunks_from_raw;
          text_q.push_back(task.chunk);
        }
        break;
      case TaskKind::kTokenize:
        --busy_workers;
        --tokenize_inflight;
        pos_q.push_back(task.chunk);
        break;
      case TaskKind::kParse: {
        --busy_workers;
        handle_evictions(cache.Insert(task.chunk, DummyChunk(), false));
        switch (config.policy) {
          case LoadPolicy::kFullLoad:
            if (!result.loaded_after[task.chunk] &&
                !pending_write[task.chunk]) {
              pending_write[task.chunk] = 1;
              write_q.push_back(task.chunk);
            }
            break;
          case LoadPolicy::kInvisibleLoading:
            if (invisible_left > 0 && !result.loaded_after[task.chunk] &&
                !pending_write[task.chunk]) {
              --invisible_left;
              pending_write[task.chunk] = 1;
              write_q.push_back(task.chunk);
            }
            break;
          default:
            break;
        }
        ++engine_pending;
        break;
      }
      case TaskKind::kDiskWrite:
        disk_busy = false;
        disk_mode = 0;
        if (config.write_failure_rate > 0 &&
            failure_rng.NextDouble() < config.write_failure_rate) {
          // The chunk stays unloaded; its cache reservation stands so this
          // query does not retry it (the real operator backs off instead).
          ++result.writes_failed;
          break;
        }
        result.loaded_after[task.chunk] = 1;
        ++result.chunks_written_total;
        if (!exec_recorded) ++result.chunks_written_at_exec;
        break;
    }
    // Query completion check.
    if (!exec_recorded && engine_processed == to_deliver && !engine_busy) {
      const bool sync_loading =
          config.policy == LoadPolicy::kFullLoad ||
          config.policy == LoadPolicy::kInvisibleLoading;
      if (!sync_loading || all_writes_drained()) {
        result.exec_seconds = t;
        exec_recorded = true;
      }
    }
    if (exec_recorded && all_writes_drained()) {
      result.writes_drained_seconds = t;
      break;
    }
  }
  if (!exec_recorded) result.exec_seconds = t;
  if (result.writes_drained_seconds < result.exec_seconds) {
    result.writes_drained_seconds = result.exec_seconds;
  }
  for (uint64_t idx : cache.ResidentChunks()) result.cached_after[idx] = 1;
  return result;
}

std::vector<SimResult> SimulateQuerySequence(SimConfig config,
                                             size_t num_queries) {
  std::vector<SimResult> results;
  results.reserve(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    SimResult r = SimulatePipeline(config);
    config.initially_loaded = r.loaded_after;
    config.initially_cached = r.cached_after;
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace scanraw
