#include "sim/calibrate.h"

#include "common/clock.h"
#include "common/random.h"
#include "common/string_util.h"
#include "format/parser.h"
#include "format/tokenizer.h"

namespace scanraw {

uint64_t EstimateTextBytesPerRow(size_t num_columns) {
  // Uniform uint32 below 2^31: ~9.3 decimal digits on average, plus a
  // delimiter (or newline) per column.
  return static_cast<uint64_t>(num_columns) * 10 +
         static_cast<uint64_t>(num_columns) / 3;
}

ChunkCosts PaperChunkCosts(const CostModelInput& input) {
  constexpr double kTokenizeNsPerByte = 4.4;
  constexpr double kParseNsPerCell = 90.0;
  constexpr double kEngineNsPerBinaryByte = 1.0;
  // Per-cell parse cost grows with the column count (appending into
  // hundreds of column vectors thrashes the cache); this reproduces Figure
  // 5b's falling I/O share — ~45% at 2 columns down to ~20% at 256 — and
  // makes the 256-column Figure 9 run CPU-bound at 8 workers, as measured.
  const double parse_ns_per_cell =
      kParseNsPerCell * (1.0 + static_cast<double>(input.num_columns) / 256.0);

  const double text_bytes = static_cast<double>(
      EstimateTextBytesPerRow(input.num_columns) * input.rows_per_chunk);
  const double cells = static_cast<double>(input.num_columns) *
                       static_cast<double>(input.rows_per_chunk);
  const double binary_bytes = cells * 4.0;
  const double bw = static_cast<double>(input.disk_bandwidth);

  ChunkCosts costs;
  costs.read_s = text_bytes / bw;
  costs.write_s = binary_bytes / bw;
  costs.tokenize_s = text_bytes * kTokenizeNsPerByte * 1e-9;
  costs.parse_s = cells * parse_ns_per_cell * 1e-9;
  costs.engine_s = binary_bytes * kEngineNsPerBinaryByte * 1e-9;
  return costs;
}

Result<ChunkCosts> CalibrateChunkCosts(const CostModelInput& input,
                                       uint64_t sample_rows) {
  if (sample_rows == 0) {
    return Status::InvalidArgument("sample_rows must be > 0");
  }
  // Build a representative text chunk in memory.
  Random rng(7);
  std::string data;
  data.reserve(sample_rows * EstimateTextBytesPerRow(input.num_columns));
  for (uint64_t r = 0; r < sample_rows; ++r) {
    for (size_t c = 0; c < input.num_columns; ++c) {
      if (c > 0) data.push_back(',');
      AppendUint64(&data, rng.NextUint32() & 0x7FFFFFFFu);
    }
    data.push_back('\n');
  }
  const double sample_bytes = static_cast<double>(data.size());
  TextChunk chunk = MakeTextChunk(std::move(data));
  const Schema schema = Schema::AllUint32(input.num_columns);

  TokenizeOptions topts;
  topts.delimiter = ',';
  topts.schema_fields = input.num_columns;

  RealClock clock;
  const int64_t t0 = clock.NowNanos();
  auto map = TokenizeChunk(chunk, topts);
  if (!map.ok()) return map.status();
  const int64_t t1 = clock.NowNanos();
  auto parsed = ParseChunk(chunk, *map, schema, ParseOptions{});
  if (!parsed.ok()) return parsed.status();
  const int64_t t2 = clock.NowNanos();

  const double scale = static_cast<double>(input.rows_per_chunk) /
                       static_cast<double>(sample_rows);
  const double text_bytes = sample_bytes * scale;
  const double binary_bytes = static_cast<double>(input.num_columns) *
                              static_cast<double>(input.rows_per_chunk) * 4.0;
  const double bw = static_cast<double>(input.disk_bandwidth);

  ChunkCosts costs;
  costs.read_s = text_bytes / bw;
  costs.write_s = binary_bytes / bw;
  costs.tokenize_s = static_cast<double>(t1 - t0) * 1e-9 * scale;
  costs.parse_s = static_cast<double>(t2 - t1) * 1e-9 * scale;
  costs.engine_s = binary_bytes * 1e-9;  // ~1 ns/byte, as in the paper model
  return costs;
}

}  // namespace scanraw
