// Discrete-event simulation of the SCANRAW pipeline at testbed scale.
//
// The paper's crossovers (I/O- vs CPU-bound at ~6 workers, Figure 4; chunk
// size sweet spot, Figure 7; READ/WRITE alternation, Figure 9) are functions
// of (per-chunk stage cost) x (cores) / (disk bandwidth), not of absolute
// speed. This simulator reproduces exactly the scheduling rules of the real
// operator — exclusive disk, bounded buffers, dynamic worker assignment,
// speculative WRITE triggered when READ blocks, safeguard flush — over a
// cost model calibrated from the real tokenizer/parser (see calibrate.h),
// so the figure *shapes* can be regenerated with 16 virtual cores and the
// paper's 436 MB/s disk on any host.
#ifndef SCANRAW_SIM_PIPELINE_SIM_H_
#define SCANRAW_SIM_PIPELINE_SIM_H_

#include <cstdint>
#include <vector>

#include "scanraw/options.h"

namespace scanraw {

// Per-chunk stage durations in seconds (single core / exclusive disk).
struct ChunkCosts {
  double read_s = 0;      // raw text read
  double tokenize_s = 0;  // one worker
  double parse_s = 0;     // one worker
  double engine_s = 0;    // execution engine service time
  double write_s = 0;     // binary write (== binary re-read cost)
};

struct SimConfig {
  size_t num_chunks = 0;
  size_t workers = 8;            // 0 = fully sequential (paper's leftmost x)
  size_t text_buffer = 8;
  size_t position_buffer = 8;
  size_t cache_chunks = 32;
  bool bias_evict_loaded = true;
  LoadPolicy policy = LoadPolicy::kSpeculativeLoading;
  bool safeguard = true;
  size_t invisible_chunks_per_query = 2;
  ChunkCosts costs;
  // Fixed scheduling overhead charged to every worker task — the dynamic
  // worker-allocation cost the paper says the chunk size must hide
  // (Figure 7: "large enough to hide the overhead introduced by the
  // dynamic allocation of tasks"). The default is fitted so the optimal
  // chunk size lands in the paper's reported 2^17–2^19 row range.
  double dispatch_overhead_s = 30e-3;
  // Fault model: each disk WRITE independently fails with this probability
  // (drawn from a deterministic stream seeded by failure_seed). A failed
  // write leaves the chunk unloaded — future queries re-extract it from the
  // raw side, mirroring the real operator's graceful degradation — and the
  // disk time of the attempt is still charged.
  double write_failure_rate = 0;
  uint64_t failure_seed = 1;
  // Chunk state carried across queries in a sequence: loaded[i] — in the
  // database; cached[i] — resident in the binary cache. Empty = cold start.
  std::vector<uint8_t> initially_loaded;
  std::vector<uint8_t> initially_cached;
  bool record_trace = false;
};

// One homogeneous interval of the execution.
struct UtilSample {
  double t0 = 0;
  double t1 = 0;
  int busy_workers = 0;
  int disk = 0;  // 0 idle, 1 reading, 2 writing
};

struct SimResult {
  // Query completion: engine consumed every chunk (plus write drain for the
  // synchronous-loading policies, as in the real operator).
  double exec_seconds = 0;
  // When the last background write finished (>= exec_seconds).
  double writes_drained_seconds = 0;
  // Chunks whose write completed by exec_seconds / in total.
  size_t chunks_written_at_exec = 0;
  size_t chunks_written_total = 0;
  size_t chunks_from_cache = 0;
  size_t chunks_from_db = 0;
  size_t chunks_from_raw = 0;
  // Writes that failed under SimConfig::write_failure_rate; the chunks stay
  // unloaded.
  size_t writes_failed = 0;
  std::vector<uint8_t> loaded_after;  // after write drain
  std::vector<uint8_t> cached_after;
  std::vector<UtilSample> trace;      // only when record_trace
};

SimResult SimulatePipeline(const SimConfig& config);

// Runs a sequence of identical queries, carrying loaded/cached chunk state
// between them (the Figure 8 experiment). Returns one SimResult per query.
std::vector<SimResult> SimulateQuerySequence(SimConfig config,
                                             size_t num_queries);

}  // namespace scanraw

#endif  // SCANRAW_SIM_PIPELINE_SIM_H_
