// Cost models feeding the pipeline simulator.
//
// Two sources are provided: PaperChunkCosts is an analytical model anchored
// to the per-stage numbers the paper reports for its testbed (Figure 5a on
// 2x AMD Opteron 6128, 436 MB/s RAID-0) — this is what the figure benches
// use so the simulated crossovers land where the paper's did. Host
// calibration (CalibrateChunkCosts) times the real tokenizer/parser on this
// machine instead, for comparing the model against live hardware.
#ifndef SCANRAW_SIM_CALIBRATE_H_
#define SCANRAW_SIM_CALIBRATE_H_

#include <cstdint>

#include "common/result.h"
#include "sim/pipeline_sim.h"

namespace scanraw {

struct CostModelInput {
  size_t num_columns = 64;
  uint64_t rows_per_chunk = 1 << 19;
  // Disk bandwidth in bytes/second; the paper's array averages 436 MB/s.
  uint64_t disk_bandwidth = 436ull << 20;
};

// Bytes of one text row: uint32 values below 2^31 average ~9.3 digits plus
// one delimiter per column.
uint64_t EstimateTextBytesPerRow(size_t num_columns);

// Analytical testbed model. Anchors (from Figure 5a at 64 columns,
// 2^19-row chunks): TOKENIZE ~4.4 ns/byte, PARSE ~90 ns/cell,
// engine ~1 ns/binary byte; READ/WRITE at the disk bandwidth.
ChunkCosts PaperChunkCosts(const CostModelInput& input);

// Measures the real TOKENIZE/PARSE implementations on generated in-memory
// data (sample_rows rows, scaled to rows_per_chunk) and combines them with
// the configured disk bandwidth.
Result<ChunkCosts> CalibrateChunkCosts(const CostModelInput& input,
                                       uint64_t sample_rows = 16384);

}  // namespace scanraw

#endif  // SCANRAW_SIM_CALIBRATE_H_
