// BAM-like binary container and its access library (the BAMTools stand-in
// of §5.2). The format is block-compressed binary: varint-coded numeric
// fields, 2-bit-packed sequences, run-length-coded qualities, and an XOR
// keystream *chained across blocks* — each block's key derives from the
// previous block's checksum, so decoding is inherently sequential, exactly
// the property that made BAMTools CPU-bound in the paper (Table 1: "file
// data access and decompression are sequential and handled inside
// BAMTools").
#ifndef SCANRAW_GENOMICS_BAM_LIKE_H_
#define SCANRAW_GENOMICS_BAM_LIKE_H_

#include <memory>
#include <vector>
#include <string>

#include "common/result.h"
#include "exec/query.h"
#include "genomics/sam.h"
#include "io/file.h"

namespace scanraw {

class RateLimiter;

struct BamFileInfo {
  uint64_t num_reads = 0;
  uint64_t file_bytes = 0;
};

// Writes the same record sequence GenerateSamFile(spec) produces, in the
// BAM-like binary format. `records_per_block` is the block granularity.
Result<BamFileInfo> GenerateBamFile(const std::string& path,
                                    const SamGenSpec& spec,
                                    uint64_t records_per_block = 4096);

// BAI-like companion index (§2: "BAI files are indexes built on top of BAM
// files"): per block, its byte offset, record count, first record index,
// and the keystream chain state — exactly the side information needed to
// start decoding mid-file instead of replaying every previous block.
struct BamBlockEntry {
  uint64_t file_offset = 0;
  uint64_t first_record = 0;
  uint32_t record_count = 0;
  uint64_t chain_state = 0;  // keystream state entering this block
};

struct BamIndex {
  uint64_t num_reads = 0;
  std::vector<BamBlockEntry> blocks;

  // Index of the block containing `record`, or blocks.size() if out of
  // range.
  size_t BlockForRecord(uint64_t record) const;
};

// Writes the index next to the BAM-like file ("<bam path>.bai").
Result<BamIndex> WriteBamIndex(const std::string& bam_path);
Result<BamIndex> LoadBamIndex(const std::string& bai_path);

// Sequential reader — the "generic file access library" interface. By
// construction it cannot skip ahead or decode blocks in parallel. With a
// BAI-like index, SeekToRecord jumps to the containing block using the
// recorded chain state.
class BamReader {
 public:
  static Result<std::unique_ptr<BamReader>> Open(
      const std::string& path, RateLimiter* limiter = nullptr,
      IoStats* stats = nullptr);

  // Positions the reader so the next NextRecord returns record `record`
  // (decoding skips the earlier records of the containing block only).
  Status SeekToRecord(const BamIndex& index, uint64_t record);

  // Reads the next record. Returns false at end of file.
  Result<bool> NextRecord(SamRecord* record);

  uint64_t num_reads() const { return num_reads_; }

 private:
  BamReader(std::unique_ptr<RandomAccessFile> file, uint64_t num_reads);

  Status LoadNextBlock();

  std::unique_ptr<RandomAccessFile> file_;
  uint64_t num_reads_ = 0;
  uint64_t file_pos_ = 0;
  uint64_t chain_state_ = 0;   // keystream seed carried across blocks
  std::string block_;          // decoded current block
  size_t block_pos_ = 0;
  uint32_t block_records_left_ = 0;
  uint32_t pending_skip_ = 0;  // records to discard after a seek
};

// MAP-only ScanRaw integration (§5.2): pulls records through the sequential
// library and maps them into binary chunks for the execution engine.
class BamChunkStream : public ChunkStream {
 public:
  BamChunkStream(std::unique_ptr<BamReader> reader, size_t chunk_rows);
  Result<std::optional<BinaryChunkPtr>> Next() override;

 private:
  std::unique_ptr<BamReader> reader_;
  const size_t chunk_rows_;
  uint64_t next_chunk_index_ = 0;
  bool done_ = false;
};

// Maps a batch of records into the SAM-schema binary representation (the
// MAP stage: no tokenizing, no parsing).
BinaryChunk MapRecordsToChunk(const std::vector<SamRecord>& records,
                              uint64_t chunk_index);

}  // namespace scanraw

#endif  // SCANRAW_GENOMICS_BAM_LIKE_H_
