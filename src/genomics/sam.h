// SAM-like genomics substrate (§5.2). The paper evaluates ScanRaw on 1000
// Genomes alignment files; those are not redistributable, so this module
// generates synthetic files with the same structure: tab-delimited reads
// with the 11 mandatory SAM fields, CIGAR strings drawn from a realistic
// set, and DNA sequences that embed a query pattern with known probability —
// enough to reproduce the CIGAR-distribution variant query of Table 1.
#ifndef SCANRAW_GENOMICS_SAM_H_
#define SCANRAW_GENOMICS_SAM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/query.h"
#include "format/schema.h"

namespace scanraw {

// One aligned read: the 11 mandatory SAM fields.
struct SamRecord {
  std::string qname;
  uint32_t flag = 0;
  std::string rname;
  uint32_t pos = 0;
  uint32_t mapq = 0;
  std::string cigar;
  std::string rnext;
  uint32_t pnext = 0;
  int64_t tlen = 0;
  std::string seq;
  std::string qual;
};

// Column indexes of the mandatory fields.
enum SamColumn : size_t {
  kSamQname = 0,
  kSamFlag = 1,
  kSamRname = 2,
  kSamPos = 3,
  kSamMapq = 4,
  kSamCigar = 5,
  kSamRnext = 6,
  kSamPnext = 7,
  kSamTlen = 8,
  kSamSeq = 9,
  kSamQual = 10,
};

// Tab-delimited schema of the 11 mandatory fields.
Schema SamSchema();

struct SamGenSpec {
  uint64_t num_reads = 0;
  uint64_t seed = 1;
  size_t read_length = 100;
  // Pattern embedded in SEQ with this probability (the variant query's
  // predicate looks for it).
  std::string pattern = "ACGTACGTAC";
  double pattern_probability = 0.1;
};

struct SamFileInfo {
  uint64_t num_reads = 0;
  uint64_t file_bytes = 0;
  // Ground truth for the variant query: CIGAR distribution over reads whose
  // SEQ contains the pattern.
  std::map<std::string, uint64_t> cigar_distribution;
  uint64_t matching_reads = 0;
};

// Deterministically generates `spec.num_reads` records.
std::vector<SamRecord> GenerateSamRecords(const SamGenSpec& spec);

// Serializes one record as a tab-delimited SAM line (no trailing newline).
std::string FormatSamLine(const SamRecord& record);

// Writes a SAM-like text file and returns the ground-truth query answer.
Result<SamFileInfo> GenerateSamFile(const std::string& path,
                                    const SamGenSpec& spec);

// Streams the same deterministic record sequence GenerateSamFile writes
// (bounded memory). The BAM-like writer uses this so both formats hold
// identical data for a given spec.
Status ForEachGeneratedRecord(const SamGenSpec& spec,
                              const std::function<Status(const SamRecord&)>& fn);

// The paper's representative analysis (§1): distribution of the CIGAR field
// over reads whose sequence exhibits `pattern` — a group-by aggregate with a
// pattern-matching predicate.
QuerySpec CigarDistributionQuery(const std::string& pattern);

}  // namespace scanraw

#endif  // SCANRAW_GENOMICS_SAM_H_
