#include "genomics/bam_like.h"

#include <cstring>

#include "columnar/chunk_serde.h"
#include "common/string_util.h"
#include "io/rate_limiter.h"

namespace scanraw {

namespace {

constexpr uint32_t kBamMagic = 0x4D414253;  // "SBAM"

// --------------------------------------------------------------- varints --

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(const std::string& data, size_t* pos, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < data.size() && shift <= 63) {
    const uint8_t byte = static_cast<uint8_t>(data[*pos]);
    ++(*pos);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void PutString(std::string* out, const std::string& s) {
  PutVarint(out, s.size());
  out->append(s);
}

bool GetString(const std::string& data, size_t* pos, std::string* s) {
  uint64_t len = 0;
  if (!GetVarint(data, pos, &len)) return false;
  if (*pos + len > data.size()) return false;
  s->assign(data, *pos, len);
  *pos += len;
  return true;
}

// ------------------------------------------------------------- seq / qual --

int BaseCode(char c) {
  switch (c) {
    case 'A':
      return 0;
    case 'C':
      return 1;
    case 'G':
      return 2;
    case 'T':
      return 3;
  }
  return 0;
}

constexpr char kBaseChars[] = {'A', 'C', 'G', 'T'};

void PackSeq(std::string* out, const std::string& seq) {
  PutVarint(out, seq.size());
  uint8_t acc = 0;
  int in_acc = 0;
  for (char c : seq) {
    acc = static_cast<uint8_t>(acc | (BaseCode(c) << (in_acc * 2)));
    if (++in_acc == 4) {
      out->push_back(static_cast<char>(acc));
      acc = 0;
      in_acc = 0;
    }
  }
  if (in_acc > 0) out->push_back(static_cast<char>(acc));
}

bool UnpackSeq(const std::string& data, size_t* pos, std::string* seq) {
  uint64_t len = 0;
  if (!GetVarint(data, pos, &len)) return false;
  const size_t bytes = (len + 3) / 4;
  if (*pos + bytes > data.size()) return false;
  seq->clear();
  seq->reserve(len);
  for (uint64_t i = 0; i < len; ++i) {
    const uint8_t byte = static_cast<uint8_t>(data[*pos + i / 4]);
    seq->push_back(kBaseChars[(byte >> ((i % 4) * 2)) & 0x3]);
  }
  *pos += bytes;
  return true;
}

void RlePack(std::string* out, const std::string& qual) {
  PutVarint(out, qual.size());
  size_t i = 0;
  while (i < qual.size()) {
    size_t run = 1;
    while (i + run < qual.size() && qual[i + run] == qual[i] && run < 255) {
      ++run;
    }
    out->push_back(qual[i]);
    out->push_back(static_cast<char>(run));
    i += run;
  }
}

bool RleUnpack(const std::string& data, size_t* pos, std::string* qual) {
  uint64_t len = 0;
  if (!GetVarint(data, pos, &len)) return false;
  qual->clear();
  qual->reserve(len);
  while (qual->size() < len) {
    if (*pos + 2 > data.size()) return false;
    const char c = data[*pos];
    const uint8_t run = static_cast<uint8_t>(data[*pos + 1]);
    *pos += 2;
    if (run == 0 || qual->size() + run > len) return false;
    qual->append(run, c);
  }
  return true;
}

// ---------------------------------------------------------- xor keystream --

// Applies the chained keystream in place and returns the next chain state.
// Deliberately byte-serial with several dependent mixing steps per byte:
// the per-byte cost stands in for BGZF inflate, whose effective decode rate
// on the paper's testbed was ~10 MB/s (26 GB BAM in 2714 s, Table 1) —
// orders of magnitude below the disk, which is what made BAMTools
// CPU-bound there.
// Advances the keystream state over `n` bytes without touching data — the
// state sequence is position-driven, which is what makes an index with
// recorded chain states possible at all.
uint64_t AdvanceKeystreamState(uint64_t chain_state, uint64_t n) {
  uint64_t state = chain_state ^ 0x9E3779B97F4A7C15ull;
  for (uint64_t i = 0; i < n; ++i) {
    for (int round = 0; round < 32; ++round) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      state ^= (state >> 29);
    }
  }
  return state;
}

uint64_t ApplyKeystream(std::string* data, uint64_t chain_state) {
  uint64_t state = chain_state ^ 0x9E3779B97F4A7C15ull;
  for (char& c : *data) {
    // Dependent LCG+rotate rounds per byte; the data dependence keeps this
    // loop from vectorizing, like the bit-serial inflate inner loop. The
    // round count is calibrated so decode throughput lands near the
    // ~10-20 MB/s BAMTools achieved on the paper's testbed.
    for (int round = 0; round < 32; ++round) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      state ^= (state >> 29);
    }
    c = static_cast<char>(static_cast<uint8_t>(c) ^
                          static_cast<uint8_t>(state >> 56));
  }
  return state;
}

void EncodeRecord(std::string* out, const SamRecord& r) {
  PutString(out, r.qname);
  PutVarint(out, r.flag);
  PutString(out, r.rname);
  PutVarint(out, r.pos);
  PutVarint(out, r.mapq);
  PutString(out, r.cigar);
  PutString(out, r.rnext);
  PutVarint(out, r.pnext);
  PutVarint(out, ZigZag(r.tlen));
  PackSeq(out, r.seq);
  RlePack(out, r.qual);
}

bool DecodeRecord(const std::string& data, size_t* pos, SamRecord* r) {
  uint64_t flag = 0, posv = 0, mapq = 0, pnext = 0, tlen = 0;
  if (!GetString(data, pos, &r->qname)) return false;
  if (!GetVarint(data, pos, &flag)) return false;
  if (!GetString(data, pos, &r->rname)) return false;
  if (!GetVarint(data, pos, &posv)) return false;
  if (!GetVarint(data, pos, &mapq)) return false;
  if (!GetString(data, pos, &r->cigar)) return false;
  if (!GetString(data, pos, &r->rnext)) return false;
  if (!GetVarint(data, pos, &pnext)) return false;
  if (!GetVarint(data, pos, &tlen)) return false;
  if (!UnpackSeq(data, pos, &r->seq)) return false;
  if (!RleUnpack(data, pos, &r->qual)) return false;
  r->flag = static_cast<uint32_t>(flag);
  r->pos = static_cast<uint32_t>(posv);
  r->mapq = static_cast<uint32_t>(mapq);
  r->pnext = static_cast<uint32_t>(pnext);
  r->tlen = UnZigZag(tlen);
  return true;
}

}  // namespace

Result<BamFileInfo> GenerateBamFile(const std::string& path,
                                    const SamGenSpec& spec,
                                    uint64_t records_per_block) {
  if (records_per_block == 0) {
    return Status::InvalidArgument("records_per_block must be > 0");
  }
  auto file = WritableFile::Create(path);
  if (!file.ok()) return file.status();

  std::string header;
  header.append(reinterpret_cast<const char*>(&kBamMagic), 4);
  const uint64_t num_reads = spec.num_reads;
  header.append(reinterpret_cast<const char*>(&num_reads), 8);
  SCANRAW_RETURN_IF_ERROR((*file)->Append(header));

  std::string block;
  uint32_t block_count = 0;
  uint64_t chain_state = 0;
  auto flush_block = [&]() -> Status {
    if (block_count == 0) return Status::OK();
    chain_state = ApplyKeystream(&block, chain_state);
    std::string framed;
    const uint32_t payload = static_cast<uint32_t>(block.size());
    framed.append(reinterpret_cast<const char*>(&payload), 4);
    framed.append(reinterpret_cast<const char*>(&block_count), 4);
    const uint64_t checksum = Fnv1aHash(block);
    framed.append(reinterpret_cast<const char*>(&checksum), 8);
    framed.append(block);
    block.clear();
    block_count = 0;
    return (*file)->Append(framed);
  };

  Status s = ForEachGeneratedRecord(spec, [&](const SamRecord& r) -> Status {
    EncodeRecord(&block, r);
    if (++block_count >= records_per_block) return flush_block();
    return Status::OK();
  });
  if (!s.ok()) return s;
  SCANRAW_RETURN_IF_ERROR(flush_block());

  BamFileInfo info;
  info.num_reads = spec.num_reads;
  info.file_bytes = (*file)->bytes_written();
  SCANRAW_RETURN_IF_ERROR((*file)->Close());
  return info;
}

Result<std::unique_ptr<BamReader>> BamReader::Open(const std::string& path,
                                                   RateLimiter* limiter,
                                                   IoStats* stats) {
  auto file = RandomAccessFile::Open(path, limiter, stats);
  if (!file.ok()) return file.status();
  char header[12];
  auto n = (*file)->ReadAt(0, sizeof(header), header);
  if (!n.ok()) return n.status();
  if (*n != sizeof(header)) return Status::Corruption("BAM header truncated");
  uint32_t magic = 0;
  uint64_t num_reads = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&num_reads, header + 4, 8);
  if (magic != kBamMagic) return Status::Corruption("bad BAM magic");
  return std::unique_ptr<BamReader>(
      new BamReader(std::move(*file), num_reads));
}

BamReader::BamReader(std::unique_ptr<RandomAccessFile> file,
                     uint64_t num_reads)
    : file_(std::move(file)), num_reads_(num_reads), file_pos_(12) {}

Status BamReader::LoadNextBlock() {
  char frame[16];
  auto n = file_->ReadAt(file_pos_, sizeof(frame), frame);
  if (!n.ok()) return n.status();
  if (*n == 0) return Status::NotFound("end of file");
  if (*n != sizeof(frame)) return Status::Corruption("BAM block truncated");
  uint32_t payload = 0, records = 0;
  uint64_t checksum = 0;
  std::memcpy(&payload, frame, 4);
  std::memcpy(&records, frame + 4, 4);
  std::memcpy(&checksum, frame + 8, 8);
  file_pos_ += sizeof(frame);
  block_.resize(payload);
  auto body = file_->ReadAt(file_pos_, payload, block_.data());
  if (!body.ok()) return body.status();
  if (*body != payload) return Status::Corruption("BAM payload truncated");
  file_pos_ += payload;
  if (Fnv1aHash(block_) != checksum) {
    return Status::Corruption("BAM block checksum mismatch");
  }
  // XOR is symmetric and the keystream is position-driven, so decoding
  // replays the writer's state sequence exactly and yields the next chain
  // input.
  chain_state_ = ApplyKeystream(&block_, chain_state_);
  block_pos_ = 0;
  block_records_left_ = records;
  return Status::OK();
}

Result<bool> BamReader::NextRecord(SamRecord* record) {
  while (true) {
    while (block_records_left_ == 0) {
      Status s = LoadNextBlock();
      if (s.IsNotFound()) return false;
      if (!s.ok()) return s;
    }
    if (!DecodeRecord(block_, &block_pos_, record)) {
      return Status::Corruption("BAM record decode failed");
    }
    --block_records_left_;
    if (pending_skip_ == 0) return true;
    --pending_skip_;  // discard records preceding a seek target
  }
}

Status BamReader::SeekToRecord(const BamIndex& index, uint64_t record) {
  const size_t b = index.BlockForRecord(record);
  if (b >= index.blocks.size()) {
    return Status::OutOfRange(StringPrintf(
        "record %llu beyond the indexed %llu reads",
        static_cast<unsigned long long>(record),
        static_cast<unsigned long long>(index.num_reads)));
  }
  const BamBlockEntry& entry = index.blocks[b];
  file_pos_ = entry.file_offset;
  chain_state_ = entry.chain_state;
  block_.clear();
  block_pos_ = 0;
  block_records_left_ = 0;
  pending_skip_ = static_cast<uint32_t>(record - entry.first_record);
  return Status::OK();
}

size_t BamIndex::BlockForRecord(uint64_t record) const {
  if (record >= num_reads) return blocks.size();
  size_t lo = 0, hi = blocks.size();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (blocks[mid].first_record <= record) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Result<BamIndex> WriteBamIndex(const std::string& bam_path) {
  auto file = RandomAccessFile::Open(bam_path);
  if (!file.ok()) return file.status();
  char header[12];
  auto n = (*file)->ReadAt(0, sizeof(header), header);
  if (!n.ok()) return n.status();
  if (*n != sizeof(header)) return Status::Corruption("BAM header truncated");
  uint32_t magic = 0;
  BamIndex index;
  std::memcpy(&magic, header, 4);
  std::memcpy(&index.num_reads, header + 4, 8);
  if (magic != kBamMagic) return Status::Corruption("bad BAM magic");

  // Walk the frame headers; chain states advance data-independently.
  uint64_t pos = 12;
  uint64_t first_record = 0;
  uint64_t chain_state = 0;
  while (true) {
    char frame[16];
    auto got = (*file)->ReadAt(pos, sizeof(frame), frame);
    if (!got.ok()) return got.status();
    if (*got == 0) break;
    if (*got != sizeof(frame)) {
      return Status::Corruption("BAM block truncated");
    }
    uint32_t payload = 0, records = 0;
    std::memcpy(&payload, frame, 4);
    std::memcpy(&records, frame + 4, 4);
    index.blocks.push_back(
        BamBlockEntry{pos, first_record, records, chain_state});
    chain_state = AdvanceKeystreamState(chain_state, payload);
    first_record += records;
    pos += sizeof(frame) + payload;
  }
  if (first_record != index.num_reads) {
    return Status::Corruption("BAM index record count mismatch");
  }

  std::string blob;
  const uint32_t bai_magic = 0x49414253;  // "SBAI"
  blob.append(reinterpret_cast<const char*>(&bai_magic), 4);
  blob.append(reinterpret_cast<const char*>(&index.num_reads), 8);
  const uint64_t count = index.blocks.size();
  blob.append(reinterpret_cast<const char*>(&count), 8);
  for (const BamBlockEntry& e : index.blocks) {
    blob.append(reinterpret_cast<const char*>(&e.file_offset), 8);
    blob.append(reinterpret_cast<const char*>(&e.first_record), 8);
    blob.append(reinterpret_cast<const char*>(&e.record_count), 4);
    blob.append(reinterpret_cast<const char*>(&e.chain_state), 8);
  }
  // The index is consulted on restart; a torn .bai would poison every later
  // open, so it must land atomically.
  SCANRAW_RETURN_IF_ERROR(AtomicWriteFile(bam_path + ".bai", blob));
  return index;
}

Result<BamIndex> LoadBamIndex(const std::string& bai_path) {
  auto blob = ReadFileToString(bai_path);
  if (!blob.ok()) return blob.status();
  const std::string& data = *blob;
  if (data.size() < 20) return Status::Corruption("BAI too small");
  uint32_t magic = 0;
  std::memcpy(&magic, data.data(), 4);
  if (magic != 0x49414253) return Status::Corruption("bad BAI magic");
  BamIndex index;
  uint64_t count = 0;
  std::memcpy(&index.num_reads, data.data() + 4, 8);
  std::memcpy(&count, data.data() + 12, 8);
  constexpr size_t kEntryBytes = 8 + 8 + 4 + 8;
  if (data.size() != 20 + count * kEntryBytes) {
    return Status::Corruption("BAI size mismatch");
  }
  index.blocks.resize(count);
  size_t pos = 20;
  for (BamBlockEntry& e : index.blocks) {
    std::memcpy(&e.file_offset, data.data() + pos, 8);
    std::memcpy(&e.first_record, data.data() + pos + 8, 8);
    std::memcpy(&e.record_count, data.data() + pos + 16, 4);
    std::memcpy(&e.chain_state, data.data() + pos + 20, 8);
    pos += kEntryBytes;
  }
  return index;
}

BamChunkStream::BamChunkStream(std::unique_ptr<BamReader> reader,
                               size_t chunk_rows)
    : reader_(std::move(reader)), chunk_rows_(chunk_rows) {}

Result<std::optional<BinaryChunkPtr>> BamChunkStream::Next() {
  if (done_) return std::optional<BinaryChunkPtr>();
  std::vector<SamRecord> batch;
  batch.reserve(chunk_rows_);
  SamRecord record;
  while (batch.size() < chunk_rows_) {
    auto more = reader_->NextRecord(&record);
    if (!more.ok()) return more.status();
    if (!*more) {
      done_ = true;
      break;
    }
    batch.push_back(record);
  }
  if (batch.empty()) return std::optional<BinaryChunkPtr>();
  BinaryChunk chunk = MapRecordsToChunk(batch, next_chunk_index_++);
  return std::optional<BinaryChunkPtr>(
      std::make_shared<const BinaryChunk>(std::move(chunk)));
}

BinaryChunk MapRecordsToChunk(const std::vector<SamRecord>& records,
                              uint64_t chunk_index) {
  BinaryChunk chunk(chunk_index);
  ColumnVector qname(FieldType::kString), flag(FieldType::kUint32),
      rname(FieldType::kString), pos(FieldType::kUint32),
      mapq(FieldType::kUint32), cigar(FieldType::kString),
      rnext(FieldType::kString), pnext(FieldType::kUint32),
      tlen(FieldType::kInt64), seq(FieldType::kString),
      qual(FieldType::kString);
  for (const SamRecord& r : records) {
    qname.AppendString(r.qname);
    flag.AppendUint32(r.flag);
    rname.AppendString(r.rname);
    pos.AppendUint32(r.pos);
    mapq.AppendUint32(r.mapq);
    cigar.AppendString(r.cigar);
    rnext.AppendString(r.rnext);
    pnext.AppendUint32(r.pnext);
    tlen.AppendInt64(r.tlen);
    seq.AppendString(r.seq);
    qual.AppendString(r.qual);
  }
  // AddColumn only fails on row-count mismatch, impossible here.
  (void)chunk.AddColumn(kSamQname, std::move(qname));
  (void)chunk.AddColumn(kSamFlag, std::move(flag));
  (void)chunk.AddColumn(kSamRname, std::move(rname));
  (void)chunk.AddColumn(kSamPos, std::move(pos));
  (void)chunk.AddColumn(kSamMapq, std::move(mapq));
  (void)chunk.AddColumn(kSamCigar, std::move(cigar));
  (void)chunk.AddColumn(kSamRnext, std::move(rnext));
  (void)chunk.AddColumn(kSamPnext, std::move(pnext));
  (void)chunk.AddColumn(kSamTlen, std::move(tlen));
  (void)chunk.AddColumn(kSamSeq, std::move(seq));
  (void)chunk.AddColumn(kSamQual, std::move(qual));
  return chunk;
}

}  // namespace scanraw
