#include "genomics/sam.h"

#include <algorithm>

#include "common/random.h"
#include "common/string_util.h"
#include "io/file.h"

namespace scanraw {

Schema SamSchema() {
  return Schema(
      std::vector<ColumnDef>{
          {"QNAME", FieldType::kString},
          {"FLAG", FieldType::kUint32},
          {"RNAME", FieldType::kString},
          {"POS", FieldType::kUint32},
          {"MAPQ", FieldType::kUint32},
          {"CIGAR", FieldType::kString},
          {"RNEXT", FieldType::kString},
          {"PNEXT", FieldType::kUint32},
          {"TLEN", FieldType::kInt64},
          {"SEQ", FieldType::kString},
          {"QUAL", FieldType::kString},
      },
      '\t');
}

namespace {

constexpr char kBases[] = {'A', 'C', 'G', 'T'};

// Weighted CIGAR population loosely following what aligners emit: mostly
// perfect matches, some indels and soft clips.
struct CigarChoice {
  const char* text;
  int weight;
};
constexpr CigarChoice kCigars[] = {
    {"100M", 55},   {"99M1I", 10},  {"99M1D", 10}, {"50M2D48M", 8},
    {"90M10S", 7},  {"10S90M", 5},  {"100M0S", 3}, {"48M4I48M", 2},
};

const char* PickCigar(Random* rng) {
  int total = 0;
  for (const auto& c : kCigars) total += c.weight;
  int pick = static_cast<int>(rng->Uniform(total));
  for (const auto& c : kCigars) {
    pick -= c.weight;
    if (pick < 0) return c.text;
  }
  return kCigars[0].text;
}

}  // namespace

std::vector<SamRecord> GenerateSamRecords(const SamGenSpec& spec) {
  Random rng(spec.seed);
  std::vector<SamRecord> records;
  records.reserve(spec.num_reads);
  for (uint64_t i = 0; i < spec.num_reads; ++i) {
    SamRecord r;
    r.qname = "read.";
    AppendUint64(&r.qname, i);
    r.flag = static_cast<uint32_t>(rng.Uniform(4096));
    r.rname = "chr" + std::to_string(1 + rng.Uniform(22));
    r.pos = static_cast<uint32_t>(rng.Uniform(250000000));
    r.mapq = static_cast<uint32_t>(rng.Uniform(61));
    r.cigar = PickCigar(&rng);
    r.rnext = rng.OneIn(4) ? "=" : "*";
    r.pnext = static_cast<uint32_t>(rng.Uniform(250000000));
    r.tlen = static_cast<int64_t>(rng.Uniform(1200)) - 600;
    r.seq.reserve(spec.read_length);
    for (size_t b = 0; b < spec.read_length; ++b) {
      r.seq.push_back(kBases[rng.Uniform(4)]);
    }
    if (!spec.pattern.empty() &&
        rng.NextDouble() < spec.pattern_probability &&
        spec.pattern.size() <= r.seq.size()) {
      const size_t at = rng.Uniform(r.seq.size() - spec.pattern.size() + 1);
      r.seq.replace(at, spec.pattern.size(), spec.pattern);
    }
    // Quality scores are strongly correlated along a read in real data;
    // model them as runs so binary formats can compress them (BAM gzips
    // real quality strings to a fraction of their text size).
    r.qual.reserve(spec.read_length);
    char q = static_cast<char>('!' + 10 + rng.Uniform(30));
    for (size_t b = 0; b < spec.read_length; ++b) {
      if (rng.OneIn(8)) q = static_cast<char>('!' + 10 + rng.Uniform(30));
      r.qual.push_back(q);
    }
    records.push_back(std::move(r));
  }
  return records;
}

std::string FormatSamLine(const SamRecord& r) {
  std::string line;
  line.reserve(64 + r.seq.size() + r.qual.size());
  line += r.qname;
  line.push_back('\t');
  AppendUint64(&line, r.flag);
  line.push_back('\t');
  line += r.rname;
  line.push_back('\t');
  AppendUint64(&line, r.pos);
  line.push_back('\t');
  AppendUint64(&line, r.mapq);
  line.push_back('\t');
  line += r.cigar;
  line.push_back('\t');
  line += r.rnext;
  line.push_back('\t');
  AppendUint64(&line, r.pnext);
  line.push_back('\t');
  if (r.tlen < 0) {
    line.push_back('-');
    AppendUint64(&line, static_cast<uint64_t>(-r.tlen));
  } else {
    AppendUint64(&line, static_cast<uint64_t>(r.tlen));
  }
  line.push_back('\t');
  line += r.seq;
  line.push_back('\t');
  line += r.qual;
  return line;
}

Status ForEachGeneratedRecord(
    const SamGenSpec& spec,
    const std::function<Status(const SamRecord&)>& fn) {
  // Generate in batches to bound memory for large files.
  constexpr uint64_t kBatch = 1 << 14;
  SamGenSpec batch_spec = spec;
  Random seed_stream(spec.seed);
  uint64_t remaining = spec.num_reads;
  uint64_t base = 0;
  while (remaining > 0) {
    batch_spec.num_reads = std::min(remaining, kBatch);
    batch_spec.seed = seed_stream.NextUint64();
    auto records = GenerateSamRecords(batch_spec);
    for (auto& r : records) {
      // Re-number across batches so QNAMEs stay unique.
      r.qname = "read.";
      AppendUint64(&r.qname, base++);
      SCANRAW_RETURN_IF_ERROR(fn(r));
    }
    remaining -= batch_spec.num_reads;
  }
  return Status::OK();
}

Result<SamFileInfo> GenerateSamFile(const std::string& path,
                                    const SamGenSpec& spec) {
  auto file = WritableFile::Create(path);
  if (!file.ok()) return file.status();
  SamFileInfo info;
  info.num_reads = spec.num_reads;
  std::string buffer;
  Status s = ForEachGeneratedRecord(spec, [&](const SamRecord& r) -> Status {
    if (r.seq.find(spec.pattern) != std::string::npos) {
      ++info.matching_reads;
      ++info.cigar_distribution[r.cigar];
    }
    buffer += FormatSamLine(r);
    buffer.push_back('\n');
    if (buffer.size() >= (1 << 20)) {
      SCANRAW_RETURN_IF_ERROR((*file)->Append(buffer));
      buffer.clear();
    }
    return Status::OK();
  });
  if (!s.ok()) return s;
  if (!buffer.empty()) {
    SCANRAW_RETURN_IF_ERROR((*file)->Append(buffer));
  }
  info.file_bytes = (*file)->bytes_written();
  SCANRAW_RETURN_IF_ERROR((*file)->Close());
  return info;
}

QuerySpec CigarDistributionQuery(const std::string& pattern) {
  QuerySpec spec;
  spec.group_by_column = kSamCigar;
  spec.predicate.pattern = PatternPredicate{kSamSeq, pattern};
  return spec;
}

}  // namespace scanraw
