// Token-bucket bandwidth limiter. The paper's testbed has a fixed-throughput
// RAID array (~436 MB/s sustained); on development machines the page cache
// makes raw-file reads essentially free, which would hide the I/O- vs
// CPU-bound crossover SCANRAW exploits. Wiring a RateLimiter into the READ
// and WRITE paths restores a disk with a known, configurable bandwidth.
#ifndef SCANRAW_IO_RATE_LIMITER_H_
#define SCANRAW_IO_RATE_LIMITER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/clock.h"
#include "obs/metrics.h"

namespace scanraw {

class RateLimiter {
 public:
  // bytes_per_second == 0 disables limiting entirely.
  explicit RateLimiter(uint64_t bytes_per_second,
                       const Clock* clock = RealClock::Instance());

  // Blocks until `bytes` can be admitted at the configured rate.
  void Acquire(uint64_t bytes);

  uint64_t bytes_per_second() const { return bytes_per_second_; }

  // Total bytes admitted so far.
  uint64_t total_admitted() const;

  // Cumulative nanoseconds Acquire spent sleeping (the emulated device was
  // busy) and how many Acquire calls slept at all. Per-query deltas of
  // these drive the THROTTLE_WAIT stage of critical-path attribution.
  uint64_t total_wait_nanos() const;
  uint64_t throttle_events() const;

  // Optional sinks: a histogram of per-Acquire blocking time and a counter
  // of throttled calls. Pass nullptr to unbind. Not thread-safe with
  // concurrent Acquire; bind during setup.
  void BindMetrics(obs::Histogram* wait_nanos, obs::Counter* throttles);

 private:
  const uint64_t bytes_per_second_;
  const Clock* clock_;
  mutable std::mutex mu_;
  double available_bytes_ = 0;   // tokens in the bucket
  int64_t last_refill_nanos_ = 0;
  uint64_t total_admitted_ = 0;
  uint64_t total_wait_nanos_ = 0;
  uint64_t throttle_events_ = 0;
  obs::Histogram* wait_hist_ = nullptr;
  obs::Counter* throttle_counter_ = nullptr;
};

}  // namespace scanraw

#endif  // SCANRAW_IO_RATE_LIMITER_H_
