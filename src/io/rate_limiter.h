// Token-bucket bandwidth limiter. The paper's testbed has a fixed-throughput
// RAID array (~436 MB/s sustained); on development machines the page cache
// makes raw-file reads essentially free, which would hide the I/O- vs
// CPU-bound crossover SCANRAW exploits. Wiring a RateLimiter into the READ
// and WRITE paths restores a disk with a known, configurable bandwidth.
#ifndef SCANRAW_IO_RATE_LIMITER_H_
#define SCANRAW_IO_RATE_LIMITER_H_

#include <cstdint>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace scanraw {

class RateLimiter {
 public:
  // bytes_per_second == 0 disables limiting entirely.
  explicit RateLimiter(uint64_t bytes_per_second,
                       const Clock* clock = RealClock::Instance());

  // Blocks until `bytes` can be admitted at the configured rate.
  void Acquire(uint64_t bytes) EXCLUDES(mu_);

  uint64_t bytes_per_second() const { return bytes_per_second_; }

  // Total bytes admitted so far.
  uint64_t total_admitted() const EXCLUDES(mu_);

  // Cumulative nanoseconds Acquire spent sleeping (the emulated device was
  // busy) and how many Acquire calls slept at all. Per-query deltas of
  // these drive the THROTTLE_WAIT stage of critical-path attribution.
  uint64_t total_wait_nanos() const EXCLUDES(mu_);
  uint64_t throttle_events() const EXCLUDES(mu_);

  // Optional sinks: a histogram of per-Acquire blocking time and a counter
  // of throttled calls. Pass nullptr to unbind. Not thread-safe with
  // concurrent Acquire; bind during setup.
  void BindMetrics(obs::Histogram* wait_nanos, obs::Counter* throttles)
      EXCLUDES(mu_);

 private:
  const uint64_t bytes_per_second_;
  const Clock* clock_;
  mutable Mutex mu_{LockRank::kRateLimiter, "RateLimiter.mu"};
  // Timed-wait channel for throttled Acquires. Nothing signals it during
  // normal operation — the refill is time-driven — but waiting on it keeps
  // the bucket state consistent without a bare sleep.
  CondVar refill_cv_;
  double available_bytes_ GUARDED_BY(mu_) = 0;  // tokens in the bucket
  int64_t last_refill_nanos_ GUARDED_BY(mu_) = 0;
  uint64_t total_admitted_ GUARDED_BY(mu_) = 0;
  uint64_t total_wait_nanos_ GUARDED_BY(mu_) = 0;
  uint64_t throttle_events_ GUARDED_BY(mu_) = 0;
  obs::Histogram* wait_hist_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* throttle_counter_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace scanraw

#endif  // SCANRAW_IO_RATE_LIMITER_H_
