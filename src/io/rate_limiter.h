// Token-bucket bandwidth limiter. The paper's testbed has a fixed-throughput
// RAID array (~436 MB/s sustained); on development machines the page cache
// makes raw-file reads essentially free, which would hide the I/O- vs
// CPU-bound crossover SCANRAW exploits. Wiring a RateLimiter into the READ
// and WRITE paths restores a disk with a known, configurable bandwidth.
#ifndef SCANRAW_IO_RATE_LIMITER_H_
#define SCANRAW_IO_RATE_LIMITER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/clock.h"

namespace scanraw {

class RateLimiter {
 public:
  // bytes_per_second == 0 disables limiting entirely.
  explicit RateLimiter(uint64_t bytes_per_second,
                       const Clock* clock = RealClock::Instance());

  // Blocks until `bytes` can be admitted at the configured rate.
  void Acquire(uint64_t bytes);

  uint64_t bytes_per_second() const { return bytes_per_second_; }

  // Total bytes admitted so far.
  uint64_t total_admitted() const;

 private:
  const uint64_t bytes_per_second_;
  const Clock* clock_;
  mutable std::mutex mu_;
  double available_bytes_ = 0;   // tokens in the bucket
  int64_t last_refill_nanos_ = 0;
  uint64_t total_admitted_ = 0;
};

}  // namespace scanraw

#endif  // SCANRAW_IO_RATE_LIMITER_H_
