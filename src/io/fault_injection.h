// Deterministic fault injection for the I/O layer. A FaultInjector holds a
// seed-driven plan of read/append/sync failures, torn (partial) appends, and
// named kill-points; when installed (see ScopedFaultInjection) the
// RandomAccessFile / WritableFile factories wrap every matching file in a
// decorator that consults the injector before delegating, so error paths are
// exercised through the exact production call sites. Crash-recovery tests
// fork a child, arm a kill-point, and let the process _exit() mid-protocol;
// the parent then restarts and asserts recovery.
//
// Everything is deterministic for a given FaultPlan::seed: the decision
// stream is a single seeded PRNG consumed under a lock, so a plan replays
// identically run-to-run (though thread interleaving may reorder which
// operation consumes which decision).
#ifndef SCANRAW_IO_FAULT_INJECTION_H_
#define SCANRAW_IO_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "io/file.h"

namespace scanraw {

// Exit code used by kill-points so a waiting parent can tell an injected
// crash apart from an ordinary failure.
inline constexpr int kFaultKillExitCode = 42;

// What to inject. Rates are probabilities in [0, 1] evaluated per call on
// files whose path contains `path_substring` (empty matches every file).
struct FaultPlan {
  uint64_t seed = 1;
  std::string path_substring;

  // Reads.
  double read_error_rate = 0.0;   // ReadAt fails with `error_errno`
  double short_read_rate = 0.0;   // ReadAt returns fewer bytes than asked
  double read_eintr_rate = 0.0;   // simulated EINTR: counted retry, then OK
  int read_delay_ms = 0;          // every matching ReadAt sleeps this long
                                  // (models a hung device; used by the
                                  // watchdog stall tests)

  // Writes.
  double append_error_rate = 0.0;  // Append fails with `error_errno` after
                                   // writing a torn prefix (torn_fraction)
  double sync_error_rate = 0.0;    // Sync fails with `error_errno`

  // errno carried by injected read/append/sync errors: EIO or ENOSPC
  // (ENOSPC maps to StatusCode::kResourceExhausted, EIO to kIoError).
  int error_errno = 5;  // EIO

  // Fraction of an injected-failed append's bytes that still reach the file
  // before the error/kill — models a torn write at the storage tail.
  double torn_fraction = 0.5;

  // Crash (via _exit) in the middle of the Nth matching Append, after
  // writing the torn prefix. 1-based; 0 disables.
  uint64_t kill_append_at = 0;

  // Named kill-point: the process _exit()s when code reaches
  // FaultKillPoint(kill_point) for the `kill_point_hit`-th time.
  std::string kill_point;
  uint64_t kill_point_hit = 1;
};

// Tallies of injected faults, for test assertions and the CLI fault report.
struct FaultCounters {
  std::atomic<uint64_t> read_errors{0};
  std::atomic<uint64_t> short_reads{0};
  std::atomic<uint64_t> read_retries{0};
  std::atomic<uint64_t> append_errors{0};
  std::atomic<uint64_t> torn_appends{0};
  std::atomic<uint64_t> sync_errors{0};
  std::atomic<uint64_t> kill_point_hits{0};
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  const FaultCounters& counters() const { return counters_; }
  bool Matches(const std::string& path) const;

  struct ReadFault {
    enum class Kind { kNone, kError, kShort, kRetry };
    Kind kind = Kind::kNone;
    size_t short_length = 0;  // for kShort: bytes to actually read
    Status status;            // for kError
  };
  ReadFault OnRead(const std::string& path, size_t length);

  struct AppendFault {
    enum class Kind { kNone, kError, kKill };
    Kind kind = Kind::kNone;
    size_t torn_bytes = 0;  // prefix written before the error / crash
    Status status;          // for kError
  };
  AppendFault OnAppend(const std::string& path, size_t length);

  // OK, or the injected sync failure.
  Status OnSync(const std::string& path);

  // Calls _exit(kFaultKillExitCode) when `point` matches the armed
  // kill-point and the hit count is reached; otherwise just counts.
  void MaybeKill(std::string_view point);

  // Process-global injector consulted by the file factories and by
  // FaultKillPoint(). Not owned; install nullptr to disable.
  static FaultInjector* Global();
  static void InstallGlobal(FaultInjector* injector);

 private:
  bool Draw(double rate) REQUIRES(mu_);

  const FaultPlan plan_;
  FaultCounters counters_;
  Mutex mu_{LockRank::kFaultInjection, "FaultInjector.mu"};
  Random rng_ GUARDED_BY(mu_);
  uint64_t appends_seen_ GUARDED_BY(mu_) = 0;
  uint64_t kill_hits_ GUARDED_BY(mu_) = 0;
};

// RAII install/uninstall of a process-global injector. Tests hold one on the
// stack; the CLI holds one for the process lifetime when --fault-* is given.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultPlan plan)
      : injector_(std::make_unique<FaultInjector>(std::move(plan))) {
    FaultInjector::InstallGlobal(injector_.get());
  }
  ~ScopedFaultInjection() { FaultInjector::InstallGlobal(nullptr); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  FaultInjector* injector() { return injector_.get(); }

 private:
  std::unique_ptr<FaultInjector> injector_;
};

// Named crash point for the durability protocol (storage write, catalog
// save, ...). No-op unless an injector with a matching kill_point is
// installed, so production code can leave these in place.
void FaultKillPoint(std::string_view point);

// Used by the file factories: wraps `file` in the fault-injecting decorator
// when a global injector is installed and its path filter matches.
std::unique_ptr<RandomAccessFile> MaybeWrapWithFaultInjection(
    std::unique_ptr<RandomAccessFile> file);
std::unique_ptr<WritableFile> MaybeWrapWithFaultInjection(
    std::unique_ptr<WritableFile> file);

}  // namespace scanraw

#endif  // SCANRAW_IO_FAULT_INJECTION_H_
