#include "io/fault_injection.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "obs/flight_recorder.h"

namespace scanraw {

namespace {

// Simulated crash: the flight recorder dumps its rings first, exactly as a
// real crash handler would, so post-mortem tests can assert on the dump.
[[noreturn]] void KillNow(uint64_t detail) {
  obs::FlightRecord(obs::FlightEvent::kKillPoint, detail, 0);
  obs::FlightRecorder::Global()->DumpOnCrash();
  ::_exit(kFaultKillExitCode);
}

}  // namespace

namespace {

std::atomic<FaultInjector*> g_injector{nullptr};

Status InjectedErrnoStatus(int err, const std::string& context) {
  const std::string msg =
      "injected fault: " + context + ": " + std::strerror(err);
  if (err == ENOSPC) return Status::ResourceExhausted(msg);
  return Status::IoError(msg);
}

// ------------------------------------------------------------ decorators --

// The decorators deliberately re-fetch the global injector on every call
// instead of caching the pointer handed out at wrap time: a wrapped file may
// outlive the ScopedFaultInjection that caused the wrapping (e.g. a
// StorageManager created under injection and used after), and must then
// behave as a plain pass-through rather than touch a dead injector.
FaultInjector* ActiveInjector(const std::string& path) {
  FaultInjector* injector = FaultInjector::Global();
  if (injector == nullptr || !injector->Matches(path)) return nullptr;
  return injector;
}

class FaultInjectingRandomAccessFile : public RandomAccessFile {
 public:
  explicit FaultInjectingRandomAccessFile(
      std::unique_ptr<RandomAccessFile> base)
      : base_(std::move(base)) {}

  Result<size_t> ReadAt(uint64_t offset, size_t length,
                        char* scratch) const override {
    if (FaultInjector* injector = ActiveInjector(base_->path())) {
      if (injector->plan().read_delay_ms > 0) {
        // Deliberate stall, emulating a hung device under the READ loop so
        // the watchdog tests have a real no-progress window to detect.
        // scanraw-lint: allow(sleep-in-src)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(injector->plan().read_delay_ms));
      }
      auto fault = injector->OnRead(base_->path(), length);
      using Kind = FaultInjector::ReadFault::Kind;
      switch (fault.kind) {
        case Kind::kError:
          return fault.status;
        case Kind::kShort:
          length = fault.short_length;
          break;
        case Kind::kRetry:  // simulated EINTR: already retried internally
        case Kind::kNone:
          break;
      }
    }
    return base_->ReadAt(offset, length, scratch);
  }

  uint64_t size() const override { return base_->size(); }
  const std::string& path() const override { return base_->path(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
};

class FaultInjectingWritableFile : public WritableFile {
 public:
  explicit FaultInjectingWritableFile(std::unique_ptr<WritableFile> base)
      : base_(std::move(base)) {}

  Status Append(const char* data, size_t length) override {
    FaultInjector* injector = ActiveInjector(base_->path());
    if (injector == nullptr) return base_->Append(data, length);
    auto fault = injector->OnAppend(base_->path(), length);
    using Kind = FaultInjector::AppendFault::Kind;
    if (fault.kind == Kind::kNone) return base_->Append(data, length);
    // Torn write: the prefix reaches the file, then the error / crash.
    if (fault.torn_bytes > 0) {
      (void)base_->Append(data, fault.torn_bytes);
    }
    if (fault.kind == Kind::kKill) KillNow(length);
    return fault.status;
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    if (FaultInjector* injector = ActiveInjector(base_->path())) {
      SCANRAW_RETURN_IF_ERROR(injector->OnSync(base_->path()));
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

  uint64_t bytes_written() const override { return base_->bytes_written(); }
  const std::string& path() const override { return base_->path(); }

 private:
  std::unique_ptr<WritableFile> base_;
};

}  // namespace

// ---------------------------------------------------------- FaultInjector --

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

bool FaultInjector::Matches(const std::string& path) const {
  return plan_.path_substring.empty() ||
         path.find(plan_.path_substring) != std::string::npos;
}

bool FaultInjector::Draw(double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  return rng_.NextDouble() < rate;
}

FaultInjector::ReadFault FaultInjector::OnRead(const std::string& path,
                                               size_t length) {
  ReadFault fault;
  if (!Matches(path)) return fault;
  MutexLock lock(mu_);
  if (Draw(plan_.read_error_rate)) {
    counters_.read_errors.fetch_add(1, std::memory_order_relaxed);
    fault.kind = ReadFault::Kind::kError;
    fault.status = InjectedErrnoStatus(plan_.error_errno, "pread " + path);
    return fault;
  }
  if (length > 1 && Draw(plan_.short_read_rate)) {
    counters_.short_reads.fetch_add(1, std::memory_order_relaxed);
    fault.kind = ReadFault::Kind::kShort;
    fault.short_length = 1 + rng_.Uniform(length - 1);
    return fault;
  }
  if (Draw(plan_.read_eintr_rate)) {
    counters_.read_retries.fetch_add(1, std::memory_order_relaxed);
    fault.kind = ReadFault::Kind::kRetry;
  }
  return fault;
}

FaultInjector::AppendFault FaultInjector::OnAppend(const std::string& path,
                                                   size_t length) {
  AppendFault fault;
  if (!Matches(path)) return fault;
  MutexLock lock(mu_);
  const uint64_t ordinal = ++appends_seen_;
  const bool kill =
      plan_.kill_append_at != 0 && ordinal == plan_.kill_append_at;
  const bool error = !kill && Draw(plan_.append_error_rate);
  if (!kill && !error) return fault;
  fault.torn_bytes = static_cast<size_t>(
      static_cast<double>(length) * plan_.torn_fraction);
  if (fault.torn_bytes >= length && length > 0) fault.torn_bytes = length - 1;
  if (fault.torn_bytes > 0) {
    counters_.torn_appends.fetch_add(1, std::memory_order_relaxed);
  }
  if (kill) {
    fault.kind = AppendFault::Kind::kKill;
    counters_.kill_point_hits.fetch_add(1, std::memory_order_relaxed);
    return fault;
  }
  counters_.append_errors.fetch_add(1, std::memory_order_relaxed);
  fault.kind = AppendFault::Kind::kError;
  fault.status = InjectedErrnoStatus(plan_.error_errno, "write " + path);
  return fault;
}

Status FaultInjector::OnSync(const std::string& path) {
  if (!Matches(path)) return Status::OK();
  MutexLock lock(mu_);
  if (Draw(plan_.sync_error_rate)) {
    counters_.sync_errors.fetch_add(1, std::memory_order_relaxed);
    return InjectedErrnoStatus(plan_.error_errno, "fdatasync " + path);
  }
  return Status::OK();
}

void FaultInjector::MaybeKill(std::string_view point) {
  if (plan_.kill_point.empty() || point != plan_.kill_point) return;
  bool fire = false;
  uint64_t hits = 0;
  {
    MutexLock lock(mu_);
    hits = ++kill_hits_;
    fire = hits == plan_.kill_point_hit;
  }
  counters_.kill_point_hits.fetch_add(1, std::memory_order_relaxed);
  if (fire) KillNow(hits);
}

FaultInjector* FaultInjector::Global() {
  return g_injector.load(std::memory_order_acquire);
}

void FaultInjector::InstallGlobal(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

void FaultKillPoint(std::string_view point) {
  if (FaultInjector* injector = FaultInjector::Global()) {
    injector->MaybeKill(point);
  }
}

std::unique_ptr<RandomAccessFile> MaybeWrapWithFaultInjection(
    std::unique_ptr<RandomAccessFile> file) {
  if (ActiveInjector(file->path()) == nullptr) return file;
  return std::make_unique<FaultInjectingRandomAccessFile>(std::move(file));
}

std::unique_ptr<WritableFile> MaybeWrapWithFaultInjection(
    std::unique_ptr<WritableFile> file) {
  if (ActiveInjector(file->path()) == nullptr) return file;
  return std::make_unique<FaultInjectingWritableFile>(std::move(file));
}

}  // namespace scanraw
