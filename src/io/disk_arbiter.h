// DiskArbiter: enforces the SCANRAW rule that only one of READ or WRITE
// touches the disk at any instant (§3.2, "SCANRAW has to enforce that only
// one of READ or WRITE accesses the disk at any particular instant in time").
//
// The scheduler thread owns the policy: READ holds the disk by default; when
// READ is blocked on a full text-chunk buffer the scheduler grants the disk
// to WRITE for one chunk, then `resume`s READ (Figure 3's control messages).
#ifndef SCANRAW_IO_DISK_ARBITER_H_
#define SCANRAW_IO_DISK_ARBITER_H_

#include <cstdint>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "obs/heartbeat.h"
#include "obs/metrics.h"

namespace scanraw {

enum class DiskUser : int { kNone = 0, kReader = 1, kWriter = 2 };

class DiskArbiter {
 public:
  explicit DiskArbiter(const Clock* clock = RealClock::Instance())
      : clock_(clock) {}

  // Blocks until the disk is free or already held by `user`, then takes it.
  void Acquire(DiskUser user) EXCLUDES(mu_);

  // Non-blocking variant; returns true if the disk was taken.
  bool TryAcquire(DiskUser user) EXCLUDES(mu_);

  void Release(DiskUser user) EXCLUDES(mu_);

  DiskUser current_user() const EXCLUDES(mu_);

  // Cumulative nanoseconds the disk was held by readers / writers; the
  // resource-utilization benchmark (Figure 9) samples these.
  int64_t reader_busy_nanos() const EXCLUDES(mu_);
  int64_t writer_busy_nanos() const EXCLUDES(mu_);

  // Cumulative nanoseconds readers / writers spent blocked in Acquire.
  // Per-query deltas drive the DISK_WAIT stage of critical-path
  // attribution, distinguishing contention on the single-disk rule from
  // bandwidth throttling.
  int64_t reader_wait_nanos() const EXCLUDES(mu_);
  int64_t writer_wait_nanos() const EXCLUDES(mu_);

  // Wires per-acquire wait/hold latency histograms (nanoseconds a READ or
  // WRITE spent blocked before taking the disk, and held it afterwards).
  // Call before the arbiter is shared across threads; pass nullptr to
  // detach.
  void BindMetrics(obs::Histogram* reader_wait, obs::Histogram* writer_wait,
                   obs::Histogram* reader_hold, obs::Histogram* writer_hold)
      EXCLUDES(mu_);

  // Wires the watchdog's ARBITER stage: threads are marked active while
  // blocked in Acquire and every grant/release beats, so a deadlocked
  // READ/WRITE handoff shows up as a stalled ARBITER stage. Call before the
  // arbiter is shared across threads; pass nullptr to detach.
  void BindHeartbeats(obs::StageHeartbeats* heartbeats) EXCLUDES(mu_);

 private:
  const Clock* clock_;
  // Written once before threads share the arbiter (BindHeartbeats), then
  // only read; relaxed atomic keeps late binding defined.
  std::atomic<obs::StageHeartbeats*> heartbeats_{nullptr};
  mutable Mutex mu_{LockRank::kDiskArbiter, "DiskArbiter.mu"};
  CondVar cv_;
  DiskUser user_ GUARDED_BY(mu_) = DiskUser::kNone;
  int64_t acquired_at_nanos_ GUARDED_BY(mu_) = 0;
  int64_t reader_busy_nanos_ GUARDED_BY(mu_) = 0;
  int64_t writer_busy_nanos_ GUARDED_BY(mu_) = 0;
  int64_t reader_wait_nanos_ GUARDED_BY(mu_) = 0;
  int64_t writer_wait_nanos_ GUARDED_BY(mu_) = 0;
  obs::Histogram* reader_wait_hist_ GUARDED_BY(mu_) = nullptr;
  obs::Histogram* writer_wait_hist_ GUARDED_BY(mu_) = nullptr;
  obs::Histogram* reader_hold_hist_ GUARDED_BY(mu_) = nullptr;
  obs::Histogram* writer_hold_hist_ GUARDED_BY(mu_) = nullptr;
};

// RAII holder.
class ScopedDiskAccess {
 public:
  ScopedDiskAccess(DiskArbiter* arbiter, DiskUser user)
      : arbiter_(arbiter), user_(user) {
    if (arbiter_ != nullptr) arbiter_->Acquire(user_);
  }
  ~ScopedDiskAccess() {
    if (arbiter_ != nullptr) arbiter_->Release(user_);
  }
  ScopedDiskAccess(const ScopedDiskAccess&) = delete;
  ScopedDiskAccess& operator=(const ScopedDiskAccess&) = delete;

 private:
  DiskArbiter* arbiter_;
  DiskUser user_;
};

}  // namespace scanraw

#endif  // SCANRAW_IO_DISK_ARBITER_H_
