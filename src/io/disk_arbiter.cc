#include "io/disk_arbiter.h"

namespace scanraw {

void DiskArbiter::Acquire(DiskUser user) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return user_ == DiskUser::kNone; });
  user_ = user;
  acquired_at_nanos_ = clock_->NowNanos();
}

bool DiskArbiter::TryAcquire(DiskUser user) {
  std::lock_guard<std::mutex> lock(mu_);
  if (user_ != DiskUser::kNone) return false;
  user_ = user;
  acquired_at_nanos_ = clock_->NowNanos();
  return true;
}

void DiskArbiter::Release(DiskUser user) {
  std::lock_guard<std::mutex> lock(mu_);
  if (user_ != user) return;  // defensive: double release is a no-op
  const int64_t held = clock_->NowNanos() - acquired_at_nanos_;
  if (user == DiskUser::kReader) {
    reader_busy_nanos_ += held;
  } else if (user == DiskUser::kWriter) {
    writer_busy_nanos_ += held;
  }
  user_ = DiskUser::kNone;
  cv_.notify_all();
}

DiskUser DiskArbiter::current_user() const {
  std::lock_guard<std::mutex> lock(mu_);
  return user_;
}

int64_t DiskArbiter::reader_busy_nanos() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reader_busy_nanos_;
}

int64_t DiskArbiter::writer_busy_nanos() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writer_busy_nanos_;
}

}  // namespace scanraw
