#include "io/disk_arbiter.h"

namespace scanraw {

void DiskArbiter::Acquire(DiskUser user) {
  const int64_t wait_start = clock_->NowNanos();
  // Heartbeat scope covers the blocking wait: a thread wedged here shows as
  // ARBITER active with a frozen beat count, which is exactly the signature
  // the stall watchdog looks for.
  obs::StageHeartbeats::Scope heartbeat(
      heartbeats_.load(std::memory_order_relaxed),
      obs::HeartbeatStage::kArbiter);
  MutexLock lock(mu_);
  while (user_ != DiskUser::kNone) cv_.Wait(lock);
  user_ = user;
  acquired_at_nanos_ = clock_->NowNanos();
  const int64_t waited = acquired_at_nanos_ - wait_start;
  if (user == DiskUser::kReader) {
    reader_wait_nanos_ += waited;
  } else if (user == DiskUser::kWriter) {
    writer_wait_nanos_ += waited;
  }
  obs::Histogram* wait_hist = user == DiskUser::kReader ? reader_wait_hist_
                                                        : writer_wait_hist_;
  if (wait_hist != nullptr) {
    wait_hist->Record(static_cast<uint64_t>(waited < 0 ? 0 : waited));
  }
}

bool DiskArbiter::TryAcquire(DiskUser user) {
  MutexLock lock(mu_);
  if (user_ != DiskUser::kNone) return false;
  user_ = user;
  acquired_at_nanos_ = clock_->NowNanos();
  return true;
}

void DiskArbiter::Release(DiskUser user) {
  MutexLock lock(mu_);
  if (user_ != user) return;  // defensive: double release is a no-op
  const int64_t held = clock_->NowNanos() - acquired_at_nanos_;
  if (user == DiskUser::kReader) {
    reader_busy_nanos_ += held;
    if (reader_hold_hist_ != nullptr) {
      reader_hold_hist_->Record(static_cast<uint64_t>(held));
    }
  } else if (user == DiskUser::kWriter) {
    writer_busy_nanos_ += held;
    if (writer_hold_hist_ != nullptr) {
      writer_hold_hist_->Record(static_cast<uint64_t>(held));
    }
  }
  user_ = DiskUser::kNone;
  cv_.NotifyAll();
  obs::StageHeartbeats* hb = heartbeats_.load(std::memory_order_relaxed);
  if (hb != nullptr) hb->Beat(obs::HeartbeatStage::kArbiter);
}

void DiskArbiter::BindMetrics(obs::Histogram* reader_wait,
                              obs::Histogram* writer_wait,
                              obs::Histogram* reader_hold,
                              obs::Histogram* writer_hold) {
  MutexLock lock(mu_);
  reader_wait_hist_ = reader_wait;
  writer_wait_hist_ = writer_wait;
  reader_hold_hist_ = reader_hold;
  writer_hold_hist_ = writer_hold;
}

void DiskArbiter::BindHeartbeats(obs::StageHeartbeats* heartbeats) {
  heartbeats_.store(heartbeats, std::memory_order_relaxed);
}

DiskUser DiskArbiter::current_user() const {
  MutexLock lock(mu_);
  return user_;
}

int64_t DiskArbiter::reader_busy_nanos() const {
  MutexLock lock(mu_);
  return reader_busy_nanos_;
}

int64_t DiskArbiter::writer_busy_nanos() const {
  MutexLock lock(mu_);
  return writer_busy_nanos_;
}

int64_t DiskArbiter::reader_wait_nanos() const {
  MutexLock lock(mu_);
  return reader_wait_nanos_;
}

int64_t DiskArbiter::writer_wait_nanos() const {
  MutexLock lock(mu_);
  return writer_wait_nanos_;
}

}  // namespace scanraw
