// POSIX file wrappers used by the READ and WRITE stages and by the storage
// manager. All I/O goes through these so byte counters and the optional
// bandwidth limiter see every access.
#ifndef SCANRAW_IO_FILE_H_
#define SCANRAW_IO_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace scanraw {

class RateLimiter;

// Aggregate I/O counters. Thread-safe.
struct IoStats {
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> read_calls{0};
  std::atomic<uint64_t> write_calls{0};

  void Reset() {
    bytes_read = 0;
    bytes_written = 0;
    read_calls = 0;
    write_calls = 0;
  }
};

// Sequential reader with positional Read support (pread). Thread-compatible:
// concurrent ReadAt calls are safe, Read/Skip are not.
class RandomAccessFile {
 public:
  // Opens an existing file for reading.
  static Result<std::unique_ptr<RandomAccessFile>> Open(
      const std::string& path, RateLimiter* limiter = nullptr,
      IoStats* stats = nullptr);

  ~RandomAccessFile();
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  // Reads up to `length` bytes at `offset` into `scratch`; returns the number
  // of bytes read (0 at EOF).
  Result<size_t> ReadAt(uint64_t offset, size_t length, char* scratch) const;

  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  RandomAccessFile(std::string path, int fd, uint64_t size,
                   RateLimiter* limiter, IoStats* stats);

  std::string path_;
  int fd_;
  uint64_t size_;
  RateLimiter* limiter_;
  IoStats* stats_;
};

// Append-only writer (creates or truncates). Not thread-safe.
class WritableFile {
 public:
  static Result<std::unique_ptr<WritableFile>> Create(
      const std::string& path, RateLimiter* limiter = nullptr,
      IoStats* stats = nullptr);

  // Opens an existing file (or creates an empty one) and appends to its
  // end; bytes_written() starts at the existing size.
  static Result<std::unique_ptr<WritableFile>> OpenForAppend(
      const std::string& path, RateLimiter* limiter = nullptr,
      IoStats* stats = nullptr);

  ~WritableFile();
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  Status Append(const char* data, size_t length);
  Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }
  Status Flush();
  Status Close();

  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  WritableFile(std::string path, int fd, RateLimiter* limiter, IoStats* stats);

  std::string path_;
  int fd_;
  uint64_t bytes_written_ = 0;
  RateLimiter* limiter_;
  IoStats* stats_;
};

// Convenience helpers (tests, generators).
Status WriteStringToFile(const std::string& path, std::string_view contents);
Result<std::string> ReadFileToString(const std::string& path);
Result<uint64_t> GetFileSize(const std::string& path);
bool FileExists(const std::string& path);
Status RemoveFileIfExists(const std::string& path);

}  // namespace scanraw

#endif  // SCANRAW_IO_FILE_H_
