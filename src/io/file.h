// POSIX file wrappers used by the READ and WRITE stages and by the storage
// manager. All I/O goes through these so byte counters and the optional
// bandwidth limiter see every access. Both classes are abstract interfaces:
// the factories return the POSIX implementation, transparently wrapped in a
// fault-injecting decorator when a FaultInjector is installed (see
// io/fault_injection.h), so tests exercise error paths through the exact
// production call sites.
#ifndef SCANRAW_IO_FILE_H_
#define SCANRAW_IO_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace scanraw {

class RateLimiter;

// Aggregate I/O counters. Thread-safe.
struct IoStats {
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> read_calls{0};
  std::atomic<uint64_t> write_calls{0};

  void Reset() {
    bytes_read = 0;
    bytes_written = 0;
    read_calls = 0;
    write_calls = 0;
  }
};

// Sequential reader with positional Read support (pread). Thread-compatible:
// concurrent ReadAt calls are safe.
class RandomAccessFile {
 public:
  // Opens an existing file for reading.
  static Result<std::unique_ptr<RandomAccessFile>> Open(
      const std::string& path, RateLimiter* limiter = nullptr,
      IoStats* stats = nullptr);

  virtual ~RandomAccessFile() = default;
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  // Reads up to `length` bytes at `offset` into `scratch`; returns the number
  // of bytes read (0 at EOF).
  virtual Result<size_t> ReadAt(uint64_t offset, size_t length,
                                char* scratch) const = 0;

  virtual uint64_t size() const = 0;
  virtual const std::string& path() const = 0;

 protected:
  RandomAccessFile() = default;
};

// Append-only writer (creates or truncates). Not thread-safe. Destruction
// without Close() releases the descriptor but cannot report errors; durable
// state must Sync() + Close() and check both statuses.
class WritableFile {
 public:
  static Result<std::unique_ptr<WritableFile>> Create(
      const std::string& path, RateLimiter* limiter = nullptr,
      IoStats* stats = nullptr);

  // Opens an existing file (or creates an empty one) and appends to its
  // end; bytes_written() starts at the existing size.
  static Result<std::unique_ptr<WritableFile>> OpenForAppend(
      const std::string& path, RateLimiter* limiter = nullptr,
      IoStats* stats = nullptr);

  virtual ~WritableFile() = default;
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  virtual Status Append(const char* data, size_t length) = 0;
  Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }
  virtual Status Flush() = 0;
  // Forces written bytes to stable storage (fdatasync). The durability
  // contract everywhere in this tree: data is Sync()ed before any catalog
  // record points at it.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;

  virtual uint64_t bytes_written() const = 0;
  virtual const std::string& path() const = 0;

 protected:
  WritableFile() = default;
};

// Convenience helpers (tests, generators).
Status WriteStringToFile(const std::string& path, std::string_view contents);
Result<std::string> ReadFileToString(const std::string& path);
Result<uint64_t> GetFileSize(const std::string& path);
bool FileExists(const std::string& path);

// Exact stat of a file, for change detection: byte size plus mtime at
// nanosecond precision. Persisted indexes (e.g. the posmap sidecar) record
// this and are dropped when the live file no longer matches exactly.
struct FileStatInfo {
  uint64_t size = 0;
  int64_t mtime_nanos = 0;
};
Result<FileStatInfo> StatFile(const std::string& path);
Status RemoveFileIfExists(const std::string& path);

// Atomically replaces the file at `path` with `contents`: writes
// `path`.tmp, fsyncs it, renames over `path`, then fsyncs the parent
// directory so the rename itself is durable. A crash at any point leaves
// either the complete old file or the complete new file — never a torn mix.
// All state files (catalog, resident bitmaps, ...) must be saved through
// this helper; scanraw-lint's state-file-write rule enforces it.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

// fsync on a directory, making completed renames/creations in it durable.
Status SyncDir(const std::string& dir);

// rename(2) with Status error reporting.
Status RenameFile(const std::string& from, const std::string& to);

}  // namespace scanraw

#endif  // SCANRAW_IO_FILE_H_
