#include "io/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/lock_debug.h"
#include "io/fault_injection.h"
#include "io/rate_limiter.h"

// Lock discipline: every syscall path below calls
// lockdebug::AssertSafeToBlock unconditionally — a thread holding any lock
// ranked below LockRank::kIoBoundary must never reach a blocking file
// operation. In builds without SCANRAW_LOCK_DEBUG the held-lock stacks are
// empty and the check is a thread-local read (covered by the
// introspection_overhead gate).

namespace scanraw {

namespace {

Status ErrnoStatus(const std::string& context) {
  if (errno == ENOSPC) {
    return Status::ResourceExhausted(context + ": " + std::strerror(errno));
  }
  return Status::IoError(context + ": " + std::strerror(errno));
}

// ---------------------------------------------------------------- reader --

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, int fd, uint64_t size,
                        RateLimiter* limiter, IoStats* stats)
      : path_(std::move(path)),
        fd_(fd),
        size_(size),
        limiter_(limiter),
        stats_(stats) {}

  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> ReadAt(uint64_t offset, size_t length,
                        char* scratch) const override {
    lockdebug::AssertSafeToBlock("RandomAccessFile::ReadAt");
    size_t done = 0;
    while (done < length) {
      ssize_t n = ::pread(fd_, scratch + done, length - done,
                          static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread " + path_);
      }
      if (n == 0) break;  // EOF
      done += static_cast<size_t>(n);
    }
    if (limiter_ != nullptr) limiter_->Acquire(done);
    if (stats_ != nullptr) {
      stats_->bytes_read.fetch_add(done, std::memory_order_relaxed);
      stats_->read_calls.fetch_add(1, std::memory_order_relaxed);
    }
    return done;
  }

  uint64_t size() const override { return size_; }
  const std::string& path() const override { return path_; }

 private:
  std::string path_;
  int fd_;
  uint64_t size_;
  RateLimiter* limiter_;
  IoStats* stats_;
};

// ---------------------------------------------------------------- writer --

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd, uint64_t bytes_written,
                    RateLimiter* limiter, IoStats* stats)
      : path_(std::move(path)),
        fd_(fd),
        bytes_written_(bytes_written),
        limiter_(limiter),
        stats_(stats) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const char* data, size_t length) override {
    lockdebug::AssertSafeToBlock("WritableFile::Append");
    if (fd_ < 0) return Status::IoError("write to closed file " + path_);
    size_t done = 0;
    while (done < length) {
      ssize_t n = ::write(fd_, data + done, length - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        bytes_written_ += done;  // a torn prefix may have reached the file
        return ErrnoStatus("write " + path_);
      }
      done += static_cast<size_t>(n);
    }
    bytes_written_ += length;
    if (limiter_ != nullptr) limiter_->Acquire(length);
    if (stats_ != nullptr) {
      stats_->bytes_written.fetch_add(length, std::memory_order_relaxed);
      stats_->write_calls.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::OK();
  }

  Status Flush() override {
    if (fd_ < 0) return Status::IoError("flush of closed file " + path_);
    return Status::OK();  // no user-space buffering
  }

  Status Sync() override {
    lockdebug::AssertSafeToBlock("WritableFile::Sync");
    if (fd_ < 0) return Status::IoError("sync of closed file " + path_);
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync " + path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return ErrnoStatus("close " + path_);
    return Status::OK();
  }

  uint64_t bytes_written() const override { return bytes_written_; }
  const std::string& path() const override { return path_; }

 private:
  std::string path_;
  int fd_;
  uint64_t bytes_written_;
  RateLimiter* limiter_;
  IoStats* stats_;
};

}  // namespace

Result<std::unique_ptr<RandomAccessFile>> RandomAccessFile::Open(
    const std::string& path, RateLimiter* limiter, IoStats* stats) {
  lockdebug::AssertSafeToBlock("RandomAccessFile::Open");
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = ErrnoStatus("fstat " + path);
    ::close(fd);
    return s;
  }
  return MaybeWrapWithFaultInjection(std::unique_ptr<RandomAccessFile>(
      new PosixRandomAccessFile(path, fd, static_cast<uint64_t>(st.st_size),
                                limiter, stats)));
}

Result<std::unique_ptr<WritableFile>> WritableFile::Create(
    const std::string& path, RateLimiter* limiter, IoStats* stats) {
  lockdebug::AssertSafeToBlock("WritableFile::Create");
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  return MaybeWrapWithFaultInjection(std::unique_ptr<WritableFile>(
      new PosixWritableFile(path, fd, 0, limiter, stats)));
}

Result<std::unique_ptr<WritableFile>> WritableFile::OpenForAppend(
    const std::string& path, RateLimiter* limiter, IoStats* stats) {
  lockdebug::AssertSafeToBlock("WritableFile::OpenForAppend");
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = ErrnoStatus("fstat " + path);
    ::close(fd);
    return s;
  }
  return MaybeWrapWithFaultInjection(std::unique_ptr<WritableFile>(
      new PosixWritableFile(path, fd, static_cast<uint64_t>(st.st_size),
                            limiter, stats)));
}

// --------------------------------------------------------------- helpers --

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  auto file = WritableFile::Create(path);
  if (!file.ok()) return file.status();
  SCANRAW_RETURN_IF_ERROR((*file)->Append(contents.data(), contents.size()));
  return (*file)->Close();
}

Result<std::string> ReadFileToString(const std::string& path) {
  auto file = RandomAccessFile::Open(path);
  if (!file.ok()) return file.status();
  std::string out;
  out.resize((*file)->size());
  auto n = (*file)->ReadAt(0, out.size(), out.data());
  if (!n.ok()) return n.status();
  out.resize(*n);
  return out;
}

Result<uint64_t> GetFileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat " + path);
  return static_cast<uint64_t>(st.st_size);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<FileStatInfo> StatFile(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat " + path);
  FileStatInfo info;
  info.size = static_cast<uint64_t>(st.st_size);
  info.mtime_nanos = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                     static_cast<int64_t>(st.st_mtim.tv_nsec);
  return info;
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink " + path);
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  lockdebug::AssertSafeToBlock("SyncDir");
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open dir " + dir);
  int rc = ::fsync(fd);
  int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved_errno;
    return ErrnoStatus("fsync dir " + dir);
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename " + from + " -> " + to);
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  {
    auto file = WritableFile::Create(tmp);
    if (!file.ok()) return file.status();
    Status s = (*file)->Append(contents.data(), contents.size());
    FaultKillPoint("atomic_write.after_append");
    if (s.ok()) s = (*file)->Sync();
    FaultKillPoint("atomic_write.after_sync");
    Status close_status = (*file)->Close();
    if (s.ok()) s = close_status;
    if (!s.ok()) {
      (void)RemoveFileIfExists(tmp);
      return s;
    }
  }
  SCANRAW_RETURN_IF_ERROR(RenameFile(tmp, path));
  FaultKillPoint("atomic_write.after_rename");
  // Make the rename durable. Without a directory entry sync a crash can
  // roll the rename back even though the data blocks reached disk.
  auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  return SyncDir(dir);
}

}  // namespace scanraw
