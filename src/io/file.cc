#include "io/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "io/rate_limiter.h"

namespace scanraw {

namespace {

Status ErrnoStatus(const std::string& context) {
  return Status::IoError(context + ": " + std::strerror(errno));
}

}  // namespace

// ---------------------------------------------------------------- reader --

Result<std::unique_ptr<RandomAccessFile>> RandomAccessFile::Open(
    const std::string& path, RateLimiter* limiter, IoStats* stats) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = ErrnoStatus("fstat " + path);
    ::close(fd);
    return s;
  }
  return std::unique_ptr<RandomAccessFile>(new RandomAccessFile(
      path, fd, static_cast<uint64_t>(st.st_size), limiter, stats));
}

RandomAccessFile::RandomAccessFile(std::string path, int fd, uint64_t size,
                                   RateLimiter* limiter, IoStats* stats)
    : path_(std::move(path)),
      fd_(fd),
      size_(size),
      limiter_(limiter),
      stats_(stats) {}

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<size_t> RandomAccessFile::ReadAt(uint64_t offset, size_t length,
                                        char* scratch) const {
  size_t done = 0;
  while (done < length) {
    ssize_t n = ::pread(fd_, scratch + done, length - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread " + path_);
    }
    if (n == 0) break;  // EOF
    done += static_cast<size_t>(n);
  }
  if (limiter_ != nullptr) limiter_->Acquire(done);
  if (stats_ != nullptr) {
    stats_->bytes_read.fetch_add(done, std::memory_order_relaxed);
    stats_->read_calls.fetch_add(1, std::memory_order_relaxed);
  }
  return done;
}

// ---------------------------------------------------------------- writer --

Result<std::unique_ptr<WritableFile>> WritableFile::Create(
    const std::string& path, RateLimiter* limiter, IoStats* stats) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  return std::unique_ptr<WritableFile>(
      new WritableFile(path, fd, limiter, stats));
}

Result<std::unique_ptr<WritableFile>> WritableFile::OpenForAppend(
    const std::string& path, RateLimiter* limiter, IoStats* stats) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = ErrnoStatus("fstat " + path);
    ::close(fd);
    return s;
  }
  auto file = std::unique_ptr<WritableFile>(
      new WritableFile(path, fd, limiter, stats));
  file->bytes_written_ = static_cast<uint64_t>(st.st_size);
  return file;
}

WritableFile::WritableFile(std::string path, int fd, RateLimiter* limiter,
                           IoStats* stats)
    : path_(std::move(path)), fd_(fd), limiter_(limiter), stats_(stats) {}

WritableFile::~WritableFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status WritableFile::Append(const char* data, size_t length) {
  if (fd_ < 0) return Status::IoError("write to closed file " + path_);
  size_t done = 0;
  while (done < length) {
    ssize_t n = ::write(fd_, data + done, length - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write " + path_);
    }
    done += static_cast<size_t>(n);
  }
  bytes_written_ += length;
  if (limiter_ != nullptr) limiter_->Acquire(length);
  if (stats_ != nullptr) {
    stats_->bytes_written.fetch_add(length, std::memory_order_relaxed);
    stats_->write_calls.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status WritableFile::Flush() {
  if (fd_ < 0) return Status::IoError("flush of closed file " + path_);
  return Status::OK();  // no user-space buffering
}

Status WritableFile::Close() {
  if (fd_ < 0) return Status::OK();
  int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) return ErrnoStatus("close " + path_);
  return Status::OK();
}

// --------------------------------------------------------------- helpers --

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  auto file = WritableFile::Create(path);
  if (!file.ok()) return file.status();
  SCANRAW_RETURN_IF_ERROR((*file)->Append(contents.data(), contents.size()));
  return (*file)->Close();
}

Result<std::string> ReadFileToString(const std::string& path) {
  auto file = RandomAccessFile::Open(path);
  if (!file.ok()) return file.status();
  std::string out;
  out.resize((*file)->size());
  auto n = (*file)->ReadAt(0, out.size(), out.data());
  if (!n.ok()) return n.status();
  out.resize(*n);
  return out;
}

Result<uint64_t> GetFileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat " + path);
  return static_cast<uint64_t>(st.st_size);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink " + path);
  }
  return Status::OK();
}

}  // namespace scanraw
