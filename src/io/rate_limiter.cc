#include "io/rate_limiter.h"

#include <algorithm>
#include <chrono>

namespace scanraw {

namespace {
// Burst capacity: one bucket's worth of traffic may pass unthrottled so that
// chunk-sized requests do not stutter.
constexpr double kBurstSeconds = 0.05;
}  // namespace

RateLimiter::RateLimiter(uint64_t bytes_per_second, const Clock* clock)
    : bytes_per_second_(bytes_per_second), clock_(clock) {
  last_refill_nanos_ = clock_->NowNanos();
  available_bytes_ = static_cast<double>(bytes_per_second_) * kBurstSeconds;
}

void RateLimiter::Acquire(uint64_t bytes) {
  if (bytes_per_second_ == 0 || bytes == 0) {
    MutexLock lock(mu_);
    total_admitted_ += bytes;
    return;
  }
  const int64_t enter_nanos = clock_->NowNanos();
  bool slept = false;
  MutexLock lock(mu_);
  while (true) {
    const int64_t now = clock_->NowNanos();
    const double elapsed = static_cast<double>(now - last_refill_nanos_) * 1e-9;
    last_refill_nanos_ = now;
    const double cap = static_cast<double>(bytes_per_second_) * kBurstSeconds;
    available_bytes_ = std::min(
        cap, available_bytes_ +
                 elapsed * static_cast<double>(bytes_per_second_));
    // Requests larger than the burst capacity are admitted once the bucket
    // is full, taking the balance negative; the debt throttles later calls.
    const double need = std::min(static_cast<double>(bytes), cap);
    if (available_bytes_ >= need) {
      available_bytes_ -= static_cast<double>(bytes);
      total_admitted_ += bytes;
      if (slept) {
        const int64_t waited = clock_->NowNanos() - enter_nanos;
        total_wait_nanos_ += waited > 0 ? static_cast<uint64_t>(waited) : 0;
        ++throttle_events_;
        if (wait_hist_ != nullptr) {
          wait_hist_->Record(waited > 0 ? static_cast<uint64_t>(waited) : 0);
        }
        if (throttle_counter_ != nullptr) throttle_counter_->Add(1);
      }
      return;
    }
    const double deficit = need - available_bytes_;
    const double wait_s = deficit / static_cast<double>(bytes_per_second_);
    slept = true;
    // Timed wait releases the lock while the emulated device "spins"; the
    // loop re-refills from the clock on wakeup, so a spurious or early wake
    // merely retries.
    refill_cv_.WaitFor(lock, std::chrono::duration<double>(wait_s));
  }
}

uint64_t RateLimiter::total_admitted() const {
  MutexLock lock(mu_);
  return total_admitted_;
}

uint64_t RateLimiter::total_wait_nanos() const {
  MutexLock lock(mu_);
  return total_wait_nanos_;
}

uint64_t RateLimiter::throttle_events() const {
  MutexLock lock(mu_);
  return throttle_events_;
}

void RateLimiter::BindMetrics(obs::Histogram* wait_nanos,
                              obs::Counter* throttles) {
  MutexLock lock(mu_);
  wait_hist_ = wait_nanos;
  throttle_counter_ = throttles;
}

}  // namespace scanraw
