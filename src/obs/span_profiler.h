// SpanProfiler: query-scoped span recording and critical-path attribution.
// Where the metrics registry aggregates process-global counters and the
// ChunkTracer keeps a bounded event ring, the SpanProfiler answers the
// per-query question behind the paper's Fig. 9 utilization story: how much
// time each pipeline stage (READ, TOKENIZE, PARSE, WRITE, cache-hit
// delivery, heap scan, engine) was busy, on how many threads, and which
// stage bounded the query — the stage whose spans cover the largest part of
// the query's wall time once per-thread overlap is merged away.
//
// One SpanProfiler lives per query run. Recording is mutex-guarded — spans
// are per chunk-stage, orders of magnitude rarer than per-row work — and
// the span store is bounded so adversarial queries cannot grow it without
// limit (overflow is counted, aggregation still uses every recorded span).
#ifndef SCANRAW_OBS_SPAN_PROFILER_H_
#define SCANRAW_OBS_SPAN_PROFILER_H_

#include <array>
#include <cstdint>
#include <set>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/thread_annotations.h"

namespace scanraw {
namespace obs {

// Per-query stage taxonomy. The first group is busy work; the kWait group
// records time a stage spent blocked, split so critical-path attribution
// can distinguish disk-bound waits (the bandwidth limiter emulating the
// device) from contention-bound waits (READ and WRITE arbitrating one
// disk).
enum class QueryStage : uint8_t {
  kRead = 0,
  kTokenize = 1,
  kParse = 2,
  kWrite = 3,
  kCacheHit = 4,  // delivering a binary chunk straight from the cache
  kHeapScan = 5,  // database-resident scan (retired-operator path)
  kEngine = 6,    // execution-engine consume time
  // Wait categories (blocked, not busy).
  kDiskWait = 7,      // blocked in the DiskArbiter (READ/WRITE contention)
  kThrottleWait = 8,  // blocked in the RateLimiter (emulated device busy)
};

inline constexpr size_t kNumQueryStages = 9;
inline constexpr size_t kFirstWaitStage =
    static_cast<size_t>(QueryStage::kDiskWait);

std::string_view QueryStageName(QueryStage stage);

// True for the blocked (wait) categories.
inline bool QueryStageIsWait(QueryStage stage) {
  return static_cast<size_t>(stage) >= kFirstWaitStage;
}

class SpanProfiler {
 public:
  struct Span {
    uint32_t tid = 0;
    int64_t start_nanos = 0;
    int64_t dur_nanos = 0;
  };

  // Per-stage aggregate over the recorded spans.
  struct StageStats {
    uint64_t spans = 0;
    int64_t busy_nanos = 0;     // sum of span durations (thread-seconds)
    int64_t covered_nanos = 0;  // union of span intervals (wall footprint)
    size_t threads = 0;         // distinct thread ids that ran the stage
  };

  struct Report {
    int64_t wall_nanos = 0;
    std::array<StageStats, kNumQueryStages> stages;
    // The busy stage with the largest wall-clock footprint: it had work in
    // flight for more of the query than any other stage, so shrinking it
    // moves the finish line.
    QueryStage critical_stage = QueryStage::kRead;
    int64_t critical_covered_nanos = 0;
    double critical_fraction = 0.0;  // covered / wall
    int64_t busy_nanos_total = 0;    // across busy stages
    int64_t blocked_nanos_total = 0;  // across wait stages
    size_t distinct_threads = 0;      // across all stages
    uint64_t spans_dropped = 0;
  };

  // `max_spans_per_stage` bounds memory; spans beyond it still count into
  // busy_nanos/spans but are excluded from the interval union.
  explicit SpanProfiler(const Clock* clock = RealClock::Instance(),
                        size_t max_spans_per_stage = 1 << 16);

  // Stamps the query-start instant (the constructor does too; call again to
  // re-anchor after setup work that should not count as wall time).
  void Begin() EXCLUDES(mu_);
  // Stamps the query-end instant; idempotent, later calls win. Aggregate
  // uses "now" when End was never called.
  void End() EXCLUDES(mu_);

  void RecordSpan(QueryStage stage, uint32_t tid, int64_t start_nanos,
                  int64_t dur_nanos) EXCLUDES(mu_);

  // RAII helper: times its scope on the current thread.
  class Scope {
   public:
    Scope(SpanProfiler* profiler, QueryStage stage);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    SpanProfiler* profiler_;
    QueryStage stage_;
    int64_t start_nanos_;
  };

  Report Aggregate() const EXCLUDES(mu_);

  int64_t start_nanos() const EXCLUDES(mu_);

 private:
  const Clock* const clock_;
  const size_t max_spans_per_stage_;
  mutable Mutex mu_{LockRank::kSpanProfiler, "SpanProfiler.mu"};
  int64_t begin_nanos_ GUARDED_BY(mu_) = 0;
  int64_t end_nanos_ GUARDED_BY(mu_) = 0;  // 0 = not ended
  std::array<std::vector<Span>, kNumQueryStages> spans_ GUARDED_BY(mu_);
  std::array<StageStats, kNumQueryStages> totals_ GUARDED_BY(mu_);
  std::array<std::set<uint32_t>, kNumQueryStages> stage_tids_ GUARDED_BY(mu_);
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
};

}  // namespace obs
}  // namespace scanraw

#endif  // SCANRAW_OBS_SPAN_PROFILER_H_
