#include "obs/progress.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace scanraw {
namespace obs {

std::string QueryProgress::ToLine() const {
  char buf[160];
  char eta[32];
  if (eta_seconds >= 0) {
    std::snprintf(eta, sizeof(eta), "ETA %.1fs", eta_seconds);
  } else {
    std::snprintf(eta, sizeof(eta), "ETA --");
  }
  if (bytes_total > 0) {
    std::snprintf(buf, sizeof(buf),
                  "%5.1f%% %6.1f MB/s %s (%llu/%llu chunks, %llu loaded)",
                  100.0 * fraction, throughput_bps / 1e6, eta,
                  static_cast<unsigned long long>(chunks_delivered),
                  static_cast<unsigned long long>(chunks_total),
                  static_cast<unsigned long long>(chunks_loaded));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%.1f MB %6.1f MB/s (%llu chunks, %llu loaded)",
                  static_cast<double>(bytes_processed) / 1e6,
                  throughput_bps / 1e6,
                  static_cast<unsigned long long>(chunks_delivered),
                  static_cast<unsigned long long>(chunks_loaded));
  }
  return buf;
}

ProgressTracker::ProgressTracker(uint64_t bytes_total, const Clock* clock)
    : clock_(clock), bytes_total_(bytes_total) {
  start_nanos_ = clock_->NowNanos();
}

void ProgressTracker::set_totals(uint64_t bytes_total, uint64_t chunks_total) {
  MutexLock lock(mu_);
  bytes_total_ = bytes_total;
  chunks_total_ = chunks_total;
}

QueryProgress ProgressTracker::Snapshot() {
  QueryProgress p;
  p.bytes_processed = bytes_.load(std::memory_order_relaxed);
  p.chunks_delivered = chunks_.load(std::memory_order_relaxed);
  p.chunks_loaded = loaded_.load(std::memory_order_relaxed);
  const int64_t now = clock_->NowNanos();

  MutexLock lock(mu_);
  p.bytes_total = bytes_total_;
  p.chunks_total = chunks_total_;
  p.elapsed_seconds = static_cast<double>(now - start_nanos_) * 1e-9;
  window_.emplace_back(now, p.bytes_processed);
  while (window_.size() > kWindowSamples) window_.pop_front();

  const auto& [t0, b0] = window_.front();
  const double span_s = static_cast<double>(now - t0) * 1e-9;
  if (span_s > 0 && p.bytes_processed >= b0) {
    p.throughput_bps =
        static_cast<double>(p.bytes_processed - b0) / span_s;
  }
  if (p.bytes_total > 0) {
    p.fraction = std::min(
        1.0, static_cast<double>(p.bytes_processed) /
                 static_cast<double>(p.bytes_total));
    if (p.throughput_bps > 0 && p.bytes_total >= p.bytes_processed) {
      p.eta_seconds =
          static_cast<double>(p.bytes_total - p.bytes_processed) /
          p.throughput_bps;
    }
  }
  if (complete_.load(std::memory_order_acquire)) {
    // Clean finish: report exactly 100% done. Totals may have been
    // estimates (discovery scans) or skipped chunks may round the byte
    // fraction short of 1.0; completion is authoritative.
    p.complete = true;
    p.fraction = 1.0;
    p.eta_seconds = 0;
  }
  return p;
}

ProgressReporter::ProgressReporter(ProgressTracker* tracker,
                                   ProgressCallback callback, int interval_ms)
    : tracker_(tracker),
      callback_(std::move(callback)),
      interval_ms_(interval_ms) {}

ProgressReporter::~ProgressReporter() { Stop(); }

void ProgressReporter::Start() {
  MutexLock lock(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void ProgressReporter::Stop() {
  {
    MutexLock lock(mu_);
    if (!started_ || stop_) {
      if (thread_.joinable()) thread_.join();
      return;
    }
    stop_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  // Final report: the settled end state.
  if (callback_) callback_(tracker_->Snapshot());
}

void ProgressReporter::Loop() {
  if (callback_) callback_(tracker_->Snapshot());
  while (true) {
    {
      MutexLock lock(mu_);
      cv_.WaitFor(lock, std::chrono::milliseconds(interval_ms_));
      if (stop_) return;
    }
    if (callback_) callback_(tracker_->Snapshot());
  }
}

}  // namespace obs
}  // namespace scanraw
