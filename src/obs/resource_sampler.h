// Resource-advice sampling (§3.3): a background thread periodically probes
// the live pipeline (buffer occupancy, busy workers, cache fill, disk
// arbiter busy time) and appends a time-series sample including the
// scheduler's resource Advice state (kNeedMoreCpu / kIoBound /
// kEngineBound). The series makes speculative-trigger decisions auditable
// after the fact and feeds the CLI's --metrics=json export.
#ifndef SCANRAW_OBS_RESOURCE_SAMPLER_H_
#define SCANRAW_OBS_RESOURCE_SAMPLER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace scanraw {
namespace obs {

// One probe of the live pipeline. `advice` is the §3.3 state name
// ("balanced", "need-more-cpu", "io-bound", "engine-bound").
struct ResourceSample {
  int64_t ts_nanos = 0;
  std::string advice = "balanced";
  size_t text_buffer_size = 0;
  size_t text_buffer_capacity = 0;
  size_t position_buffer_size = 0;
  size_t position_buffer_capacity = 0;
  size_t output_buffer_size = 0;
  size_t output_buffer_capacity = 0;
  size_t busy_workers = 0;
  size_t num_workers = 0;
  size_t cache_size = 0;
  size_t cache_capacity = 0;
  int64_t disk_reader_busy_nanos = 0;
  int64_t disk_writer_busy_nanos = 0;
};

// Bounded, thread-safe sample store shared by every sampler attached to the
// same telemetry sink. Keeps the most recent `capacity` samples.
class ResourceLog {
 public:
  explicit ResourceLog(size_t capacity = 4096) : capacity_(capacity) {}

  void Append(ResourceSample sample) EXCLUDES(mu_);
  std::vector<ResourceSample> Snapshot() const EXCLUDES(mu_);
  size_t size() const EXCLUDES(mu_);
  uint64_t total_appended() const EXCLUDES(mu_);
  void Clear() EXCLUDES(mu_);

  // JSON array of samples; timestamps become microseconds relative to the
  // first sample.
  std::string ToJson() const;

 private:
  const size_t capacity_;
  mutable Mutex mu_{LockRank::kResourceLog, "ResourceLog.mu"};
  std::vector<ResourceSample> ring_ GUARDED_BY(mu_);
  uint64_t next_ GUARDED_BY(mu_) = 0;
};

// Periodically invokes `probe` on a dedicated thread and appends the result
// to `log`. Takes one sample immediately on Start and a final one on Stop,
// so even sub-interval queries leave a visible series.
class ResourceSampler {
 public:
  using Probe = std::function<ResourceSample()>;

  ResourceSampler(ResourceLog* log, Probe probe,
                  std::chrono::milliseconds interval);
  ~ResourceSampler();
  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  void Start() EXCLUDES(mu_);
  // Joins the thread and records the final sample. The final sample is
  // emitted exactly once per sampler, even when Start was never called or
  // the sampling interval never elapsed. Idempotent; the destructor calls
  // it. The probe must stay valid until Stop returns.
  void Stop() EXCLUDES(mu_);

  bool running() const EXCLUDES(mu_);

 private:
  void Loop() EXCLUDES(mu_);

  ResourceLog* const log_;
  const Probe probe_;
  const std::chrono::milliseconds interval_;

  mutable Mutex mu_{LockRank::kResourceSampler, "ResourceSampler.mu"};
  CondVar cv_;
  // Started under mu_ in Start, joined lock-free in Stop after stop_ flips.
  std::thread thread_;
  bool stop_ GUARDED_BY(mu_) = false;
  bool started_ GUARDED_BY(mu_) = false;
  bool final_emitted_ GUARDED_BY(mu_) = false;
};

}  // namespace obs
}  // namespace scanraw

#endif  // SCANRAW_OBS_RESOURCE_SAMPLER_H_
