// Aggregated workload history: per-table / per-column access frequencies,
// predicate selectivities, and recency, folded from QueryLogEvents. The
// history is what the LoadAdvisor ranks columns from; it persists via
// AtomicWriteFile (catalog-style versioned text format) next to the
// catalog and is reconciled on restart by replaying only the query-log
// events newer than its recorded high-water seq.
#ifndef SCANRAW_OBS_WORKLOAD_HISTORY_H_
#define SCANRAW_OBS_WORKLOAD_HISTORY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/query_log.h"

namespace scanraw {
namespace obs {

struct ColumnUsage {
  uint64_t touches = 0;     // queries whose required set included the column
  uint64_t predicates = 0;  // queries that filtered on the column
  uint64_t last_seq = 0;    // newest query seq that touched the column
};

struct TableUsage {
  uint64_t queries = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  uint64_t last_seq = 0;
  std::map<size_t, ColumnUsage> columns;

  // Observed predicate selectivity across the table's logged queries.
  double Selectivity() const {
    return rows_scanned == 0 ? 1.0
                             : static_cast<double>(rows_matched) /
                                   static_cast<double>(rows_scanned);
  }
};

// Thread-safe: Observe is called from the query-log observer while the
// advisor reads snapshots from the WRITE thread.
class WorkloadHistory {
 public:
  struct LoadStats {
    int version = 0;
    uint64_t tables = 0;
    uint64_t columns = 0;
    bool torn_tail_dropped = false;
  };

  // Folds one logged query into the aggregates. Events at or below the
  // current high-water seq are ignored (idempotent replay); failed queries
  // count toward recency only.
  void Observe(const QueryLogEvent& event) EXCLUDES(mu_);

  // Copy of one table's usage; empty-default when unknown.
  TableUsage TableSnapshot(const std::string& table) const EXCLUDES(mu_);
  std::vector<std::string> Tables() const EXCLUDES(mu_);
  // Drops history for tables not in `keep` (restart reconciliation against
  // the catalog); returns how many were dropped.
  uint64_t DropTablesNotIn(const std::set<std::string>& keep) EXCLUDES(mu_);

  uint64_t last_seq() const EXCLUDES(mu_);
  uint64_t events_observed() const EXCLUDES(mu_);

  // Persistence: versioned text format written atomically, torn-tail
  // tolerant on load like the catalog.
  Status SaveToFile(const std::string& path) const EXCLUDES(mu_);
  Status LoadFromFile(const std::string& path, LoadStats* stats = nullptr)
      EXCLUDES(mu_);

  // Replays the query log at `log_path` (both generations), folding only
  // events newer than last_seq(). Returns the number of events folded.
  Result<uint64_t> ReplayLog(const std::string& log_path) EXCLUDES(mu_);

  // Human-readable aggregate, used by the CLI `stats` subcommand.
  std::string Summary() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_{LockRank::kWorkloadHistory, "WorkloadHistory.mu"};
  std::map<std::string, TableUsage> tables_ GUARDED_BY(mu_);
  uint64_t last_seq_ GUARDED_BY(mu_) = 0;
  uint64_t events_observed_ GUARDED_BY(mu_) = 0;
};

}  // namespace obs
}  // namespace scanraw

#endif  // SCANRAW_OBS_WORKLOAD_HISTORY_H_
