// Chunk-lifecycle tracer: records one span per pipeline stage per chunk
// (READ -> TOKENIZE -> PARSE -> WRITE) into a bounded ring buffer, plus
// instant events for scheduler decisions (speculative triggers, safeguard
// flushes). The buffer exports Chrome trace_event JSON, loadable by
// chrome://tracing or Perfetto, so a query's execution can be audited after
// the fact. Recording is mutex-guarded — events are per chunk-stage, orders
// of magnitude rarer than per-row work, so contention is negligible and the
// structure is trivially race-free.
#ifndef SCANRAW_OBS_TRACE_H_
#define SCANRAW_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace scanraw {
namespace obs {

// Small dense id for the current OS thread, stable for the thread's
// lifetime (first call assigns the next free id).
uint32_t CurrentThreadId();

enum class TraceStage : uint8_t {
  kRead = 0,
  kTokenize = 1,
  kParse = 2,
  kWrite = 3,
  // Instant events (duration 0): scheduler decisions.
  kSpeculativeTrigger = 4,
  kSafeguardFlush = 5,
  kReadBlocked = 6,
};

std::string_view TraceStageName(TraceStage stage);

// Where the chunk's bytes came from (§3.2.1 delivery order).
enum class ChunkSource : uint8_t { kRaw = 0, kCache = 1, kDb = 2 };

std::string_view ChunkSourceName(ChunkSource source);

struct TraceEvent {
  TraceStage stage = TraceStage::kRead;
  ChunkSource source = ChunkSource::kRaw;
  uint64_t chunk_index = 0;
  uint32_t tid = 0;
  int64_t start_nanos = 0;
  int64_t dur_nanos = 0;
};

class ChunkTracer {
 public:
  // `capacity` bounds the ring; once full, the oldest events are
  // overwritten (dropped() reports how many). 0 disables recording.
  explicit ChunkTracer(size_t capacity = 1 << 14);

  bool enabled() const { return capacity_ > 0; }

  // Human-readable label (table or file name) emitted as a Chrome
  // process_name metadata event; arbitrary bytes are JSON-escaped on export.
  void SetLabel(std::string label) EXCLUDES(mu_);
  std::string label() const EXCLUDES(mu_);

  void Record(const TraceEvent& event) EXCLUDES(mu_);

  // Convenience: stamps tid and start time (end - duration) itself.
  void RecordSpan(TraceStage stage, ChunkSource source, uint64_t chunk_index,
                  int64_t start_nanos, int64_t dur_nanos);
  void RecordInstant(TraceStage stage, uint64_t chunk_index,
                     const Clock* clock = RealClock::Instance());

  // Events in record order, oldest surviving first.
  std::vector<TraceEvent> Snapshot() const EXCLUDES(mu_);

  uint64_t recorded() const EXCLUDES(mu_);  // total ever recorded
  uint64_t dropped() const EXCLUDES(mu_);   // overwritten by ring wrap
  void Clear() EXCLUDES(mu_);

  // Chrome trace_event JSON: an array of complete ("ph":"X") events for
  // stage spans and instant ("ph":"i") events for scheduler decisions.
  // Timestamps are microseconds relative to the earliest event.
  std::string ToChromeTraceJson() const EXCLUDES(mu_);

 private:
  const size_t capacity_;
  mutable Mutex mu_{LockRank::kChunkTracer, "ChunkTracer.mu"};
  std::string label_ GUARDED_BY(mu_);
  std::vector<TraceEvent> ring_ GUARDED_BY(mu_);
  // Total recorded; ring slot is next_ % capacity_.
  uint64_t next_ GUARDED_BY(mu_) = 0;
};

// RAII span: times its scope and records it into the tracer and (when
// non-null) a latency histogram on destruction. The chunk index is usually
// known only mid-scope; set it via set_chunk_index.
class SpanRecorder {
 public:
  SpanRecorder(ChunkTracer* tracer, Histogram* latency, TraceStage stage,
               ChunkSource source, uint64_t chunk_index = 0,
               const Clock* clock = RealClock::Instance())
      : tracer_(tracer),
        latency_(latency),
        clock_(clock),
        stage_(stage),
        source_(source),
        chunk_index_(chunk_index),
        start_nanos_(clock->NowNanos()) {}

  ~SpanRecorder() {
    const int64_t dur = clock_->NowNanos() - start_nanos_;
    if (latency_ != nullptr) {
      latency_->Record(static_cast<uint64_t>(dur < 0 ? 0 : dur));
    }
    if (tracer_ != nullptr && !cancelled_) {
      tracer_->RecordSpan(stage_, source_, chunk_index_, start_nanos_, dur);
    }
  }

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  void set_chunk_index(uint64_t index) { chunk_index_ = index; }
  void set_source(ChunkSource source) { source_ = source; }
  // Suppress the trace event (the latency histogram still records).
  void Cancel() { cancelled_ = true; }

 private:
  ChunkTracer* tracer_;
  Histogram* latency_;
  const Clock* clock_;
  TraceStage stage_;
  ChunkSource source_;
  uint64_t chunk_index_;
  int64_t start_nanos_;
  bool cancelled_ = false;
};

}  // namespace obs
}  // namespace scanraw

#endif  // SCANRAW_OBS_TRACE_H_
