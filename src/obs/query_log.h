// Persistent query event log: one JSONL line per executed query capturing
// the query spec, per-stage span timings, chunk provenance, cache hit
// rates, bytes moved, and the speculative-loading payoff. The log is the
// durable substrate of the workload-intelligence loop (log -> history ->
// advisor): it survives process restarts so WorkloadHistory can be rebuilt
// or incrementally replayed after a crash.
//
// Durability discipline matches the catalog's: a versioned header line,
// append-only writes through WritableFile::OpenForAppend (so fault
// injection exercises the exact production path), size-based rotation that
// keeps one previous generation, and a torn-trailing-line-tolerant reader
// that reports what it dropped in recovery-style counters.
#ifndef SCANRAW_OBS_QUERY_LOG_H_
#define SCANRAW_OBS_QUERY_LOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "io/file.h"

namespace scanraw {
namespace obs {

// One logged query. Counter fields mirror ExplainReport's per-query deltas;
// the event is what the workload history aggregates.
struct QueryLogEvent {
  uint64_t seq = 0;            // assigned by QueryLog::Append
  int64_t ts_unix_micros = 0;  // wall clock; assigned on append when 0
  std::string table;
  std::string policy;
  std::string status = "ok";  // "ok" or the error message
  double wall_seconds = 0;

  std::vector<size_t> columns;            // required columns of the spec
  std::vector<size_t> predicate_columns;  // columns filtered by a predicate

  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;

  // Per-stage busy thread-seconds keyed by stage name, from SpanProfiler.
  std::vector<std::pair<std::string, double>> stage_busy_seconds;

  // Chunk provenance and speculative payoff (ExplainReport deltas).
  uint64_t chunks_from_cache = 0;
  uint64_t chunks_from_db = 0;
  uint64_t chunks_from_raw = 0;
  uint64_t chunks_skipped = 0;
  uint64_t chunks_written = 0;
  uint64_t speculative_triggers = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  // Bytes of written segments attributed to columns the active query
  // required (proportional attribution within a segment).
  uint64_t useful_bytes_written = 0;
  double cache_hit_rate = 0;
  double posmap_hit_rate = 0;
  bool speculation_paid_off = false;
  bool advisor_used = false;

  // Single-line JSON without the trailing newline.
  std::string ToJsonLine() const;
  // Strict parse of a line produced by ToJsonLine. Returns false on torn
  // or corrupt input; `event` is untouched on failure.
  static bool FromJsonLine(std::string_view line, QueryLogEvent* event);
};

struct QueryLogOptions {
  // Rotate the current file to `<path>.1` once it exceeds this size. One
  // previous generation is kept; ReadAll reads both.
  uint64_t rotate_bytes = 64ull << 20;
  // Sync() after every append. Off by default: the log is advisory state,
  // and a torn tail is recoverable by design.
  bool sync_each_append = false;
};

// Append-only JSONL writer with rotation. Append is mutex-serialized; this
// is control-plane logging (one line per query), not the record path.
class QueryLog {
 public:
  // Reload-tolerance counters from ReadAll, catalog-LoadStats style.
  struct LoadStats {
    int version = 0;          // header version of the newest generation
    uint64_t generations = 0; // files read (<path>.1 first, then <path>)
    uint64_t events = 0;
    uint64_t dropped_torn = 0;     // unterminated trailing line dropped
    uint64_t dropped_corrupt = 0;  // interior lines that failed to parse
    uint64_t max_seq = 0;
  };

  // Opens (creating if needed) the log at `path`, writing the versioned
  // header into a fresh file and resuming seq numbers past any events
  // already on disk.
  static Result<std::unique_ptr<QueryLog>> Open(const std::string& path,
                                                QueryLogOptions options = {});

  ~QueryLog();
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  // Assigns the event's seq (and timestamp when unset), serializes it, and
  // appends one line, rotating first when the size threshold is crossed.
  // On an append error the next successful append re-terminates the torn
  // line so at most the torn record is lost on reload.
  Status Append(QueryLogEvent event) EXCLUDES(mu_);

  // Invoked (outside IO, under the log mutex) with every successfully
  // appended event; the CLI wires this to WorkloadHistory::Observe so the
  // live history tracks the durable log.
  void SetObserver(std::function<void(const QueryLogEvent&)> observer)
      EXCLUDES(mu_);

  Status Close() EXCLUDES(mu_);

  const std::string& path() const { return path_; }
  uint64_t events_appended() const EXCLUDES(mu_);
  uint64_t append_failures() const EXCLUDES(mu_);
  uint64_t rotations() const EXCLUDES(mu_);
  uint64_t next_seq() const EXCLUDES(mu_);

  // Reads every surviving event from `<path>.1` (if present) then `<path>`,
  // dropping an unterminated trailing line and counting corrupt interior
  // lines instead of failing. Only an unreadable file or an unsupported
  // header version is an error.
  static Result<std::vector<QueryLogEvent>> ReadAll(const std::string& path,
                                                    LoadStats* stats = nullptr);

 private:
  QueryLog(std::string path, QueryLogOptions options);

  Status AppendLocked(const std::string& line) REQUIRES(mu_);
  Status RotateLocked() REQUIRES(mu_);
  Status OpenFreshLocked() REQUIRES(mu_);

  const std::string path_;
  const QueryLogOptions options_;

  mutable Mutex mu_{LockRank::kQueryLog, "QueryLog.mu"};
  std::unique_ptr<WritableFile> file_ GUARDED_BY(mu_);
  std::function<void(const QueryLogEvent&)> observer_ GUARDED_BY(mu_);
  uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  uint64_t events_appended_ GUARDED_BY(mu_) = 0;
  uint64_t append_failures_ GUARDED_BY(mu_) = 0;
  uint64_t rotations_ GUARDED_BY(mu_) = 0;
  // A failed append may have left a torn, unterminated line; the next
  // append writes a lone '\n' first so the torn prefix becomes one corrupt
  // line the reader drops, instead of corrupting the next record.
  bool needs_newline_ GUARDED_BY(mu_) = false;
};

}  // namespace obs
}  // namespace scanraw

#endif  // SCANRAW_OBS_QUERY_LOG_H_
