#include "obs/watchdog.h"

#include <chrono>
#include <cstdlib>

#include "common/lock_debug.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"

namespace scanraw {
namespace obs {

namespace {
constexpr size_t kMaxRetainedReports = 64;
}  // namespace

Watchdog::Watchdog(StageHeartbeats* heartbeats, WatchdogOptions options)
    : heartbeats_(heartbeats),
      options_(std::move(options)),
      check_interval_ms_(options_.check_interval_ms > 0
                             ? options_.check_interval_ms
                             : (options_.window_ms > 4 ? options_.window_ms / 4
                                                       : 1)) {}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Start() {
  MutexLock lock(mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void Watchdog::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_ = true;
    cv_.NotifyAll();
  }
  thread_.join();
  MutexLock lock(mu_);
  running_ = false;
}

void Watchdog::Loop() {
  for (;;) {
    {
      MutexLock lock(mu_);
      if (!stop_) {
        cv_.WaitFor(lock, std::chrono::milliseconds(check_interval_ms_));
      }
      if (stop_) return;
    }
    CheckNow();
  }
}

void Watchdog::CheckNow() {
  const int64_t now = options_.clock->NowNanos();
  const int64_t window_nanos = options_.window_ms * 1'000'000;
  MutexLock lock(mu_);
  for (size_t i = 0; i < kNumHeartbeatStages; ++i) {
    const auto stage = static_cast<HeartbeatStage>(i);
    StageState& state = stages_[i];
    const uint64_t beats = heartbeats_->beats(stage);
    const int64_t active = heartbeats_->active(stage);
    if (beats != state.last_beats || active <= 0) {
      // Progress (or nothing in flight): reset the episode and re-arm.
      state.last_beats = beats;
      state.no_progress_since_nanos = 0;
      state.alarmed = false;
      continue;
    }
    if (state.no_progress_since_nanos == 0) {
      state.no_progress_since_nanos = now;
      continue;
    }
    const int64_t stalled = now - state.no_progress_since_nanos;
    if (stalled < window_nanos || state.alarmed) continue;
    state.alarmed = true;
    StallReport report;
    report.stage = stage;
    report.ts_nanos = now;
    report.stalled_ms = stalled / 1'000'000;
    report.beats = beats;
    report.active = active;
    report.held_locks = lockdebug::SnapshotAllThreads();
    ReportStall(report);
  }
}

void Watchdog::ReportStall(const StallReport& report) {
  stalls_.fetch_add(1, std::memory_order_relaxed);
  if (reports_.size() < kMaxRetainedReports) reports_.push_back(report);

  LOG_ERROR(
      "watchdog: stage %s stalled for %lld ms (beats frozen at %llu, "
      "%lld thread(s) inside); dumping flight recorder%s",
      std::string(HeartbeatStageName(report.stage)).c_str(),
      static_cast<long long>(report.stalled_ms),
      static_cast<unsigned long long>(report.beats),
      static_cast<long long>(report.active),
      options_.abort_on_stall ? " and aborting" : "");
  if (!report.held_locks.empty()) {
    LOG_ERROR("watchdog: held locks at stall:\n%s",
              report.held_locks.c_str());
  }

  // Dump destination: explicit option > SCANRAW_FLIGHT_DUMP env > stderr.
  FlightRecorder* recorder = FlightRecorder::Global();
  const char* path = nullptr;
  if (!options_.flight_dump_path.empty()) {
    path = options_.flight_dump_path.c_str();
  } else {
    const char* env = std::getenv("SCANRAW_FLIGHT_DUMP");
    if (env != nullptr && env[0] != '\0') path = env;
  }
  bool dumped = false;
  if (path != nullptr) {
    dumped = recorder->DumpToFile(path);
    if (!dumped) {
      LOG_ERROR("watchdog: flight dump to %s failed; dumping to stderr",
                path);
    }
  }
  if (!dumped) recorder->DumpTo(2);

  if (options_.abort_on_stall) std::abort();
}

std::vector<Watchdog::StallReport> Watchdog::Reports() const {
  MutexLock lock(mu_);
  return reports_;
}

}  // namespace obs
}  // namespace scanraw
