#include "obs/query_log.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "io/fault_injection.h"
#include "obs/metrics.h"

namespace scanraw {
namespace obs {

namespace {

constexpr int kLogVersion = 1;
constexpr std::string_view kHeaderPrefix = "{\"scanraw_query_log\":";

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

std::string U64(uint64_t v) {
  return std::to_string(static_cast<unsigned long long>(v));
}

std::string SizeArray(const std::vector<size_t>& v) {
  std::string out = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(v[i]);
  }
  out += "]";
  return out;
}

int64_t WallClockMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// --- Minimal parser for the machine-written single-line JSON above. The
// format is our own (stable key order, escaped strings), so a key-directed
// extractor is enough; anything it cannot account for is "corrupt" and the
// reader drops the line with a counter rather than guessing.

// Position just past `"key":`, or npos. Values escape '"', so a literal
// `"key":` can never appear inside a string value.
size_t AfterKey(std::string_view line, std::string_view key) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const size_t pos = line.find(needle);
  return pos == std::string_view::npos ? std::string_view::npos
                                       : pos + needle.size();
}

bool ParseU64At(std::string_view line, size_t pos, uint64_t* out) {
  if (pos >= line.size() || !std::isdigit(static_cast<unsigned char>(line[pos])))
    return false;
  uint64_t v = 0;
  while (pos < line.size() && std::isdigit(static_cast<unsigned char>(line[pos]))) {
    v = v * 10 + static_cast<uint64_t>(line[pos] - '0');
    ++pos;
  }
  *out = v;
  return true;
}

bool ParseU64Field(std::string_view line, std::string_view key, uint64_t* out) {
  const size_t pos = AfterKey(line, key);
  return pos != std::string_view::npos && ParseU64At(line, pos, out);
}

bool ParseI64Field(std::string_view line, std::string_view key, int64_t* out) {
  size_t pos = AfterKey(line, key);
  if (pos == std::string_view::npos) return false;
  bool neg = false;
  if (pos < line.size() && line[pos] == '-') {
    neg = true;
    ++pos;
  }
  uint64_t v = 0;
  if (!ParseU64At(line, pos, &v)) return false;
  *out = neg ? -static_cast<int64_t>(v) : static_cast<int64_t>(v);
  return true;
}

bool ParseDoubleField(std::string_view line, std::string_view key,
                      double* out) {
  const size_t pos = AfterKey(line, key);
  if (pos == std::string_view::npos || pos >= line.size()) return false;
  // strtod needs a terminated buffer; numbers are short.
  char buf[64];
  size_t n = 0;
  while (pos + n < line.size() && n + 1 < sizeof(buf)) {
    const char c = line[pos + n];
    if (c == ',' || c == '}' || c == ']') break;
    buf[n++] = c;
  }
  buf[n] = '\0';
  if (n == 0) return false;
  char* end = nullptr;
  *out = std::strtod(buf, &end);
  return end == buf + n;
}

bool ParseBoolField(std::string_view line, std::string_view key, bool* out) {
  const size_t pos = AfterKey(line, key);
  if (pos == std::string_view::npos) return false;
  if (line.substr(pos, 4) == "true") {
    *out = true;
    return true;
  }
  if (line.substr(pos, 5) == "false") {
    *out = false;
    return true;
  }
  return false;
}

bool JsonUnescape(std::string_view in, std::string* out) {
  out->clear();
  out->reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '\\') {
      *out += in[i];
      continue;
    }
    if (++i >= in.size()) return false;
    switch (in[i]) {
      case '"': *out += '"'; break;
      case '\\': *out += '\\'; break;
      case '/': *out += '/'; break;
      case 'n': *out += '\n'; break;
      case 'r': *out += '\r'; break;
      case 't': *out += '\t'; break;
      case 'u': {
        if (i + 4 >= in.size()) return false;
        unsigned v = 0;
        for (int k = 1; k <= 4; ++k) {
          const char c = in[i + k];
          v <<= 4;
          if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
          else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
          else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
          else return false;
        }
        // JsonEscape only \u-encodes control bytes, so one char suffices.
        *out += static_cast<char>(v & 0xff);
        i += 4;
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

bool ParseStringField(std::string_view line, std::string_view key,
                      std::string* out) {
  size_t pos = AfterKey(line, key);
  if (pos == std::string_view::npos || pos >= line.size() || line[pos] != '"')
    return false;
  ++pos;
  size_t end = pos;
  while (end < line.size() && line[end] != '"') {
    if (line[end] == '\\') ++end;  // skip the escaped char
    ++end;
  }
  if (end >= line.size()) return false;  // unterminated string: torn
  return JsonUnescape(line.substr(pos, end - pos), out);
}

bool ParseSizeArrayField(std::string_view line, std::string_view key,
                         std::vector<size_t>* out) {
  size_t pos = AfterKey(line, key);
  if (pos == std::string_view::npos || pos >= line.size() || line[pos] != '[')
    return false;
  ++pos;
  out->clear();
  if (pos < line.size() && line[pos] == ']') return true;
  while (pos < line.size()) {
    uint64_t v = 0;
    if (!ParseU64At(line, pos, &v)) return false;
    out->push_back(static_cast<size_t>(v));
    while (pos < line.size() && std::isdigit(static_cast<unsigned char>(line[pos])))
      ++pos;
    if (pos >= line.size()) return false;
    if (line[pos] == ']') return true;
    if (line[pos] != ',') return false;
    ++pos;
  }
  return false;
}

// `"stages":{"read":0.1,...}` — names are stage identifiers (no escapes).
bool ParseStageMap(std::string_view line,
                   std::vector<std::pair<std::string, double>>* out) {
  size_t pos = AfterKey(line, "stages");
  if (pos == std::string_view::npos || pos >= line.size() || line[pos] != '{')
    return false;
  ++pos;
  out->clear();
  if (pos < line.size() && line[pos] == '}') return true;
  while (pos < line.size()) {
    if (line[pos] != '"') return false;
    const size_t name_end = line.find('"', pos + 1);
    if (name_end == std::string_view::npos) return false;
    std::string name(line.substr(pos + 1, name_end - pos - 1));
    pos = name_end + 1;
    if (pos >= line.size() || line[pos] != ':') return false;
    ++pos;
    char buf[64];
    size_t n = 0;
    while (pos + n < line.size() && n + 1 < sizeof(buf)) {
      const char c = line[pos + n];
      if (c == ',' || c == '}') break;
      buf[n++] = c;
    }
    buf[n] = '\0';
    char* end = nullptr;
    const double v = std::strtod(buf, &end);
    if (n == 0 || end != buf + n) return false;
    out->emplace_back(std::move(name), v);
    pos += n;
    if (pos >= line.size()) return false;
    if (line[pos] == '}') return true;
    if (line[pos] != ',') return false;
    ++pos;
  }
  return false;
}

// Header line for a fresh generation: {"scanraw_query_log":1}
std::string HeaderLine() {
  return std::string(kHeaderPrefix) + std::to_string(kLogVersion) + "}";
}

// Parses a header line; returns the version or 0 when not a header.
int HeaderVersion(std::string_view line) {
  if (line.substr(0, kHeaderPrefix.size()) != kHeaderPrefix) return 0;
  uint64_t v = 0;
  if (!ParseU64At(line, kHeaderPrefix.size(), &v)) return 0;
  return static_cast<int>(v);
}

}  // namespace

std::string QueryLogEvent::ToJsonLine() const {
  std::string out = "{";
  out += "\"seq\":" + U64(seq);
  out += ",\"ts_unix_micros\":" + std::to_string(ts_unix_micros);
  out += ",\"table\":\"" + JsonEscape(table) + "\"";
  out += ",\"policy\":\"" + JsonEscape(policy) + "\"";
  out += ",\"status\":\"" + JsonEscape(status) + "\"";
  out += ",\"wall_seconds\":" + Fmt("%.9g", wall_seconds);
  out += ",\"columns\":" + SizeArray(columns);
  out += ",\"predicate_columns\":" + SizeArray(predicate_columns);
  out += ",\"rows_scanned\":" + U64(rows_scanned);
  out += ",\"rows_matched\":" + U64(rows_matched);
  out += ",\"stages\":{";
  for (size_t i = 0; i < stage_busy_seconds.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(stage_busy_seconds[i].first) +
           "\":" + Fmt("%.9g", stage_busy_seconds[i].second);
  }
  out += "}";
  out += ",\"chunks\":{\"cache\":" + U64(chunks_from_cache) +
         ",\"db\":" + U64(chunks_from_db) + ",\"raw\":" + U64(chunks_from_raw) +
         ",\"skipped\":" + U64(chunks_skipped) +
         ",\"written\":" + U64(chunks_written) + "}";
  out += ",\"speculative_triggers\":" + U64(speculative_triggers);
  out += ",\"bytes_read\":" + U64(bytes_read);
  out += ",\"bytes_written\":" + U64(bytes_written);
  out += ",\"useful_bytes_written\":" + U64(useful_bytes_written);
  out += ",\"cache_hit_rate\":" + Fmt("%.9g", cache_hit_rate);
  out += ",\"posmap_hit_rate\":" + Fmt("%.9g", posmap_hit_rate);
  out += ",\"paid_off\":" + std::string(speculation_paid_off ? "true" : "false");
  out += ",\"advisor_used\":" + std::string(advisor_used ? "true" : "false");
  out += "}";
  return out;
}

bool QueryLogEvent::FromJsonLine(std::string_view line, QueryLogEvent* event) {
  if (line.size() < 2 || line.front() != '{' || line.back() != '}')
    return false;
  QueryLogEvent e;
  // Every field ToJsonLine writes must parse; a torn suffix fails here.
  if (!ParseU64Field(line, "seq", &e.seq)) return false;
  if (!ParseI64Field(line, "ts_unix_micros", &e.ts_unix_micros)) return false;
  if (!ParseStringField(line, "table", &e.table)) return false;
  if (!ParseStringField(line, "policy", &e.policy)) return false;
  if (!ParseStringField(line, "status", &e.status)) return false;
  if (!ParseDoubleField(line, "wall_seconds", &e.wall_seconds)) return false;
  if (!ParseSizeArrayField(line, "columns", &e.columns)) return false;
  if (!ParseSizeArrayField(line, "predicate_columns", &e.predicate_columns))
    return false;
  if (!ParseU64Field(line, "rows_scanned", &e.rows_scanned)) return false;
  if (!ParseU64Field(line, "rows_matched", &e.rows_matched)) return false;
  if (!ParseStageMap(line, &e.stage_busy_seconds)) return false;
  if (!ParseU64Field(line, "cache", &e.chunks_from_cache)) return false;
  if (!ParseU64Field(line, "db", &e.chunks_from_db)) return false;
  if (!ParseU64Field(line, "raw", &e.chunks_from_raw)) return false;
  if (!ParseU64Field(line, "skipped", &e.chunks_skipped)) return false;
  if (!ParseU64Field(line, "written", &e.chunks_written)) return false;
  if (!ParseU64Field(line, "speculative_triggers", &e.speculative_triggers))
    return false;
  if (!ParseU64Field(line, "bytes_read", &e.bytes_read)) return false;
  if (!ParseU64Field(line, "bytes_written", &e.bytes_written)) return false;
  if (!ParseU64Field(line, "useful_bytes_written", &e.useful_bytes_written))
    return false;
  if (!ParseDoubleField(line, "cache_hit_rate", &e.cache_hit_rate))
    return false;
  if (!ParseDoubleField(line, "posmap_hit_rate", &e.posmap_hit_rate))
    return false;
  if (!ParseBoolField(line, "paid_off", &e.speculation_paid_off)) return false;
  if (!ParseBoolField(line, "advisor_used", &e.advisor_used)) return false;
  *event = std::move(e);
  return true;
}

QueryLog::QueryLog(std::string path, QueryLogOptions options)
    : path_(std::move(path)), options_(options) {}

QueryLog::~QueryLog() {
  // Destruction cannot report errors; durable users call Close() and check.
  const Status st = Close();
  static_cast<void>(st);
}

Result<std::unique_ptr<QueryLog>> QueryLog::Open(const std::string& path,
                                                 QueryLogOptions options) {
  // Resume seq numbers past whatever already survives on disk (both
  // generations), so replayed histories see a strictly increasing stream.
  LoadStats stats;
  uint64_t resume_seq = 1;
  if (FileExists(path) || FileExists(path + ".1")) {
    auto existing = ReadAll(path, &stats);
    SCANRAW_RETURN_IF_ERROR(existing.status());
    resume_seq = stats.max_seq + 1;
  }
  std::unique_ptr<QueryLog> log(new QueryLog(path, options));
  MutexLock lock(log->mu_);
  log->next_seq_ = resume_seq;
  if (FileExists(path)) {
    // A crash mid-append leaves an unterminated trailing line. Detect it
    // here so the first append of this incarnation re-terminates it —
    // otherwise the new record would be concatenated onto the torn prefix
    // and both would be lost on the next reload.
    std::string existing;
    SCANRAW_ASSIGN_OR_RETURN(existing, ReadFileToString(path));
    log->needs_newline_ = !existing.empty() && existing.back() != '\n';
    SCANRAW_ASSIGN_OR_RETURN(log->file_, WritableFile::OpenForAppend(path));
    if (log->file_->bytes_written() == 0) {
      SCANRAW_RETURN_IF_ERROR(log->file_->Append(HeaderLine() + "\n"));
      SCANRAW_RETURN_IF_ERROR(log->file_->Flush());
    }
  } else {
    SCANRAW_RETURN_IF_ERROR(log->OpenFreshLocked());
  }
  return log;
}

Status QueryLog::OpenFreshLocked() {
  SCANRAW_ASSIGN_OR_RETURN(file_, WritableFile::Create(path_));
  SCANRAW_RETURN_IF_ERROR(file_->Append(HeaderLine() + "\n"));
  return file_->Flush();
}

Status QueryLog::RotateLocked() {
  // Close-rename-reopen. A crash between the kill-points leaves either the
  // old layout (full file at path_) or the new one (everything in the .1
  // generation); ReadAll stitches both, so no committed record is lost.
  Status st = file_->Flush();
  if (st.ok()) st = file_->Sync();
  if (st.ok()) st = file_->Close();
  file_.reset();
  SCANRAW_RETURN_IF_ERROR(st);
  FaultKillPoint("querylog.rotate.before_rename");
  SCANRAW_RETURN_IF_ERROR(RenameFile(path_, path_ + ".1"));
  FaultKillPoint("querylog.rotate.after_rename");
  ++rotations_;
  needs_newline_ = false;
  return OpenFreshLocked();
}

Status QueryLog::AppendLocked(const std::string& line) {
  if (file_ == nullptr) return Status::Aborted("query log closed");
  if (needs_newline_) {
    // Terminate the torn line left by a failed append; the prefix becomes
    // one corrupt line the reader drops and counts.
    SCANRAW_RETURN_IF_ERROR(file_->Append("\n", 1));
    needs_newline_ = false;
  }
  SCANRAW_RETURN_IF_ERROR(file_->Append(line));
  SCANRAW_RETURN_IF_ERROR(file_->Flush());
  if (options_.sync_each_append) return file_->Sync();
  return Status::OK();
}

Status QueryLog::Append(QueryLogEvent event) {
  MutexLock lock(mu_);
  event.seq = next_seq_++;
  if (event.ts_unix_micros == 0) event.ts_unix_micros = WallClockMicros();
  const std::string line = event.ToJsonLine() + "\n";
  if (file_ != nullptr && options_.rotate_bytes > 0 &&
      file_->bytes_written() + line.size() > options_.rotate_bytes &&
      file_->bytes_written() > HeaderLine().size() + 1) {
    SCANRAW_RETURN_IF_ERROR(RotateLocked());
  }
  Status st = AppendLocked(line);
  if (!st.ok()) {
    ++append_failures_;
    needs_newline_ = true;
    return st;
  }
  ++events_appended_;
  if (observer_) observer_(event);
  return Status::OK();
}

void QueryLog::SetObserver(std::function<void(const QueryLogEvent&)> observer) {
  MutexLock lock(mu_);
  observer_ = std::move(observer);
}

Status QueryLog::Close() {
  MutexLock lock(mu_);
  if (file_ == nullptr) return Status::OK();
  Status st = file_->Flush();
  if (st.ok()) st = file_->Sync();
  Status close_st = file_->Close();
  file_.reset();
  return st.ok() ? close_st : st;
}

uint64_t QueryLog::events_appended() const {
  MutexLock lock(mu_);
  return events_appended_;
}

uint64_t QueryLog::append_failures() const {
  MutexLock lock(mu_);
  return append_failures_;
}

uint64_t QueryLog::rotations() const {
  MutexLock lock(mu_);
  return rotations_;
}

uint64_t QueryLog::next_seq() const {
  MutexLock lock(mu_);
  return next_seq_;
}

Result<std::vector<QueryLogEvent>> QueryLog::ReadAll(const std::string& path,
                                                     LoadStats* stats) {
  LoadStats local;
  std::vector<QueryLogEvent> events;
  const std::string generations[] = {path + ".1", path};
  for (const std::string& gen : generations) {
    if (!FileExists(gen)) continue;
    std::string data;
    SCANRAW_ASSIGN_OR_RETURN(data, ReadFileToString(gen));
    ++local.generations;
    size_t start = 0;
    bool saw_header = false;
    while (start < data.size()) {
      size_t end = data.find('\n', start);
      const bool terminated = end != std::string::npos;
      if (!terminated) end = data.size();
      const std::string_view line(data.data() + start, end - start);
      start = end + 1;
      if (line.empty()) continue;
      if (!saw_header) {
        // First line must be the versioned header; a freshly created file
        // killed before the header write is empty and never gets here.
        const int version = HeaderVersion(line);
        if (version == 0 || version > kLogVersion) {
          return Status::Corruption("query log " + gen +
                                    ": bad or unsupported header");
        }
        local.version = version;
        saw_header = true;
        continue;
      }
      QueryLogEvent event;
      if (QueryLogEvent::FromJsonLine(line, &event)) {
        if (event.seq > local.max_seq) local.max_seq = event.seq;
        ++local.events;
        events.push_back(std::move(event));
      } else if (terminated) {
        ++local.dropped_corrupt;
      } else {
        ++local.dropped_torn;  // torn trailing record: expected crash damage
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return events;
}

}  // namespace obs
}  // namespace scanraw
