// Live query progress: a thread-safe tracker of bytes/chunks processed with
// a rolling-window throughput estimate and ETA, plus a reporter thread that
// invokes a callback on a fixed interval so the CLI can print a progress
// line and benches can log phase timings without polling the pipeline
// themselves. The tracker is clock-injected, so the window arithmetic is
// unit-testable against a VirtualClock.
#ifndef SCANRAW_OBS_PROGRESS_H_
#define SCANRAW_OBS_PROGRESS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/thread_annotations.h"

namespace scanraw {
namespace obs {

// One point-in-time progress report.
struct QueryProgress {
  double elapsed_seconds = 0;
  uint64_t bytes_processed = 0;
  uint64_t bytes_total = 0;  // 0 = unknown
  uint64_t chunks_delivered = 0;
  uint64_t chunks_total = 0;  // 0 = unknown (discovery scan)
  uint64_t chunks_loaded = 0;  // written to the database so far this query
  // Fraction of bytes_total processed, in [0, 1]; 0 when total unknown.
  double fraction = 0;
  // Rolling throughput over the recent window, bytes/second.
  double throughput_bps = 0;
  // Estimated seconds to completion from the rolling throughput; negative
  // when unknown (no total, or no throughput yet).
  double eta_seconds = -1;
  // The query finished cleanly: fraction is pinned to 1.0 and the ETA to 0,
  // regardless of byte-count rounding or unknown totals. Set only on the
  // reports emitted after ProgressTracker::MarkComplete.
  bool complete = false;

  // "42.3% 12.4 MB/s ETA 3.2s (5/12 chunks)" — the CLI's progress line.
  std::string ToLine() const;
};

// Accumulates progress and computes the rolling estimate. All methods are
// thread-safe; AddBytes/CountChunk are called from pipeline threads and
// Snapshot from the reporter thread.
class ProgressTracker {
 public:
  explicit ProgressTracker(uint64_t bytes_total = 0,
                           const Clock* clock = RealClock::Instance());

  void set_totals(uint64_t bytes_total, uint64_t chunks_total) EXCLUDES(mu_);

  void AddBytes(uint64_t n) {
    bytes_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountChunk() { chunks_.fetch_add(1, std::memory_order_relaxed); }
  void CountLoaded() { loaded_.fetch_add(1, std::memory_order_relaxed); }

  // Marks the query as cleanly finished: every later Snapshot reports
  // fraction 1.0, ETA 0, and complete=true. Called once by the pipeline
  // after a successful drain, before the reporter's final callback, so the
  // last progress line always reads 100% even when totals were estimates.
  void MarkComplete() { complete_.store(true, std::memory_order_release); }
  bool complete() const { return complete_.load(std::memory_order_acquire); }

  // Appends a (now, bytes) observation to the rolling window and returns
  // the current estimate. The window keeps ~kWindowSamples recent samples,
  // so the throughput reflects the recent past, not the lifetime average —
  // that is what makes the ETA follow phase changes (e.g. cache-served
  // chunks first, raw conversion after, §3.2.1 delivery order).
  QueryProgress Snapshot() EXCLUDES(mu_);

 private:
  static constexpr size_t kWindowSamples = 16;

  const Clock* const clock_;
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> chunks_{0};
  std::atomic<uint64_t> loaded_{0};
  std::atomic<bool> complete_{false};
  mutable Mutex mu_{LockRank::kProgressTracker, "ProgressTracker.mu"};
  uint64_t bytes_total_ GUARDED_BY(mu_) = 0;
  uint64_t chunks_total_ GUARDED_BY(mu_) = 0;
  int64_t start_nanos_ GUARDED_BY(mu_) = 0;
  // Rolling (timestamp, bytes) samples.
  std::deque<std::pair<int64_t, uint64_t>> window_ GUARDED_BY(mu_);
};

using ProgressCallback = std::function<void(const QueryProgress&)>;

// Invokes `callback(tracker->Snapshot())` every `interval_ms` on a
// dedicated thread, plus once on Start and once on Stop so even
// sub-interval queries emit a first and a final report.
class ProgressReporter {
 public:
  ProgressReporter(ProgressTracker* tracker, ProgressCallback callback,
                   int interval_ms);
  ~ProgressReporter();
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  void Start() EXCLUDES(mu_);
  // Joins the thread and emits the final report. Idempotent; the destructor
  // calls it.
  void Stop() EXCLUDES(mu_);

 private:
  void Loop() EXCLUDES(mu_);

  ProgressTracker* const tracker_;
  const ProgressCallback callback_;
  const int interval_ms_;
  Mutex mu_{LockRank::kProgressReporter, "ProgressReporter.mu"};
  CondVar cv_;
  // Started under mu_ in Start, joined lock-free in Stop after stop_ flips.
  std::thread thread_;
  bool stop_ GUARDED_BY(mu_) = false;
  bool started_ GUARDED_BY(mu_) = false;
};

}  // namespace obs
}  // namespace scanraw

#endif  // SCANRAW_OBS_PROGRESS_H_
