#include "obs/telemetry.h"

#include <map>

namespace scanraw {
namespace obs {

std::string Telemetry::ToJson() const {
  std::string out = "{\"metrics\":" + metrics_.ToJson();
  out += ",\"resource_samples\":" + resources_.ToJson();
  out += ",\"trace_events_recorded\":" + std::to_string(tracer_.recorded());
  out += ",\"trace_events_dropped\":" + std::to_string(tracer_.dropped());
  out += "}\n";
  return out;
}

std::string Telemetry::ToText() const {
  std::string out = metrics_.ToText();
  std::map<std::string, size_t> advice_tally;
  for (const ResourceSample& s : resources_.Snapshot()) {
    ++advice_tally[s.advice];
  }
  for (const auto& [advice, n] : advice_tally) {
    out += "resource.advice_samples." + advice + " " + std::to_string(n) +
           "\n";
  }
  out += "trace.events_recorded " + std::to_string(tracer_.recorded()) + "\n";
  return out;
}

}  // namespace obs
}  // namespace scanraw
