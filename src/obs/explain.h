// ExplainReport: the per-query EXPLAIN ANALYZE artifact. One report is
// filled per executed query from the SpanProfiler aggregate plus deltas of
// the pipeline counters taken across the query (chunk provenance, min/max
// pruning, speculative writes, cache and positional-map hit rates), then
// rendered as aligned text for the CLI or as JSON for tooling. Pure data +
// formatting; the filling logic lives with the operators that own the
// counters (ScanRaw::ExecuteQuery, ScanRawManager::Query).
#ifndef SCANRAW_OBS_EXPLAIN_H_
#define SCANRAW_OBS_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span_profiler.h"

namespace scanraw {
namespace obs {

struct ExplainStage {
  std::string name;
  double busy_seconds = 0;     // thread-seconds across workers
  double covered_seconds = 0;  // wall-clock footprint (overlap merged)
  uint64_t spans = 0;
  size_t threads = 0;
  bool is_wait = false;
};

struct ExplainReport {
  std::string table;
  std::string policy;
  double wall_seconds = 0;
  size_t workers = 0;            // conversion pool size
  size_t threads_accounted = 0;  // distinct threads that recorded spans

  std::vector<ExplainStage> stages;  // zero-span stages omitted

  // Critical path: the busy stage whose spans cover the largest part of
  // the query's wall time (the stage that bounded the query).
  std::string critical_stage;
  double critical_seconds = 0;
  double critical_fraction = 0;

  // Accounting identity: busy + blocked + idle == wall * threads_accounted
  // (idle is computed as the residual).
  double busy_seconds_total = 0;
  double blocked_seconds_total = 0;
  double idle_seconds_total = 0;

  // Chunk provenance (§3.2.1 delivery order) and statistics pruning.
  uint64_t chunks_from_cache = 0;
  uint64_t chunks_from_db = 0;
  uint64_t chunks_from_raw = 0;
  uint64_t chunks_skipped = 0;  // min/max statistics proved no row matches

  // Speculative-loading payoff (§4).
  uint64_t chunks_written = 0;
  uint64_t speculative_triggers = 0;
  uint64_t read_blocked_events = 0;
  uint64_t bytes_written = 0;
  // Bytes of written segments attributed (proportionally within a segment)
  // to columns this query's spec required — how much of the speculative
  // write budget went to data the workload demonstrably wants.
  uint64_t useful_bytes_written = 0;
  // True when background WRITE made loading progress during this query —
  // i.e. the disk-idle gaps the scheduler detected were converted into
  // loaded chunks.
  bool speculation_paid_off = false;

  // Speculative parallel TOKENIZE / record discovery
  // (format/parallel_chunker): ranges fanned out, ranges whose speculated
  // start quote-parity proved wrong, and bytes re-scanned to repair them.
  uint64_t tokenize_ranges = 0;
  uint64_t tokenize_misspeculations = 0;
  uint64_t tokenize_repair_bytes = 0;

  // Cache behavior across the query. Positional-map numbers are
  // query-scoped (counted at the lookup sites, not deltas of shared
  // counters); posmap_disk_hits is the `posmap-disk` provenance — chunks
  // whose map came from the persisted sidecar rather than this process's
  // own TOKENIZE work.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t posmap_hits = 0;
  uint64_t posmap_misses = 0;
  uint64_t posmap_disk_hits = 0;
  // Chunk bytes put through TOKENIZE this query; 0 on a warm-restart scan
  // fully covered by persisted maps.
  uint64_t bytes_tokenized = 0;

  double loaded_fraction_before = 0;
  double loaded_fraction_after = 0;

  // History-driven loading (ScanRawOptions::advisor): whether the advisor
  // filtered speculative writes this query, and its reasoning line.
  bool advisor_used = false;
  std::string advisor_note;

  uint64_t spans_dropped = 0;

  // useful_bytes_written / bytes_written; 1.0 when nothing was written.
  double WriteEfficiency() const {
    return bytes_written == 0 ? 1.0
                              : static_cast<double>(useful_bytes_written) /
                                    static_cast<double>(bytes_written);
  }

  // Copies the profiler aggregate into the stage table and the critical
  // path / accounting fields (everything else is the caller's).
  void FillFromProfile(const SpanProfiler::Report& report);

  double HitRate(uint64_t hits, uint64_t misses) const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }

  std::string ToText() const;
  std::string ToJson() const;
};

}  // namespace obs
}  // namespace scanraw

#endif  // SCANRAW_OBS_EXPLAIN_H_
