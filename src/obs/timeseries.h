// Time-series rings over registry metrics: fixed-capacity (timestamp,
// value) rings snapshotting selected counters / gauges / histogram
// quantiles at a configurable cadence, so /metrics and the CLI can report
// *rates* (rows/s, bytes/s, cache hit rate over the last N seconds)
// instead of lifetime totals. Sampling piggybacks on whatever periodic
// thread already exists (the ResourceSampler probe, the watchdog tick, a
// stats-server scrape): MaybeSample is cheap, idempotent within an
// interval, and safe to call from several threads — exactly one caller
// wins each slot.
#ifndef SCANRAW_OBS_TIMESERIES_H_
#define SCANRAW_OBS_TIMESERIES_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace scanraw {
namespace obs {

// Fixed-capacity ring of (timestamp, value) points. Thread-safe; keeps the
// most recent `capacity` points.
class TimeSeriesRing {
 public:
  struct Point {
    int64_t ts_nanos = 0;
    double value = 0.0;
  };

  explicit TimeSeriesRing(size_t capacity);

  void Append(int64_t ts_nanos, double value) EXCLUDES(mu_);

  // Oldest-to-newest copy of the retained points.
  std::vector<Point> Snapshot() const EXCLUDES(mu_);
  size_t size() const EXCLUDES(mu_);
  uint64_t total_appended() const EXCLUDES(mu_);

  // Newest point; false when empty.
  bool Latest(Point* out) const EXCLUDES(mu_);

  // Value and time deltas between the newest point and the oldest retained
  // point not older than `window_nanos` before it. False when fewer than
  // two points fall in the window or the elapsed time is zero (two samples
  // with identical timestamps must not divide by zero).
  bool DeltaOver(int64_t window_nanos, double* delta,
                 int64_t* elapsed_nanos) const EXCLUDES(mu_);

  // Counter-style rate: DeltaOver / elapsed seconds. 0.0 when undefined.
  double RatePerSecond(int64_t window_nanos) const EXCLUDES(mu_);

 private:
  const size_t capacity_;
  mutable Mutex mu_{LockRank::kTimeSeriesRing, "TimeSeriesRing.mu"};
  std::vector<Point> ring_ GUARDED_BY(mu_);
  uint64_t next_ GUARDED_BY(mu_) = 0;
};

struct TimeSeriesOptions {
  // Points retained per tracked series.
  size_t ring_capacity = 512;
  // Default sampling cadence for MaybeSample. Callers may override at
  // runtime via set_interval_nanos (the CLI flag does).
  int64_t interval_nanos = 1'000'000'000;  // 1 s
};

// A named collection of rings, each tracking one registry metric. Tracked
// metrics are resolved once (stable registry pointers) and then read with
// relaxed loads on every sample.
class TimeSeries {
 public:
  enum class Kind : uint8_t {
    kCounter = 0,            // monotonic; rates are meaningful
    kGauge = 1,              // level; Latest is meaningful
    kHistogramQuantile = 2,  // level (a quantile snapshot)
  };

  struct RateRow {
    std::string name;
    Kind kind = Kind::kCounter;
    double rate_per_sec = 0.0;  // counters only; 0 when undefined
    bool rate_defined = false;
    double latest = 0.0;
    size_t points = 0;
  };

  explicit TimeSeries(TimeSeriesOptions options = TimeSeriesOptions());

  // Begin tracking a registry metric under `series_name` (defaults to the
  // metric name). Idempotent per series name. Thread-safe.
  void TrackCounter(MetricsRegistry* registry, std::string_view metric,
                    std::string_view series_name = {}) EXCLUDES(mu_);
  void TrackGauge(MetricsRegistry* registry, std::string_view metric,
                  std::string_view series_name = {}) EXCLUDES(mu_);
  void TrackHistogramQuantile(MetricsRegistry* registry,
                              std::string_view metric, double quantile,
                              std::string_view series_name = {}) EXCLUDES(mu_);

  // The standard pipeline set: rows/bytes delivered, cache hits/misses,
  // chunks written, p95 read latency. Safe to call before the metrics are
  // first bumped (registration creates them at zero).
  void TrackPipelineDefaults(MetricsRegistry* registry) EXCLUDES(mu_);

  // Sample every tracked series at `now_nanos`, unconditionally.
  void SampleNow(int64_t now_nanos) EXCLUDES(mu_);

  // Sample iff a full interval elapsed since the last sample. Returns true
  // when this call took the sample. Lock-free claim: concurrent callers
  // race on a CAS and exactly one wins the slot.
  bool MaybeSample(int64_t now_nanos) EXCLUDES(mu_);

  // Ring lookup by series name; nullptr when not tracked. The pointer stays
  // valid for the TimeSeries' lifetime.
  const TimeSeriesRing* Find(std::string_view series_name) const EXCLUDES(mu_);

  // One row per tracked series, rates computed over the trailing window.
  std::vector<RateRow> Rates(int64_t window_nanos) const EXCLUDES(mu_);

  // Cache hit rate over the window: d(hits) / (d(hits) + d(misses)).
  // False when either series is missing or no lookups landed in the window.
  bool CacheHitRate(int64_t window_nanos, double* rate) const EXCLUDES(mu_);

  int64_t interval_nanos() const {
    return interval_nanos_.load(std::memory_order_relaxed);
  }
  void set_interval_nanos(int64_t nanos) {
    interval_nanos_.store(nanos > 0 ? nanos : 0,
                          std::memory_order_relaxed);
  }

  size_t num_series() const EXCLUDES(mu_);

 private:
  struct Series {
    std::string name;
    Kind kind;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
    double quantile = 0.0;
    std::unique_ptr<TimeSeriesRing> ring;
  };

  void Track(Series series) EXCLUDES(mu_);
  double ReadSource(const Series& s) const;

  const size_t ring_capacity_;
  std::atomic<int64_t> interval_nanos_;
  std::atomic<int64_t> last_sample_nanos_{0};

  mutable Mutex mu_{LockRank::kTimeSeries, "TimeSeries.mu"};
  std::vector<std::unique_ptr<Series>> series_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace scanraw

#endif  // SCANRAW_OBS_TIMESERIES_H_
