// Telemetry: the unified observability sink — one metrics registry, one
// chunk-lifecycle tracer, and one resource-advice time-series log. The
// ScanRawManager owns a Telemetry instance and wires every component of the
// pipeline (ScanRaw stages, DiskArbiter, ChunkCache, ThreadPool,
// StorageManager) into it; the CLI and benches export it as JSON or text.
#ifndef SCANRAW_OBS_TELEMETRY_H_
#define SCANRAW_OBS_TELEMETRY_H_

#include <string>

#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "obs/resource_sampler.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace scanraw {
namespace obs {

struct TelemetryOptions {
  // Ring capacity of the chunk-lifecycle tracer, in events (one event per
  // chunk-stage). 0 disables tracing; metrics stay on.
  size_t trace_capacity = 1 << 14;
  // Bound on the resource time-series.
  size_t resource_log_capacity = 4096;
  // Points retained per metric time-series ring (see obs/timeseries.h).
  size_t timeseries_ring_capacity = 512;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options = TelemetryOptions())
      : tracer_(options.trace_capacity),
        resources_(options.resource_log_capacity),
        timeseries_(TimeSeriesOptions{options.timeseries_ring_capacity,
                                      TimeSeriesOptions().interval_nanos}) {}

  MetricsRegistry& metrics() { return metrics_; }
  ChunkTracer& tracer() { return tracer_; }
  ResourceLog& resources() { return resources_; }
  TimeSeries& timeseries() { return timeseries_; }
  StageHeartbeats& heartbeats() { return heartbeats_; }

  // Combined export: {"metrics": <registry>, "resource_samples": [...],
  // "trace_events_recorded": N, "trace_events_dropped": N}.
  std::string ToJson() const;

  // Human-readable flat dump (metrics text + advice tallies).
  std::string ToText() const;

 private:
  MetricsRegistry metrics_;
  ChunkTracer tracer_;
  ResourceLog resources_;
  TimeSeries timeseries_;
  StageHeartbeats heartbeats_;
};

}  // namespace obs
}  // namespace scanraw

#endif  // SCANRAW_OBS_TELEMETRY_H_
