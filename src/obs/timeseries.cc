#include "obs/timeseries.h"

#include <algorithm>

namespace scanraw {
namespace obs {

TimeSeriesRing::TimeSeriesRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TimeSeriesRing::Append(int64_t ts_nanos, double value) {
  MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(Point{ts_nanos, value});
  } else {
    ring_[next_ % capacity_] = Point{ts_nanos, value};
  }
  ++next_;
}

std::vector<TimeSeriesRing::Point> TimeSeriesRing::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<Point> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // next_ % capacity_ is the oldest slot once the ring has wrapped.
    const size_t head = next_ % capacity_;
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(head + i) % capacity_]);
    }
  }
  return out;
}

size_t TimeSeriesRing::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

uint64_t TimeSeriesRing::total_appended() const {
  MutexLock lock(mu_);
  return next_;
}

bool TimeSeriesRing::Latest(Point* out) const {
  MutexLock lock(mu_);
  if (ring_.empty()) return false;
  const size_t newest = ring_.size() < capacity_
                            ? ring_.size() - 1
                            : (next_ + capacity_ - 1) % capacity_;
  *out = ring_[newest];
  return true;
}

bool TimeSeriesRing::DeltaOver(int64_t window_nanos, double* delta,
                               int64_t* elapsed_nanos) const {
  std::vector<Point> points = Snapshot();
  if (points.size() < 2) return false;
  const Point& newest = points.back();
  // The oldest retained point still inside the trailing window.
  const Point* base = nullptr;
  for (const Point& p : points) {
    if (newest.ts_nanos - p.ts_nanos <= window_nanos) {
      base = &p;
      break;
    }
  }
  if (base == nullptr || base == &newest) return false;
  const int64_t elapsed = newest.ts_nanos - base->ts_nanos;
  if (elapsed <= 0) return false;  // zero-interval guard
  *delta = newest.value - base->value;
  *elapsed_nanos = elapsed;
  return true;
}

double TimeSeriesRing::RatePerSecond(int64_t window_nanos) const {
  double delta = 0.0;
  int64_t elapsed = 0;
  if (!DeltaOver(window_nanos, &delta, &elapsed)) return 0.0;
  return delta * 1e9 / static_cast<double>(elapsed);
}

TimeSeries::TimeSeries(TimeSeriesOptions options)
    : ring_capacity_(options.ring_capacity == 0 ? 1 : options.ring_capacity),
      interval_nanos_(options.interval_nanos > 0 ? options.interval_nanos
                                                 : 0) {}

void TimeSeries::Track(Series series) {
  MutexLock lock(mu_);
  for (const auto& existing : series_) {
    if (existing->name == series.name) return;  // idempotent
  }
  series.ring = std::make_unique<TimeSeriesRing>(ring_capacity_);
  series_.push_back(std::make_unique<Series>(std::move(series)));
}

void TimeSeries::TrackCounter(MetricsRegistry* registry,
                              std::string_view metric,
                              std::string_view series_name) {
  Series s;
  s.name = std::string(series_name.empty() ? metric : series_name);
  s.kind = Kind::kCounter;
  s.counter = registry->GetCounter(metric);
  Track(std::move(s));
}

void TimeSeries::TrackGauge(MetricsRegistry* registry, std::string_view metric,
                            std::string_view series_name) {
  Series s;
  s.name = std::string(series_name.empty() ? metric : series_name);
  s.kind = Kind::kGauge;
  s.gauge = registry->GetGauge(metric);
  Track(std::move(s));
}

void TimeSeries::TrackHistogramQuantile(MetricsRegistry* registry,
                                        std::string_view metric,
                                        double quantile,
                                        std::string_view series_name) {
  Series s;
  s.name = std::string(series_name.empty() ? metric : series_name);
  s.kind = Kind::kHistogramQuantile;
  s.histogram = registry->GetHistogram(metric);
  s.quantile = quantile;
  Track(std::move(s));
}

void TimeSeries::TrackPipelineDefaults(MetricsRegistry* registry) {
  TrackCounter(registry, "scanraw.rows_delivered");
  TrackCounter(registry, "scanraw.bytes_converted");
  TrackCounter(registry, "scanraw.cache.hits");
  TrackCounter(registry, "scanraw.cache.misses");
  TrackCounter(registry, "scanraw.chunks_written");
  TrackHistogramQuantile(registry, "scanraw.stage.read_nanos", 0.95,
                         "scanraw.stage.read_nanos.p95");
}

double TimeSeries::ReadSource(const Series& s) const {
  switch (s.kind) {
    case Kind::kCounter:
      return static_cast<double>(s.counter->value());
    case Kind::kGauge:
      return static_cast<double>(s.gauge->value());
    case Kind::kHistogramQuantile:
      return s.histogram->Quantile(s.quantile);
  }
  return 0.0;
}

void TimeSeries::SampleNow(int64_t now_nanos) {
  MutexLock lock(mu_);
  for (const auto& s : series_) {
    s->ring->Append(now_nanos, ReadSource(*s));
  }
}

bool TimeSeries::MaybeSample(int64_t now_nanos) {
  const int64_t interval = interval_nanos_.load(std::memory_order_relaxed);
  if (interval <= 0) return false;  // disabled
  int64_t last = last_sample_nanos_.load(std::memory_order_relaxed);
  for (;;) {
    if (last != 0 && now_nanos - last < interval) return false;
    if (last_sample_nanos_.compare_exchange_weak(last, now_nanos,
                                                 std::memory_order_relaxed)) {
      break;  // this caller owns the slot
    }
    // `last` was refreshed by the failed CAS; re-check the interval.
  }
  SampleNow(now_nanos);
  return true;
}

const TimeSeriesRing* TimeSeries::Find(std::string_view series_name) const {
  MutexLock lock(mu_);
  for (const auto& s : series_) {
    if (s->name == series_name) return s->ring.get();
  }
  return nullptr;
}

std::vector<TimeSeries::RateRow> TimeSeries::Rates(
    int64_t window_nanos) const {
  // Collect stable ring pointers under the lock, compute outside it (each
  // ring takes its own lock in DeltaOver/Latest).
  struct Row {
    const Series* series;
  };
  std::vector<Row> rows;
  {
    MutexLock lock(mu_);
    rows.reserve(series_.size());
    for (const auto& s : series_) rows.push_back(Row{s.get()});
  }
  std::vector<RateRow> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    RateRow r;
    r.name = row.series->name;
    r.kind = row.series->kind;
    const TimeSeriesRing* ring = row.series->ring.get();
    r.points = ring->size();
    TimeSeriesRing::Point latest;
    if (ring->Latest(&latest)) r.latest = latest.value;
    if (r.kind == Kind::kCounter) {
      double delta = 0.0;
      int64_t elapsed = 0;
      if (ring->DeltaOver(window_nanos, &delta, &elapsed)) {
        r.rate_per_sec = delta * 1e9 / static_cast<double>(elapsed);
        r.rate_defined = true;
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

bool TimeSeries::CacheHitRate(int64_t window_nanos, double* rate) const {
  const TimeSeriesRing* hits = Find("scanraw.cache.hits");
  const TimeSeriesRing* misses = Find("scanraw.cache.misses");
  if (hits == nullptr || misses == nullptr) return false;
  double dh = 0.0, dm = 0.0;
  int64_t eh = 0, em = 0;
  if (!hits->DeltaOver(window_nanos, &dh, &eh) ||
      !misses->DeltaOver(window_nanos, &dm, &em)) {
    return false;
  }
  const double lookups = dh + dm;
  if (lookups <= 0.0) return false;
  *rate = dh / lookups;
  return true;
}

size_t TimeSeries::num_series() const {
  MutexLock lock(mu_);
  return series_.size();
}

}  // namespace obs
}  // namespace scanraw
