// Structured leveled logging for src/: LOG_DEBUG/INFO/WARN/ERROR macros
// with per-call-site token-bucket rate limiting, a severity threshold
// settable by flag or the SCANRAW_LOG_LEVEL env var, and an optional JSONL
// sink that writes through the io layer (so the fault-injection decorators
// see log IO like any other write). Direct fprintf(stderr, ...) in src/ is
// banned by tools/scanraw_lint.py outside obs/log.cc — every diagnostic
// goes through here so a resident server has one leveled, rate-limited,
// machine-parseable stream instead of interleaved ad-hoc prints.
//
// Hot-path discipline: a suppressed-by-level log is one relaxed atomic
// load; the rate-limit bucket and sink are only touched once a line passes
// the threshold.
#ifndef SCANRAW_OBS_LOG_H_
#define SCANRAW_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace scanraw {

class WritableFile;

namespace obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  // threshold only; not a valid line level
};

std::string_view LogLevelName(LogLevel level);
// Accepts "debug", "info", "warn", "warning", "error", "off" (any case).
bool ParseLogLevel(std::string_view text, LogLevel* out);

// Per-call-site state for the token bucket, declared `static` inside the
// macro so each LOG_* line gets its own bucket. Members are atomics but the
// bucket arithmetic runs under the Logger's mutex; atomics keep concurrent
// first-use races defined.
struct LogSite {
  const char* file;
  int line;
  std::atomic<int64_t> tokens_micros{-1};      // -1 = bucket not yet filled
  std::atomic<int64_t> last_refill_nanos{0};
  std::atomic<uint64_t> suppressed{0};         // dropped by this site's bucket
};

class Logger {
 public:
  // Process-wide logger. First use reads SCANRAW_LOG_LEVEL (if set) for the
  // initial threshold; default is kInfo.
  static Logger* Global();

  Logger();
  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  void SetThreshold(LogLevel level) {
    threshold_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel threshold() const {
    return static_cast<LogLevel>(
        threshold_.load(std::memory_order_relaxed));
  }
  bool ShouldLog(LogLevel level) const {
    return static_cast<int>(level) >=
           threshold_.load(std::memory_order_relaxed);
  }

  // Token bucket applied per call site: each site may emit `burst` lines
  // instantly and refills at `per_second` lines/sec. kError lines bypass
  // the bucket (errors must never be silently dropped). per_second <= 0
  // disables rate limiting.
  void SetRateLimit(double per_second, double burst) EXCLUDES(mu_);

  // Mirror the structured lines into a JSONL file opened through the io
  // layer (fault-injection decorators included). Replaces any open sink.
  Status OpenJsonlSink(const std::string& path) EXCLUDES(mu_);
  void CloseJsonlSink() EXCLUDES(mu_);

  // Emit one line (printf-style). Called via the macros below, which check
  // ShouldLog first; calling directly also works.
  void Log(LogSite* site, LogLevel level, const char* format, ...)
      EXCLUDES(mu_) __attribute__((format(printf, 4, 5)));

  // Also mirror formatted lines to stderr (default on). Tests turn it off
  // to keep their output clean while asserting on the JSONL sink.
  void SetStderrEnabled(bool enabled) {
    stderr_enabled_.store(enabled, std::memory_order_relaxed);
  }

  uint64_t lines_emitted() const {
    return lines_emitted_.load(std::memory_order_relaxed);
  }
  uint64_t lines_suppressed() const {
    return lines_suppressed_.load(std::memory_order_relaxed);
  }

 private:
  bool Admit(LogSite* site, LogLevel level, int64_t now_nanos,
             uint64_t* newly_suppressed) REQUIRES(mu_);

  std::atomic<int> threshold_;
  std::atomic<bool> stderr_enabled_{true};
  std::atomic<uint64_t> lines_emitted_{0};
  std::atomic<uint64_t> lines_suppressed_{0};

  mutable Mutex mu_{LockRank::kLogger, "Logger.mu"};
  double rate_per_second_ GUARDED_BY(mu_) = 10.0;
  double burst_ GUARDED_BY(mu_) = 20.0;
  std::unique_ptr<WritableFile> sink_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace scanraw

// The level check is inline (one relaxed load) so disabled levels cost
// nothing; the static LogSite gives each call site its own rate bucket.
#define SCANRAW_LOG_IMPL(lvl, ...)                                       \
  do {                                                                   \
    ::scanraw::obs::Logger* scanraw_logger_ =                            \
        ::scanraw::obs::Logger::Global();                                \
    if (scanraw_logger_->ShouldLog(lvl)) {                               \
      static ::scanraw::obs::LogSite scanraw_log_site_{__FILE__,         \
                                                       __LINE__};        \
      scanraw_logger_->Log(&scanraw_log_site_, lvl, __VA_ARGS__);        \
    }                                                                    \
  } while (0)

#define LOG_DEBUG(...) \
  SCANRAW_LOG_IMPL(::scanraw::obs::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) \
  SCANRAW_LOG_IMPL(::scanraw::obs::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARN(...) \
  SCANRAW_LOG_IMPL(::scanraw::obs::LogLevel::kWarn, __VA_ARGS__)
#define LOG_ERROR(...) \
  SCANRAW_LOG_IMPL(::scanraw::obs::LogLevel::kError, __VA_ARGS__)

#endif  // SCANRAW_OBS_LOG_H_
