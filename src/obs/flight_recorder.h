// Flight recorder: an always-on, fixed-size, per-thread ring buffer of
// recent pipeline events, dumped when the process is about to die (crash
// handler, FaultKillPoint) or on demand (`--flight-dump`). The point is
// post-mortem visibility: after an injected or real crash, the dump shows
// the last thing every pipeline thread was doing.
//
// Record-path contract (enforced by scanraw-lint's flight-record-path rule
// and exercised under TSan): Record* functions take no locks and perform
// no allocation or IO — each event is four relaxed atomic stores into a
// pre-sized ring claimed per thread with a single CAS. Concurrent dumps
// read the same atomics; an event being written while dumped may appear
// torn (fields from two events), which is acceptable for a crash artifact
// and is why the slots are atomics (keeps TSan clean) rather than plain
// memory.
//
// Deliberately independent of io/: the dump must work when the io layer is
// the thing that failed (and io/fault_injection.cc calls into the dump
// right before _exit), so output goes through raw write(2).
#ifndef SCANRAW_OBS_FLIGHT_RECORDER_H_
#define SCANRAW_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace scanraw {
namespace obs {

enum class FlightEvent : uint8_t {
  kNone = 0,
  kQueryBegin,
  kQueryEnd,
  kRead,
  kTokenize,
  kParse,
  kDeliver,
  kWrite,
  kSpeculativeTrigger,
  kCacheEvict,
  kKillPoint,
  kError,
};

const char* FlightEventName(FlightEvent event);

class FlightRecorder {
 public:
  static constexpr size_t kNumRings = 64;    // concurrent threads covered
  static constexpr size_t kRingEvents = 256; // recent events kept per ring

  // Process-global recorder (never destroyed). All call sites record here.
  static FlightRecorder* Global();

  // Appends one event to the calling thread's ring. Lock-free and
  // allocation-free; silently drops (with a counter) if more than
  // kNumRings threads record at once.
  void Record(FlightEvent event, uint64_t a = 0, uint64_t b = 0);

  // Writes a human-readable dump of every non-empty ring to `fd` using raw
  // write(2). Safe to call while other threads record.
  void DumpTo(int fd) const;

  // DumpTo an opened/created file (0644, truncated); false if open fails.
  bool DumpToFile(const char* path) const;

  // Where DumpOnCrash writes: a file path, or stderr when unset. Copied
  // into a fixed buffer (no allocation at crash time).
  void SetCrashDumpPath(const char* path);

  // Called on the way into _exit (FaultInjector::MaybeKill, crash
  // handlers). Dumps to the configured path or stderr. Async-signal-safe
  // apart from open(2)/write(2).
  void DumpOnCrash() const;

  uint64_t events_recorded() const;
  uint64_t events_dropped() const;
  // Number of rings that have ever been claimed by a thread.
  size_t rings_used() const;

  // Test hook: clears every ring and counter. Not safe concurrently with
  // Record; tests call it between quiesced phases only.
  void ResetForTest();

 private:
  friend struct FlightRecorderTlsHandle;

  struct Slot {
    std::atomic<uint64_t> ts_nanos{0};
    std::atomic<uint64_t> packed{0};  // (thread_id << 8) | event type
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
  };

  struct Ring {
    std::atomic<bool> in_use{false};        // claimed by a live thread
    std::atomic<uint64_t> ever_claimed{0};  // sticky: kept for the dump
    std::atomic<uint64_t> next{0};          // events recorded (mod = slot)
    Slot slots[kRingEvents];
  };

  FlightRecorder() = default;

  Ring* ClaimRing();
  void ReleaseRing(Ring* ring);

  Ring rings_[kNumRings];
  std::atomic<uint64_t> dropped_{0};
  // Crash-dump destination; fixed storage, written before any crash.
  char crash_path_[512] = {0};
  std::atomic<bool> crash_path_set_{false};
};

// Convenience for pipeline call sites.
inline void FlightRecord(FlightEvent event, uint64_t a = 0, uint64_t b = 0) {
  FlightRecorder::Global()->Record(event, a, b);
}

}  // namespace obs
}  // namespace scanraw

#endif  // SCANRAW_OBS_FLIGHT_RECORDER_H_
