#include "obs/span_profiler.h"

#include <algorithm>

#include "obs/trace.h"

namespace scanraw {
namespace obs {

std::string_view QueryStageName(QueryStage stage) {
  switch (stage) {
    case QueryStage::kRead:
      return "READ";
    case QueryStage::kTokenize:
      return "TOKENIZE";
    case QueryStage::kParse:
      return "PARSE";
    case QueryStage::kWrite:
      return "WRITE";
    case QueryStage::kCacheHit:
      return "CACHE_HIT";
    case QueryStage::kHeapScan:
      return "HEAP_SCAN";
    case QueryStage::kEngine:
      return "ENGINE";
    case QueryStage::kDiskWait:
      return "DISK_WAIT";
    case QueryStage::kThrottleWait:
      return "THROTTLE_WAIT";
  }
  return "UNKNOWN";
}

SpanProfiler::SpanProfiler(const Clock* clock, size_t max_spans_per_stage)
    : clock_(clock), max_spans_per_stage_(max_spans_per_stage) {
  begin_nanos_ = clock_->NowNanos();
}

void SpanProfiler::Begin() {
  MutexLock lock(mu_);
  begin_nanos_ = clock_->NowNanos();
}

void SpanProfiler::End() {
  MutexLock lock(mu_);
  end_nanos_ = clock_->NowNanos();
}

int64_t SpanProfiler::start_nanos() const {
  MutexLock lock(mu_);
  return begin_nanos_;
}

void SpanProfiler::RecordSpan(QueryStage stage, uint32_t tid,
                              int64_t start_nanos, int64_t dur_nanos) {
  if (dur_nanos < 0) dur_nanos = 0;
  const size_t s = static_cast<size_t>(stage);
  MutexLock lock(mu_);
  StageStats& t = totals_[s];
  ++t.spans;
  t.busy_nanos += dur_nanos;
  stage_tids_[s].insert(tid);
  if (spans_[s].size() < max_spans_per_stage_) {
    spans_[s].push_back(Span{tid, start_nanos, dur_nanos});
  } else {
    ++dropped_;
  }
}

SpanProfiler::Scope::Scope(SpanProfiler* profiler, QueryStage stage)
    : profiler_(profiler),
      stage_(stage),
      start_nanos_(profiler != nullptr ? profiler->clock_->NowNanos() : 0) {}

SpanProfiler::Scope::~Scope() {
  if (profiler_ == nullptr) return;
  const int64_t dur = profiler_->clock_->NowNanos() - start_nanos_;
  profiler_->RecordSpan(stage_, CurrentThreadId(), start_nanos_, dur);
}

namespace {

// Wall-clock footprint of a span set: total length of the union of the
// [start, start+dur) intervals. Sorts a copy; spans per stage are bounded.
int64_t IntervalUnionNanos(std::vector<SpanProfiler::Span> spans) {
  if (spans.empty()) return 0;
  std::sort(spans.begin(), spans.end(),
            [](const SpanProfiler::Span& a, const SpanProfiler::Span& b) {
              return a.start_nanos < b.start_nanos;
            });
  int64_t covered = 0;
  int64_t cur_start = spans[0].start_nanos;
  int64_t cur_end = cur_start + spans[0].dur_nanos;
  for (size_t i = 1; i < spans.size(); ++i) {
    const int64_t s = spans[i].start_nanos;
    const int64_t e = s + spans[i].dur_nanos;
    if (s > cur_end) {
      covered += cur_end - cur_start;
      cur_start = s;
      cur_end = e;
    } else {
      cur_end = std::max(cur_end, e);
    }
  }
  covered += cur_end - cur_start;
  return covered;
}

}  // namespace

SpanProfiler::Report SpanProfiler::Aggregate() const {
  Report report;
  std::array<std::vector<Span>, kNumQueryStages> spans_copy;
  std::set<uint32_t> all_tids;
  {
    MutexLock lock(mu_);
    const int64_t end =
        end_nanos_ != 0 ? end_nanos_ : clock_->NowNanos();
    report.wall_nanos = std::max<int64_t>(0, end - begin_nanos_);
    report.stages = totals_;
    report.spans_dropped = dropped_;
    for (size_t s = 0; s < kNumQueryStages; ++s) {
      report.stages[s].threads = stage_tids_[s].size();
      all_tids.insert(stage_tids_[s].begin(), stage_tids_[s].end());
      spans_copy[s] = spans_[s];
    }
  }
  report.distinct_threads = all_tids.size();
  for (size_t s = 0; s < kNumQueryStages; ++s) {
    report.stages[s].covered_nanos = IntervalUnionNanos(std::move(spans_copy[s]));
    if (QueryStageIsWait(static_cast<QueryStage>(s))) {
      report.blocked_nanos_total += report.stages[s].busy_nanos;
    } else {
      report.busy_nanos_total += report.stages[s].busy_nanos;
      if (report.stages[s].covered_nanos > report.critical_covered_nanos) {
        report.critical_covered_nanos = report.stages[s].covered_nanos;
        report.critical_stage = static_cast<QueryStage>(s);
      }
    }
  }
  if (report.wall_nanos > 0) {
    report.critical_fraction =
        static_cast<double>(report.critical_covered_nanos) /
        static_cast<double>(report.wall_nanos);
  }
  return report;
}

}  // namespace obs
}  // namespace scanraw
