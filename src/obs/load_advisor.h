// LoadAdvisor: turns workload history into a speculative-loading column
// order. The paper's speculative loader (§4) picks *when* to load; the
// advisor picks *which columns are worth the write budget* — hot columns
// (touched by a large fraction of the table's queries, recently, or used in
// predicates) rank first, cold columns are skipped entirely. Consulted by
// ScanRaw's WRITE stage behind ScanRawOptions::advisor; with the advisor
// off, or with no history, behavior is byte-for-byte the status quo.
#ifndef SCANRAW_OBS_LOAD_ADVISOR_H_
#define SCANRAW_OBS_LOAD_ADVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/workload_history.h"

namespace scanraw {
namespace obs {

struct ColumnRanking {
  size_t column = 0;
  double score = 0;
  double frequency = 0;  // fraction of the table's queries touching it
  uint64_t touches = 0;
  uint64_t predicates = 0;
};

struct AdvisorPlan {
  bool has_history = false;
  std::vector<ColumnRanking> ranked;  // descending score
  std::vector<size_t> hot;            // ranked columns above the threshold
  std::string note;                   // reasoning line for EXPLAIN ANALYZE
};

class LoadAdvisor {
 public:
  // `history` must outlive the advisor. `hot_threshold` is the minimum
  // access frequency (touches / queries) for a column to be loaded
  // speculatively.
  explicit LoadAdvisor(const WorkloadHistory* history,
                       double hot_threshold = 0.5)
      : history_(history), hot_threshold_(hot_threshold) {}

  // Full ranking for `table` from the current history snapshot.
  AdvisorPlan Plan(const std::string& table) const;

  // Hot columns of `table` restricted to `available`, in rank order.
  // Returns `available` unchanged when history has nothing to say (no
  // observed queries, or no hot column intersects) so the advisor can
  // never make speculative loading do *less* than load something.
  std::vector<size_t> FilterColumns(const std::string& table,
                                    const std::vector<size_t>& available) const;

  double hot_threshold() const { return hot_threshold_; }

 private:
  const WorkloadHistory* const history_;
  const double hot_threshold_;
};

}  // namespace obs
}  // namespace scanraw

#endif  // SCANRAW_OBS_LOAD_ADVISOR_H_
