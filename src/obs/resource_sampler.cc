#include "obs/resource_sampler.h"

#include <algorithm>

#include "obs/metrics.h"

namespace scanraw {
namespace obs {

void ResourceLog::Append(ResourceSample sample) {
  if (capacity_ == 0) return;
  MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(sample));
  } else {
    ring_[next_ % capacity_] = std::move(sample);
  }
  ++next_;
}

std::vector<ResourceSample> ResourceLog::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<ResourceSample> out;
  const uint64_t stored = std::min<uint64_t>(next_, capacity_);
  out.reserve(stored);
  const uint64_t begin = next_ - stored;
  for (uint64_t i = begin; i < next_; ++i) {
    out.push_back(ring_[i % capacity_]);
  }
  return out;
}

size_t ResourceLog::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

uint64_t ResourceLog::total_appended() const {
  MutexLock lock(mu_);
  return next_;
}

void ResourceLog::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  next_ = 0;
}

std::string ResourceLog::ToJson() const {
  const std::vector<ResourceSample> samples = Snapshot();
  int64_t epoch = 0;
  for (const ResourceSample& s : samples) {
    if (epoch == 0 || s.ts_nanos < epoch) epoch = s.ts_nanos;
  }
  std::string out = "[";
  bool first = true;
  for (const ResourceSample& s : samples) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ts_us\":" + std::to_string((s.ts_nanos - epoch) / 1000);
    out += ",\"advice\":\"" + JsonEscape(s.advice) + "\"";
    out += ",\"text_buffer\":[" + std::to_string(s.text_buffer_size) + "," +
           std::to_string(s.text_buffer_capacity) + "]";
    out += ",\"position_buffer\":[" + std::to_string(s.position_buffer_size) +
           "," + std::to_string(s.position_buffer_capacity) + "]";
    out += ",\"output_buffer\":[" + std::to_string(s.output_buffer_size) +
           "," + std::to_string(s.output_buffer_capacity) + "]";
    out += ",\"busy_workers\":" + std::to_string(s.busy_workers);
    out += ",\"num_workers\":" + std::to_string(s.num_workers);
    out += ",\"cache\":[" + std::to_string(s.cache_size) + "," +
           std::to_string(s.cache_capacity) + "]";
    out += ",\"disk_reader_busy_us\":" +
           std::to_string(s.disk_reader_busy_nanos / 1000);
    out += ",\"disk_writer_busy_us\":" +
           std::to_string(s.disk_writer_busy_nanos / 1000);
    out += "}";
  }
  out += "]";
  return out;
}

ResourceSampler::ResourceSampler(ResourceLog* log, Probe probe,
                                 std::chrono::milliseconds interval)
    : log_(log), probe_(std::move(probe)), interval_(interval) {}

ResourceSampler::~ResourceSampler() { Stop(); }

void ResourceSampler::Start() {
  {
    MutexLock lock(mu_);
    if (started_) return;
    started_ = true;
    stop_ = false;
  }
  log_->Append(probe_());
  thread_ = std::thread([this] { Loop(); });
}

void ResourceSampler::Stop() {
  // The final probe is emitted exactly once per sampler lifetime — even
  // when the interval never elapsed, and even when Start was never called
  // (a query can finish before its sampler is started). Short queries thus
  // always leave at least one sample.
  bool emit_final = false;
  {
    MutexLock lock(mu_);
    if (!final_emitted_) {
      final_emitted_ = true;
      emit_final = true;
    }
    if (started_ && !stop_) {
      stop_ = true;
      cv_.NotifyAll();
    }
  }
  if (thread_.joinable()) thread_.join();
  if (emit_final) log_->Append(probe_());
}

bool ResourceSampler::running() const {
  MutexLock lock(mu_);
  return started_ && !stop_;
}

void ResourceSampler::Loop() {
  while (true) {
    {
      MutexLock lock(mu_);
      cv_.WaitFor(lock, interval_);
      if (stop_) return;
    }
    log_->Append(probe_());
  }
}

}  // namespace obs
}  // namespace scanraw
