#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/trace.h"

namespace scanraw {
namespace obs {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// write(2) with the short-write loop; best-effort — a crash dump has
// nowhere to report errors to.
void WriteAll(int fd, const char* data, size_t length) {
  while (length > 0) {
    const ssize_t n = ::write(fd, data, length);
    if (n <= 0) return;
    data += n;
    length -= static_cast<size_t>(n);
  }
}

void WriteLine(int fd, const char* line) { WriteAll(fd, line, strlen(line)); }

}  // namespace

const char* FlightEventName(FlightEvent event) {
  switch (event) {
    case FlightEvent::kNone: return "none";
    case FlightEvent::kQueryBegin: return "query-begin";
    case FlightEvent::kQueryEnd: return "query-end";
    case FlightEvent::kRead: return "read";
    case FlightEvent::kTokenize: return "tokenize";
    case FlightEvent::kParse: return "parse";
    case FlightEvent::kDeliver: return "deliver";
    case FlightEvent::kWrite: return "write";
    case FlightEvent::kSpeculativeTrigger: return "spec-trigger";
    case FlightEvent::kCacheEvict: return "cache-evict";
    case FlightEvent::kKillPoint: return "kill-point";
    case FlightEvent::kError: return "error";
  }
  return "unknown";
}

// Per-thread claim on one ring; the destructor releases the claim (content
// is retained for the dump) when the thread exits.
struct FlightRecorderTlsHandle {
  FlightRecorder::Ring* ring = nullptr;
  FlightRecorder* owner = nullptr;

  ~FlightRecorderTlsHandle() {
    if (ring != nullptr && owner != nullptr) owner->ReleaseRing(ring);
  }
};

namespace {
thread_local FlightRecorderTlsHandle tls_handle;
}  // namespace

FlightRecorder* FlightRecorder::Global() {
  // Leaked singleton: rings must outlive every recording thread, including
  // detached ones running through static destruction. SCANRAW_FLIGHT_DUMP
  // seeds the crash-dump destination; an explicit SetCrashDumpPath (the
  // --flight-dump-on-crash CLI flag) still overrides it later.
  static FlightRecorder* recorder = [] {
    auto* r = new FlightRecorder();
    const char* env = std::getenv("SCANRAW_FLIGHT_DUMP");
    if (env != nullptr && env[0] != '\0') r->SetCrashDumpPath(env);
    return r;
  }();
  return recorder;
}

FlightRecorder::Ring* FlightRecorder::ClaimRing() {
  for (size_t i = 0; i < kNumRings; ++i) {
    bool expected = false;
    if (rings_[i].in_use.compare_exchange_strong(expected, true,
                                                 std::memory_order_acq_rel)) {
      rings_[i].ever_claimed.store(1, std::memory_order_relaxed);
      return &rings_[i];
    }
  }
  return nullptr;
}

void FlightRecorder::ReleaseRing(Ring* ring) {
  ring->in_use.store(false, std::memory_order_release);
}

void FlightRecorder::Record(FlightEvent event, uint64_t a, uint64_t b) {
  FlightRecorderTlsHandle& handle = tls_handle;
  if (handle.ring == nullptr || handle.owner != this) {
    handle.ring = ClaimRing();
    handle.owner = this;
    if (handle.ring == nullptr) {
      // More live threads than rings; drop rather than contend.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  Ring& ring = *handle.ring;
  const uint64_t index =
      ring.next.fetch_add(1, std::memory_order_relaxed) % kRingEvents;
  Slot& slot = ring.slots[index];
  // Relaxed stores: a dump racing these may see one torn event, which a
  // crash artifact tolerates; atomics keep the race defined (TSan-clean).
  slot.ts_nanos.store(NowNanos(), std::memory_order_relaxed);
  slot.packed.store((static_cast<uint64_t>(CurrentThreadId()) << 8) |
                        static_cast<uint64_t>(event),
                    std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
}

void FlightRecorder::DumpTo(int fd) const {
  char line[256];
  const uint64_t now = NowNanos();
  std::snprintf(line, sizeof(line),
                "=== scanraw flight recorder: %llu events recorded, %llu "
                "dropped, %zu/%zu rings ===\n",
                static_cast<unsigned long long>(events_recorded()),
                static_cast<unsigned long long>(events_dropped()),
                rings_used(), kNumRings);
  WriteLine(fd, line);
  for (size_t r = 0; r < kNumRings; ++r) {
    const Ring& ring = rings_[r];
    if (ring.ever_claimed.load(std::memory_order_relaxed) == 0) continue;
    const uint64_t total = ring.next.load(std::memory_order_acquire);
    if (total == 0) continue;
    const uint64_t count = total < kRingEvents ? total : kRingEvents;
    std::snprintf(line, sizeof(line),
                  "-- ring %zu: %llu events (showing last %llu)\n", r,
                  static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(count));
    WriteLine(fd, line);
    for (uint64_t i = total - count; i < total; ++i) {
      const Slot& slot = ring.slots[i % kRingEvents];
      const uint64_t packed = slot.packed.load(std::memory_order_relaxed);
      const FlightEvent event = static_cast<FlightEvent>(packed & 0xff);
      if (event == FlightEvent::kNone) continue;
      const uint64_t ts = slot.ts_nanos.load(std::memory_order_relaxed);
      const uint64_t age_us = ts <= now ? (now - ts) / 1000 : 0;
      std::snprintf(
          line, sizeof(line),
          "  tid=%llu -%8llu.%03llums %-12s a=%llu b=%llu\n",
          static_cast<unsigned long long>(packed >> 8),
          static_cast<unsigned long long>(age_us / 1000),
          static_cast<unsigned long long>(age_us % 1000),
          FlightEventName(event),
          static_cast<unsigned long long>(
              slot.a.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              slot.b.load(std::memory_order_relaxed)));
      WriteLine(fd, line);
    }
  }
  WriteLine(fd, "=== end flight recorder ===\n");
}

bool FlightRecorder::DumpToFile(const char* path) const {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  DumpTo(fd);
  ::close(fd);
  return true;
}

void FlightRecorder::SetCrashDumpPath(const char* path) {
  if (path == nullptr || path[0] == '\0') {
    crash_path_set_.store(false, std::memory_order_release);
    return;
  }
  std::strncpy(crash_path_, path, sizeof(crash_path_) - 1);
  crash_path_[sizeof(crash_path_) - 1] = '\0';
  crash_path_set_.store(true, std::memory_order_release);
}

void FlightRecorder::DumpOnCrash() const {
  if (crash_path_set_.load(std::memory_order_acquire)) {
    if (DumpToFile(crash_path_)) return;
  }
  DumpTo(STDERR_FILENO);
}

uint64_t FlightRecorder::events_recorded() const {
  uint64_t total = 0;
  for (const Ring& ring : rings_) {
    total += ring.next.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t FlightRecorder::events_dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

size_t FlightRecorder::rings_used() const {
  size_t used = 0;
  for (const Ring& ring : rings_) {
    if (ring.ever_claimed.load(std::memory_order_relaxed) != 0) ++used;
  }
  return used;
}

void FlightRecorder::ResetForTest() {
  for (Ring& ring : rings_) {
    ring.next.store(0, std::memory_order_relaxed);
    // Rings released by exited threads stop counting as used; rings still
    // claimed by live threads (their TLS handles point here) stay sticky.
    ring.ever_claimed.store(ring.in_use.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    for (Slot& slot : ring.slots) {
      slot.ts_nanos.store(0, std::memory_order_relaxed);
      slot.packed.store(0, std::memory_order_relaxed);
      slot.a.store(0, std::memory_order_relaxed);
      slot.b.store(0, std::memory_order_relaxed);
    }
  }
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace scanraw
