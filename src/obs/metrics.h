// Metrics registry: named counters, gauges, and log-bucketed latency
// histograms backing the SCANRAW profiling hooks ("special function calls to
// harness detailed profiling data", §5). Designed to be lock-cheap on the
// hot path: callers resolve a metric once (one mutex acquisition in the
// registry) and then update it through plain relaxed atomics. Metric objects
// are never destroyed while the registry lives, so cached pointers stay
// valid for the registry's lifetime.
#ifndef SCANRAW_OBS_METRICS_H_
#define SCANRAW_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace scanraw {
namespace obs {

// Monotonic event count.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time level (queue depth, busy workers, ...). Add-based updates
// compose across instances sharing one gauge: the value is the live sum.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log-bucketed histogram for latency-like values (nanoseconds). Bucket b
// collects values whose bit width is b, i.e. [2^(b-1), 2^b); quantiles are
// estimated by linear interpolation inside the winning bucket, so the
// relative error is bounded by the bucket ratio (2x). Recording is a few
// relaxed atomic adds — safe and cheap from any number of threads.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const;
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  // Approximate quantile (q in [0, 1]) from the bucket counts.
  double Quantile(double q) const;

  void Reset() EXCLUDES(mu_);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

// Point-in-time copy of every registered metric, for exporters that render
// outside the registry lock (the /metrics endpoint, the CLI snapshots).
struct MetricsSnapshot {
  struct HistogramRow {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramRow> histograms;
};

// Named metric store. Get* registers on first use and returns a stable
// pointer; names are hierarchical dot-separated strings
// ("scanraw.stage.read_nanos"). Thread-safe; the mutex guards only the name
// maps, never the metric updates themselves.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name) EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name) EXCLUDES(mu_);
  Histogram* GetHistogram(std::string_view name) EXCLUDES(mu_);

  // Sorted (std::map order) copy of every metric's current value.
  MetricsSnapshot Snapshot() const EXCLUDES(mu_);

  // Zeroes every registered metric (registration survives). Callers must
  // ensure no concurrent Reset of the same metric elsewhere; concurrent
  // recording merely lands in the fresh epoch.
  void Reset();

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  // min, max, mean, p50, p95, p99}}}.
  std::string ToJson() const EXCLUDES(mu_);
  // One metric per line, prometheus-flavored flat text.
  std::string ToText() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_{LockRank::kMetrics, "MetricsRegistry.mu"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mu_);
};

// Minimal JSON string escaping for metric names / labels.
std::string JsonEscape(std::string_view s);

}  // namespace obs
}  // namespace scanraw

#endif  // SCANRAW_OBS_METRICS_H_
