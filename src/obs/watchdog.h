// Stall watchdog: turns silent hangs into diagnosable events. A background
// thread samples the StageHeartbeats board every check interval; a stage
// that has threads inside it (active > 0) whose beat counter stops moving
// for a whole window is declared stalled — the watchdog logs a structured
// report, dumps the flight recorder (so the post-mortem shows what every
// thread was last doing), and optionally aborts the process. Progress
// resets the episode; a stage only re-alarms after it has moved again and
// stalled again, so one wedged query produces one report, not one per tick.
#ifndef SCANRAW_OBS_WATCHDOG_H_
#define SCANRAW_OBS_WATCHDOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "obs/heartbeat.h"

namespace scanraw {
namespace obs {

struct WatchdogOptions {
  // No-progress window before a stage is declared stalled.
  int64_t window_ms = 5000;
  // Heartbeat sampling cadence; 0 = window / 4 (alarm latency stays well
  // under 2x the window even when the stall starts right after a check).
  int64_t check_interval_ms = 0;
  // Crash-style abort after reporting. Off by default: a resident server
  // wants the report and the dump, not a restart loop.
  bool abort_on_stall = false;
  // Flight-recorder dump destination on stall. Empty = the
  // SCANRAW_FLIGHT_DUMP env var; if that is unset too, dump to stderr.
  std::string flight_dump_path;
  // Injectable for tests.
  const Clock* clock = RealClock::Instance();
};

class Watchdog {
 public:
  struct StallReport {
    HeartbeatStage stage = HeartbeatStage::kRead;
    int64_t ts_nanos = 0;
    int64_t stalled_ms = 0;   // how long the stage had made no progress
    uint64_t beats = 0;       // beat count frozen at this value
    int64_t active = 0;       // threads stuck inside the stage
    // Per-thread held-lock stacks at report time (lockdebug snapshot);
    // empty outside SCANRAW_LOCK_DEBUG builds. A stall is usually a thread
    // wedged under a lock — this names the lock without a debugger.
    std::string held_locks;
  };

  Watchdog(StageHeartbeats* heartbeats, WatchdogOptions options);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void Start() EXCLUDES(mu_);
  void Stop() EXCLUDES(mu_);  // idempotent; the destructor calls it

  // One sampling pass, callable directly (tests drive it with a
  // VirtualClock; the background thread calls it every check interval).
  void CheckNow() EXCLUDES(mu_);

  uint64_t stalls_detected() const {
    return stalls_.load(std::memory_order_relaxed);
  }
  std::vector<StallReport> Reports() const EXCLUDES(mu_);

  int64_t window_ms() const { return options_.window_ms; }

 private:
  void Loop() EXCLUDES(mu_);
  void ReportStall(const StallReport& report) REQUIRES(mu_);

  StageHeartbeats* const heartbeats_;
  const WatchdogOptions options_;
  const int64_t check_interval_ms_;

  std::atomic<uint64_t> stalls_{0};

  mutable Mutex mu_{LockRank::kWatchdog, "Watchdog.mu"};
  CondVar cv_;
  std::thread thread_;
  bool running_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;

  struct StageState {
    uint64_t last_beats = 0;
    int64_t no_progress_since_nanos = 0;  // 0 = progressing
    bool alarmed = false;  // suppress re-alarm until progress resumes
  };
  StageState stages_[kNumHeartbeatStages] GUARDED_BY(mu_);
  std::vector<StallReport> reports_ GUARDED_BY(mu_);  // bounded
};

}  // namespace obs
}  // namespace scanraw

#endif  // SCANRAW_OBS_WATCHDOG_H_
