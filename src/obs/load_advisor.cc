#include "obs/load_advisor.h"

#include <algorithm>
#include <cstdio>

namespace scanraw {
namespace obs {

AdvisorPlan LoadAdvisor::Plan(const std::string& table) const {
  AdvisorPlan plan;
  if (history_ == nullptr) {
    plan.note = "advisor: no history attached";
    return plan;
  }
  const TableUsage usage = history_->TableSnapshot(table);
  if (usage.queries == 0 || usage.columns.empty()) {
    plan.note = "advisor: no history for table " + table;
    return plan;
  }
  plan.has_history = true;
  const double queries = static_cast<double>(usage.queries);
  const double max_seq =
      static_cast<double>(std::max<uint64_t>(usage.last_seq, 1));
  for (const auto& [id, col] : usage.columns) {
    ColumnRanking r;
    r.column = id;
    r.touches = col.touches;
    r.predicates = col.predicates;
    r.frequency = static_cast<double>(col.touches) / queries;
    // Frequency dominates; predicate use and recency break ties toward
    // filter columns and the recent working set.
    r.score = r.frequency +
              0.3 * (static_cast<double>(col.predicates) / queries) +
              0.2 * (static_cast<double>(col.last_seq) / max_seq);
    plan.ranked.push_back(r);
  }
  std::sort(plan.ranked.begin(), plan.ranked.end(),
            [](const ColumnRanking& a, const ColumnRanking& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.column < b.column;
            });
  plan.note = "advisor: ";
  for (const ColumnRanking& r : plan.ranked) {
    if (r.frequency >= hot_threshold_) plan.hot.push_back(r.column);
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%zu/%zu columns hot (freq >= %.2f):",
                plan.hot.size(), plan.ranked.size(), hot_threshold_);
  plan.note += buf;
  size_t shown = 0;
  for (const ColumnRanking& r : plan.ranked) {
    if (r.frequency < hot_threshold_ || shown >= 8) break;
    std::snprintf(buf, sizeof(buf), " %zu(%.2f)", r.column, r.score);
    plan.note += buf;
    ++shown;
  }
  if (plan.hot.empty()) plan.note += " none";
  return plan;
}

std::vector<size_t> LoadAdvisor::FilterColumns(
    const std::string& table, const std::vector<size_t>& available) const {
  const AdvisorPlan plan = Plan(table);
  if (!plan.has_history || plan.hot.empty()) return available;
  std::vector<size_t> out;
  out.reserve(plan.hot.size());
  for (size_t hot : plan.hot) {
    if (std::find(available.begin(), available.end(), hot) !=
        available.end()) {
      out.push_back(hot);
    }
  }
  return out.empty() ? available : out;
}

}  // namespace obs
}  // namespace scanraw
