#include "obs/trace.h"

#include <algorithm>
#include <atomic>

namespace scanraw {
namespace obs {

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next_id{1};
  thread_local uint32_t id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string_view TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kRead:
      return "READ";
    case TraceStage::kTokenize:
      return "TOKENIZE";
    case TraceStage::kParse:
      return "PARSE";
    case TraceStage::kWrite:
      return "WRITE";
    case TraceStage::kSpeculativeTrigger:
      return "SPECULATIVE_TRIGGER";
    case TraceStage::kSafeguardFlush:
      return "SAFEGUARD_FLUSH";
    case TraceStage::kReadBlocked:
      return "READ_BLOCKED";
  }
  return "UNKNOWN";
}

std::string_view ChunkSourceName(ChunkSource source) {
  switch (source) {
    case ChunkSource::kRaw:
      return "raw";
    case ChunkSource::kCache:
      return "cache";
    case ChunkSource::kDb:
      return "db";
  }
  return "unknown";
}

ChunkTracer::ChunkTracer(size_t capacity) : capacity_(capacity) {
  ring_.resize(capacity_);
}

void ChunkTracer::SetLabel(std::string label) {
  MutexLock lock(mu_);
  label_ = std::move(label);
}

std::string ChunkTracer::label() const {
  MutexLock lock(mu_);
  return label_;
}

void ChunkTracer::Record(const TraceEvent& event) {
  if (capacity_ == 0) return;
  MutexLock lock(mu_);
  ring_[next_ % capacity_] = event;
  ++next_;
}

void ChunkTracer::RecordSpan(TraceStage stage, ChunkSource source,
                             uint64_t chunk_index, int64_t start_nanos,
                             int64_t dur_nanos) {
  if (capacity_ == 0) return;
  TraceEvent event;
  event.stage = stage;
  event.source = source;
  event.chunk_index = chunk_index;
  event.tid = CurrentThreadId();
  event.start_nanos = start_nanos;
  event.dur_nanos = dur_nanos;
  Record(event);
}

void ChunkTracer::RecordInstant(TraceStage stage, uint64_t chunk_index,
                                const Clock* clock) {
  RecordSpan(stage, ChunkSource::kRaw, chunk_index, clock->NowNanos(), 0);
}

std::vector<TraceEvent> ChunkTracer::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<TraceEvent> out;
  const uint64_t stored = std::min<uint64_t>(next_, capacity_);
  out.reserve(stored);
  const uint64_t begin = next_ - stored;
  for (uint64_t i = begin; i < next_; ++i) {
    out.push_back(ring_[i % capacity_]);
  }
  return out;
}

uint64_t ChunkTracer::recorded() const {
  MutexLock lock(mu_);
  return next_;
}

uint64_t ChunkTracer::dropped() const {
  MutexLock lock(mu_);
  return next_ > capacity_ ? next_ - capacity_ : 0;
}

void ChunkTracer::Clear() {
  MutexLock lock(mu_);
  next_ = 0;
}

std::string ChunkTracer::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  int64_t epoch = 0;
  for (const TraceEvent& e : events) {
    if (epoch == 0 || e.start_nanos < epoch) epoch = e.start_nanos;
  }
  std::string out = "[";
  bool first = true;
  const std::string name = label();
  if (!name.empty()) {
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":"
           "{\"name\":\"" +
           JsonEscape(name) + "\"}}";
    first = false;
  }
  for (const TraceEvent& e : events) {
    if (!first) out += ",\n";
    first = false;
    const bool instant = e.stage >= TraceStage::kSpeculativeTrigger;
    out += "{\"name\":\"";
    out += TraceStageName(e.stage);
    out += "\",\"cat\":\"scanraw\",\"ph\":\"";
    out += instant ? "i" : "X";
    out += "\",\"ts\":" + std::to_string((e.start_nanos - epoch) / 1000);
    if (!instant) {
      out += ",\"dur\":" + std::to_string(e.dur_nanos / 1000);
    } else {
      out += ",\"s\":\"p\"";
    }
    out += ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    out += ",\"args\":{\"chunk\":" + std::to_string(e.chunk_index);
    out += ",\"source\":\"";
    out += ChunkSourceName(e.source);
    out += "\"}}";
  }
  out += "]\n";
  return out;
}

}  // namespace obs
}  // namespace scanraw
