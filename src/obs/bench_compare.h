// Perf-regression gate: parse two BENCH_<name>.json artifacts (written by
// bench::BenchJsonWriter) and diff every numeric cell, matching rows by
// their first-column key. A cell regresses when the candidate value exceeds
// the baseline by more than the threshold percentage — bench cells are
// times/costs, so larger is worse. The tools/bench_compare binary wraps
// this with file I/O and a nonzero exit on regression; CI runs it as the
// first perf gate.
#ifndef SCANRAW_OBS_BENCH_COMPARE_H_
#define SCANRAW_OBS_BENCH_COMPARE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace scanraw {
namespace obs {

// One parsed bench artifact: the table the bench printed.
struct BenchTable {
  std::string name;  // "bench" field
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
};

// Parses the {"bench":...,"headers":[...],"rows":[[...]],...} artifact.
// Extra top-level members (nested tables, metrics dumps) are skipped.
Result<BenchTable> ParseBenchJson(std::string_view json);

// One compared numeric cell.
struct BenchDelta {
  std::string row_key;  // first column of the row
  std::string column;   // header of the cell
  double baseline = 0;
  double candidate = 0;
  double delta_pct = 0;  // 100 * (candidate - baseline) / baseline
  bool regressed = false;
};

struct BenchComparison {
  std::vector<BenchDelta> deltas;
  // Rows/columns present in only one artifact (named for the report).
  std::vector<std::string> unmatched;

  bool has_regression() const {
    for (const BenchDelta& d : deltas) {
      if (d.regressed) return true;
    }
    return false;
  }

  // Aligned diff, worst regressions first.
  std::string ToText() const;
};

// Diffs `candidate` against `baseline` with a regression threshold in
// percent. Cells that do not parse as numbers are ignored; rows are matched
// by first-column key, columns by header name.
BenchComparison CompareBenchTables(const BenchTable& baseline,
                                   const BenchTable& candidate,
                                   double threshold_pct);

}  // namespace obs
}  // namespace scanraw

#endif  // SCANRAW_OBS_BENCH_COMPARE_H_
