#include "obs/explain.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace scanraw {
namespace obs {

namespace {

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

std::string U64(uint64_t v) {
  return std::to_string(static_cast<unsigned long long>(v));
}

}  // namespace

void ExplainReport::FillFromProfile(const SpanProfiler::Report& report) {
  wall_seconds = static_cast<double>(report.wall_nanos) * 1e-9;
  threads_accounted = report.distinct_threads;
  busy_seconds_total = static_cast<double>(report.busy_nanos_total) * 1e-9;
  blocked_seconds_total =
      static_cast<double>(report.blocked_nanos_total) * 1e-9;
  idle_seconds_total =
      std::max(0.0, wall_seconds * static_cast<double>(threads_accounted) -
                        busy_seconds_total - blocked_seconds_total);
  critical_stage = std::string(QueryStageName(report.critical_stage));
  critical_seconds = static_cast<double>(report.critical_covered_nanos) * 1e-9;
  critical_fraction = report.critical_fraction;
  spans_dropped = report.spans_dropped;

  stages.clear();
  for (size_t s = 0; s < kNumQueryStages; ++s) {
    const SpanProfiler::StageStats& st = report.stages[s];
    if (st.spans == 0) continue;
    ExplainStage stage;
    stage.name = std::string(QueryStageName(static_cast<QueryStage>(s)));
    stage.busy_seconds = static_cast<double>(st.busy_nanos) * 1e-9;
    stage.covered_seconds = static_cast<double>(st.covered_nanos) * 1e-9;
    stage.spans = st.spans;
    stage.threads = st.threads;
    stage.is_wait = QueryStageIsWait(static_cast<QueryStage>(s));
    stages.push_back(std::move(stage));
  }
}

std::string ExplainReport::ToText() const {
  std::string out;
  out += "EXPLAIN ANALYZE  table=" + table + "  policy=" + policy + "\n";
  out += "  wall " + Fmt("%.4f", wall_seconds) + " s, " +
         std::to_string(workers) + " workers, " +
         std::to_string(threads_accounted) + " threads accounted\n";

  // Stage table.
  char line[200];
  std::snprintf(line, sizeof(line), "  %-14s %10s %10s %7s %8s %7s\n",
                "stage", "busy(s)", "wall(s)", "spans", "threads", "share");
  out += line;
  for (const ExplainStage& s : stages) {
    const double share =
        wall_seconds > 0 ? 100.0 * s.covered_seconds / wall_seconds : 0.0;
    std::snprintf(line, sizeof(line),
                  "  %-14s %10.4f %10.4f %7llu %8zu %6.1f%%%s\n",
                  s.name.c_str(), s.busy_seconds, s.covered_seconds,
                  static_cast<unsigned long long>(s.spans), s.threads, share,
                  s.is_wait ? "  (blocked)" : "");
    out += line;
  }
  out += "  accounting: busy " + Fmt("%.4f", busy_seconds_total) +
         " s + blocked " + Fmt("%.4f", blocked_seconds_total) + " s + idle " +
         Fmt("%.4f", idle_seconds_total) + " s = wall x threads\n";
  out += "  critical path: " + critical_stage + " (" +
         Fmt("%.4f", critical_seconds) + " s, " +
         Fmt("%.1f", 100.0 * critical_fraction) + "% of wall)\n";
  out += "  chunks: cache=" + U64(chunks_from_cache) +
         " db=" + U64(chunks_from_db) + " raw=" + U64(chunks_from_raw) +
         " skipped=" + U64(chunks_skipped) +
         " written=" + U64(chunks_written) + "\n";
  out += "  speculative: triggers=" + U64(speculative_triggers) +
         " read-blocked=" + U64(read_blocked_events) +
         " bytes-written=" + U64(bytes_written) + " paid-off=" +
         (speculation_paid_off ? "yes" : "no") + "\n";
  if (bytes_written > 0 || advisor_used) {
    out += "  write budget: useful-bytes=" + U64(useful_bytes_written) +
           " efficiency=" + Fmt("%.1f", 100.0 * WriteEfficiency()) + "%\n";
  }
  out += "  tokenize: ranges=" + U64(tokenize_ranges) +
         " misspeculations=" + U64(tokenize_misspeculations) +
         " repair-bytes=" + U64(tokenize_repair_bytes) +
         " bytes=" + U64(bytes_tokenized) + "\n";
  if (advisor_used) {
    out += "  " + (advisor_note.empty() ? std::string("advisor: (no note)")
                                        : advisor_note) +
           "\n";
  }
  out += "  chunk cache: hits=" + U64(cache_hits) +
         " misses=" + U64(cache_misses) + " rate=" +
         Fmt("%.1f", 100.0 * HitRate(cache_hits, cache_misses)) + "%\n";
  out += "  positional map: hits=" + U64(posmap_hits) +
         " misses=" + U64(posmap_misses) +
         " posmap-disk=" + U64(posmap_disk_hits) + " rate=" +
         Fmt("%.1f", 100.0 * HitRate(posmap_hits, posmap_misses)) + "%\n";
  out += "  loaded: " + Fmt("%.1f", 100.0 * loaded_fraction_before) +
         "% -> " + Fmt("%.1f", 100.0 * loaded_fraction_after) + "%\n";
  if (spans_dropped > 0) {
    out += "  (" + U64(spans_dropped) +
           " spans dropped by the profiler cap; busy totals still include "
           "them)\n";
  }
  return out;
}

std::string ExplainReport::ToJson() const {
  std::string out = "{";
  out += "\"table\":\"" + JsonEscape(table) + "\"";
  out += ",\"policy\":\"" + JsonEscape(policy) + "\"";
  out += ",\"wall_seconds\":" + Fmt("%.9g", wall_seconds);
  out += ",\"workers\":" + std::to_string(workers);
  out += ",\"threads_accounted\":" + std::to_string(threads_accounted);
  out += ",\"stages\":[";
  bool first = true;
  for (const ExplainStage& s : stages) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(s.name) + "\"";
    out += ",\"busy_seconds\":" + Fmt("%.9g", s.busy_seconds);
    out += ",\"covered_seconds\":" + Fmt("%.9g", s.covered_seconds);
    out += ",\"spans\":" + U64(s.spans);
    out += ",\"threads\":" + std::to_string(s.threads);
    out += ",\"is_wait\":" + std::string(s.is_wait ? "true" : "false");
    out += "}";
  }
  out += "]";
  out += ",\"critical_path\":{\"stage\":\"" + JsonEscape(critical_stage) +
         "\",\"covered_seconds\":" + Fmt("%.9g", critical_seconds) +
         ",\"fraction_of_wall\":" + Fmt("%.9g", critical_fraction) + "}";
  out += ",\"busy_seconds_total\":" + Fmt("%.9g", busy_seconds_total);
  out += ",\"blocked_seconds_total\":" + Fmt("%.9g", blocked_seconds_total);
  out += ",\"idle_seconds_total\":" + Fmt("%.9g", idle_seconds_total);
  out += ",\"chunks\":{\"from_cache\":" + U64(chunks_from_cache) +
         ",\"from_db\":" + U64(chunks_from_db) +
         ",\"from_raw\":" + U64(chunks_from_raw) +
         ",\"skipped\":" + U64(chunks_skipped) +
         ",\"written\":" + U64(chunks_written) + "}";
  out += ",\"speculative\":{\"triggers\":" + U64(speculative_triggers) +
         ",\"read_blocked_events\":" + U64(read_blocked_events) +
         ",\"bytes_written\":" + U64(bytes_written) +
         ",\"useful_bytes_written\":" + U64(useful_bytes_written) +
         ",\"write_efficiency\":" + Fmt("%.9g", WriteEfficiency()) +
         ",\"paid_off\":" + (speculation_paid_off ? "true" : "false") + "}";
  out += ",\"tokenize\":{\"ranges\":" + U64(tokenize_ranges) +
         ",\"misspeculations\":" + U64(tokenize_misspeculations) +
         ",\"repair_bytes\":" + U64(tokenize_repair_bytes) +
         ",\"bytes\":" + U64(bytes_tokenized) + "}";
  out += ",\"advisor\":{\"used\":" +
         std::string(advisor_used ? "true" : "false") + ",\"note\":\"" +
         JsonEscape(advisor_note) + "\"}";
  out += ",\"chunk_cache\":{\"hits\":" + U64(cache_hits) +
         ",\"misses\":" + U64(cache_misses) + ",\"hit_rate\":" +
         Fmt("%.9g", HitRate(cache_hits, cache_misses)) + "}";
  out += ",\"positional_map\":{\"hits\":" + U64(posmap_hits) +
         ",\"misses\":" + U64(posmap_misses) +
         ",\"disk_hits\":" + U64(posmap_disk_hits) + ",\"hit_rate\":" +
         Fmt("%.9g", HitRate(posmap_hits, posmap_misses)) + "}";
  out += ",\"loaded_fraction_before\":" + Fmt("%.9g", loaded_fraction_before);
  out += ",\"loaded_fraction_after\":" + Fmt("%.9g", loaded_fraction_after);
  out += ",\"spans_dropped\":" + U64(spans_dropped);
  out += "}";
  return out;
}

}  // namespace obs
}  // namespace scanraw
