// Per-stage liveness heartbeats for the stall watchdog. Each pipeline stage
// (READ, TOKENIZE, PARSE, WRITE, plus the DiskArbiter's blocking waits)
// ticks a relaxed atomic counter whenever it makes progress and marks
// itself active while it has work in flight. The watchdog samples the
// counters from its own thread: a stage that is active but whose beat count
// stops moving for a whole window is stalled. Header-only and dependency
// free so both the io layer (DiskArbiter) and the core pipeline can beat
// into the same instance without linking anything new; the hot path cost is
// one relaxed fetch_add per chunk-stage, far below the per-row work.
#ifndef SCANRAW_OBS_HEARTBEAT_H_
#define SCANRAW_OBS_HEARTBEAT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace scanraw {
namespace obs {

// Watchdog-visible stages. Coarser than QueryStage: the watchdog cares
// about which loop is wedged, not per-query attribution.
enum class HeartbeatStage : uint8_t {
  kRead = 0,
  kTokenize = 1,
  kParse = 2,
  kWrite = 3,
  kArbiter = 4,  // threads blocked acquiring the disk
};

inline constexpr size_t kNumHeartbeatStages = 5;

inline std::string_view HeartbeatStageName(HeartbeatStage stage) {
  switch (stage) {
    case HeartbeatStage::kRead:
      return "READ";
    case HeartbeatStage::kTokenize:
      return "TOKENIZE";
    case HeartbeatStage::kParse:
      return "PARSE";
    case HeartbeatStage::kWrite:
      return "WRITE";
    case HeartbeatStage::kArbiter:
      return "ARBITER";
  }
  return "UNKNOWN";
}

// Shared heartbeat board. All operations are relaxed atomics: the watchdog
// tolerates slightly stale reads (it waits a whole window before alarming),
// and stages must never pay a fence for liveness accounting.
class StageHeartbeats {
 public:
  StageHeartbeats() = default;
  StageHeartbeats(const StageHeartbeats&) = delete;
  StageHeartbeats& operator=(const StageHeartbeats&) = delete;

  // A thread entered the stage (has work in flight). Counts as progress.
  void Enter(HeartbeatStage stage) {
    Slot& s = slot(stage);
    s.active.fetch_add(1, std::memory_order_relaxed);
    s.beats.fetch_add(1, std::memory_order_relaxed);
  }

  // The thread left the stage. Counts as progress (finishing is progress).
  void Leave(HeartbeatStage stage) {
    Slot& s = slot(stage);
    s.beats.fetch_add(1, std::memory_order_relaxed);
    s.active.fetch_sub(1, std::memory_order_relaxed);
  }

  // The stage made forward progress (consumed a chunk, wrote a buffer, ...).
  void Beat(HeartbeatStage stage) {
    slot(stage).beats.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t beats(HeartbeatStage stage) const {
    return slot(stage).beats.load(std::memory_order_relaxed);
  }
  // Number of threads currently inside the stage.
  int64_t active(HeartbeatStage stage) const {
    return slot(stage).active.load(std::memory_order_relaxed);
  }

  // RAII Enter/Leave. Null-safe so call sites need no telemetry guard.
  class Scope {
   public:
    Scope(StageHeartbeats* hb, HeartbeatStage stage) : hb_(hb), stage_(stage) {
      if (hb_ != nullptr) hb_->Enter(stage_);
    }
    ~Scope() {
      if (hb_ != nullptr) hb_->Leave(stage_);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    StageHeartbeats* hb_;
    HeartbeatStage stage_;
  };

 private:
  struct Slot {
    std::atomic<uint64_t> beats{0};
    std::atomic<int64_t> active{0};
  };

  Slot& slot(HeartbeatStage stage) {
    return slots_[static_cast<size_t>(stage)];
  }
  const Slot& slot(HeartbeatStage stage) const {
    return slots_[static_cast<size_t>(stage)];
  }

  Slot slots_[kNumHeartbeatStages];
};

}  // namespace obs
}  // namespace scanraw

#endif  // SCANRAW_OBS_HEARTBEAT_H_
