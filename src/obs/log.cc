#include "obs/log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/clock.h"
#include "io/file.h"
#include "obs/metrics.h"  // JsonEscape

namespace scanraw {
namespace obs {

namespace {

constexpr int64_t kMicrosPerToken = 1'000'000;

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "UNKNOWN";
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower += static_cast<char>(
        c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarn;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else if (lower == "off" || lower == "none") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

Logger::Logger() : threshold_(static_cast<int>(LogLevel::kInfo)) {
  const char* env = std::getenv("SCANRAW_LOG_LEVEL");
  LogLevel level;
  if (env != nullptr && ParseLogLevel(env, &level)) {
    threshold_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
}

Logger::~Logger() { CloseJsonlSink(); }

Logger* Logger::Global() {
  // Leaked singleton: log sites may fire during static destruction.
  static Logger* logger = new Logger();
  return logger;
}

void Logger::SetRateLimit(double per_second, double burst) {
  MutexLock lock(mu_);
  rate_per_second_ = per_second;
  burst_ = burst < 1.0 ? 1.0 : burst;
}

Status Logger::OpenJsonlSink(const std::string& path) {
  auto file = WritableFile::OpenForAppend(path);
  if (!file.ok()) return file.status();
  MutexLock lock(mu_);
  sink_ = std::move(*file);
  return Status::OK();
}

void Logger::CloseJsonlSink() {
  std::unique_ptr<WritableFile> dying;
  {
    MutexLock lock(mu_);
    dying = std::move(sink_);
  }
  if (dying != nullptr) {
    // Best-effort flush; a failing log sink must not fail the caller.
    Status s = dying->Flush();
    (void)s;
  }
}

bool Logger::Admit(LogSite* site, LogLevel level, int64_t now_nanos,
                   uint64_t* newly_suppressed) {
  *newly_suppressed = 0;
  if (level == LogLevel::kError) return true;  // errors always pass
  if (rate_per_second_ <= 0.0) return true;    // limiting disabled
  // Token bucket in micro-tokens. Members are atomics for defined cross-
  // thread access, but all arithmetic happens under mu_.
  const int64_t cap_micros =
      static_cast<int64_t>(burst_ * kMicrosPerToken);
  int64_t tokens = site->tokens_micros.load(std::memory_order_relaxed);
  if (tokens < 0) {
    tokens = cap_micros;  // first use: full bucket
    site->last_refill_nanos.store(now_nanos, std::memory_order_relaxed);
  } else {
    const int64_t last =
        site->last_refill_nanos.load(std::memory_order_relaxed);
    const int64_t elapsed = now_nanos > last ? now_nanos - last : 0;
    const double refill =
        rate_per_second_ * static_cast<double>(elapsed) * 1e-9;
    tokens += static_cast<int64_t>(refill * kMicrosPerToken);
    if (tokens > cap_micros) tokens = cap_micros;
    site->last_refill_nanos.store(now_nanos, std::memory_order_relaxed);
  }
  if (tokens < kMicrosPerToken) {
    site->tokens_micros.store(tokens, std::memory_order_relaxed);
    *newly_suppressed =
        site->suppressed.fetch_add(1, std::memory_order_relaxed) + 1;
    return false;
  }
  site->tokens_micros.store(tokens - kMicrosPerToken,
                            std::memory_order_relaxed);
  return true;
}

void Logger::Log(LogSite* site, LogLevel level, const char* format, ...) {
  if (!ShouldLog(level) || level == LogLevel::kOff) return;

  char message[1024];
  va_list args;
  va_start(args, format);
  std::vsnprintf(message, sizeof(message), format, args);
  va_end(args);

  const int64_t now_nanos = RealClock::Instance()->NowNanos();

  // `suppressed` carries how many lines this site dropped since it last got
  // through, so bursts are visible in the stream that survives them.
  uint64_t suppressed_before = 0;
  {
    MutexLock lock(mu_);
    uint64_t newly_suppressed = 0;
    if (!Admit(site, level, now_nanos, &newly_suppressed)) {
      lines_suppressed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    suppressed_before = site->suppressed.exchange(0, std::memory_order_relaxed);

    if (sink_ != nullptr) {
      std::string line;
      line.reserve(256);
      line += "{\"ts_nanos\":" + std::to_string(now_nanos);
      line += ",\"level\":\"";
      line += LogLevelName(level);
      line += "\",\"file\":\"" + JsonEscape(site->file) + "\"";
      line += ",\"line\":" + std::to_string(site->line);
      if (suppressed_before > 0) {
        line += ",\"suppressed\":" + std::to_string(suppressed_before);
      }
      line += ",\"msg\":\"" + JsonEscape(message) + "\"}\n";
      // Best effort: a broken sink must not take the pipeline down, and
      // reporting it through the logger would recurse.
      Status append = sink_->Append(line);
      if (append.ok()) append = sink_->Flush();
      (void)append;
    }
  }

  if (stderr_enabled_.load(std::memory_order_relaxed)) {
    // The one sanctioned direct stderr write in src/ (lint-exempt): this is
    // the logger's terminal sink.
    const char* base = std::strrchr(site->file, '/');
    base = base != nullptr ? base + 1 : site->file;
    if (suppressed_before > 0) {
      std::fprintf(stderr, "[%s %s:%d] (+%llu suppressed) %s\n",
                   std::string(LogLevelName(level)).c_str(), base,
                   site->line,
                   static_cast<unsigned long long>(suppressed_before),
                   message);
    } else {
      std::fprintf(stderr, "[%s %s:%d] %s\n",
                   std::string(LogLevelName(level)).c_str(), base,
                   site->line, message);
    }
  }
  lines_emitted_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace scanraw
