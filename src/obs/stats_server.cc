#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "obs/log.h"
#include "obs/telemetry.h"
#include "obs/watchdog.h"

namespace scanraw {
namespace obs {

namespace {

// Bound on a single HTTP request; anything longer is malformed.
constexpr size_t kMaxRequestBytes = 8192;
// Per-connection read patience; a scraper that stalls longer is dropped.
constexpr int kClientReadTimeoutMs = 2000;

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void WriteAll(int fd, const char* data, size_t length) {
  size_t sent = 0;
  while (sent < length) {
    const ssize_t n = ::write(fd, data + sent, length - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client went away; nothing to clean up but the fd
    }
    sent += static_cast<size_t>(n);
  }
}

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string out;
  out.reserve(body.size() + 160);
  out += "HTTP/1.0 " + std::to_string(code) + " " + reason + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

std::string PrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  if (out.empty()) out = "_";
  return out;
}

StatsServer::StatsServer(StatsServerOptions options)
    : options_(std::move(options)),
      start_nanos_(RealClock::Instance()->NowNanos()) {}

StatsServer::~StatsServer() { Stop(); }

Status StatsServer::Start() {
  if (options_.telemetry == nullptr) {
    return Status::InvalidArgument("stats server needs a Telemetry sink");
  }
  MutexLock lock(mu_);
  if (running_) return Status::OK();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("stats server socket: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("stats server bind to port " +
                           std::to_string(options_.port) + ": " +
                           std::strerror(err));
  }
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(std::string("stats server listen: ") +
                           std::strerror(err));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(std::string("stats server getsockname: ") +
                           std::strerror(err));
  }
  if (::pipe(wake_pipe_) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(std::string("stats server pipe: ") +
                           std::strerror(err));
  }

  listen_fd_ = fd;
  port_.store(ntohs(addr.sin_port), std::memory_order_relaxed);
  running_ = true;
  thread_ = std::thread([this] { AcceptLoop(); });
  LOG_INFO("stats server listening on 127.0.0.1:%d", port());
  return Status::OK();
}

void StatsServer::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    // One byte through the self-pipe unblocks poll() in the accept loop.
    const char byte = 'q';
    WriteAll(wake_pipe_[1], &byte, 1);
  }
  thread_.join();
  MutexLock lock(mu_);
  ::close(listen_fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  listen_fd_ = -1;
  wake_pipe_[0] = wake_pipe_[1] = -1;
  running_ = false;
}

void StatsServer::AcceptLoop() {
  int listen_fd, wake_fd;
  {
    MutexLock lock(mu_);
    listen_fd = listen_fd_;
    wake_fd = wake_pipe_[0];
  }
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd, POLLIN, 0};
    fds[1] = {wake_fd, POLLIN, 0};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // Stop() poked the pipe
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) continue;
    HandleConnection(client);
    ::close(client);
  }
}

void StatsServer::HandleConnection(int client_fd) {
  // Read until the end of the request head, a bound, or a timeout.
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n") == std::string::npos) {
    pollfd pfd = {client_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kClientReadTimeoutMs);
    if (ready <= 0) break;
    const ssize_t n = ::read(client_fd, buf, sizeof(buf));
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);

  const size_t eol = request.find("\r\n");
  std::string response;
  if (eol == std::string::npos) {
    response = HttpResponse(400, "Bad Request", "text/plain",
                            "malformed request\n");
  } else {
    response = RouteRequest(request.substr(0, eol));
  }
  WriteAll(client_fd, response.data(), response.size());
}

std::string StatsServer::RouteRequest(const std::string& request_line) {
  // "GET <path> HTTP/1.x" — anything else is malformed or unsupported.
  const size_t sp1 = request_line.find(' ');
  if (sp1 == std::string::npos) {
    return HttpResponse(400, "Bad Request", "text/plain",
                        "malformed request line\n");
  }
  const size_t sp2 = request_line.find(' ', sp1 + 1);
  const std::string method = request_line.substr(0, sp1);
  if (method != "GET") {
    return HttpResponse(405, "Method Not Allowed", "text/plain",
                        "only GET is supported\n");
  }
  std::string path = sp2 == std::string::npos
                         ? request_line.substr(sp1 + 1)
                         : request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (path == "/metrics") {
    return HttpResponse(200, "OK", "text/plain; version=0.0.4",
                        RenderMetrics());
  }
  if (path == "/statusz" || path == "/") {
    return HttpResponse(200, "OK", "text/plain", RenderStatusz());
  }
  if (path == "/healthz") {
    bool healthy = true;
    const std::string body = RenderHealthz(&healthy);
    return healthy ? HttpResponse(200, "OK", "text/plain", body)
                   : HttpResponse(503, "Service Unavailable", "text/plain",
                                  body);
  }
  return HttpResponse(404, "Not Found", "text/plain",
                      "unknown path; try /metrics, /statusz, /healthz\n");
}

std::string StatsServer::RenderMetrics() const {
  Telemetry* telemetry = options_.telemetry;
  // A scrape doubles as a sampling edge so rates work even when no probe
  // thread is running (respects the configured cadence).
  telemetry->timeseries().MaybeSample(RealClock::Instance()->NowNanos());

  const MetricsSnapshot snap = telemetry->metrics().Snapshot();
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& h : snap.histograms) {
    // Log-bucketed histograms export as summaries: the native buckets are
    // powers of two, not cumulative le-buckets.
    const std::string prom = PrometheusName(h.name);
    out += "# TYPE " + prom + " summary\n";
    out += prom + "{quantile=\"0.5\"} " + FormatDouble(h.p50) + "\n";
    out += prom + "{quantile=\"0.95\"} " + FormatDouble(h.p95) + "\n";
    out += prom + "{quantile=\"0.99\"} " + FormatDouble(h.p99) + "\n";
    out += prom + "_sum " + std::to_string(h.sum) + "\n";
    out += prom + "_count " + std::to_string(h.count) + "\n";
  }

  // Ring-derived trailing rates (the live half: lifetime totals above,
  // what-happened-lately here).
  const auto rows =
      telemetry->timeseries().Rates(options_.rate_window_nanos);
  for (const auto& row : rows) {
    if (row.kind != TimeSeries::Kind::kCounter) continue;
    const std::string prom = PrometheusName(row.name) + "_per_sec";
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " +
           FormatDouble(row.rate_defined ? row.rate_per_sec : 0.0) + "\n";
  }
  double hit_rate = 0.0;
  if (telemetry->timeseries().CacheHitRate(options_.rate_window_nanos,
                                           &hit_rate)) {
    out += "# TYPE scanraw_cache_hit_rate gauge\n";
    out += "scanraw_cache_hit_rate " + FormatDouble(hit_rate) + "\n";
  }

  // Stage liveness from the heartbeat board.
  out += "# TYPE scanraw_stage_active gauge\n";
  for (size_t i = 0; i < kNumHeartbeatStages; ++i) {
    const auto stage = static_cast<HeartbeatStage>(i);
    out += "scanraw_stage_active{stage=\"" +
           std::string(HeartbeatStageName(stage)) + "\"} " +
           std::to_string(telemetry->heartbeats().active(stage)) + "\n";
  }
  out += "# TYPE scanraw_stage_beats_total counter\n";
  for (size_t i = 0; i < kNumHeartbeatStages; ++i) {
    const auto stage = static_cast<HeartbeatStage>(i);
    out += "scanraw_stage_beats_total{stage=\"" +
           std::string(HeartbeatStageName(stage)) + "\"} " +
           std::to_string(telemetry->heartbeats().beats(stage)) + "\n";
  }

  if (options_.watchdog != nullptr) {
    out += "# TYPE scanraw_watchdog_stalls_total counter\n";
    out += "scanraw_watchdog_stalls_total " +
           std::to_string(options_.watchdog->stalls_detected()) + "\n";
  }
  return out;
}

std::string StatsServer::RenderStatusz() const {
  const int64_t now = RealClock::Instance()->NowNanos();
  std::string out;
  out.reserve(2048);
  out += "scanraw statusz\n";
  out += "build: " + options_.build_info + "\n";
  out += "uptime_seconds: " +
         FormatDouble(static_cast<double>(now - start_nanos_) * 1e-9) + "\n";
  out += "stats_requests_served: " + std::to_string(requests_served()) + "\n";

  if (options_.watchdog != nullptr) {
    out += "\nwatchdog: window_ms=" +
           std::to_string(options_.watchdog->window_ms()) +
           " stalls=" + std::to_string(options_.watchdog->stalls_detected()) +
           "\n";
    for (const auto& report : options_.watchdog->Reports()) {
      out += "  stall: stage=" +
             std::string(HeartbeatStageName(report.stage)) +
             " stalled_ms=" + std::to_string(report.stalled_ms) +
             " active=" + std::to_string(report.active) + "\n";
      if (!report.held_locks.empty()) {
        out += "  stall held locks:\n";
        for (size_t pos = 0; pos < report.held_locks.size();) {
          size_t eol = report.held_locks.find('\n', pos);
          if (eol == std::string::npos) eol = report.held_locks.size();
          out += "    " + report.held_locks.substr(pos, eol - pos) + "\n";
          pos = eol + 1;
        }
      }
    }
  }

  Telemetry* telemetry = options_.telemetry;
  out += "\nstage liveness (active threads / total beats):\n";
  for (size_t i = 0; i < kNumHeartbeatStages; ++i) {
    const auto stage = static_cast<HeartbeatStage>(i);
    out += "  " + std::string(HeartbeatStageName(stage)) + ": " +
           std::to_string(telemetry->heartbeats().active(stage)) + " / " +
           std::to_string(telemetry->heartbeats().beats(stage)) + "\n";
  }

  const auto rates =
      telemetry->timeseries().Rates(options_.rate_window_nanos);
  if (!rates.empty()) {
    out += "\ntrailing rates (window " +
           std::to_string(options_.rate_window_nanos / 1'000'000'000) +
           "s):\n";
    for (const auto& row : rates) {
      out += "  " + row.name + ": ";
      if (row.kind == TimeSeries::Kind::kCounter) {
        out += row.rate_defined ? FormatDouble(row.rate_per_sec) + "/s"
                                : std::string("(no window yet)");
        out += "  total=" + FormatDouble(row.latest);
      } else {
        out += FormatDouble(row.latest);
      }
      out += "\n";
    }
  }

  if (options_.statusz_section) {
    out += "\n";
    out += options_.statusz_section();
  }
  return out;
}

std::string StatsServer::RenderHealthz(bool* healthy) const {
  *healthy = options_.watchdog == nullptr ||
             options_.watchdog->stalls_detected() == 0;
  if (*healthy) return "ok\n";
  return "stalled: watchdog detected " +
         std::to_string(options_.watchdog->stalls_detected()) +
         " stall(s); see /statusz\n";
}

}  // namespace obs
}  // namespace scanraw
