#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace scanraw {
namespace obs {

namespace {

// Inclusive value range covered by bucket b (see Histogram docs).
void BucketBounds(size_t b, uint64_t* lo, uint64_t* hi) {
  if (b == 0) {
    *lo = 0;
    *hi = 0;
    return;
  }
  *lo = uint64_t{1} << (b - 1);
  *hi = (b == 64) ? UINT64_MAX : (uint64_t{1} << b) - 1;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void Histogram::Record(uint64_t value) {
  const size_t bucket = static_cast<size_t>(std::bit_width(value));
  buckets_[bucket < kNumBuckets ? bucket : kNumBuckets - 1].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::min() const {
  uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

double Histogram::Quantile(double q) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based.
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (cumulative + counts[b] >= target) {
      uint64_t lo, hi;
      BucketBounds(b, &lo, &hi);
      const double within =
          static_cast<double>(target - cumulative) /
          static_cast<double>(counts[b]);
      double estimate = static_cast<double>(lo) +
                        within * static_cast<double>(hi - lo);
      // Never report outside the observed range.
      estimate = std::max(estimate, static_cast<double>(min()));
      estimate = std::min(estimate, static_cast<double>(max()));
      return estimate;
    }
    cumulative += counts[b];
  }
  return static_cast<double>(max());
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.count = h->count();
    row.sum = h->sum();
    row.min = h->min();
    row.max = h->max();
    row.p50 = h->Quantile(0.50);
    row.p95 = h->Quantile(0.95);
    row.p99 = h->Quantile(0.99);
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [_, c] : counters_) c->Reset();
  for (auto& [_, g] : gauges_) g->Reset();
  for (auto& [_, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{";
    out += "\"count\":" + std::to_string(h->count());
    out += ",\"sum\":" + std::to_string(h->sum());
    out += ",\"min\":" + std::to_string(h->min());
    out += ",\"max\":" + std::to_string(h->max());
    out += ",\"mean\":" + FormatDouble(h->mean());
    out += ",\"p50\":" + FormatDouble(h->Quantile(0.50));
    out += ",\"p95\":" + FormatDouble(h->Quantile(0.95));
    out += ",\"p99\":" + FormatDouble(h->Quantile(0.99));
    out += "}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::ToText() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += name + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += name + " " + std::to_string(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += name + "{count=" + std::to_string(h->count()) +
           ",mean=" + FormatDouble(h->mean()) +
           ",p50=" + FormatDouble(h->Quantile(0.50)) +
           ",p95=" + FormatDouble(h->Quantile(0.95)) +
           ",p99=" + FormatDouble(h->Quantile(0.99)) +
           ",max=" + std::to_string(h->max()) + "}\n";
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace scanraw
