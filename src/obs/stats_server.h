// Embedded, dependency-free HTTP stats server: the live half of the
// observability stack. Where --metrics/--trace dump at process exit, this
// serves the same registry continuously so an operator (or Prometheus) can
// watch a long scan in flight:
//
//   /metrics  Prometheus text exposition (0.0.4) of every registry metric,
//             plus ring-derived trailing rates (rows/s, bytes/s, cache hit
//             rate) from the obs/timeseries.h rings.
//   /statusz  human-readable: build info, uptime, watchdog state, and a
//             caller-provided section (catalog + cache occupancy, active
//             queries with per-stage span state).
//   /healthz  200 "ok" while no stage has stalled; 503 once the watchdog
//             has fired (a supervisor's /quitz-style liveness probe).
//
// Plain blocking sockets on a dedicated thread: one accept loop, one
// request per connection, bounded request size. Scrapes read only relaxed
// atomics and per-structure snapshots — never a pipeline lock — so a
// scrape cannot stall a scan.
#ifndef SCANRAW_OBS_STATS_SERVER_H_
#define SCANRAW_OBS_STATS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace scanraw {
namespace obs {

class Telemetry;
class Watchdog;

struct StatsServerOptions {
  // TCP port to bind on 127.0.0.1. 0 picks an ephemeral port (see port()).
  int port = 0;
  // Metric source; required.
  Telemetry* telemetry = nullptr;
  // Optional: /healthz turns 503 and /statusz shows stall reports.
  Watchdog* watchdog = nullptr;
  // Extra /statusz section (catalog, cache occupancy, active queries).
  // Called on the server thread; must be self-synchronizing.
  std::function<std::string()> statusz_section;
  // Shown at the top of /statusz.
  std::string build_info = "scanraw";
  // Trailing window for ring-derived rates on /metrics.
  int64_t rate_window_nanos = 10'000'000'000;  // 10 s
};

class StatsServer {
 public:
  explicit StatsServer(StatsServerOptions options);
  ~StatsServer();
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  // Binds, listens, and starts the accept thread. Fails (IoError) when the
  // port is taken or telemetry is missing (InvalidArgument).
  Status Start() EXCLUDES(mu_);
  void Stop() EXCLUDES(mu_);  // idempotent; the destructor calls it

  // The bound port (resolves port=0 requests); 0 before Start.
  int port() const { return port_.load(std::memory_order_relaxed); }

  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  // Renderers, exposed so tests can validate output without a socket and
  // the CLI can reuse the exposition formatting.
  std::string RenderMetrics() const;
  std::string RenderStatusz() const;
  std::string RenderHealthz(bool* healthy) const;

 private:
  void AcceptLoop();
  void HandleConnection(int client_fd);
  std::string RouteRequest(const std::string& request_line);

  const StatsServerOptions options_;
  const int64_t start_nanos_;

  std::atomic<int> port_{0};
  std::atomic<uint64_t> requests_served_{0};

  mutable Mutex mu_{LockRank::kStatsServer, "StatsServer.mu"};
  std::thread thread_;
  bool running_ GUARDED_BY(mu_) = false;
  int listen_fd_ GUARDED_BY(mu_) = -1;
  int wake_pipe_[2] GUARDED_BY(mu_) = {-1, -1};
};

// Prometheus metric-name sanitizer: dots and any other character outside
// [a-zA-Z0-9_:] become '_'; a leading digit gains a '_' prefix.
std::string PrometheusName(std::string_view name);

}  // namespace obs
}  // namespace scanraw

#endif  // SCANRAW_OBS_STATS_SERVER_H_
