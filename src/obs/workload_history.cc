#include "obs/workload_history.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "io/file.h"

namespace scanraw {
namespace obs {

namespace {

constexpr std::string_view kHeader = "scanraw-history v1";

// Percent-escaping for table names so the line format stays whitespace
// delimited (same scheme as the catalog's name fields).
std::string EscapeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  char buf[8];
  for (char c : name) {
    if (c == '%' || c == ' ' || c == '\n' || c == '\r' || c == '\t') {
      std::snprintf(buf, sizeof(buf), "%%%02x",
                    static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string UnescapeName(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '%' && i + 2 < escaped.size()) {
      const int hi = std::isxdigit(static_cast<unsigned char>(escaped[i + 1]))
                         ? std::stoi(escaped.substr(i + 1, 2), nullptr, 16)
                         : -1;
      if (hi >= 0) {
        out += static_cast<char>(hi);
        i += 2;
        continue;
      }
    }
    out += escaped[i];
  }
  return out;
}

// Parses "key=value" into `out` when `token` starts with "key=".
bool KeyedU64(const std::string& token, std::string_view key, uint64_t* out) {
  if (token.size() <= key.size() + 1 ||
      token.compare(0, key.size(), key) != 0 || token[key.size()] != '=') {
    return false;
  }
  char* end = nullptr;
  const unsigned long long v =
      std::strtoull(token.c_str() + key.size() + 1, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

void WorkloadHistory::Observe(const QueryLogEvent& event) {
  MutexLock lock(mu_);
  if (event.seq != 0 && event.seq <= last_seq_) return;  // idempotent replay
  if (event.seq > last_seq_) last_seq_ = event.seq;
  ++events_observed_;
  if (event.table.empty()) return;
  TableUsage& table = tables_[event.table];
  table.last_seq = last_seq_;
  if (event.status != "ok") return;  // failed queries count for recency only
  ++table.queries;
  table.rows_scanned += event.rows_scanned;
  table.rows_matched += event.rows_matched;
  for (size_t c : event.columns) {
    ColumnUsage& col = table.columns[c];
    ++col.touches;
    col.last_seq = last_seq_;
  }
  for (size_t c : event.predicate_columns) {
    ColumnUsage& col = table.columns[c];
    ++col.predicates;
    col.last_seq = last_seq_;
  }
}

TableUsage WorkloadHistory::TableSnapshot(const std::string& table) const {
  MutexLock lock(mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? TableUsage{} : it->second;
}

std::vector<std::string> WorkloadHistory::Tables() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, usage] : tables_) out.push_back(name);
  return out;
}

uint64_t WorkloadHistory::DropTablesNotIn(const std::set<std::string>& keep) {
  MutexLock lock(mu_);
  uint64_t dropped = 0;
  for (auto it = tables_.begin(); it != tables_.end();) {
    if (keep.count(it->first) == 0) {
      it = tables_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

uint64_t WorkloadHistory::last_seq() const {
  MutexLock lock(mu_);
  return last_seq_;
}

uint64_t WorkloadHistory::events_observed() const {
  MutexLock lock(mu_);
  return events_observed_;
}

Status WorkloadHistory::SaveToFile(const std::string& path) const {
  std::string out(kHeader);
  out += "\n";
  {
    MutexLock lock(mu_);
    out += "meta last_seq=" + std::to_string(last_seq_) +
           " events=" + std::to_string(events_observed_) + "\n";
    for (const auto& [name, table] : tables_) {
      out += "table " + EscapeName(name) +
             " queries=" + std::to_string(table.queries) +
             " rows_scanned=" + std::to_string(table.rows_scanned) +
             " rows_matched=" + std::to_string(table.rows_matched) +
             " last_seq=" + std::to_string(table.last_seq) + "\n";
      for (const auto& [id, col] : table.columns) {
        out += "col " + EscapeName(name) + " " + std::to_string(id) +
               " touches=" + std::to_string(col.touches) +
               " predicates=" + std::to_string(col.predicates) +
               " last_seq=" + std::to_string(col.last_seq) + "\n";
      }
    }
  }
  return AtomicWriteFile(path, out);
}

Status WorkloadHistory::LoadFromFile(const std::string& path,
                                     LoadStats* stats) {
  std::string data;
  SCANRAW_ASSIGN_OR_RETURN(data, ReadFileToString(path));
  LoadStats local;
  std::map<std::string, TableUsage> tables;
  uint64_t last_seq = 0;
  uint64_t events = 0;

  std::istringstream lines(data);
  std::string line;
  bool first = true;
  // AtomicWriteFile makes a torn tail near-impossible, but the reader stays
  // tolerant anyway: a final unterminated line is dropped, not fatal.
  const bool ends_with_newline = !data.empty() && data.back() == '\n';
  std::vector<std::string> all_lines;
  while (std::getline(lines, line)) all_lines.push_back(line);
  if (!ends_with_newline && !all_lines.empty()) {
    all_lines.pop_back();
    local.torn_tail_dropped = true;
  }
  for (const std::string& l : all_lines) {
    if (first) {
      if (l != kHeader) {
        return Status::Corruption("workload history " + path +
                                  ": bad or unsupported header");
      }
      local.version = 1;
      first = false;
      continue;
    }
    std::istringstream fields(l);
    std::string kind;
    fields >> kind;
    if (kind == "meta") {
      std::string token;
      while (fields >> token) {
        KeyedU64(token, "last_seq", &last_seq) ||
            KeyedU64(token, "events", &events);
      }
    } else if (kind == "table") {
      std::string name;
      fields >> name;
      TableUsage& table = tables[UnescapeName(name)];
      std::string token;
      while (fields >> token) {
        KeyedU64(token, "queries", &table.queries) ||
            KeyedU64(token, "rows_scanned", &table.rows_scanned) ||
            KeyedU64(token, "rows_matched", &table.rows_matched) ||
            KeyedU64(token, "last_seq", &table.last_seq);
      }
      ++local.tables;
    } else if (kind == "col") {
      std::string name;
      size_t id = 0;
      fields >> name >> id;
      if (fields.fail()) {
        return Status::Corruption("workload history " + path +
                                  ": malformed col line");
      }
      ColumnUsage& col = tables[UnescapeName(name)].columns[id];
      std::string token;
      while (fields >> token) {
        KeyedU64(token, "touches", &col.touches) ||
            KeyedU64(token, "predicates", &col.predicates) ||
            KeyedU64(token, "last_seq", &col.last_seq);
      }
      ++local.columns;
    } else {
      return Status::Corruption("workload history " + path +
                                ": unknown record '" + kind + "'");
    }
  }
  if (first) {
    return Status::Corruption("workload history " + path + ": empty file");
  }

  MutexLock lock(mu_);
  tables_ = std::move(tables);
  last_seq_ = last_seq;
  events_observed_ = events;
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Result<uint64_t> WorkloadHistory::ReplayLog(const std::string& log_path) {
  QueryLog::LoadStats stats;
  std::vector<QueryLogEvent> events;
  SCANRAW_ASSIGN_OR_RETURN(events, QueryLog::ReadAll(log_path, &stats));
  const uint64_t floor = last_seq();
  uint64_t folded = 0;
  for (const QueryLogEvent& event : events) {
    if (event.seq <= floor) continue;
    Observe(event);
    ++folded;
  }
  return folded;
}

std::string WorkloadHistory::Summary() const {
  MutexLock lock(mu_);
  std::string out = "workload history: " + std::to_string(tables_.size()) +
                    " tables, " + std::to_string(events_observed_) +
                    " events, last seq " + std::to_string(last_seq_) + "\n";
  char line[256];
  for (const auto& [name, table] : tables_) {
    std::snprintf(line, sizeof(line),
                  "  %s: %llu queries, selectivity %.3f\n", name.c_str(),
                  static_cast<unsigned long long>(table.queries),
                  table.Selectivity());
    out += line;
    for (const auto& [id, col] : table.columns) {
      std::snprintf(line, sizeof(line),
                    "    col %zu: touches=%llu predicates=%llu last_seq=%llu\n",
                    id, static_cast<unsigned long long>(col.touches),
                    static_cast<unsigned long long>(col.predicates),
                    static_cast<unsigned long long>(col.last_seq));
      out += line;
    }
  }
  return out;
}

}  // namespace obs
}  // namespace scanraw
