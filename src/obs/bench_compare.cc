#include "obs/bench_compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace scanraw {
namespace obs {

namespace {

// Minimal cursor JSON reader — just enough for the bench artifact schema:
// one top-level object whose members are strings, numbers, arrays of
// strings, arrays of arrays of strings, or nested objects (skipped).
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view json) : s_(json) {}

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= s_.size();
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipWs();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  Result<std::string> ParseString() {
    SkipWs();
    if (!Consume('"')) return Status::InvalidArgument("expected string");
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        char e = s_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > s_.size()) {
              return Status::InvalidArgument("truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Status::InvalidArgument("bad \\u escape");
              }
            }
            // Bench cells are ASCII; keep non-ASCII as '?' rather than
            // carrying a UTF-8 encoder for a diff tool.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return Status::InvalidArgument("bad escape");
        }
      } else {
        out += c;
      }
    }
    return Status::InvalidArgument("unterminated string");
  }

  // Skips any JSON value (used for artifact members we do not diff).
  Status SkipValue() {
    SkipWs();
    if (pos_ >= s_.size()) return Status::InvalidArgument("truncated json");
    char c = s_[pos_];
    if (c == '"') {
      auto str = ParseString();
      return str.ok() ? Status::OK() : str.status();
    }
    if (c == '{' || c == '[') {
      const char open = c;
      const char close = open == '{' ? '}' : ']';
      ++pos_;
      int depth = 1;
      bool in_string = false;
      while (pos_ < s_.size() && depth > 0) {
        c = s_[pos_++];
        if (in_string) {
          if (c == '\\') {
            if (pos_ < s_.size()) ++pos_;
          } else if (c == '"') {
            in_string = false;
          }
        } else if (c == '"') {
          in_string = true;
        } else if (c == open) {
          ++depth;
        } else if (c == close) {
          --depth;
        }
      }
      return depth == 0 ? Status::OK()
                        : Status::InvalidArgument("unbalanced json");
    }
    // Number / true / false / null.
    while (pos_ < s_.size() && s_[pos_] != ',' && s_[pos_] != '}' &&
           s_[pos_] != ']') {
      ++pos_;
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ParseStringArray() {
    if (!Consume('[')) return Status::InvalidArgument("expected array");
    std::vector<std::string> out;
    if (Consume(']')) return out;
    while (true) {
      std::string item;
      SCANRAW_ASSIGN_OR_RETURN(item, ParseString());
      out.push_back(std::move(item));
      if (Consume(']')) return out;
      if (!Consume(',')) return Status::InvalidArgument("expected , or ]");
    }
  }

 private:
  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

Result<BenchTable> ParseBenchJson(std::string_view json) {
  JsonCursor cur(json);
  if (!cur.Consume('{')) {
    return Status::InvalidArgument("bench artifact: expected top-level object");
  }
  BenchTable table;
  if (cur.Consume('}')) return table;
  while (true) {
    std::string key;
    SCANRAW_ASSIGN_OR_RETURN(key, cur.ParseString());
    if (!cur.Consume(':')) {
      return Status::InvalidArgument("bench artifact: expected ':' after \"" +
                                     key + "\"");
    }
    if (key == "bench") {
      SCANRAW_ASSIGN_OR_RETURN(table.name, cur.ParseString());
    } else if (key == "headers") {
      SCANRAW_ASSIGN_OR_RETURN(table.headers, cur.ParseStringArray());
    } else if (key == "rows") {
      if (!cur.Consume('[')) {
        return Status::InvalidArgument("bench artifact: rows must be an array");
      }
      if (!cur.Consume(']')) {
        while (true) {
          std::vector<std::string> row;
          SCANRAW_ASSIGN_OR_RETURN(row, cur.ParseStringArray());
          table.rows.push_back(std::move(row));
          if (cur.Consume(']')) break;
          if (!cur.Consume(',')) {
            return Status::InvalidArgument("bench artifact: bad rows array");
          }
        }
      }
    } else {
      SCANRAW_RETURN_IF_ERROR(cur.SkipValue());
    }
    if (cur.Consume('}')) break;
    if (!cur.Consume(',')) {
      return Status::InvalidArgument("bench artifact: expected , or }");
    }
  }
  if (table.headers.empty()) {
    return Status::InvalidArgument("bench artifact: no headers");
  }
  return table;
}

namespace {

bool ParseNumber(const std::string& cell, double* out) {
  if (cell.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end == cell.c_str() || end == nullptr) return false;
  // Reject trailing junk other than a unit-free suffix of spaces or '%'.
  while (*end == ' ' || *end == '%') ++end;
  if (*end != '\0') return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

}  // namespace

BenchComparison CompareBenchTables(const BenchTable& baseline,
                                   const BenchTable& candidate,
                                   double threshold_pct) {
  BenchComparison cmp;

  std::map<std::string, const std::vector<std::string>*> candidate_rows;
  for (const auto& row : candidate.rows) {
    if (!row.empty()) candidate_rows[row[0]] = &row;
  }
  std::map<std::string, size_t> candidate_cols;
  for (size_t i = 0; i < candidate.headers.size(); ++i) {
    candidate_cols[candidate.headers[i]] = i;
  }

  for (const auto& row : baseline.rows) {
    if (row.empty()) continue;
    auto row_it = candidate_rows.find(row[0]);
    if (row_it == candidate_rows.end()) {
      cmp.unmatched.push_back("row \"" + row[0] + "\" missing in candidate");
      continue;
    }
    const std::vector<std::string>& cand_row = *row_it->second;
    candidate_rows.erase(row_it);
    for (size_t c = 1; c < row.size() && c < baseline.headers.size(); ++c) {
      auto col_it = candidate_cols.find(baseline.headers[c]);
      if (col_it == candidate_cols.end() ||
          col_it->second >= cand_row.size()) {
        continue;
      }
      double base = 0, cand = 0;
      if (!ParseNumber(row[c], &base) ||
          !ParseNumber(cand_row[col_it->second], &cand)) {
        continue;
      }
      BenchDelta delta;
      delta.row_key = row[0];
      delta.column = baseline.headers[c];
      delta.baseline = base;
      delta.candidate = cand;
      if (base != 0.0) {
        delta.delta_pct = 100.0 * (cand - base) / base;
      } else {
        delta.delta_pct = cand == 0.0 ? 0.0 : 100.0;
      }
      delta.regressed = delta.delta_pct > threshold_pct;
      cmp.deltas.push_back(std::move(delta));
    }
  }
  for (const auto& [key, _] : candidate_rows) {
    cmp.unmatched.push_back("row \"" + key + "\" missing in baseline");
  }
  std::sort(cmp.deltas.begin(), cmp.deltas.end(),
            [](const BenchDelta& a, const BenchDelta& b) {
              return a.delta_pct > b.delta_pct;
            });
  return cmp;
}

std::string BenchComparison::ToText() const {
  std::string out;
  char line[200];
  std::snprintf(line, sizeof(line), "%-16s %-16s %12s %12s %9s\n", "row",
                "column", "baseline", "candidate", "delta");
  out += line;
  for (const BenchDelta& d : deltas) {
    std::snprintf(line, sizeof(line), "%-16s %-16s %12.4g %12.4g %+8.1f%%%s\n",
                  d.row_key.c_str(), d.column.c_str(), d.baseline, d.candidate,
                  d.delta_pct, d.regressed ? "  REGRESSION" : "");
    out += line;
  }
  for (const std::string& u : unmatched) {
    out += "! " + u + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace scanraw
