// TextChunk: the READ stage's unit of work — a horizontal slice of the raw
// file holding complete lines (§3.1: "The file is logically split into
// horizontal portions containing a sequence of lines, i.e., chunks").
#ifndef SCANRAW_FORMAT_TEXT_CHUNK_H_
#define SCANRAW_FORMAT_TEXT_CHUNK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/byte_scan.h"

namespace scanraw {

struct TextChunk {
  // Position of the chunk within the raw file (0-based, stable across
  // queries — the catalog keys chunk metadata by this index).
  uint64_t chunk_index = 0;
  // Byte offset of the chunk's first line in the raw file.
  uint64_t file_offset = 0;
  // Raw bytes: complete lines, each terminated by '\n' (except possibly the
  // last line of the file).
  std::string data;
  // Start offset of each line within `data`.
  std::vector<uint32_t> line_starts;

  size_t num_rows() const { return line_starts.size(); }

  // Line `i` without its trailing newline.
  std::string_view line(size_t i) const {
    const uint32_t start = line_starts[i];
    uint32_t end = (i + 1 < line_starts.size())
                       ? line_starts[i + 1]
                       : static_cast<uint32_t>(data.size());
    while (end > start && (data[end - 1] == '\n' || data[end - 1] == '\r')) {
      --end;
    }
    return std::string_view(data).substr(start, end - start);
  }
};

// Fills `starts` with the line-start offsets of `data` (cleared first): 0,
// then one past every '\n' that is not the final byte. Bulk scan — the whole
// buffer is covered in one multi-match pass instead of one find per line.
inline void FindLineStarts(std::string_view data,
                           std::vector<uint32_t>* starts) {
  starts->clear();
  if (data.empty()) return;
  starts->push_back(0);
  bytescan::FindAll(data.data(), 0, data.size(), '\n', data.size(),
                    /*bias=*/1, starts);
  // A newline as the final byte terminates the last line without opening a
  // new one.
  if (starts->back() == data.size()) starts->pop_back();
}

// Builds a TextChunk from raw bytes plus line starts the caller already
// located (the READ chunker finds them while sizing the chunk — handing
// them over avoids scanning the same bytes twice).
inline TextChunk MakeTextChunk(std::string data,
                               std::vector<uint32_t> line_starts,
                               uint64_t chunk_index = 0,
                               uint64_t file_offset = 0) {
  TextChunk chunk;
  chunk.chunk_index = chunk_index;
  chunk.file_offset = file_offset;
  chunk.data = std::move(data);
  chunk.line_starts = std::move(line_starts);
  return chunk;
}

// Builds a TextChunk from raw bytes by locating line starts. Used by READ
// and by tests; `data` should end at a line boundary (a trailing newline is
// optional on the final line).
inline TextChunk MakeTextChunk(std::string data, uint64_t chunk_index = 0,
                               uint64_t file_offset = 0) {
  std::vector<uint32_t> starts;
  FindLineStarts(data, &starts);
  return MakeTextChunk(std::move(data), std::move(starts), chunk_index,
                       file_offset);
}

}  // namespace scanraw

#endif  // SCANRAW_FORMAT_TEXT_CHUNK_H_
