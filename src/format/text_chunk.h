// TextChunk: the READ stage's unit of work — a horizontal slice of the raw
// file holding complete lines (§3.1: "The file is logically split into
// horizontal portions containing a sequence of lines, i.e., chunks").
#ifndef SCANRAW_FORMAT_TEXT_CHUNK_H_
#define SCANRAW_FORMAT_TEXT_CHUNK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace scanraw {

struct TextChunk {
  // Position of the chunk within the raw file (0-based, stable across
  // queries — the catalog keys chunk metadata by this index).
  uint64_t chunk_index = 0;
  // Byte offset of the chunk's first line in the raw file.
  uint64_t file_offset = 0;
  // Raw bytes: complete lines, each terminated by '\n' (except possibly the
  // last line of the file).
  std::string data;
  // Start offset of each line within `data`.
  std::vector<uint32_t> line_starts;

  size_t num_rows() const { return line_starts.size(); }

  // Line `i` without its trailing newline.
  std::string_view line(size_t i) const {
    const uint32_t start = line_starts[i];
    uint32_t end = (i + 1 < line_starts.size())
                       ? line_starts[i + 1]
                       : static_cast<uint32_t>(data.size());
    while (end > start && (data[end - 1] == '\n' || data[end - 1] == '\r')) {
      --end;
    }
    return std::string_view(data).substr(start, end - start);
  }
};

// Builds a TextChunk from raw bytes by locating line starts. Used by READ
// and by tests; `data` should end at a line boundary (a trailing newline is
// optional on the final line).
inline TextChunk MakeTextChunk(std::string data, uint64_t chunk_index = 0,
                               uint64_t file_offset = 0) {
  TextChunk chunk;
  chunk.chunk_index = chunk_index;
  chunk.file_offset = file_offset;
  chunk.data = std::move(data);
  const std::string& d = chunk.data;
  size_t pos = 0;
  while (pos < d.size()) {
    chunk.line_starts.push_back(static_cast<uint32_t>(pos));
    const size_t nl = d.find('\n', pos);
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  return chunk;
}

}  // namespace scanraw

#endif  // SCANRAW_FORMAT_TEXT_CHUNK_H_
