#include "format/json_tokenizer.h"

#include <map>

#include "common/byte_scan.h"
#include "common/string_util.h"

namespace scanraw {

namespace {

// Cursor over one JSON line.
struct Cursor {
  const char* data;
  uint32_t pos;
  uint32_t end;

  bool AtEnd() const { return pos >= end; }
  char Peek() const { return data[pos]; }
  void SkipSpace() {
    while (pos < end && (data[pos] == ' ' || data[pos] == '\t')) ++pos;
  }

  // Bulk scan to the closing quote of a string, stopping early on an escape
  // (escapes are unsupported; the caller turns them into an error). Returns
  // false when the line ends before either byte shows up.
  bool SeekQuoteOrEscape() {
    const size_t hit = bytescan::FindEither(data, pos, end, '"', '\\');
    if (hit == bytescan::kNpos) {
      pos = end;
      return false;
    }
    pos = static_cast<uint32_t>(hit);
    return true;
  }

  // Bulk scan past an unquoted value: stops at the first of ',', '}', or
  // inline whitespace, or the line end.
  void SeekValueEnd() {
    const size_t hit = bytescan::FindAnyOf4(data, pos, end, ',', '}', ' ',
                                            '\t');
    pos = hit == bytescan::kNpos ? end : static_cast<uint32_t>(hit);
  }
};

Status RowError(const TextChunk& chunk, size_t row, const char* what) {
  return Status::Corruption(StringPrintf(
      "chunk %llu row %zu: %s",
      static_cast<unsigned long long>(chunk.chunk_index), row, what));
}

}  // namespace

Result<PositionalMap> TokenizeJsonChunk(const TextChunk& chunk,
                                        const Schema& schema) {
  const size_t fields = schema.num_columns();
  if (fields == 0) {
    return Status::InvalidArgument("schema has no columns");
  }
  std::map<std::string_view, size_t> columns_by_name;
  for (size_t c = 0; c < fields; ++c) {
    columns_by_name.emplace(schema.column(c).name, c);
  }

  PositionalMap map(chunk.num_rows(), fields, /*explicit_ends=*/true);
  std::vector<uint8_t> seen(fields);
  const std::string_view data(chunk.data);

  for (size_t r = 0; r < chunk.num_rows(); ++r) {
    std::fill(seen.begin(), seen.end(), 0);
    const std::string_view line = chunk.line(r);
    Cursor cur{chunk.data.data(),
               static_cast<uint32_t>(line.data() - chunk.data.data()),
               static_cast<uint32_t>(line.data() - chunk.data.data() +
                                     line.size())};
    cur.SkipSpace();
    if (cur.AtEnd() || cur.Peek() != '{') {
      return RowError(chunk, r, "expected '{'");
    }
    ++cur.pos;
    cur.SkipSpace();
    bool first_member = true;
    while (true) {
      cur.SkipSpace();
      if (cur.AtEnd()) return RowError(chunk, r, "unterminated object");
      if (cur.Peek() == '}') {
        ++cur.pos;
        break;
      }
      if (!first_member) {
        if (cur.Peek() != ',') return RowError(chunk, r, "expected ','");
        ++cur.pos;
        cur.SkipSpace();
      }
      first_member = false;
      // Member key.
      if (cur.AtEnd() || cur.Peek() != '"') {
        return RowError(chunk, r, "expected member key");
      }
      ++cur.pos;
      const uint32_t key_start = cur.pos;
      if (!cur.SeekQuoteOrEscape()) {
        return RowError(chunk, r, "unterminated key");
      }
      if (cur.Peek() == '\\') {
        return Status::Unimplemented("escaped JSON keys are not supported");
      }
      const std::string_view key = data.substr(key_start, cur.pos - key_start);
      ++cur.pos;  // closing quote
      cur.SkipSpace();
      if (cur.AtEnd() || cur.Peek() != ':') {
        return RowError(chunk, r, "expected ':'");
      }
      ++cur.pos;
      cur.SkipSpace();
      if (cur.AtEnd()) return RowError(chunk, r, "missing value");

      // Member value: string or number.
      uint32_t value_start = 0, value_end = 0;
      if (cur.Peek() == '"') {
        ++cur.pos;
        value_start = cur.pos;
        if (!cur.SeekQuoteOrEscape()) {
          return RowError(chunk, r, "unterminated string");
        }
        if (cur.Peek() == '\\') {
          return Status::Unimplemented(
              "escaped JSON strings are not supported");
        }
        value_end = cur.pos;
        ++cur.pos;  // closing quote
      } else if (cur.Peek() == '{' || cur.Peek() == '[') {
        return Status::Unimplemented(
            "nested JSON objects/arrays are not supported");
      } else {
        value_start = cur.pos;
        cur.SeekValueEnd();
        value_end = cur.pos;
        if (value_end == value_start) {
          return RowError(chunk, r, "empty value");
        }
      }

      auto it = columns_by_name.find(key);
      if (it != columns_by_name.end()) {
        // Last occurrence wins, like most JSON parsers.
        map.SetSpan(r, it->second, value_start, value_end);
        seen[it->second] = 1;
      }
      // Unknown members are skipped.
    }
    cur.SkipSpace();
    if (!cur.AtEnd()) return RowError(chunk, r, "trailing data after '}'");
    for (size_t c = 0; c < fields; ++c) {
      if (!seen[c]) {
        return Status::Corruption(StringPrintf(
            "chunk %llu row %zu: missing member \"%s\"",
            static_cast<unsigned long long>(chunk.chunk_index), r,
            schema.column(c).name.c_str()));
      }
    }
  }
  return map;
}

}  // namespace scanraw
