#include "format/parallel_chunker.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/byte_scan.h"
#include "common/clock.h"
#include "common/thread_annotations.h"
#include "pipeline/thread_pool.h"

namespace scanraw {

namespace {

// Range count for a region: the requested count (or pool workers + the
// participating caller), clamped so every range is at least min_range_bytes
// and there is at least one item per range.
size_t NumRanges(ThreadPool* pool, size_t requested, size_t bytes,
                 size_t min_range_bytes, size_t items) {
  size_t n = requested != 0 ? requested
             : pool != nullptr ? pool->num_workers() + 1
                               : 1;
  if (min_range_bytes > 0) {
    n = std::min(n, std::max<size_t>(1, bytes / min_range_bytes));
  }
  return std::max<size_t>(1, std::min(n, std::max<size_t>(1, items)));
}

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body) {
  if (n == 0) return;
  const size_t helpers =
      pool == nullptr ? 0 : std::min(pool->num_workers(), n - 1);
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  struct State {
    explicit State(size_t total) : n(total) {}
    const size_t n;
    std::atomic<size_t> next{0};
    Mutex mu{LockRank::kParallelChunker, "ParallelFor.mu"};
    CondVar done_cv;
    size_t completed GUARDED_BY(mu) = 0;
  };
  auto state = std::make_shared<State>(n);
  // Helpers copy the body and share the state: a helper that dequeues after
  // the caller already returned still holds everything it touches. The
  // captured references *inside* body stay valid because the caller does not
  // return until every body(i) call has completed.
  auto run = [state, body] {
    size_t done = 0;
    while (true) {
      const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) break;
      body(i);
      ++done;
    }
    MutexLock lock(state->mu);
    state->completed += done;
    if (state->completed == state->n) state->done_cv.NotifyAll();
  };
  for (size_t h = 0; h < helpers; ++h) pool->Submit(run);
  // The caller participates: with the pool saturated by other work this
  // degrades to the caller running every index, never to a deadlock.
  run();
  MutexLock lock(state->mu);
  while (state->completed != state->n) state->done_cv.Wait(lock);
}

bool FindRecordNewlines(const char* data, size_t from, size_t end,
                        const RecordDialect& dialect, bool start_inside,
                        std::vector<uint32_t>* newlines) {
  if (!dialect.quoted) {
    if (from < end) {
      bytescan::FindAll(data, from, end, '\n', end - from, /*bias=*/0,
                        newlines);
    }
    return false;
  }
  // Two-state FSM hopping between SIMD scans: inside quotes only the next
  // quote matters; outside, the next quote or newline.
  bool inside = start_inside;
  size_t p = from;
  while (p < end) {
    if (inside) {
      const size_t q = bytescan::FindByte(data, p, end, dialect.quote);
      if (q == bytescan::kNpos) return true;
      inside = false;
      p = q + 1;
    } else {
      const size_t q = bytescan::FindEither(data, p, end, dialect.quote, '\n');
      if (q == bytescan::kNpos) return false;
      if (data[q] == dialect.quote) {
        inside = true;
      } else {
        newlines->push_back(static_cast<uint32_t>(q));
      }
      p = q + 1;
    }
  }
  return inside;
}

bool ParallelFindRecordNewlines(const char* data, size_t from, size_t end,
                                bool start_inside,
                                const RecordScanOptions& options,
                                SpeculationStats* stats,
                                std::vector<uint32_t>* newlines) {
  const size_t bytes = end > from ? end - from : 0;
  // An unquoted dialect has no boundary ambiguity to speculate away, and the
  // bulk newline scan is already memory-bound — keep it sequential.
  const size_t n = !options.dialect.quoted
                       ? 1
                       : NumRanges(options.pool, options.num_ranges, bytes,
                                   options.min_range_bytes, bytes);
  if (n <= 1) {
    if (stats != nullptr && options.dialect.quoted) stats->ranges += 1;
    return FindRecordNewlines(data, from, end, options.dialect, start_inside,
                              newlines);
  }
  std::vector<size_t> bounds(n + 1);
  for (size_t i = 0; i <= n; ++i) bounds[i] = from + bytes * i / n;
  std::vector<std::vector<uint32_t>> found(n);
  std::vector<uint8_t> parity(n, 0);
  ParallelFor(options.pool, n, [&](size_t i) {
    // Speculate: every range starts at outside-quote parity. The returned
    // end parity equals the range's parity *delta* (quote count mod 2),
    // which does not depend on the speculated start — the fold below
    // recovers the truth at every stitch point.
    parity[i] = FindRecordNewlines(data, bounds[i], bounds[i + 1],
                                   options.dialect, /*start_inside=*/false,
                                   &found[i])
                    ? 1
                    : 0;
  });
  if (stats != nullptr) stats->ranges += n;
  // Validate where ranges stitch together: fold the true start state across
  // ranges and repair (re-scan) the ones whose speculation was wrong. A
  // misspeculated range recorded exactly the quoted newlines and skipped the
  // real ones, so its output is discarded wholesale.
  bool state = start_inside;
  for (size_t i = 0; i < n; ++i) {
    const bool end_state = (parity[i] != 0) != state;
    if (state) {
      if (stats != nullptr) {
        stats->misspeculations += 1;
        stats->repair_bytes += bounds[i + 1] - bounds[i];
      }
      found[i].clear();
      FindRecordNewlines(data, bounds[i], bounds[i + 1], options.dialect,
                         /*start_inside=*/true, &found[i]);
    }
    newlines->insert(newlines->end(), found[i].begin(), found[i].end());
    state = end_state;
  }
  return state;
}

Result<PositionalMap> ParallelTokenizeChunk(
    const TextChunk& chunk, const TokenizeOptions& options,
    const ParallelTokenizeOptions& parallel_options, SpeculationStats* stats) {
  if (options.schema_fields == 0) {
    return Status::InvalidArgument("schema_fields must be > 0");
  }
  const size_t rows = chunk.num_rows();
  PositionalMap map(rows, options.EffectiveFields(),
                    /*explicit_ends=*/options.quoted);
  const size_t n =
      NumRanges(parallel_options.pool, parallel_options.num_ranges,
                chunk.data.size(), parallel_options.min_range_bytes, rows);
  if (stats != nullptr) stats->ranges += n;
  if (n <= 1) {
    Status status = TokenizeRows(chunk, options, 0, rows, &map);
    if (!status.ok()) return status;
    return map;
  }
  // Byte-balanced row ranges: cut at byte targets, snapped to the record
  // starts TOKENIZE already knows, so a few huge rows cannot pile all the
  // work onto one range.
  std::vector<size_t> bounds;
  bounds.reserve(n + 1);
  bounds.push_back(0);
  for (size_t i = 1; i < n; ++i) {
    const uint32_t target = static_cast<uint32_t>(chunk.data.size() * i / n);
    const auto it = std::upper_bound(chunk.line_starts.begin(),
                                     chunk.line_starts.end(), target);
    const size_t row = static_cast<size_t>(it - chunk.line_starts.begin());
    bounds.push_back(std::min(rows, std::max(bounds.back(), row)));
  }
  bounds.push_back(rows);

  std::vector<Status> statuses(n);
  const Clock* clock = RealClock::Instance();
  ParallelFor(parallel_options.pool, n, [&](size_t i) {
    const int64_t t0 = parallel_options.range_span ? clock->NowNanos() : 0;
    statuses[i] = TokenizeRows(chunk, options, bounds[i], bounds[i + 1], &map);
    if (parallel_options.range_span) {
      parallel_options.range_span(i, t0, clock->NowNanos() - t0);
    }
  });
  // Ranges are row-ordered and each range stops at its first bad row, so the
  // first failed range carries the same error the sequential scan reports.
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return map;
}

}  // namespace scanraw
