// PARSE stage: converts attribute text into typed binary columns using the
// offsets computed by TOKENIZE (§2). Supports selective parsing (only the
// projected columns are converted) and optional push-down selection (parse
// the predicate column first and skip failing rows — §2 discusses why this
// is off by default: it breaks exactly-once loading bookkeeping).
#ifndef SCANRAW_FORMAT_PARSER_H_
#define SCANRAW_FORMAT_PARSER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "columnar/binary_chunk.h"
#include "common/result.h"
#include "format/positional_map.h"
#include "format/schema.h"
#include "format/text_chunk.h"

namespace scanraw {

// Range predicate evaluated during parsing when push-down selection is on.
struct PushdownFilter {
  size_t column = 0;        // must be numeric
  int64_t min_value = 0;    // inclusive
  int64_t max_value = 0;    // inclusive
};

struct ParseOptions {
  // Column indexes to convert; empty means every schema column. Must all be
  // covered by the positional map.
  std::vector<size_t> projected_columns;
  std::optional<PushdownFilter> pushdown;
  // When set, output columns draw their backing buffers from here instead
  // of allocating fresh ones (see ChunkBufferPool). May be null.
  ColumnBufferSource* recycler = nullptr;
  // RFC-4180 quoted dialect, PARSE half: collapse doubled quote characters
  // ("" -> ") in string fields. The tokenizer's spans already exclude the
  // enclosing quotes, so numeric columns parse unchanged either way.
  bool unescape_quotes = false;
  char quote = '"';
};

// Parses the projected columns of `chunk` into a BinaryChunk. When a
// push-down filter is set, rows failing it are dropped (the result's row
// count can be smaller than the chunk's).
Result<BinaryChunk> ParseChunk(const TextChunk& chunk,
                               const PositionalMap& map, const Schema& schema,
                               const ParseOptions& options);

// -- scalar conversions (exposed for tests and the genomics plugin) --

// Fast unsigned decimal parse; rejects empty/overflow/non-digit input.
Result<uint32_t> ParseUint32(std::string_view text);
Result<int64_t> ParseInt64(std::string_view text);
Result<double> ParseDouble(std::string_view text);

// Allocation-free variants used by the columnar hot loops: parse [first,
// last) and return false on any malformed input without building an error
// string (the caller classifies the failure only after it happens, via the
// Result-returning functions above). Built on std::from_chars — no stack
// copy, no field-length limit, locale-independent.
bool TryParseUint32(const char* first, const char* last, uint32_t* out);
bool TryParseInt64(const char* first, const char* last, int64_t* out);
bool TryParseDouble(const char* first, const char* last, double* out);

}  // namespace scanraw

#endif  // SCANRAW_FORMAT_PARSER_H_
