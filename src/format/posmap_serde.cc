#include "format/posmap_serde.h"

#include <cstring>

#include "columnar/chunk_serde.h"  // Fnv1aHash

namespace scanraw {
namespace {

// Bumped whenever the byte layout changes; decoders reject unknown versions
// (dropping the sidecar is always safe — the maps are rebuildable).
constexpr std::string_view kMagic = "scanraw-posmap v1\n";

// Decode-side sanity bounds: a corrupt length field must not drive a huge
// allocation before the checksum gets a chance to reject the record.
constexpr uint64_t kMaxEntries = 1u << 24;          // chunks per table
constexpr uint64_t kMaxSlotsPerEntry = 1u << 30;    // u32 slots per map
constexpr uint64_t kMaxTableNameBytes = 1u << 16;

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(buf));
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(buf));
}

// Cursor over the input; all Read* return false on truncation.
struct Reader {
  std::string_view data;
  size_t pos = 0;

  bool ReadBytes(void* out, size_t n) {
    if (data.size() - pos < n) return false;
    std::memcpy(out, data.data() + pos, n);
    pos += n;
    return true;
  }
  bool ReadU32(uint32_t* v) { return ReadBytes(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadBytes(v, sizeof(*v)); }
};

}  // namespace

std::string EncodePosmapSidecar(
    const PosmapSidecarHeader& header,
    const std::vector<PosmapSidecarEntry>& entries) {
  std::string out;
  out.append(kMagic);

  AppendU32(&out, static_cast<uint32_t>(header.table.size()));
  out.append(header.table);
  AppendU64(&out, header.raw_size);
  AppendU64(&out, static_cast<uint64_t>(header.raw_mtime_nanos));
  out.push_back(header.dialect.delimiter);
  out.push_back(header.dialect.quoted ? 1 : 0);
  out.push_back(header.dialect.quote);

  uint32_t count = 0;
  for (const auto& e : entries) {
    if (e.map != nullptr) ++count;
  }
  AppendU32(&out, count);

  for (const auto& e : entries) {
    if (e.map == nullptr) continue;
    const std::vector<uint32_t>& offsets = e.map->raw_offsets();
    AppendU64(&out, e.chunk_index);
    AppendU32(&out, static_cast<uint32_t>(e.map->fields_per_row()));
    out.push_back(e.map->explicit_ends() ? 1 : 0);
    AppendU64(&out, offsets.size());
    const std::string_view payload(
        reinterpret_cast<const char*>(offsets.data()),
        offsets.size() * sizeof(uint32_t));
    out.append(payload);
    AppendU64(&out, Fnv1aHash(payload));
  }

  // Whole-file checksum: catches torn tails the per-entry sums cannot (e.g.
  // a truncated entry count) and doubles as an end-of-file marker.
  AppendU64(&out, Fnv1aHash(out));
  return out;
}

Result<std::vector<PosmapSidecarEntry>> DecodePosmapSidecar(
    std::string_view data, PosmapSidecarHeader* header) {
  if (data.size() < kMagic.size() + sizeof(uint64_t) ||
      data.substr(0, kMagic.size()) != kMagic) {
    return Status::Corruption("posmap sidecar: bad magic or version");
  }
  const std::string_view body = data.substr(0, data.size() - sizeof(uint64_t));
  uint64_t footer = 0;
  std::memcpy(&footer, data.data() + body.size(), sizeof(footer));
  if (footer != Fnv1aHash(body)) {
    return Status::Corruption("posmap sidecar: file checksum mismatch");
  }

  Reader r{body, kMagic.size()};
  uint32_t table_len = 0;
  if (!r.ReadU32(&table_len) || table_len > kMaxTableNameBytes ||
      body.size() - r.pos < table_len) {
    return Status::Corruption("posmap sidecar: truncated header");
  }
  header->table.assign(body.data() + r.pos, table_len);
  r.pos += table_len;

  uint64_t mtime = 0;
  char dialect[3];
  uint32_t count = 0;
  if (!r.ReadU64(&header->raw_size) || !r.ReadU64(&mtime) ||
      !r.ReadBytes(dialect, sizeof(dialect)) || !r.ReadU32(&count)) {
    return Status::Corruption("posmap sidecar: truncated header");
  }
  header->raw_mtime_nanos = static_cast<int64_t>(mtime);
  header->dialect.delimiter = dialect[0];
  header->dialect.quoted = dialect[1] != 0;
  header->dialect.quote = dialect[2];
  if (count > kMaxEntries) {
    return Status::Corruption("posmap sidecar: implausible entry count");
  }

  std::vector<PosmapSidecarEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t chunk_index = 0;
    uint32_t fields = 0;
    char explicit_ends = 0;
    uint64_t slots = 0;
    if (!r.ReadU64(&chunk_index) || !r.ReadU32(&fields) ||
        !r.ReadBytes(&explicit_ends, 1) || !r.ReadU64(&slots)) {
      return Status::Corruption("posmap sidecar: truncated entry");
    }
    if (fields == 0 || slots > kMaxSlotsPerEntry ||
        body.size() - r.pos < slots * sizeof(uint32_t)) {
      return Status::Corruption("posmap sidecar: implausible entry size");
    }
    const size_t slots_per_row =
        explicit_ends != 0 ? 2 * static_cast<size_t>(fields) : fields + 1;
    if (slots % slots_per_row != 0) {
      return Status::Corruption("posmap sidecar: entry shape mismatch");
    }
    const std::string_view payload(body.data() + r.pos,
                                   slots * sizeof(uint32_t));
    r.pos += payload.size();
    uint64_t sum = 0;
    if (!r.ReadU64(&sum) || sum != Fnv1aHash(payload)) {
      return Status::Corruption("posmap sidecar: entry checksum mismatch");
    }
    std::vector<uint32_t> offsets(slots);
    std::memcpy(offsets.data(), payload.data(), payload.size());
    entries.push_back(PosmapSidecarEntry{
        chunk_index,
        std::make_shared<const PositionalMap>(PositionalMap::FromOffsets(
            fields, explicit_ends != 0, std::move(offsets)))});
  }
  if (r.pos != body.size()) {
    return Status::Corruption("posmap sidecar: trailing bytes");
  }
  return entries;
}

}  // namespace scanraw
