// Field types supported by the extraction pipeline and the mini database.
#ifndef SCANRAW_FORMAT_FIELD_TYPE_H_
#define SCANRAW_FORMAT_FIELD_TYPE_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace scanraw {

enum class FieldType : uint8_t {
  kUint32 = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

// Width of the fixed-size binary representation; 0 for variable-length.
constexpr size_t FixedWidth(FieldType type) {
  switch (type) {
    case FieldType::kUint32:
      return 4;
    case FieldType::kInt64:
      return 8;
    case FieldType::kDouble:
      return 8;
    case FieldType::kString:
      return 0;
  }
  return 0;
}

constexpr bool IsFixedWidth(FieldType type) { return FixedWidth(type) != 0; }

std::string_view FieldTypeName(FieldType type);

}  // namespace scanraw

#endif  // SCANRAW_FORMAT_FIELD_TYPE_H_
