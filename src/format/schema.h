// Relational schema given to SCANRAW together with the raw file (§2: "The
// input to the process is a raw file, a schema, and a procedure to extract
// tuples with the given schema").
#ifndef SCANRAW_FORMAT_SCHEMA_H_
#define SCANRAW_FORMAT_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "format/field_type.h"

namespace scanraw {

struct ColumnDef {
  std::string name;
  FieldType type = FieldType::kUint32;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns, char delimiter = ',')
      : columns_(std::move(columns)), delimiter_(delimiter) {}

  // Convenience: `count` uint32 columns named C0..C{count-1} (the shape of
  // the paper's synthetic micro-benchmark files).
  static Schema AllUint32(size_t count, char delimiter = ',');

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  char delimiter() const { return delimiter_; }

  // Returns the index of the named column, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  // Row width of the fixed part of the binary representation (strings
  // excluded), used for sizing estimates.
  size_t FixedRowWidth() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<ColumnDef> columns_;
  char delimiter_ = ',';
};

}  // namespace scanraw

#endif  // SCANRAW_FORMAT_SCHEMA_H_
