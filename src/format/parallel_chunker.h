// Speculative intra-file parallel TOKENIZE (after Chang et al., "Speculative
// Distributed CSV Data Parsing", SIGMOD 2019 — the source paper's explicit
// speculation applied one level down, inside the file).
//
// The problem: with RFC-4180 quoting a byte range cannot be tokenized in
// isolation, because whether its first newline terminates a record depends on
// the quote parity carried in from everything before it. The fix is to
// speculate: every range is scanned assuming it starts OUTSIDE a quoted
// field. Each scan also reports the range's quote-parity delta, which is
// independent of the (unknown) start state — a quote character always toggles
// parity, doubled-quote escapes toggle twice and cancel. A sequential fold
// over the deltas then recovers the true start state at every stitch point,
// and only the ranges whose speculation was wrong are re-scanned (the repair
// path). Misspeculation needs a quoted newline to straddle a range boundary,
// so repairs are rare and the scan parallelizes almost perfectly.
//
// Two entry points ride on this:
//  * ParallelFindRecordNewlines — record-boundary discovery for the READ
//    stage (scanraw/raw_reader), where quoted newlines must not split
//    records.
//  * ParallelTokenizeChunk — fans a chunk whose record starts are already
//    known out over the worker pool as byte-balanced row ranges, each
//    tokenized into disjoint rows of one shared PositionalMap. Output is
//    byte-identical to the sequential TokenizeChunk.
#ifndef SCANRAW_FORMAT_PARALLEL_CHUNKER_H_
#define SCANRAW_FORMAT_PARALLEL_CHUNKER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "format/positional_map.h"
#include "format/text_chunk.h"
#include "format/tokenizer.h"

namespace scanraw {

class ThreadPool;

// Text dialect as the record scanner sees it: when `quoted`, a quote
// character toggles quote parity and newlines inside quotes do not terminate
// records. TOKENIZE uses the same FSM so READ and TOKENIZE agree on every
// byte of every input, well-formed or not.
struct RecordDialect {
  bool quoted = false;
  char quote = '"';
};

// Speculation outcome counters, folded into PipelineProfile by the caller
// (scanraw.tokenize.ranges / .misspeculations / .repair_bytes).
struct SpeculationStats {
  uint64_t ranges = 0;
  uint64_t misspeculations = 0;
  uint64_t repair_bytes = 0;
};

// Runs body(0) .. body(n-1), fanning out to `pool` (may be null). The caller
// participates: indexes are claimed from a shared atomic, so a saturated or
// empty pool degrades to the caller running everything rather than
// deadlocking behind its own queue. Returns after every body call finished.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body);

// Sequential quote-aware newline scan over data[from, end): appends the
// offset of every record-terminating newline (those at outside-quote parity)
// to `*newlines`. `start_inside` is the quote parity at `from`; the return
// value is the parity at `end`. With an unquoted dialect this is a plain
// bulk newline scan that always returns false.
bool FindRecordNewlines(const char* data, size_t from, size_t end,
                        const RecordDialect& dialect, bool start_inside,
                        std::vector<uint32_t>* newlines);

struct RecordScanOptions {
  RecordDialect dialect;
  ThreadPool* pool = nullptr;
  // Byte ranges to split into; 0 derives it from the pool size (workers + the
  // participating caller).
  size_t num_ranges = 0;
  // Regions smaller than num_ranges * min_range_bytes use fewer ranges —
  // range setup is not free. Tests set 1 to force adversarial boundaries on
  // tiny inputs.
  size_t min_range_bytes = 1 << 16;
};

// Parallel speculative version of FindRecordNewlines (same contract): splits
// [from, end) into ranges, scans each under the outside-quotes speculation,
// validates the stitch points by folding parity deltas, and re-scans only the
// misspeculated ranges. Output is byte-identical to the sequential scan.
// With an unquoted dialect there is nothing to speculate about and the
// sequential bulk scan is used directly.
bool ParallelFindRecordNewlines(const char* data, size_t from, size_t end,
                                bool start_inside,
                                const RecordScanOptions& options,
                                SpeculationStats* stats,
                                std::vector<uint32_t>* newlines);

struct ParallelTokenizeOptions {
  ThreadPool* pool = nullptr;
  size_t num_ranges = 0;        // 0 = derive from pool size
  size_t min_range_bytes = 1 << 16;
  // Per-range span attribution: called once per range with (range index,
  // start nanos, duration nanos) from the thread that tokenized the range.
  // May be invoked concurrently.
  std::function<void(size_t, int64_t, int64_t)> range_span;
};

// Tokenizes `chunk` by fanning byte-balanced row ranges out over the pool,
// each range writing its disjoint rows of one shared PositionalMap. Produces
// the exact bytes TokenizeChunk would (including the same first error when
// rows are malformed). Record starts are already known here, so no
// speculation is needed — `stats` only accrues the range count.
Result<PositionalMap> ParallelTokenizeChunk(
    const TextChunk& chunk, const TokenizeOptions& options,
    const ParallelTokenizeOptions& parallel_options, SpeculationStats* stats);

}  // namespace scanraw

#endif  // SCANRAW_FORMAT_PARALLEL_CHUNKER_H_
