// Positional-map sidecar (de)serialization. A sidecar persists one table's
// per-chunk PositionalMaps next to the catalog (`<catalog>.posmap.<table>`)
// so a warm restart can skip TOKENIZE entirely for chunks it mapped before.
//
// The format is versioned and checksummed: a magic line, a binary header
// recording the *exact* stat of the raw file (size + mtime in nanoseconds)
// and the tokenize dialect the maps were built under, then one record per
// chunk (each with its own FNV-1a checksum over the offset payload), and a
// whole-file FNV-1a footer. A sidecar whose stat or dialect no longer
// matches the live table is stale and must be dropped, never reused — a
// positional map is only meaningful against the byte-identical raw file and
// the same delimiter/quote rules it was built from.
//
// This module is pure bytes<->structs; file I/O and validation against the
// catalog live in src/db/recovery.cc.
#ifndef SCANRAW_FORMAT_POSMAP_SERDE_H_
#define SCANRAW_FORMAT_POSMAP_SERDE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "format/positional_map.h"

namespace scanraw {

// The subset of TokenizeOptions that determines where field boundaries fall.
// Two maps built under different dialects are not interchangeable even for
// the same bytes (a quoted comma is a delimiter in one and data in the
// other), so the dialect is persisted in the sidecar header and checked both
// at load time and on every cache lookup.
struct PosmapDialect {
  char delimiter = ',';
  bool quoted = false;
  char quote = '"';

  friend bool operator==(const PosmapDialect& a, const PosmapDialect& b) {
    return a.delimiter == b.delimiter && a.quoted == b.quoted &&
           a.quote == b.quote;
  }
  friend bool operator!=(const PosmapDialect& a, const PosmapDialect& b) {
    return !(a == b);
  }
};

struct PosmapSidecarHeader {
  std::string table;
  uint64_t raw_size = 0;       // exact byte size of the raw file at save time
  int64_t raw_mtime_nanos = 0; // exact mtime (ns) of the raw file at save time
  PosmapDialect dialect;
};

struct PosmapSidecarEntry {
  uint64_t chunk_index = 0;
  std::shared_ptr<const PositionalMap> map;
};

// Serializes header + entries into the sidecar byte format described above.
// Null maps are skipped.
std::string EncodePosmapSidecar(const PosmapSidecarHeader& header,
                                const std::vector<PosmapSidecarEntry>& entries);

// Parses a sidecar produced by EncodePosmapSidecar. Returns Corruption on a
// bad magic, unknown version, truncation, or any checksum mismatch — a torn
// or bit-rotted sidecar never yields partial entries. On success `*header`
// holds the persisted stat + dialect for the caller to validate.
Result<std::vector<PosmapSidecarEntry>> DecodePosmapSidecar(
    std::string_view data, PosmapSidecarHeader* header);

}  // namespace scanraw

#endif  // SCANRAW_FORMAT_POSMAP_SERDE_H_
