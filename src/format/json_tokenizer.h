// TOKENIZE for JSON-lines raw files: one flat JSON object per line, one
// member per schema column. Demonstrates the paper's extensibility claim —
// "adding support for other file formats requires only the implementation
// of specific TOKENIZE and PARSE workers without changing the basic
// architecture" (§5). The produced map uses explicit (start, end) spans;
// PARSE is shared with the delimited-text path.
//
// Supported member values: integers, floating point numbers, and plain
// strings (no escape sequences); members may appear in any order, extra
// members are ignored, and whitespace is tolerated. Nested objects/arrays
// and escaped strings are rejected as Corruption/Unimplemented.
#ifndef SCANRAW_FORMAT_JSON_TOKENIZER_H_
#define SCANRAW_FORMAT_JSON_TOKENIZER_H_

#include "common/result.h"
#include "format/positional_map.h"
#include "format/schema.h"
#include "format/text_chunk.h"

namespace scanraw {

// Maps every schema column's value span for every row of the chunk.
// String-typed column spans exclude the surrounding quotes, so the shared
// ParseChunk consumes them directly. A missing member is Corruption.
Result<PositionalMap> TokenizeJsonChunk(const TextChunk& chunk,
                                        const Schema& schema);

}  // namespace scanraw

#endif  // SCANRAW_FORMAT_JSON_TOKENIZER_H_
