#include "format/schema.h"

#include "common/string_util.h"

namespace scanraw {

std::string_view FieldTypeName(FieldType type) {
  switch (type) {
    case FieldType::kUint32:
      return "uint32";
    case FieldType::kInt64:
      return "int64";
    case FieldType::kDouble:
      return "double";
    case FieldType::kString:
      return "string";
  }
  return "unknown";
}

Schema Schema::AllUint32(size_t count, char delimiter) {
  std::vector<ColumnDef> cols;
  cols.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string name = "C";
    AppendUint64(&name, i);
    cols.push_back(ColumnDef{std::move(name), FieldType::kUint32});
  }
  return Schema(std::move(cols), delimiter);
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named " + name);
}

size_t Schema::FixedRowWidth() const {
  size_t width = 0;
  for (const auto& col : columns_) width += FixedWidth(col.type);
  return width;
}

bool Schema::operator==(const Schema& other) const {
  if (delimiter_ != other.delimiter_) return false;
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace scanraw
