#include "format/parser.h"

#include <algorithm>
#include <cstdlib>

#include "common/string_util.h"

namespace scanraw {

Result<uint32_t> ParseUint32(std::string_view text) {
  if (text.empty()) return Status::Corruption("empty uint32 field");
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::Corruption("invalid uint32: '" + std::string(text) + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > UINT32_MAX) {
      return Status::Corruption("uint32 overflow: '" + std::string(text) +
                                "'");
    }
  }
  return static_cast<uint32_t>(value);
}

Result<int64_t> ParseInt64(std::string_view text) {
  if (text.empty()) return Status::Corruption("empty int64 field");
  size_t i = 0;
  bool negative = false;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    i = 1;
    if (text.size() == 1) return Status::Corruption("lone sign in int64");
  }
  uint64_t magnitude = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') {
      return Status::Corruption("invalid int64: '" + std::string(text) + "'");
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (magnitude > (UINT64_MAX - digit) / 10) {
      return Status::Corruption("int64 overflow: '" + std::string(text) + "'");
    }
    magnitude = magnitude * 10 + digit;
  }
  const uint64_t limit =
      negative ? (1ull << 63) : (1ull << 63) - 1;
  if (magnitude > limit) {
    return Status::Corruption("int64 overflow: '" + std::string(text) + "'");
  }
  // Negate in the unsigned domain: INT64_MIN's magnitude (2^63) cannot be
  // represented as a positive int64_t, so -static_cast<int64_t>(magnitude)
  // would be UB for exactly that value.
  return negative ? static_cast<int64_t>(0 - magnitude)
                  : static_cast<int64_t>(magnitude);
}

Result<double> ParseDouble(std::string_view text) {
  if (text.empty()) return Status::Corruption("empty double field");
  // strtod needs NUL termination; fields are short so a stack copy is fine.
  char buf[64];
  if (text.size() >= sizeof(buf)) {
    return Status::Corruption("double field too long");
  }
  std::copy(text.begin(), text.end(), buf);
  buf[text.size()] = '\0';
  char* end = nullptr;
  const double value = std::strtod(buf, &end);
  if (end != buf + text.size()) {
    return Status::Corruption("invalid double: '" + std::string(text) + "'");
  }
  return value;
}

namespace {

// Parses one field into `out`; returns a Status on malformed input.
Status AppendField(std::string_view text, FieldType type, ColumnVector* out) {
  switch (type) {
    case FieldType::kUint32: {
      auto v = ParseUint32(text);
      if (!v.ok()) return v.status();
      out->AppendUint32(*v);
      return Status::OK();
    }
    case FieldType::kInt64: {
      auto v = ParseInt64(text);
      if (!v.ok()) return v.status();
      out->AppendInt64(*v);
      return Status::OK();
    }
    case FieldType::kDouble: {
      auto v = ParseDouble(text);
      if (!v.ok()) return v.status();
      out->AppendDouble(*v);
      return Status::OK();
    }
    case FieldType::kString:
      out->AppendString(text);
      return Status::OK();
  }
  return Status::Internal("unknown field type");
}

Result<int64_t> ParseNumeric(std::string_view text, FieldType type) {
  switch (type) {
    case FieldType::kUint32: {
      auto v = ParseUint32(text);
      if (!v.ok()) return v.status();
      return static_cast<int64_t>(*v);
    }
    case FieldType::kInt64:
      return ParseInt64(text);
    case FieldType::kDouble: {
      auto v = ParseDouble(text);
      if (!v.ok()) return v.status();
      return static_cast<int64_t>(*v);
    }
    case FieldType::kString:
      break;
  }
  return Status::InvalidArgument("push-down filter on non-numeric column");
}

}  // namespace

Result<BinaryChunk> ParseChunk(const TextChunk& chunk,
                               const PositionalMap& map, const Schema& schema,
                               const ParseOptions& options) {
  std::vector<size_t> cols = options.projected_columns;
  if (cols.empty()) {
    cols.resize(schema.num_columns());
    for (size_t i = 0; i < cols.size(); ++i) cols[i] = i;
  }
  for (size_t c : cols) {
    if (c >= schema.num_columns()) {
      return Status::InvalidArgument(
          StringPrintf("projected column %zu out of range", c));
    }
    if (c >= map.fields_per_row()) {
      return Status::InvalidArgument(StringPrintf(
          "column %zu not covered by positional map (%zu fields)", c,
          map.fields_per_row()));
    }
  }
  if (options.pushdown.has_value()) {
    const size_t pc = options.pushdown->column;
    if (pc >= map.fields_per_row()) {
      return Status::InvalidArgument("push-down column not tokenized");
    }
    if (schema.column(pc).type == FieldType::kString) {
      return Status::InvalidArgument("push-down filter on string column");
    }
  }
  if (map.num_rows() != chunk.num_rows()) {
    return Status::InvalidArgument("positional map / chunk row mismatch");
  }

  const std::string_view data(chunk.data);
  BinaryChunk out(chunk.chunk_index);
  std::vector<ColumnVector> vectors;
  vectors.reserve(cols.size());
  for (size_t c : cols) {
    vectors.emplace_back(schema.column(c).type);
    vectors.back().Reserve(chunk.num_rows());
  }

  for (size_t r = 0; r < chunk.num_rows(); ++r) {
    if (options.pushdown.has_value()) {
      const auto& pd = *options.pushdown;
      const std::string_view field = data.substr(
          map.FieldStart(r, pd.column),
          map.FieldEnd(r, pd.column) - map.FieldStart(r, pd.column));
      auto v = ParseNumeric(field, schema.column(pd.column).type);
      if (!v.ok()) return v.status();
      if (*v < pd.min_value || *v > pd.max_value) continue;
    }
    for (size_t i = 0; i < cols.size(); ++i) {
      const size_t c = cols[i];
      const std::string_view field =
          data.substr(map.FieldStart(r, c),
                      map.FieldEnd(r, c) - map.FieldStart(r, c));
      Status s = AppendField(field, schema.column(c).type, &vectors[i]);
      if (!s.ok()) {
        return Status(s.code(),
                      StringPrintf("chunk %llu row %zu col %zu: ",
                                   static_cast<unsigned long long>(
                                       chunk.chunk_index),
                                   r, c) +
                          std::string(s.message()));
      }
    }
  }

  for (size_t i = 0; i < cols.size(); ++i) {
    SCANRAW_RETURN_IF_ERROR(out.AddColumn(cols[i], std::move(vectors[i])));
  }
  if (out.num_columns() > 0 && out.num_rows() == 0) {
    // All rows filtered out: keep an explicit zero-row chunk.
    out.set_num_rows(0);
  }
  return out;
}

}  // namespace scanraw
