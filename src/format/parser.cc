#include "format/parser.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <string>

#include "common/string_util.h"

namespace scanraw {

namespace {

// Full-range strtod through a NUL-terminated heap copy: the cold
// compatibility path for inputs std::from_chars rejects but the historical
// strtod-based parser accepted (hex floats, leading whitespace, and
// out-of-range magnitudes saturating to ±HUGE_VAL / 0). Never runs for
// well-formed decimal fields.
bool StrtodFull(const char* first, const char* last, double* out) {
  const std::string copy(first, last);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return false;
  *out = value;
  return true;
}

}  // namespace

bool TryParseUint32(const char* first, const char* last, uint32_t* out) {
  // std::from_chars already rejects signs, whitespace, and empty input,
  // exactly matching the digits-only contract of ParseUint32.
  const auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

bool TryParseInt64(const char* first, const char* last, int64_t* out) {
  // from_chars accepts '-' but not '+'; strip an explicit plus, which must
  // be followed by a digit (not another sign or end-of-field).
  if (first != last && *first == '+') {
    ++first;
    if (first == last || *first < '0' || *first > '9') return false;
  }
  const auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

bool TryParseDouble(const char* first, const char* last, double* out) {
  if (first == last) return false;
  const char* p = first;
  if (*p == '+') {
    ++p;
    // "+-1" / "++1" / a bare "+" were never valid; bail before from_chars
    // would happily parse the inner "-1".
    if (p == last || *p == '+' || *p == '-') return false;
  }
  const auto [ptr, ec] =
      std::from_chars(p, last, *out, std::chars_format::general);
  if (ec == std::errc() && ptr == last) return true;
  return StrtodFull(first, last, out);
}

Result<uint32_t> ParseUint32(std::string_view text) {
  uint32_t value = 0;
  if (TryParseUint32(text.data(), text.data() + text.size(), &value)) {
    return value;
  }
  if (text.empty()) return Status::Corruption("empty uint32 field");
  // Overflow is reported the moment the digit prefix exceeds the type's
  // range, even with trailing junk after it (matching the historical
  // digit-by-digit accumulation).
  uint32_t probe = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), probe);
  (void)ptr;
  if (ec == std::errc::result_out_of_range) {
    return Status::Corruption("uint32 overflow: '" + std::string(text) + "'");
  }
  return Status::Corruption("invalid uint32: '" + std::string(text) + "'");
}

Result<int64_t> ParseInt64(std::string_view text) {
  int64_t value = 0;
  if (TryParseInt64(text.data(), text.data() + text.size(), &value)) {
    return value;
  }
  if (text.empty()) return Status::Corruption("empty int64 field");
  if (text.size() == 1 && (text[0] == '-' || text[0] == '+')) {
    return Status::Corruption("lone sign in int64");
  }
  // Reconstruct the historical accumulate-in-uint64 semantics: overflow is
  // reported when the digit prefix exceeds the uint64 accumulator (even
  // with trailing junk), or when a fully-digits magnitude exceeds the
  // signed limit; anything else is malformed.
  std::string_view digits = text;
  if (digits[0] == '-' || digits[0] == '+') digits.remove_prefix(1);
  const bool negative = text[0] == '-';
  uint64_t magnitude = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), magnitude);
  const bool all_digits = ptr == digits.data() + digits.size();
  if (ec == std::errc::result_out_of_range) {
    return Status::Corruption("int64 overflow: '" + std::string(text) + "'");
  }
  if (all_digits && ec == std::errc()) {
    const uint64_t limit = negative ? (1ull << 63) : (1ull << 63) - 1;
    if (magnitude > limit) {
      return Status::Corruption("int64 overflow: '" + std::string(text) +
                                "'");
    }
  }
  return Status::Corruption("invalid int64: '" + std::string(text) + "'");
}

Result<double> ParseDouble(std::string_view text) {
  if (text.empty()) return Status::Corruption("empty double field");
  double value = 0;
  if (TryParseDouble(text.data(), text.data() + text.size(), &value)) {
    return value;
  }
  return Status::Corruption("invalid double: '" + std::string(text) + "'");
}

namespace {

Result<int64_t> ParseNumeric(std::string_view text, FieldType type) {
  switch (type) {
    case FieldType::kUint32: {
      auto v = ParseUint32(text);
      if (!v.ok()) return v.status();
      return static_cast<int64_t>(*v);
    }
    case FieldType::kInt64:
      return ParseInt64(text);
    case FieldType::kDouble: {
      auto v = ParseDouble(text);
      if (!v.ok()) return v.status();
      return static_cast<int64_t>(*v);
    }
    case FieldType::kString:
      break;
  }
  return Status::InvalidArgument("push-down filter on non-numeric column");
}

// Builds the full error for a field the Try* fast path rejected: the
// classified scalar message (reproduced via the Result-returning parser)
// wrapped with chunk/row/col context. Only runs after a parse has already
// failed, so the hot loops stay allocation-free.
Status FieldError(const TextChunk& chunk, size_t r, size_t c,
                  std::string_view field, FieldType type) {
  Status s = [&]() -> Status {
    switch (type) {
      case FieldType::kUint32:
        return ParseUint32(field).status();
      case FieldType::kInt64:
        return ParseInt64(field).status();
      case FieldType::kDouble:
        return ParseDouble(field).status();
      case FieldType::kString:
        break;
    }
    return Status::Internal("unknown field type");
  }();
  return Status(
      s.code(),
      StringPrintf("chunk %llu row %zu col %zu: ",
                   static_cast<unsigned long long>(chunk.chunk_index), r, c) +
          std::string(s.message()));
}

// Converts `bn` selected rows starting at selection index `b0` of column
// `c` in one typed loop, templated on a span provider `span(i, &r, &s, &e)`
// so the compact fast path (hoisted row stride, loop-invariant end
// adjustment) and the generic path share the per-type bodies. The type
// switch runs once per block instead of once per field, and fixed-width
// output lands in a single bulk-resized block.
template <typename SpanFn>
Status ParseBlockTyped(const TextChunk& chunk, size_t c, FieldType type,
                       size_t bn, const ParseOptions& options,
                       ColumnVector* out, SpanFn span) {
  const std::string_view data(chunk.data);
  const char* base = data.data();
  size_t r = 0;
  uint32_t s = 0;
  uint32_t e = 0;
  switch (type) {
    case FieldType::kUint32: {
      uint32_t* dst = out->AppendUint32Block(bn);
      for (size_t i = 0; i < bn; ++i) {
        span(i, &r, &s, &e);
        if (!TryParseUint32(base + s, base + e, &dst[i])) {
          return FieldError(chunk, r, c, data.substr(s, e - s), type);
        }
      }
      return Status::OK();
    }
    case FieldType::kInt64: {
      int64_t* dst = out->AppendInt64Block(bn);
      for (size_t i = 0; i < bn; ++i) {
        span(i, &r, &s, &e);
        if (!TryParseInt64(base + s, base + e, &dst[i])) {
          return FieldError(chunk, r, c, data.substr(s, e - s), type);
        }
      }
      return Status::OK();
    }
    case FieldType::kDouble: {
      double* dst = out->AppendDoubleBlock(bn);
      for (size_t i = 0; i < bn; ++i) {
        span(i, &r, &s, &e);
        if (!TryParseDouble(base + s, base + e, &dst[i])) {
          return FieldError(chunk, r, c, data.substr(s, e - s), type);
        }
      }
      return Status::OK();
    }
    case FieldType::kString: {
      const char quote = options.quote;
      std::string collapsed;
      for (size_t i = 0; i < bn; ++i) {
        span(i, &r, &s, &e);
        const std::string_view field = data.substr(s, e - s);
        if (!options.unescape_quotes ||
            field.find(quote) == std::string_view::npos) {
          out->AppendString(field);
          continue;
        }
        // Quoted-dialect escape: a doubled quote inside the field is one
        // literal quote character; a lone quote passes through unchanged.
        collapsed.clear();
        collapsed.reserve(field.size());
        for (size_t p = 0; p < field.size(); ++p) {
          collapsed.push_back(field[p]);
          if (field[p] == quote && p + 1 < field.size() &&
              field[p + 1] == quote) {
            ++p;
          }
        }
        out->AppendString(collapsed);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown field type");
}

// One block of one column. `sel` lists the surviving row indexes (null =
// all rows); `b0` is the block's first selection index.
Status ParseColumnBlock(const TextChunk& chunk, const PositionalMap& map,
                        size_t c, FieldType type, const uint32_t* sel,
                        size_t b0, size_t bn, const ParseOptions& options,
                        ColumnVector* out) {
  if (!map.explicit_ends() && sel == nullptr) {
    // Compact unfiltered fast path: rows are consecutive, so the slot
    // pointer advances by a fixed stride, and whether the field end needs
    // the delimiter-byte adjustment is a per-column constant.
    const size_t stride = map.fields_per_row() + 1;
    const uint32_t* slot = map.RowData(b0) + c;
    const uint32_t adj = (c + 1 == map.fields_per_row()) ? 0 : 1;
    return ParseBlockTyped(
        chunk, c, type, bn, options, out,
        [=](size_t i, size_t* r, uint32_t* s, uint32_t* e) {
          *r = b0 + i;
          const uint32_t* p = slot + i * stride;
          *s = p[0];
          *e = p[1] - adj;
        });
  }
  return ParseBlockTyped(chunk, c, type, bn, options, out,
                         [&map, sel, c, b0](size_t i, size_t* r, uint32_t* s,
                                            uint32_t* e) {
                           *r = sel != nullptr ? sel[b0 + i] : b0 + i;
                           *s = map.FieldStart(*r, c);
                           *e = map.FieldEnd(*r, c);
                         });
}

// Rows per processing block: columns are parsed block-at-a-time so the
// text and map bytes a block touches stay cache-resident while every
// projected column walks them (a whole wide chunk would be re-streamed
// from memory once per column otherwise).
constexpr size_t kParseRowBlock = 512;

}  // namespace

Result<BinaryChunk> ParseChunk(const TextChunk& chunk,
                               const PositionalMap& map, const Schema& schema,
                               const ParseOptions& options) {
  std::vector<size_t> cols = options.projected_columns;
  if (cols.empty()) {
    cols.resize(schema.num_columns());
    for (size_t i = 0; i < cols.size(); ++i) cols[i] = i;
  }
  for (size_t c : cols) {
    if (c >= schema.num_columns()) {
      return Status::InvalidArgument(
          StringPrintf("projected column %zu out of range", c));
    }
    if (c >= map.fields_per_row()) {
      return Status::InvalidArgument(StringPrintf(
          "column %zu not covered by positional map (%zu fields)", c,
          map.fields_per_row()));
    }
  }
  if (options.pushdown.has_value()) {
    const size_t pc = options.pushdown->column;
    if (pc >= map.fields_per_row()) {
      return Status::InvalidArgument("push-down column not tokenized");
    }
    if (schema.column(pc).type == FieldType::kString) {
      return Status::InvalidArgument("push-down filter on string column");
    }
  }
  if (map.num_rows() != chunk.num_rows()) {
    return Status::InvalidArgument("positional map / chunk row mismatch");
  }

  const std::string_view data(chunk.data);
  const size_t num_rows = chunk.num_rows();

  // Push-down selection first (§2): one typed pass over the predicate
  // column produces the row selection every projected column then honors.
  std::vector<uint32_t> selected;
  const bool filtered = options.pushdown.has_value();
  if (filtered) {
    const auto& pd = *options.pushdown;
    const FieldType pt = schema.column(pd.column).type;
    const char* base = data.data();
    selected.reserve(num_rows);
    for (size_t r = 0; r < num_rows; ++r) {
      const uint32_t s = map.FieldStart(r, pd.column);
      const uint32_t e = map.FieldEnd(r, pd.column);
      int64_t value = 0;
      bool parsed = false;
      switch (pt) {
        case FieldType::kUint32: {
          uint32_t v = 0;
          parsed = TryParseUint32(base + s, base + e, &v);
          value = static_cast<int64_t>(v);
          break;
        }
        case FieldType::kInt64:
          parsed = TryParseInt64(base + s, base + e, &value);
          break;
        case FieldType::kDouble: {
          double v = 0;
          parsed = TryParseDouble(base + s, base + e, &v);
          value = static_cast<int64_t>(v);
          break;
        }
        case FieldType::kString:
          break;  // rejected by validation above
      }
      if (!parsed) return ParseNumeric(data.substr(s, e - s), pt).status();
      if (value >= pd.min_value && value <= pd.max_value) {
        selected.push_back(static_cast<uint32_t>(r));
      }
    }
  }
  const uint32_t* sel = filtered ? selected.data() : nullptr;
  const size_t out_rows = filtered ? selected.size() : num_rows;

  std::vector<ColumnVector> vectors;
  vectors.reserve(cols.size());
  for (size_t c : cols) {
    ColumnVector vec(schema.column(c).type);
    if (options.recycler != nullptr) vec.AdoptBuffersFrom(options.recycler);
    vec.Reserve(out_rows);
    vectors.push_back(std::move(vec));
  }
  for (size_t b0 = 0; b0 < out_rows; b0 += kParseRowBlock) {
    const size_t bn = std::min(kParseRowBlock, out_rows - b0);
    for (size_t j = 0; j < cols.size(); ++j) {
      SCANRAW_RETURN_IF_ERROR(ParseColumnBlock(chunk, map, cols[j],
                                               schema.column(cols[j]).type,
                                               sel, b0, bn, options,
                                               &vectors[j]));
    }
  }

  BinaryChunk out(chunk.chunk_index);
  for (size_t j = 0; j < cols.size(); ++j) {
    SCANRAW_RETURN_IF_ERROR(out.AddColumn(cols[j], std::move(vectors[j])));
  }
  if (out.num_columns() > 0 && out.num_rows() == 0) {
    // All rows filtered out: keep an explicit zero-row chunk.
    out.set_num_rows(0);
  }
  return out;
}

}  // namespace scanraw
