#include "format/tokenizer.h"

#include "common/byte_scan.h"
#include "common/string_util.h"

namespace scanraw {

namespace {

// End offset (within chunk.data) of line `r`, excluding newline characters.
uint32_t LineEnd(const TextChunk& chunk, size_t r) {
  uint32_t end = (r + 1 < chunk.line_starts.size())
                     ? chunk.line_starts[r + 1]
                     : static_cast<uint32_t>(chunk.data.size());
  const std::string& d = chunk.data;
  // A line carries at most one '\n' (it is the split byte), possibly
  // preceded by '\r's.
  if (end > chunk.line_starts[r] && d[end - 1] == '\n') --end;
  while (end > chunk.line_starts[r] && d[end - 1] == '\r') --end;
  return end;
}

// One RFC-4180 row: fields split at delimiters found at outside-quote
// parity — the exact FSM the record scanner (format/parallel_chunker) runs,
// so READ and TOKENIZE agree on every byte of every input, well-formed or
// not. Spans of fully-quoted fields exclude the enclosing quotes; doubled
// quotes inside stay for PARSE to collapse.
Status TokenizeRowQuoted(const TextChunk& chunk,
                         const TokenizeOptions& options, size_t fields,
                         size_t r, PositionalMap* map) {
  const char delim = options.delimiter;
  const char quote = options.quote;
  const char* data = chunk.data.data();
  const uint32_t end = LineEnd(chunk, r);
  size_t pos = chunk.line_starts[r];
  size_t f = 0;
  while (true) {
    const size_t field_start = pos;
    // Hop to the next delimiter at outside-quote parity (or line end).
    size_t sep = bytescan::kNpos;
    size_t p = pos;
    bool inside = false;
    while (p < end) {
      if (inside) {
        const size_t q = bytescan::FindByte(data, p, end, quote);
        if (q == bytescan::kNpos) {
          p = end;
          break;
        }
        inside = false;
        p = q + 1;
      } else {
        const size_t q = bytescan::FindEither(data, p, end, quote, delim);
        if (q == bytescan::kNpos) break;
        if (data[q] == quote) {
          inside = true;
          p = q + 1;
        } else {
          sep = q;
          break;
        }
      }
    }
    size_t fs = field_start;
    size_t fe = sep == bytescan::kNpos ? end : sep;
    if (fe - fs >= 2 && data[fs] == quote && data[fe - 1] == quote) {
      ++fs;
      --fe;
    }
    map->SetSpan(r, f, static_cast<uint32_t>(fs), static_cast<uint32_t>(fe));
    ++f;
    if (f == fields) {
      if (sep != bytescan::kNpos && fields == options.schema_fields) {
        return Status::Corruption(StringPrintf(
            "chunk %llu row %zu: more fields than the %zu in the schema",
            static_cast<unsigned long long>(chunk.chunk_index), r, fields));
      }
      return Status::OK();
    }
    if (sep == bytescan::kNpos) {
      return Status::Corruption(StringPrintf(
          "chunk %llu row %zu: expected %zu fields, found %zu",
          static_cast<unsigned long long>(chunk.chunk_index), r, fields, f));
    }
    pos = sep + 1;
  }
}

}  // namespace

Status TokenizeRows(const TextChunk& chunk, const TokenizeOptions& options,
                    size_t row_begin, size_t row_end, PositionalMap* map) {
  const size_t fields = options.EffectiveFields();
  if (options.quoted) {
    for (size_t r = row_begin; r < row_end; ++r) {
      SCANRAW_RETURN_IF_ERROR(TokenizeRowQuoted(chunk, options, fields, r,
                                                map));
    }
    return Status::OK();
  }
  const char delim = options.delimiter;
  const char* data = chunk.data.data();
  for (size_t r = row_begin; r < row_end; ++r) {
    const uint32_t start = chunk.line_starts[r];
    const uint32_t end = LineEnd(chunk, r);
    // One bulk scan per row: every delimiter hit writes the next field's
    // start (bias 1) straight into the row's slot array, and the overflow
    // match doubles as the end-of-last-field / extra-field probe.
    uint32_t* slots = map->MutableRow(r);
    slots[0] = start;
    size_t next = bytescan::kNpos;
    const size_t found = bytescan::FindN(data, start, end, delim, slots + 1,
                                         fields - 1, /*bias=*/1, &next);
    if (found < fields - 1) {
      return Status::Corruption(StringPrintf(
          "chunk %llu row %zu: expected %zu fields, found %zu",
          static_cast<unsigned long long>(chunk.chunk_index), r, fields,
          found + 1));
    }
    if (next != bytescan::kNpos && fields == options.schema_fields) {
      return Status::Corruption(StringPrintf(
          "chunk %llu row %zu: more fields than the %zu in the schema",
          static_cast<unsigned long long>(chunk.chunk_index), r, fields));
    }
    // End of the last tokenized field: next delimiter or end of line.
    slots[fields] = (next != bytescan::kNpos && fields < options.schema_fields)
                        ? static_cast<uint32_t>(next)
                        : end;
  }
  return Status::OK();
}

Result<PositionalMap> TokenizeChunk(const TextChunk& chunk,
                                    const TokenizeOptions& options) {
  if (options.schema_fields == 0) {
    return Status::InvalidArgument("schema_fields must be > 0");
  }
  PositionalMap map(chunk.num_rows(), options.EffectiveFields(),
                    /*explicit_ends=*/options.quoted);
  Status status = TokenizeRows(chunk, options, 0, chunk.num_rows(), &map);
  if (!status.ok()) return status;
  return map;
}

Result<PositionalMap> ExtendTokenizeMap(const TextChunk& chunk,
                                        const PositionalMap& base,
                                        const TokenizeOptions& options) {
  if (options.schema_fields == 0) {
    return Status::InvalidArgument("schema_fields must be > 0");
  }
  if (base.num_rows() != chunk.num_rows()) {
    return Status::InvalidArgument("base map / chunk row mismatch");
  }
  const size_t fields = options.EffectiveFields();
  const size_t base_fields = base.fields_per_row();
  if (base_fields == 0) return TokenizeChunk(chunk, options);
  const char delim = options.delimiter;
  const char* data = chunk.data.data();
  PositionalMap map(chunk.num_rows(), fields);

  for (size_t r = 0; r < chunk.num_rows(); ++r) {
    const size_t copied = std::min(fields, base_fields);
    for (size_t f = 0; f < copied; ++f) map.Set(r, f, base.FieldStart(r, f));
    if (fields <= base_fields) {
      // Fully covered: the end slot is either base's recorded end or the
      // byte before the next mapped field's start (the delimiter).
      map.Set(r, fields,
              fields == base_fields ? base.FieldEnd(r, base_fields - 1)
                                    : base.FieldStart(r, fields) - 1);
      continue;
    }
    // Resume the scan right after the last mapped field. `field_end` tracks
    // the end offset of the most recent field (a delimiter position, or the
    // line end for the final field of the row).
    const uint32_t end = LineEnd(chunk, r);
    uint32_t field_end = base.FieldEnd(r, base_fields - 1);
    for (size_t f = base_fields; f < fields; ++f) {
      if (field_end >= end) {
        return Status::Corruption(StringPrintf(
            "chunk %llu row %zu: expected %zu fields, found %zu",
            static_cast<unsigned long long>(chunk.chunk_index), r, fields,
            f));
      }
      const uint32_t start = field_end + 1;  // skip the delimiter
      map.Set(r, f, start);
      const size_t hit = bytescan::FindByte(data, start, end, delim);
      field_end = hit == bytescan::kNpos ? end : static_cast<uint32_t>(hit);
    }
    if (fields == options.schema_fields && field_end != end) {
      return Status::Corruption(StringPrintf(
          "chunk %llu row %zu: more fields than the %zu in the schema",
          static_cast<unsigned long long>(chunk.chunk_index), r, fields));
    }
    map.Set(r, fields, field_end);
  }
  return map;
}

}  // namespace scanraw
