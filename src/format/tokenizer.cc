#include "format/tokenizer.h"

#include <cstring>

#include "common/string_util.h"

namespace scanraw {

namespace {

// End offset (within chunk.data) of line `r`, excluding newline characters.
uint32_t LineEnd(const TextChunk& chunk, size_t r) {
  uint32_t end = (r + 1 < chunk.line_starts.size())
                     ? chunk.line_starts[r + 1]
                     : static_cast<uint32_t>(chunk.data.size());
  const std::string& d = chunk.data;
  while (end > chunk.line_starts[r] &&
         (d[end - 1] == '\n' || d[end - 1] == '\r')) {
    --end;
  }
  return end;
}

}  // namespace

Result<PositionalMap> TokenizeChunk(const TextChunk& chunk,
                                    const TokenizeOptions& options) {
  if (options.schema_fields == 0) {
    return Status::InvalidArgument("schema_fields must be > 0");
  }
  const size_t fields = options.EffectiveFields();
  const char delim = options.delimiter;
  const char* data = chunk.data.data();
  PositionalMap map(chunk.num_rows(), fields);

  for (size_t r = 0; r < chunk.num_rows(); ++r) {
    uint32_t pos = chunk.line_starts[r];
    const uint32_t end = LineEnd(chunk, r);
    map.Set(r, 0, pos);
    for (size_t f = 1; f < fields; ++f) {
      // memchr beats a hand-rolled loop for long fields and matches it for
      // short ones.
      const char* hit = static_cast<const char*>(
          std::memchr(data + pos, delim, end - pos));
      if (hit == nullptr) {
        return Status::Corruption(StringPrintf(
            "chunk %llu row %zu: expected %zu fields, found %zu",
            static_cast<unsigned long long>(chunk.chunk_index), r, fields, f));
      }
      pos = static_cast<uint32_t>(hit - data) + 1;
      map.Set(r, f, pos);
    }
    // End of the last tokenized field: next delimiter or end of line.
    const char* hit =
        static_cast<const char*>(std::memchr(data + pos, delim, end - pos));
    uint32_t last_end = (hit != nullptr && fields < options.schema_fields)
                            ? static_cast<uint32_t>(hit - data)
                            : end;
    if (hit != nullptr && fields == options.schema_fields) {
      return Status::Corruption(StringPrintf(
          "chunk %llu row %zu: more fields than the %zu in the schema",
          static_cast<unsigned long long>(chunk.chunk_index), r, fields));
    }
    map.Set(r, fields, last_end);
  }
  return map;
}

Result<PositionalMap> ExtendTokenizeMap(const TextChunk& chunk,
                                        const PositionalMap& base,
                                        const TokenizeOptions& options) {
  if (options.schema_fields == 0) {
    return Status::InvalidArgument("schema_fields must be > 0");
  }
  if (base.num_rows() != chunk.num_rows()) {
    return Status::InvalidArgument("base map / chunk row mismatch");
  }
  const size_t fields = options.EffectiveFields();
  const size_t base_fields = base.fields_per_row();
  if (base_fields == 0) return TokenizeChunk(chunk, options);
  const char delim = options.delimiter;
  const char* data = chunk.data.data();
  PositionalMap map(chunk.num_rows(), fields);

  for (size_t r = 0; r < chunk.num_rows(); ++r) {
    const size_t copied = std::min(fields, base_fields);
    for (size_t f = 0; f < copied; ++f) map.Set(r, f, base.FieldStart(r, f));
    if (fields <= base_fields) {
      // Fully covered: the end slot is either base's recorded end or the
      // byte before the next mapped field's start (the delimiter).
      map.Set(r, fields,
              fields == base_fields ? base.FieldEnd(r, base_fields - 1)
                                    : base.FieldStart(r, fields) - 1);
      continue;
    }
    // Resume the scan right after the last mapped field. `field_end` tracks
    // the end offset of the most recent field (a delimiter position, or the
    // line end for the final field of the row).
    const uint32_t end = LineEnd(chunk, r);
    uint32_t field_end = base.FieldEnd(r, base_fields - 1);
    for (size_t f = base_fields; f < fields; ++f) {
      if (field_end >= end) {
        return Status::Corruption(StringPrintf(
            "chunk %llu row %zu: expected %zu fields, found %zu",
            static_cast<unsigned long long>(chunk.chunk_index), r, fields,
            f));
      }
      const uint32_t start = field_end + 1;  // skip the delimiter
      map.Set(r, f, start);
      const char* hit = static_cast<const char*>(
          std::memchr(data + start, delim, end - start));
      field_end = hit == nullptr ? end : static_cast<uint32_t>(hit - data);
    }
    if (fields == options.schema_fields && field_end != end) {
      return Status::Corruption(StringPrintf(
          "chunk %llu row %zu: more fields than the %zu in the schema",
          static_cast<unsigned long long>(chunk.chunk_index), r, fields));
    }
    map.Set(r, fields, field_end);
  }
  return map;
}

}  // namespace scanraw
