// TOKENIZE stage: identifies attribute boundaries within each line of a text
// chunk (§2). Supports full tokenizing and selective tokenizing — stopping
// the linear scan after the last attribute the query needs ([5]'s selective
// tokenizing, reproduced for the Figure 6 experiment).
#ifndef SCANRAW_FORMAT_TOKENIZER_H_
#define SCANRAW_FORMAT_TOKENIZER_H_

#include <cstddef>

#include "common/result.h"
#include "format/positional_map.h"
#include "format/text_chunk.h"

namespace scanraw {

struct TokenizeOptions {
  char delimiter = ',';
  // Total attributes per row according to the schema.
  size_t schema_fields = 0;
  // Tokenize only the first `max_fields` attributes of each row (selective
  // tokenizing). Clamped to schema_fields; 0 means "all".
  size_t max_fields = 0;
  // RFC-4180 quoted dialect: fields may be enclosed in `quote`; embedded
  // delimiters and newlines stay literal inside quotes and a doubled quote
  // escapes one quote character. Quoted tokenizing emits an explicit-ends
  // map (a quoted field does not end one byte before the next field's
  // start) whose spans exclude the enclosing quotes; doubled quotes inside
  // the span are collapsed by PARSE (ParseOptions::unescape_quotes).
  bool quoted = false;
  char quote = '"';

  size_t EffectiveFields() const {
    if (max_fields == 0 || max_fields > schema_fields) return schema_fields;
    return max_fields;
  }
};

// Scans `chunk` and fills a positional map with the start offset of each of
// the first EffectiveFields() attributes per row (plus the end-of-row slot).
// Returns Corruption if a row has fewer delimiters than requested.
Result<PositionalMap> TokenizeChunk(const TextChunk& chunk,
                                    const TokenizeOptions& options);

// Tokenizes rows [row_begin, row_end) of `chunk` into `*map`, which must
// cover the chunk's rows in the layout TokenizeChunk would build for these
// options (explicit-ends when quoted, compact otherwise). Exposed so the
// parallel chunker can fan disjoint row ranges of one shared map across
// workers; TokenizeChunk itself is this over [0, num_rows).
Status TokenizeRows(const TextChunk& chunk, const TokenizeOptions& options,
                    size_t row_begin, size_t row_end, PositionalMap* map);

// Incremental tokenizing with a cached partial map (§2: "a partial map can
// provide significant reductions even for the attributes whose positions
// are not stored ... find the position of the closest attribute already in
// the map and scan forward from there"). Reuses the offsets `base` already
// holds for this chunk and scans forward only past its last mapped field.
// If `base` already covers the requested fields this is a copy.
Result<PositionalMap> ExtendTokenizeMap(const TextChunk& chunk,
                                        const PositionalMap& base,
                                        const TokenizeOptions& options);

}  // namespace scanraw

#endif  // SCANRAW_FORMAT_TOKENIZER_H_
