// PositionalMap: the TOKENIZE output — for every row, the starting offset of
// each attribute within the chunk buffer (§2: "the output of TOKENIZE is a
// vector containing the starting position for every attribute in the
// tuple"). Supports partial maps produced by selective tokenizing: only the
// first `fields_per_row` attributes of each row are recorded.
//
// Two layouts share the interface:
//  * compact (delimited text): F+1 slots per row — field starts plus one
//    end-of-last-field slot; field f ends one byte before field f+1 starts.
//  * explicit-ends (JSON and other non-adjacent formats): 2F slots per row —
//    independent (start, end) pairs, since values are separated by keys and
//    punctuation rather than a single delimiter.
#ifndef SCANRAW_FORMAT_POSITIONAL_MAP_H_
#define SCANRAW_FORMAT_POSITIONAL_MAP_H_

#include <cstdint>
#include <vector>

namespace scanraw {

class PositionalMap {
 public:
  PositionalMap() = default;
  PositionalMap(size_t num_rows, size_t fields_per_row,
                bool explicit_ends = false)
      : fields_per_row_(fields_per_row), explicit_ends_(explicit_ends) {
    offsets_.resize(num_rows * SlotsPerRow());
  }

  size_t num_rows() const {
    return fields_per_row_ == 0 ? 0 : offsets_.size() / SlotsPerRow();
  }
  size_t fields_per_row() const { return fields_per_row_; }
  bool explicit_ends() const { return explicit_ends_; }

  // True when every attribute of the schema is mapped.
  bool IsCompleteFor(size_t schema_fields) const {
    return fields_per_row_ >= schema_fields;
  }

  // Offset (within the chunk buffer) where field `f` of row `r` starts.
  uint32_t FieldStart(size_t r, size_t f) const {
    return explicit_ends_ ? offsets_[r * SlotsPerRow() + 2 * f]
                          : offsets_[r * SlotsPerRow() + f];
  }
  // Offset one past the end of field `f` of row `r` (excludes delimiter).
  uint32_t FieldEnd(size_t r, size_t f) const {
    if (explicit_ends_) return offsets_[r * SlotsPerRow() + 2 * f + 1];
    // Field f's slot f+1 holds the start of field f+1; the delimiter sits
    // just before it, so the field itself ends one byte earlier. The final
    // slot holds the true end-of-row and needs no adjustment.
    const uint32_t next = offsets_[r * SlotsPerRow() + f + 1];
    return (f + 1 == fields_per_row_) ? next : next - 1;
  }

  // Compact layout only: raw slot write (slot in [0, fields_per_row]).
  void Set(size_t r, size_t slot, uint32_t offset) {
    offsets_[r * SlotsPerRow() + slot] = offset;
  }

  // Compact layout only: direct pointer to row `r`'s slot array
  // (fields_per_row + 1 entries). The tokenizer bulk-writes a whole row of
  // field starts here in one multi-match scan.
  uint32_t* MutableRow(size_t r) { return offsets_.data() + r * SlotsPerRow(); }

  // Compact layout only: read-side counterpart of MutableRow. The parser's
  // per-column loops walk rows through this with a hoisted stride instead
  // of paying FieldStart/FieldEnd's index arithmetic per field.
  const uint32_t* RowData(size_t r) const {
    return offsets_.data() + r * SlotsPerRow();
  }

  // Explicit-ends layout only: records one field's span.
  void SetSpan(size_t r, size_t f, uint32_t start, uint32_t end) {
    offsets_[r * SlotsPerRow() + 2 * f] = start;
    offsets_[r * SlotsPerRow() + 2 * f + 1] = end;
  }

  size_t MemoryBytes() const { return offsets_.size() * sizeof(uint32_t); }

  // Serialization access: the raw slot array, layout-agnostic.
  const std::vector<uint32_t>& raw_offsets() const { return offsets_; }

  // Rebuilds a map from persisted parts. `offsets.size()` must be a whole
  // multiple of the layout's slots-per-row; callers validate before calling.
  static PositionalMap FromOffsets(size_t fields_per_row, bool explicit_ends,
                                   std::vector<uint32_t> offsets) {
    PositionalMap map;
    map.fields_per_row_ = fields_per_row;
    map.explicit_ends_ = explicit_ends;
    map.offsets_ = std::move(offsets);
    return map;
  }

 private:
  size_t SlotsPerRow() const {
    return explicit_ends_ ? 2 * fields_per_row_ : fields_per_row_ + 1;
  }

  size_t fields_per_row_ = 0;
  bool explicit_ends_ = false;
  std::vector<uint32_t> offsets_;
};

}  // namespace scanraw

#endif  // SCANRAW_FORMAT_POSITIONAL_MAP_H_
