// Catalog: metadata the database keeps about raw files and their (partially)
// loaded chunks — raw offsets, row counts, per-column min/max statistics,
// and the storage location of every loaded column set (§3.3: "statistics
// include the position in the raw file where each chunk starts and the
// minimum/maximum value corresponding to each attribute in every chunk").
#ifndef SCANRAW_DB_CATALOG_H_
#define SCANRAW_DB_CATALOG_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "format/schema.h"

namespace scanraw {

// Location of a serialized page blob inside the database file.
struct PageRef {
  uint64_t offset = 0;
  uint64_t size = 0;
};

// Min/max statistic for one numeric column of one chunk. For kDouble
// columns the exact bounds live in min_double/max_double (persisted as
// hexfloat so they round-trip bit-exactly); min_value/max_value then hold a
// conservative floor/ceil envelope for integer-only consumers. Truncating
// doubles into the int64 fields is how restarted catalogs used to wrongly
// skip chunks (min -3.5 became -3).
struct ColumnStats {
  int64_t min_value = 0;
  int64_t max_value = 0;
  bool has_double = false;
  double min_double = 0.0;
  double max_double = 0.0;
};

// One blob written by WRITE: a column subset of a chunk.
struct StoredSegment {
  PageRef page;
  std::vector<size_t> columns;
};

struct ChunkMetadata {
  uint64_t chunk_index = 0;
  uint64_t raw_offset = 0;   // byte offset of the chunk in the raw file
  uint64_t raw_size = 0;     // byte length of the chunk in the raw file
  uint64_t num_rows = 0;
  std::map<size_t, ColumnStats> stats;   // numeric columns only
  std::vector<StoredSegment> segments;   // loaded column sets, in load order
  std::set<size_t> loaded_columns;       // union of segment columns

  bool HasColumnsLoaded(const std::vector<size_t>& cols) const {
    for (size_t c : cols) {
      if (!loaded_columns.count(c)) return false;
    }
    return true;
  }

  // True when min/max statistics prove no row of this chunk can satisfy
  // value-in-[lo,hi] on `column`. Unknown stats => cannot skip. Double
  // columns are judged on their exact double bounds; the int64 envelope is
  // only a fallback (it is conservative, so never skips wrongly).
  bool CanSkipForRange(size_t column, int64_t lo, int64_t hi) const {
    auto it = stats.find(column);
    if (it == stats.end()) return false;
    const ColumnStats& st = it->second;
    if (st.has_double) {
      return st.max_double < static_cast<double>(lo) ||
             st.min_double > static_cast<double>(hi);
    }
    return st.max_value < lo || st.min_value > hi;
  }
};

struct TableMetadata {
  std::string name;
  std::string raw_path;
  Schema schema;
  uint64_t target_chunk_rows = 0;
  // True once an initial full scan established the chunk layout below.
  bool layout_known = false;
  std::vector<ChunkMetadata> chunks;

  uint64_t num_chunks() const { return chunks.size(); }

  // True when every column of every chunk is loaded (the raw file is no
  // longer needed and the ScanRaw operator can be retired, §3.3).
  bool FullyLoaded() const;

  // Fraction of (chunk, column) pairs loaded, in [0, 1].
  double LoadedFraction() const;
};

// Thread-safe registry of tables. All accessors copy out metadata so callers
// never hold references into the locked structures.
class Catalog {
 public:
  Status CreateTable(const std::string& name, const std::string& raw_path,
                     const Schema& schema, uint64_t target_chunk_rows);
  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const;
  Result<TableMetadata> GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // Records the chunk layout discovered by the first raw-file scan.
  Status SetChunkLayout(const std::string& name,
                        std::vector<ChunkMetadata> chunks);

  // Incremental layout discovery: appends one chunk (its index must equal
  // the current chunk count) while the first sequential scan is running,
  // then MarkLayoutComplete seals the layout. Lets WRITE record segments
  // for early chunks before the scan has reached the end of the file.
  Status AppendChunk(const std::string& name, const ChunkMetadata& chunk);
  Status MarkLayoutComplete(const std::string& name);

  // Adds one stored segment (and merges statistics) for a chunk.
  Status RecordSegment(const std::string& name, uint64_t chunk_index,
                       const StoredSegment& segment,
                       const std::map<size_t, ColumnStats>& stats);

  // What LoadFromFile observed about the on-disk catalog; recovery uses it
  // to report what was tolerated.
  struct LoadStats {
    int version = 0;                // 1 for legacy headerless files
    bool torn_tail_dropped = false; // a partial trailing line was discarded
    std::string torn_tail;          // the discarded text, for logging
  };

  // Persistence (versioned line-oriented text format with percent-escaped
  // fields). SaveToFile snapshots under the lock, then serializes and
  // writes outside it (via AtomicWriteFile), so slow disks never stall
  // concurrent GetTable/RecordSegment. LoadFromFile tolerates a torn,
  // unterminated final line (the file may come from a legacy non-atomic
  // writer); all other corruption still fails the load.
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path,
                      LoadStats* load_stats = nullptr);

  // Deep copy of every table (point-in-time consistent view).
  std::map<std::string, TableMetadata> Snapshot() const;
  // Replaces the whole catalog content; restart reconciliation rewrites the
  // loaded state through this after cross-validating against storage.
  void Restore(std::map<std::string, TableMetadata> tables);

 private:
  mutable Mutex mu_{LockRank::kCatalog, "Catalog.mu"};
  std::map<std::string, TableMetadata> tables_ GUARDED_BY(mu_);
};

}  // namespace scanraw

#endif  // SCANRAW_DB_CATALOG_H_
