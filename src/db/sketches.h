// Advanced statistics sketches (§3.3: "More advanced statistics such as
// the number of distinct elements and the skew of an attribute — or even
// samples — can be also extracted during the conversion stage").
//
// KmvSketch is a K-minimum-values distinct-count estimator; ReservoirSample
// keeps a uniform fixed-size sample. TableSketches aggregates both per
// column and is safe to update concurrently from parse workers.
#ifndef SCANRAW_DB_SKETCHES_H_
#define SCANRAW_DB_SKETCHES_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "columnar/binary_chunk.h"
#include "common/thread_annotations.h"

namespace scanraw {

// K-minimum-values estimator: keeps the k smallest 64-bit hashes seen;
// with the k-th smallest at hash h, distinct ~= (k-1) * 2^64 / h.
// Duplicates hash identically, so re-scanning data does not bias it.
class KmvSketch {
 public:
  explicit KmvSketch(size_t k = 256) : k_(k) {}

  void AddHash(uint64_t hash);
  void AddInt(int64_t value);
  void AddString(std::string_view value);

  // Estimated number of distinct values added so far.
  double EstimateDistinct() const;

  // Exact when fewer than k distinct values were seen.
  bool IsExact() const { return mins_.size() < k_; }

  void Merge(const KmvSketch& other);

  size_t k() const { return k_; }

 private:
  size_t k_;
  std::set<uint64_t> mins_;  // at most k_ smallest hashes
};

// Algorithm-R reservoir sampling over int64 values; deterministic for a
// given seed and insertion order.
class ReservoirSample {
 public:
  explicit ReservoirSample(size_t capacity = 64, uint64_t seed = 1);

  void Add(int64_t value);

  const std::vector<int64_t>& samples() const { return samples_; }
  uint64_t values_seen() const { return seen_; }

 private:
  size_t capacity_;
  uint64_t state_;
  uint64_t seen_ = 0;
  std::vector<int64_t> samples_;
};

struct ColumnSketch {
  KmvSketch distinct;
  ReservoirSample sample;
};

// Per-column sketches for one table. AddChunk folds every column of a
// converted chunk in; string columns feed the distinct sketch only.
class TableSketches {
 public:
  explicit TableSketches(size_t kmv_k = 256, size_t sample_capacity = 64)
      : kmv_k_(kmv_k), sample_capacity_(sample_capacity) {}

  void AddChunk(const BinaryChunk& chunk) EXCLUDES(mu_);

  // Estimated distinct count for a column; 0 if never seen.
  double EstimateDistinct(size_t column) const EXCLUDES(mu_);

  // Snapshot of the current sample (numeric columns only).
  std::vector<int64_t> Sample(size_t column) const EXCLUDES(mu_);

  uint64_t chunks_added() const EXCLUDES(mu_);

 private:
  const size_t kmv_k_;
  const size_t sample_capacity_;
  mutable Mutex mu_{LockRank::kSketches, "TableSketches.mu"};
  std::map<size_t, ColumnSketch> columns_ GUARDED_BY(mu_);
  uint64_t chunks_added_ GUARDED_BY(mu_) = 0;
};

}  // namespace scanraw

#endif  // SCANRAW_DB_SKETCHES_H_
