#include "db/heap_scan.h"

namespace scanraw {

HeapScan::HeapScan(const TableMetadata& table, const StorageManager* storage,
                   std::vector<size_t> columns)
    : table_(table), storage_(storage), columns_(std::move(columns)) {}

void HeapScan::SetRangeFilter(size_t column, int64_t lo, int64_t hi) {
  has_filter_ = true;
  filter_column_ = column;
  filter_lo_ = lo;
  filter_hi_ = hi;
}

Result<std::optional<BinaryChunk>> HeapScan::Next() {
  while (next_chunk_ < table_.chunks.size()) {
    const ChunkMetadata& meta = table_.chunks[next_chunk_++];
    if (!meta.HasColumnsLoaded(columns_)) continue;
    if (has_filter_ &&
        meta.CanSkipForRange(filter_column_, filter_lo_, filter_hi_)) {
      ++chunks_skipped_;
      if (skipped_counter_ != nullptr) skipped_counter_->Add(1);
      continue;
    }
    auto chunk = storage_->ReadChunkColumns(meta, columns_);
    if (!chunk.ok()) return chunk.status();
    ++chunks_scanned_;
    if (scanned_counter_ != nullptr) scanned_counter_->Add(1);
    return std::optional<BinaryChunk>(std::move(*chunk));
  }
  return std::optional<BinaryChunk>();
}

}  // namespace scanraw
