// Statistics collection performed "while data are converted in the database
// representation" (§3.3). Min/max per numeric column feed chunk skipping and
// cardinality estimation.
#ifndef SCANRAW_DB_STATISTICS_H_
#define SCANRAW_DB_STATISTICS_H_

#include <map>

#include "columnar/binary_chunk.h"
#include "db/catalog.h"

namespace scanraw {

// Computes min/max for every numeric column present in the chunk. String
// columns are skipped. Zero-row chunks produce no entries.
std::map<size_t, ColumnStats> ComputeChunkStats(const BinaryChunk& chunk);

// Simple equi-width cardinality estimate for `value in [lo, hi]` on one
// chunk, assuming a uniform distribution between the recorded min and max.
// Returns num_rows when no statistic is available (conservative).
uint64_t EstimateRangeCardinality(const ChunkMetadata& chunk, size_t column,
                                  int64_t lo, int64_t hi);

}  // namespace scanraw

#endif  // SCANRAW_DB_STATISTICS_H_
