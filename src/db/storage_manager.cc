#include "db/storage_manager.h"

#include "columnar/chunk_serde.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "io/fault_injection.h"

namespace scanraw {

Result<std::unique_ptr<StorageManager>> StorageManager::Create(
    const std::string& path, RateLimiter* limiter, IoStats* stats) {
  auto writer = WritableFile::Create(path, limiter, stats);
  if (!writer.ok()) return writer.status();
  return std::unique_ptr<StorageManager>(
      new StorageManager(path, std::move(*writer), limiter, stats));
}

Result<std::unique_ptr<StorageManager>> StorageManager::OpenExisting(
    const std::string& path, RateLimiter* limiter, IoStats* stats) {
  auto writer = WritableFile::OpenForAppend(path, limiter, stats);
  if (!writer.ok()) return writer.status();
  auto manager = std::unique_ptr<StorageManager>(
      new StorageManager(path, std::move(*writer), limiter, stats));
  manager->next_offset_ = manager->writer_->bytes_written();
  return manager;
}

StorageManager::StorageManager(std::string path,
                               std::unique_ptr<WritableFile> writer,
                               RateLimiter* limiter, IoStats* stats)
    : path_(std::move(path)),
      limiter_(limiter),
      stats_(stats),
      writer_(std::move(writer)) {}

Result<StoredSegment> StorageManager::WriteSegment(
    const BinaryChunk& chunk, const std::vector<size_t>& columns) {
  BinaryChunk subset(chunk.chunk_index());
  subset.set_num_rows(chunk.num_rows());
  for (size_t col : columns) {
    if (!chunk.HasColumn(col)) {
      return Status::InvalidArgument(
          StringPrintf("chunk lacks column %zu", col));
    }
    SCANRAW_RETURN_IF_ERROR(subset.AddColumn(col, chunk.column(col)));
  }
  std::string blob;
  const int64_t t0 = RealClock::Instance()->NowNanos();
  SCANRAW_RETURN_IF_ERROR(
      SerializeChunk(subset, &blob, compress_.load(std::memory_order_relaxed)));

  MutexLock lock(write_mu_);
  StoredSegment segment;
  segment.page.offset = next_offset_;
  segment.page.size = blob.size();
  segment.columns = columns;
  FaultKillPoint("storage.write_segment.before_append");
  Status append_status = writer_->Append(blob);
  if (!append_status.ok()) {
    // A failed append may still have written a torn prefix (ENOSPC mid
    // write). Resync so the next segment's recorded offset matches the
    // real end of the file instead of overlapping the torn bytes.
    next_offset_ = writer_->bytes_written();
    return append_status;
  }
  FaultKillPoint("storage.write_segment.after_append");
  next_offset_ += blob.size();
  if (segments_metric_ != nullptr) segments_metric_->Add(1);
  if (bytes_metric_ != nullptr) bytes_metric_->Add(blob.size());
  if (write_nanos_metric_ != nullptr) {
    write_nanos_metric_->Record(
        static_cast<uint64_t>(RealClock::Instance()->NowNanos() - t0));
  }
  return segment;
}

Result<StoredSegment> StorageManager::WriteChunk(const BinaryChunk& chunk) {
  return WriteSegment(chunk, chunk.ColumnIds());
}

Status StorageManager::Sync() {
  MutexLock lock(write_mu_);
  return writer_->Sync();
}

Result<BinaryChunk> StorageManager::ReadSegment(const PageRef& page) const {
  {
    MutexLock lock(reader_mu_);
    if (reader_ == nullptr) {
      auto reader = RandomAccessFile::Open(path_, limiter_, stats_);
      if (!reader.ok()) return reader.status();
      reader_ = std::move(*reader);
    }
  }
  std::string blob(page.size, '\0');
  auto n = reader_->ReadAt(page.offset, page.size, blob.data());
  if (!n.ok()) return n.status();
  if (*n != page.size) {
    return Status::Corruption(StringPrintf(
        "short read of segment at %llu: got %zu of %llu bytes",
        static_cast<unsigned long long>(page.offset), *n,
        static_cast<unsigned long long>(page.size)));
  }
  return DeserializeChunk(blob);
}

Status StorageManager::VerifySegment(const PageRef& page) const {
  if (page.offset + page.size > bytes_written()) {
    return Status::Corruption(StringPrintf(
        "segment [%llu, +%llu) extends past storage end %llu",
        static_cast<unsigned long long>(page.offset),
        static_cast<unsigned long long>(page.size),
        static_cast<unsigned long long>(bytes_written())));
  }
  auto chunk = ReadSegment(page);
  return chunk.ok() ? Status::OK() : chunk.status();
}

Result<BinaryChunk> StorageManager::ReadChunkColumns(
    const ChunkMetadata& chunk_meta, const std::vector<size_t>& columns) const {
  if (!chunk_meta.HasColumnsLoaded(columns)) {
    return Status::NotFound(StringPrintf(
        "chunk %llu does not have all requested columns loaded",
        static_cast<unsigned long long>(chunk_meta.chunk_index)));
  }
  BinaryChunk merged(chunk_meta.chunk_index);
  std::set<size_t> needed(columns.begin(), columns.end());
  for (const StoredSegment& seg : chunk_meta.segments) {
    if (needed.empty()) break;
    bool relevant = false;
    for (size_t c : seg.columns) {
      if (needed.count(c)) {
        relevant = true;
        break;
      }
    }
    if (!relevant) continue;
    auto part = ReadSegment(seg.page);
    if (!part.ok()) return part.status();
    SCANRAW_RETURN_IF_ERROR(merged.MergeColumnsFrom(*part));
    for (size_t c : seg.columns) needed.erase(c);
  }
  // Segments may carry extra columns beyond the requested set; they are kept
  // since callers address columns by id.
  return merged;
}

uint64_t StorageManager::bytes_written() const {
  MutexLock lock(write_mu_);
  return next_offset_;
}

void StorageManager::BindMetrics(obs::Counter* segments_written,
                                 obs::Counter* bytes,
                                 obs::Histogram* write_nanos) {
  MutexLock lock(write_mu_);
  segments_metric_ = segments_written;
  bytes_metric_ = bytes;
  write_nanos_metric_ = write_nanos;
}

}  // namespace scanraw
