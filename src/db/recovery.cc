#include "db/recovery.h"

#include <set>
#include <utility>

#include "common/string_util.h"

namespace scanraw {

ReconcileReport ReconcileCatalogWithStorage(Catalog& catalog,
                                            const StorageManager& storage,
                                            bool verify_checksums) {
  ReconcileReport report;
  auto tables = catalog.Snapshot();
  const uint64_t storage_end = storage.bytes_written();
  bool changed = false;

  for (auto& [name, table] : tables) {
    ++report.tables;
    for (ChunkMetadata& chunk : table.chunks) {
      std::vector<StoredSegment> kept;
      kept.reserve(chunk.segments.size());
      bool dropped_any = false;
      for (const StoredSegment& seg : chunk.segments) {
        ++report.segments_checked;
        Status ok = Status::OK();
        if (seg.page.offset + seg.page.size > storage_end) {
          ok = Status::Corruption(StringPrintf(
              "past storage end %llu",
              static_cast<unsigned long long>(storage_end)));
        } else if (verify_checksums) {
          ok = storage.VerifySegment(seg.page);
        }
        if (ok.ok()) {
          kept.push_back(seg);
          continue;
        }
        ++report.segments_dropped;
        dropped_any = true;
        report.details.push_back(StringPrintf(
            "%s chunk %llu: dropped segment [%llu, +%llu): %s", name.c_str(),
            static_cast<unsigned long long>(chunk.chunk_index),
            static_cast<unsigned long long>(seg.page.offset),
            static_cast<unsigned long long>(seg.page.size),
            std::string(ok.message()).c_str()));
      }
      if (!dropped_any) continue;
      changed = true;
      const size_t loaded_before = chunk.loaded_columns.size();
      chunk.segments = std::move(kept);
      chunk.loaded_columns.clear();
      for (const StoredSegment& seg : chunk.segments) {
        for (size_t c : seg.columns) chunk.loaded_columns.insert(c);
      }
      if (chunk.loaded_columns.size() < loaded_before) {
        ++report.chunks_reverted;
      }
    }
  }

  if (changed) catalog.Restore(std::move(tables));
  return report;
}

uint64_t ReconcileHistoryWithCatalog(obs::WorkloadHistory& history,
                                     const Catalog& catalog) {
  std::set<std::string> keep;
  for (const auto& [name, table] : catalog.Snapshot()) keep.insert(name);
  return history.DropTablesNotIn(keep);
}

}  // namespace scanraw
