#include "db/recovery.h"

#include <set>
#include <utility>

#include "common/string_util.h"
#include "io/file.h"

namespace scanraw {

ReconcileReport ReconcileCatalogWithStorage(Catalog& catalog,
                                            const StorageManager& storage,
                                            bool verify_checksums) {
  ReconcileReport report;
  auto tables = catalog.Snapshot();
  const uint64_t storage_end = storage.bytes_written();
  bool changed = false;

  for (auto& [name, table] : tables) {
    ++report.tables;
    for (ChunkMetadata& chunk : table.chunks) {
      std::vector<StoredSegment> kept;
      kept.reserve(chunk.segments.size());
      bool dropped_any = false;
      for (const StoredSegment& seg : chunk.segments) {
        ++report.segments_checked;
        Status ok = Status::OK();
        if (seg.page.offset + seg.page.size > storage_end) {
          ok = Status::Corruption(StringPrintf(
              "past storage end %llu",
              static_cast<unsigned long long>(storage_end)));
        } else if (verify_checksums) {
          ok = storage.VerifySegment(seg.page);
        }
        if (ok.ok()) {
          kept.push_back(seg);
          continue;
        }
        ++report.segments_dropped;
        dropped_any = true;
        report.details.push_back(StringPrintf(
            "%s chunk %llu: dropped segment [%llu, +%llu): %s", name.c_str(),
            static_cast<unsigned long long>(chunk.chunk_index),
            static_cast<unsigned long long>(seg.page.offset),
            static_cast<unsigned long long>(seg.page.size),
            std::string(ok.message()).c_str()));
      }
      if (!dropped_any) continue;
      changed = true;
      const size_t loaded_before = chunk.loaded_columns.size();
      chunk.segments = std::move(kept);
      chunk.loaded_columns.clear();
      for (const StoredSegment& seg : chunk.segments) {
        for (size_t c : seg.columns) chunk.loaded_columns.insert(c);
      }
      if (chunk.loaded_columns.size() < loaded_before) {
        ++report.chunks_reverted;
      }
    }
  }

  if (changed) catalog.Restore(std::move(tables));
  return report;
}

uint64_t ReconcileHistoryWithCatalog(obs::WorkloadHistory& history,
                                     const Catalog& catalog) {
  std::set<std::string> keep;
  for (const auto& [name, table] : catalog.Snapshot()) keep.insert(name);
  return history.DropTablesNotIn(keep);
}

std::string PosmapSidecarPath(const std::string& catalog_path,
                              const std::string& table) {
  return catalog_path + ".posmap." + table;
}

Result<PosmapSidecar> LoadPosmapSidecar(const std::string& path,
                                        const TableMetadata& table) {
  if (!FileExists(path)) {
    return Status::NotFound("no posmap sidecar at " + path);
  }
  auto data = ReadFileToString(path);
  if (!data.ok()) return data.status();

  PosmapSidecarHeader header;
  auto decoded = DecodePosmapSidecar(*data, &header);
  if (!decoded.ok()) return decoded.status();
  if (header.table != table.name) {
    return Status::Corruption(StringPrintf(
        "posmap sidecar records table '%s', expected '%s'",
        header.table.c_str(), table.name.c_str()));
  }

  // Exact-stat check: a positional map indexes byte offsets into the raw
  // file, so any change to the file (size or mtime) invalidates the whole
  // sidecar. This mirrors vroom's reopen rule: match exactly or re-index.
  auto stat = StatFile(table.raw_path);
  if (!stat.ok()) return stat.status();
  if (stat->size != header.raw_size ||
      stat->mtime_nanos != header.raw_mtime_nanos) {
    return Status::Corruption(StringPrintf(
        "posmap sidecar stale: raw file is %llu bytes mtime %lld, "
        "sidecar recorded %llu bytes mtime %lld",
        static_cast<unsigned long long>(stat->size),
        static_cast<long long>(stat->mtime_nanos),
        static_cast<unsigned long long>(header.raw_size),
        static_cast<long long>(header.raw_mtime_nanos)));
  }

  PosmapSidecar sidecar;
  sidecar.dialect = header.dialect;
  sidecar.entries.reserve(decoded->size());
  for (auto& entry : *decoded) {
    // Cross-check against the catalog layout when known; a map for a chunk
    // the catalog does not have (or with a different row count) is skipped
    // individually — the rest of the sidecar is still good.
    if (table.layout_known) {
      if (entry.chunk_index >= table.chunks.size()) continue;
      if (entry.map->num_rows() != table.chunks[entry.chunk_index].num_rows) {
        continue;
      }
    }
    sidecar.entries.emplace_back(entry.chunk_index, std::move(entry.map));
  }
  return sidecar;
}

}  // namespace scanraw
