#include "db/catalog.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/string_util.h"
#include "format/parser.h"
#include "io/file.h"

namespace scanraw {

bool TableMetadata::FullyLoaded() const {
  if (!layout_known || chunks.empty()) return false;
  const size_t cols = schema.num_columns();
  for (const auto& chunk : chunks) {
    if (chunk.loaded_columns.size() < cols) return false;
  }
  return true;
}

double TableMetadata::LoadedFraction() const {
  if (!layout_known || chunks.empty() || schema.num_columns() == 0) return 0.0;
  size_t loaded = 0;
  for (const auto& chunk : chunks) loaded += chunk.loaded_columns.size();
  return static_cast<double>(loaded) /
         static_cast<double>(chunks.size() * schema.num_columns());
}

Status Catalog::CreateTable(const std::string& name,
                            const std::string& raw_path, const Schema& schema,
                            uint64_t target_chunk_rows) {
  if (name.empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  MutexLock lock(mu_);
  if (tables_.count(name)) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  TableMetadata meta;
  meta.name = name;
  meta.raw_path = raw_path;
  meta.schema = schema;
  meta.target_chunk_rows = target_chunk_rows;
  tables_.emplace(name, std::move(meta));
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  MutexLock lock(mu_);
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table " + name + " not found");
  }
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const {
  MutexLock lock(mu_);
  return tables_.count(name) > 0;
}

Result<TableMetadata> Catalog::GetTable(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " not found");
  }
  return it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

Status Catalog::SetChunkLayout(const std::string& name,
                               std::vector<ChunkMetadata> chunks) {
  MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " not found");
  }
  if (it->second.layout_known) {
    return Status::AlreadyExists("layout for " + name + " already recorded");
  }
  it->second.chunks = std::move(chunks);
  it->second.layout_known = true;
  return Status::OK();
}

Status Catalog::AppendChunk(const std::string& name,
                            const ChunkMetadata& chunk) {
  MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " not found");
  }
  if (it->second.layout_known) {
    return Status::AlreadyExists("layout for " + name + " already sealed");
  }
  // Idempotent re-append (an abandoned discovery scan may rediscover a
  // prefix of the layout): accept a chunk that matches what is recorded.
  if (chunk.chunk_index < it->second.chunks.size()) {
    const ChunkMetadata& existing = it->second.chunks[chunk.chunk_index];
    if (existing.raw_offset == chunk.raw_offset &&
        existing.raw_size == chunk.raw_size &&
        existing.num_rows == chunk.num_rows) {
      return Status::OK();
    }
    return Status::InvalidArgument(StringPrintf(
        "chunk %llu re-appended with different extent",
        static_cast<unsigned long long>(chunk.chunk_index)));
  }
  if (chunk.chunk_index != it->second.chunks.size()) {
    return Status::InvalidArgument(StringPrintf(
        "appending chunk %llu but %zu chunks recorded",
        static_cast<unsigned long long>(chunk.chunk_index),
        it->second.chunks.size()));
  }
  it->second.chunks.push_back(chunk);
  return Status::OK();
}

Status Catalog::MarkLayoutComplete(const std::string& name) {
  MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " not found");
  }
  it->second.layout_known = true;
  return Status::OK();
}

Status Catalog::RecordSegment(const std::string& name, uint64_t chunk_index,
                              const StoredSegment& segment,
                              const std::map<size_t, ColumnStats>& stats) {
  MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " not found");
  }
  if (chunk_index >= it->second.chunks.size()) {
    return Status::OutOfRange(
        StringPrintf("chunk %llu out of range",
                     static_cast<unsigned long long>(chunk_index)));
  }
  ChunkMetadata& chunk = it->second.chunks[chunk_index];
  chunk.segments.push_back(segment);
  for (size_t c : segment.columns) chunk.loaded_columns.insert(c);
  for (const auto& [col, st] : stats) {
    auto [pos, inserted] = chunk.stats.emplace(col, st);
    if (!inserted) {
      pos->second.min_value = std::min(pos->second.min_value, st.min_value);
      pos->second.max_value = std::max(pos->second.max_value, st.max_value);
      if (st.has_double) {
        if (pos->second.has_double) {
          pos->second.min_double =
              std::min(pos->second.min_double, st.min_double);
          pos->second.max_double =
              std::max(pos->second.max_double, st.max_double);
        } else {
          pos->second.has_double = true;
          pos->second.min_double = st.min_double;
          pos->second.max_double = st.max_double;
        }
      }
    }
  }
  return Status::OK();
}

// ------------------------------------------------------------ persistence --
//
// Versioned line-oriented text format. First line: `scanraw-catalog v2`;
// files without the header are legacy v1 (unescaped fields, int-only
// stats). One record per line:
//   table <name> <raw_path> <delimiter-int> <target_chunk_rows> <layout_known>
//   col <table> <name> <type-int>
//   chunk <table> <index> <raw_offset> <raw_size> <num_rows>
//   stat <table> <chunk> <col> <min> <max> [D <hexmin> <hexmax>]
//   seg <table> <chunk> <offset> <size> <col>[,<col>...]
// String fields (names, raw_path) are percent-escaped so embedded
// whitespace round-trips; double stats use hexfloat (%a) so denormals and
// 17-significant-digit values round-trip bit-exactly.

namespace {

constexpr int kCatalogFormatVersion = 2;
constexpr char kCatalogMagic[] = "scanraw-catalog";

std::string EscapeField(const std::string& s) {
  if (s.empty()) return "%e";  // literal '%' always escapes, so unambiguous
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case ' ': out += "%20"; break;
      case '\t': out += "%09"; break;
      case '\n': out += "%0A"; break;
      case '\r': out += "%0D"; break;
      default: out += c;
    }
  }
  return out;
}

std::string UnescapeField(const std::string& s) {
  if (s == "%e") return "";
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size() && std::isxdigit(s[i + 1]) &&
        std::isxdigit(s[i + 2])) {
      out += static_cast<char>(
          std::stoi(s.substr(i + 1, 2), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string FormatHexDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

Result<double> ParseHexDouble(const std::string& s) {
  if (s.empty()) return Status::Corruption("empty double field");
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    return Status::Corruption("bad double field: " + s);
  }
  return v;
}

}  // namespace

std::map<std::string, TableMetadata> Catalog::Snapshot() const {
  MutexLock lock(mu_);
  return tables_;
}

void Catalog::Restore(std::map<std::string, TableMetadata> tables) {
  MutexLock lock(mu_);
  tables_ = std::move(tables);
}

Status Catalog::SaveToFile(const std::string& path) const {
  // Snapshot under the lock; serialize and hit the disk outside it so a
  // slow device never blocks concurrent GetTable/RecordSegment.
  const std::map<std::string, TableMetadata> tables = Snapshot();
  std::ostringstream out;
  out << kCatalogMagic << " v" << kCatalogFormatVersion << '\n';
  for (const auto& [name, t] : tables) {
    out << "table " << EscapeField(name) << ' ' << EscapeField(t.raw_path)
        << ' ' << static_cast<int>(t.schema.delimiter()) << ' '
        << t.target_chunk_rows << ' ' << (t.layout_known ? 1 : 0) << '\n';
    for (const auto& col : t.schema.columns()) {
      out << "col " << EscapeField(name) << ' ' << EscapeField(col.name)
          << ' ' << static_cast<int>(col.type) << '\n';
    }
    for (const auto& c : t.chunks) {
      out << "chunk " << EscapeField(name) << ' ' << c.chunk_index << ' '
          << c.raw_offset << ' ' << c.raw_size << ' ' << c.num_rows << '\n';
      for (const auto& [col, st] : c.stats) {
        out << "stat " << EscapeField(name) << ' ' << c.chunk_index << ' '
            << col << ' ' << st.min_value << ' ' << st.max_value;
        if (st.has_double) {
          out << " D " << FormatHexDouble(st.min_double) << ' '
              << FormatHexDouble(st.max_double);
        }
        out << '\n';
      }
      for (const auto& seg : c.segments) {
        out << "seg " << EscapeField(name) << ' ' << c.chunk_index << ' '
            << seg.page.offset << ' ' << seg.page.size << ' ';
        for (size_t i = 0; i < seg.columns.size(); ++i) {
          if (i > 0) out << ',';
          out << seg.columns[i];
        }
        out << '\n';
      }
    }
  }
  // Atomic replace: a crash mid-save leaves the previous catalog intact.
  return AtomicWriteFile(path, out.str());
}

Status Catalog::LoadFromFile(const std::string& path, LoadStats* load_stats) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const bool last_terminated =
      contents->empty() || contents->back() == '\n';

  std::vector<std::string> lines;
  {
    std::istringstream in(*contents);
    std::string line;
    while (std::getline(in, line)) lines.push_back(std::move(line));
  }

  int version = 1;
  size_t first = 0;
  if (!lines.empty() &&
      lines[0].compare(0, sizeof(kCatalogMagic) - 1, kCatalogMagic) == 0) {
    std::istringstream hs(lines[0]);
    std::string magic, ver;
    hs >> magic >> ver;
    if (ver.size() < 2 || ver[0] != 'v') {
      return Status::Corruption("bad catalog header: " + lines[0]);
    }
    auto parsed = ParseUint32(ver.substr(1));
    if (!parsed.ok()) {
      return Status::Corruption("bad catalog header: " + lines[0]);
    }
    version = static_cast<int>(*parsed);
    if (version > kCatalogFormatVersion) {
      return Status::Corruption(StringPrintf(
          "catalog version %d newer than supported %d", version,
          kCatalogFormatVersion));
    }
    first = 1;
  }
  // v1 files predate escaping; their fields are raw.
  const bool escaped = version >= 2;
  auto field = [escaped](const std::string& tok) {
    return escaped ? UnescapeField(tok) : tok;
  };

  std::map<std::string, TableMetadata> tables;
  std::map<std::string, std::vector<ColumnDef>> schema_cols;
  std::map<std::string, char> delimiters;

  auto parse_line = [&](const std::string& line) -> Status {
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "table") {
      TableMetadata t;
      std::string name_tok, path_tok;
      int delim = 0, layout = 0;
      ls >> name_tok >> path_tok >> delim >> t.target_chunk_rows >> layout;
      if (ls.fail()) return Status::Corruption("bad table line: " + line);
      t.name = field(name_tok);
      t.raw_path = field(path_tok);
      t.layout_known = layout != 0;
      delimiters[t.name] = static_cast<char>(delim);
      tables[t.name] = std::move(t);
    } else if (kind == "col") {
      std::string table, col_name;
      int type = 0;
      ls >> table >> col_name >> type;
      if (ls.fail()) return Status::Corruption("bad col line: " + line);
      schema_cols[field(table)].push_back(
          ColumnDef{field(col_name), static_cast<FieldType>(type)});
    } else if (kind == "chunk") {
      std::string table;
      ChunkMetadata c;
      ls >> table >> c.chunk_index >> c.raw_offset >> c.raw_size >> c.num_rows;
      if (ls.fail()) return Status::Corruption("bad chunk line: " + line);
      auto it = tables.find(field(table));
      if (it == tables.end()) return Status::Corruption("chunk before table");
      if (c.chunk_index != it->second.chunks.size()) {
        return Status::Corruption("chunk records out of order");
      }
      it->second.chunks.push_back(std::move(c));
    } else if (kind == "stat") {
      std::string table;
      uint64_t chunk = 0;
      size_t col = 0;
      ColumnStats st;
      ls >> table >> chunk >> col >> st.min_value >> st.max_value;
      if (ls.fail()) return Status::Corruption("bad stat line: " + line);
      std::string tag;
      if (ls >> tag) {
        if (tag != "D") return Status::Corruption("bad stat line: " + line);
        std::string lo_tok, hi_tok;
        ls >> lo_tok >> hi_tok;
        if (ls.fail()) return Status::Corruption("bad stat line: " + line);
        auto lo = ParseHexDouble(lo_tok);
        if (!lo.ok()) return lo.status();
        auto hi = ParseHexDouble(hi_tok);
        if (!hi.ok()) return hi.status();
        st.has_double = true;
        st.min_double = *lo;
        st.max_double = *hi;
      }
      auto it = tables.find(field(table));
      if (it == tables.end() || chunk >= it->second.chunks.size()) {
        return Status::Corruption("stat for unknown chunk");
      }
      it->second.chunks[chunk].stats[col] = st;
    } else if (kind == "seg") {
      std::string table, cols_text;
      uint64_t chunk = 0;
      StoredSegment seg;
      ls >> table >> chunk >> seg.page.offset >> seg.page.size >> cols_text;
      if (ls.fail()) return Status::Corruption("bad seg line: " + line);
      for (auto part : SplitString(cols_text, ',')) {
        auto col = ParseUint32(part);
        if (!col.ok()) return Status::Corruption("bad seg columns: " + line);
        seg.columns.push_back(*col);
      }
      auto it = tables.find(field(table));
      if (it == tables.end() || chunk >= it->second.chunks.size()) {
        return Status::Corruption("seg for unknown chunk");
      }
      ChunkMetadata& cm = it->second.chunks[chunk];
      cm.segments.push_back(seg);
      for (size_t c : seg.columns) cm.loaded_columns.insert(c);
    } else {
      return Status::Corruption("unknown catalog record: " + line);
    }
    return Status::OK();
  };

  LoadStats stats;
  stats.version = version;
  for (size_t i = first; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    Status s = parse_line(lines[i]);
    if (!s.ok()) {
      // A torn trailing line (no final newline) means the writer died
      // mid-append; everything before it is intact, so drop just the tail.
      if (i == lines.size() - 1 && !last_terminated) {
        stats.torn_tail_dropped = true;
        stats.torn_tail = lines[i];
        break;
      }
      return s;
    }
  }
  for (auto& [name, t] : tables) {
    t.schema = Schema(schema_cols[name], delimiters[name]);
  }
  if (load_stats != nullptr) *load_stats = stats;
  Restore(std::move(tables));
  return Status::OK();
}

}  // namespace scanraw
