#include "db/statistics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace scanraw {

namespace {

// Conservative int64 envelope for double bounds: round outward (floor for
// min, ceil for max) and saturate, so integer-only consumers of the stats
// can never skip a chunk that contains matching rows. A plain
// static_cast<int64_t> truncates toward zero — min -3.5 became -3, wrongly
// excluding -3.5 from the zone map.
int64_t FloorToInt64(double v) {
  if (std::isnan(v)) return std::numeric_limits<int64_t>::min();
  const double f = std::floor(v);
  if (f < -9.2233720368547758e18) return std::numeric_limits<int64_t>::min();
  if (f >= 9.2233720368547758e18) return std::numeric_limits<int64_t>::max();
  return static_cast<int64_t>(f);
}

int64_t CeilToInt64(double v) {
  if (std::isnan(v)) return std::numeric_limits<int64_t>::max();
  const double c = std::ceil(v);
  if (c < -9.2233720368547758e18) return std::numeric_limits<int64_t>::min();
  if (c >= 9.2233720368547758e18) return std::numeric_limits<int64_t>::max();
  return static_cast<int64_t>(c);
}

}  // namespace

std::map<size_t, ColumnStats> ComputeChunkStats(const BinaryChunk& chunk) {
  std::map<size_t, ColumnStats> stats;
  if (chunk.num_rows() == 0) return stats;
  for (size_t col : chunk.ColumnIds()) {
    const ColumnVector& vec = chunk.column(col);
    ColumnStats st;
    switch (vec.type()) {
      case FieldType::kUint32: {
        auto values = vec.AsUint32();
        const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
        st.min_value = *lo;
        st.max_value = *hi;
        break;
      }
      case FieldType::kInt64: {
        auto values = vec.AsInt64();
        const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
        st.min_value = *lo;
        st.max_value = *hi;
        break;
      }
      case FieldType::kDouble: {
        auto values = vec.AsDouble();
        const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
        st.has_double = true;
        st.min_double = *lo;
        st.max_double = *hi;
        st.min_value = FloorToInt64(*lo);
        st.max_value = CeilToInt64(*hi);
        break;
      }
      case FieldType::kString:
        continue;
    }
    stats[col] = st;
  }
  return stats;
}

uint64_t EstimateRangeCardinality(const ChunkMetadata& chunk, size_t column,
                                  int64_t lo, int64_t hi) {
  auto it = chunk.stats.find(column);
  if (it == chunk.stats.end()) return chunk.num_rows;
  const ColumnStats& st = it->second;
  if (hi < st.min_value || lo > st.max_value) return 0;
  const double width =
      static_cast<double>(st.max_value - st.min_value) + 1.0;
  const double overlap =
      static_cast<double>(std::min(hi, st.max_value) -
                          std::max(lo, st.min_value)) +
      1.0;
  return static_cast<uint64_t>(static_cast<double>(chunk.num_rows) *
                               (overlap / width));
}

}  // namespace scanraw
