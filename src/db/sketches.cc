#include "db/sketches.h"

#include "columnar/chunk_serde.h"

namespace scanraw {

namespace {

// SplitMix64 finalizer: full-avalanche 64-bit mix for integer values.
uint64_t MixHash(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

void KmvSketch::AddHash(uint64_t hash) {
  if (mins_.size() < k_) {
    mins_.insert(hash);
    return;
  }
  auto last = std::prev(mins_.end());
  if (hash < *last && !mins_.count(hash)) {
    mins_.erase(last);
    mins_.insert(hash);
  }
}

void KmvSketch::AddInt(int64_t value) {
  AddHash(MixHash(static_cast<uint64_t>(value)));
}

void KmvSketch::AddString(std::string_view value) {
  AddHash(Fnv1aHash(value));
}

double KmvSketch::EstimateDistinct() const {
  if (mins_.size() < k_) return static_cast<double>(mins_.size());
  const uint64_t kth = *std::prev(mins_.end());
  if (kth == 0) return static_cast<double>(mins_.size());
  // (k - 1) / normalized k-th minimum.
  return static_cast<double>(k_ - 1) /
         (static_cast<double>(kth) / 1.8446744073709552e19);
}

void KmvSketch::Merge(const KmvSketch& other) {
  for (uint64_t h : other.mins_) AddHash(h);
}

ReservoirSample::ReservoirSample(size_t capacity, uint64_t seed)
    : capacity_(capacity), state_(seed | 1) {
  samples_.reserve(capacity);
}

void ReservoirSample::Add(int64_t value) {
  ++seen_;
  if (samples_.size() < capacity_) {
    samples_.push_back(value);
    return;
  }
  // xorshift64 for the replacement index.
  state_ ^= state_ << 13;
  state_ ^= state_ >> 7;
  state_ ^= state_ << 17;
  const uint64_t index = state_ % seen_;
  if (index < capacity_) samples_[index] = value;
}

void TableSketches::AddChunk(const BinaryChunk& chunk) {
  MutexLock lock(mu_);
  ++chunks_added_;
  for (size_t col : chunk.ColumnIds()) {
    const ColumnVector& vec = chunk.column(col);
    auto it = columns_.find(col);
    if (it == columns_.end()) {
      it = columns_
               .emplace(col, ColumnSketch{KmvSketch(kmv_k_),
                                          ReservoirSample(sample_capacity_,
                                                          col + 1)})
               .first;
    }
    ColumnSketch& sketch = it->second;
    switch (vec.type()) {
      case FieldType::kString:
        for (size_t r = 0; r < vec.size(); ++r) {
          sketch.distinct.AddString(vec.StringAt(r));
        }
        break;
      default:
        for (size_t r = 0; r < vec.size(); ++r) {
          const int64_t v = vec.NumericAt(r);
          sketch.distinct.AddInt(v);
          sketch.sample.Add(v);
        }
        break;
    }
  }
}

double TableSketches::EstimateDistinct(size_t column) const {
  MutexLock lock(mu_);
  auto it = columns_.find(column);
  return it == columns_.end() ? 0.0 : it->second.distinct.EstimateDistinct();
}

std::vector<int64_t> TableSketches::Sample(size_t column) const {
  MutexLock lock(mu_);
  auto it = columns_.find(column);
  return it == columns_.end() ? std::vector<int64_t>()
                              : it->second.sample.samples();
}

uint64_t TableSketches::chunks_added() const {
  MutexLock lock(mu_);
  return chunks_added_;
}

}  // namespace scanraw
