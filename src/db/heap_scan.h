// HeapScan: the standard database scan over loaded binary chunks (§3.3:
// "SCANRAW morphs into heap scan as data are loaded in the database").
// ScanRaw delegates to this for chunks whose required columns are loaded;
// once the whole table is loaded, queries run purely through HeapScan.
#ifndef SCANRAW_DB_HEAP_SCAN_H_
#define SCANRAW_DB_HEAP_SCAN_H_

#include <optional>
#include <vector>

#include "columnar/binary_chunk.h"
#include "common/result.h"
#include "db/catalog.h"
#include "db/storage_manager.h"
#include "obs/metrics.h"

namespace scanraw {

class HeapScan {
 public:
  // Scans the chunks of `table` whose `columns` are loaded. An optional
  // range filter enables statistics-based chunk skipping.
  HeapScan(const TableMetadata& table, const StorageManager* storage,
           std::vector<size_t> columns);

  // Skip chunks whose min/max statistics prove `column` has no value in
  // [lo, hi].
  void SetRangeFilter(size_t column, int64_t lo, int64_t hi);

  // Returns the next chunk, or std::nullopt when exhausted.
  Result<std::optional<BinaryChunk>> Next();

  // Chunks skipped thanks to statistics; surfaced in EXPLAIN ANALYZE
  // reports as `chunks.skipped`.
  uint64_t chunks_skipped() const { return chunks_skipped_; }

  // Chunks actually materialized by Next().
  uint64_t chunks_scanned() const { return chunks_scanned_; }

  // Optional process-global counters (e.g. "heapscan.chunks_scanned" /
  // "heapscan.chunks_skipped" in the metrics registry). Bind before
  // scanning; pass nullptr to detach.
  void BindMetrics(obs::Counter* scanned, obs::Counter* skipped) {
    scanned_counter_ = scanned;
    skipped_counter_ = skipped;
  }

 private:
  TableMetadata table_;
  const StorageManager* storage_;
  std::vector<size_t> columns_;
  size_t next_chunk_ = 0;
  uint64_t chunks_skipped_ = 0;
  uint64_t chunks_scanned_ = 0;
  obs::Counter* scanned_counter_ = nullptr;
  obs::Counter* skipped_counter_ = nullptr;
  bool has_filter_ = false;
  size_t filter_column_ = 0;
  int64_t filter_lo_ = 0;
  int64_t filter_hi_ = 0;
};

}  // namespace scanraw

#endif  // SCANRAW_DB_HEAP_SCAN_H_
