// StorageManager: the database's binary storage. WRITE appends serialized
// column pages here; heap scan and ScanRaw read loaded chunks back without
// tokenizing or parsing. Appends are serialized internally; reads use pread
// and may run concurrently with appends.
#ifndef SCANRAW_DB_STORAGE_MANAGER_H_
#define SCANRAW_DB_STORAGE_MANAGER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "columnar/binary_chunk.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "db/catalog.h"
#include "io/file.h"
#include "obs/metrics.h"

namespace scanraw {

class RateLimiter;

class StorageManager {
 public:
  // Creates (or truncates) the database file at `path`. The optional rate
  // limiter emulates a fixed-bandwidth device shared with the raw file.
  static Result<std::unique_ptr<StorageManager>> Create(
      const std::string& path, RateLimiter* limiter = nullptr,
      IoStats* stats = nullptr);

  // Reopens an existing database file for appending; previously written
  // segments stay readable at their recorded PageRefs (restart recovery —
  // pair with Catalog::LoadFromFile).
  static Result<std::unique_ptr<StorageManager>> OpenExisting(
      const std::string& path, RateLimiter* limiter = nullptr,
      IoStats* stats = nullptr);

  // Appends the given columns of `chunk` as one segment; returns its
  // location for the catalog. Thread-safe.
  Result<StoredSegment> WriteSegment(const BinaryChunk& chunk,
                                     const std::vector<size_t>& columns);

  // Appends every column present in the chunk.
  Result<StoredSegment> WriteChunk(const BinaryChunk& chunk);

  // Delta-compress integer columns of future segments (reading handles
  // both encodings transparently). Pairs well with sorted writes.
  void SetCompression(bool enabled) { compress_ = enabled; }
  bool compression() const { return compress_; }

  // Forces every appended segment to stable storage. The write path calls
  // this before the catalog records a segment, so the catalog never points
  // at unsynced bytes. Thread-safe.
  Status Sync();

  // Reads one segment back. Thread-safe; may run concurrently with writes.
  Result<BinaryChunk> ReadSegment(const PageRef& page) const;

  // Validates that `page` lies entirely inside the file and deserializes
  // (checksum-verifies) its contents, without keeping the chunk. Restart
  // reconciliation uses this to detect torn or phantom segments.
  Status VerifySegment(const PageRef& page) const;

  // Reads and merges as many stored segments of `chunk_meta` as needed to
  // cover `columns` (earliest segments first). Fails with NotFound if some
  // column is not loaded.
  Result<BinaryChunk> ReadChunkColumns(const ChunkMetadata& chunk_meta,
                                       const std::vector<size_t>& columns) const;

  uint64_t bytes_written() const;
  const std::string& path() const { return path_; }

  // Mirrors segment writes into registry metrics: a segment counter, a
  // bytes counter, and an append-latency histogram (serialize + disk
  // append, nanoseconds). nullptr detaches.
  void BindMetrics(obs::Counter* segments_written, obs::Counter* bytes,
                   obs::Histogram* write_nanos);

 private:
  StorageManager(std::string path, std::unique_ptr<WritableFile> writer,
                 RateLimiter* limiter, IoStats* stats);

  const std::string path_;
  RateLimiter* limiter_;
  IoStats* stats_;

  std::atomic<bool> compress_{false};

  mutable Mutex write_mu_{LockRank::kStorageWrite, "StorageManager.write_mu"};
  std::unique_ptr<WritableFile> writer_ GUARDED_BY(write_mu_);
  uint64_t next_offset_ GUARDED_BY(write_mu_) = 0;
  obs::Counter* segments_metric_ GUARDED_BY(write_mu_) = nullptr;
  obs::Counter* bytes_metric_ GUARDED_BY(write_mu_) = nullptr;
  obs::Histogram* write_nanos_metric_ GUARDED_BY(write_mu_) = nullptr;

  mutable Mutex reader_mu_{LockRank::kStorageRead, "StorageManager.reader_mu"};
  // Lazily opened.
  mutable std::unique_ptr<RandomAccessFile> reader_ GUARDED_BY(reader_mu_);
};

}  // namespace scanraw

#endif  // SCANRAW_DB_STORAGE_MANAGER_H_
