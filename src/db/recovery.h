// Restart reconciliation: after Catalog::LoadFromFile +
// StorageManager::OpenExisting, cross-validate every recorded segment
// against the storage file. Segments past the storage EOF (a crash between
// catalog save and data sync under a legacy writer, or external truncation)
// or failing the chunk checksum (torn append at the tail) are dropped; the
// affected chunk reverts to not-loaded and is simply re-extracted from the
// raw file on the next scan — in-situ processing makes that the cheap, safe
// fallback (§3.3).
#ifndef SCANRAW_DB_RECOVERY_H_
#define SCANRAW_DB_RECOVERY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/catalog.h"
#include "db/storage_manager.h"
#include "format/posmap_serde.h"
#include "obs/workload_history.h"

namespace scanraw {

struct ReconcileReport {
  size_t tables = 0;
  size_t segments_checked = 0;
  size_t segments_dropped = 0;  // past EOF or failed checksum
  size_t chunks_reverted = 0;   // chunks that lost >= 1 loaded column
  size_t posmaps_dropped = 0;   // posmap sidecars torn/stale/mismatched
  std::vector<std::string> details;  // one human-readable line per drop

  // Posmap drops do not make a recovery unclean: the maps are derived data
  // and the table simply re-tokenizes.
  bool clean() const { return segments_dropped == 0; }
};

// Validates the whole catalog against `storage` and rewrites the catalog
// (via Snapshot/Restore) without the dropped segments. When
// `verify_checksums` is true every in-bounds segment is also deserialized
// so its checksum is checked; otherwise only the EOF bound is enforced.
ReconcileReport ReconcileCatalogWithStorage(Catalog& catalog,
                                            const StorageManager& storage,
                                            bool verify_checksums);

// Restart reconciliation for the workload-intelligence state: history
// entries for tables the catalog no longer knows (dropped, or the catalog
// was rebuilt from scratch) would keep steering the advisor toward data
// that cannot be loaded, so they are removed. Returns the number of tables
// dropped from the history.
uint64_t ReconcileHistoryWithCatalog(obs::WorkloadHistory& history,
                                     const Catalog& catalog);

// A decoded-and-validated positional-map sidecar: the dialect the maps were
// built under plus the per-chunk maps themselves, ready to pre-populate a
// PositionalMapCache.
struct PosmapSidecar {
  PosmapDialect dialect;
  std::vector<std::pair<uint64_t, std::shared_ptr<const PositionalMap>>>
      entries;
};

// Sidecar path convention: `<catalog>.posmap.<table>` next to the catalog.
std::string PosmapSidecarPath(const std::string& catalog_path,
                              const std::string& table);

// Posmap reconciliation: reads and validates the sidecar at `path` for
// `table`. Returns NotFound when no sidecar exists, and Corruption when the
// sidecar is torn, records a different table, or no longer matches the raw
// file's exact stat (size + mtime) — a stale index must be dropped, never
// reused. Entries whose chunk index or row count disagree with the catalog
// layout are skipped individually. The returned dialect still needs
// checking against the live TokenizeOptions at attach time (options attach
// after catalog load).
Result<PosmapSidecar> LoadPosmapSidecar(const std::string& path,
                                        const TableMetadata& table);

}  // namespace scanraw

#endif  // SCANRAW_DB_RECOVERY_H_
