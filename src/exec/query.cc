#include "exec/query.h"

#include <algorithm>

#include "common/string_util.h"

namespace scanraw {

std::vector<size_t> QuerySpec::RequiredColumns() const {
  std::vector<size_t> cols = sum_columns;
  cols.insert(cols.end(), minmax_columns.begin(), minmax_columns.end());
  if (group_by_column.has_value()) cols.push_back(*group_by_column);
  if (predicate.range.has_value()) cols.push_back(predicate.range->column);
  if (predicate.pattern.has_value()) cols.push_back(predicate.pattern->column);
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

QueryExecutor::QueryExecutor(QuerySpec spec) : spec_(std::move(spec)) {}

bool QueryExecutor::Matches(const BinaryChunk& chunk, size_t row) const {
  if (spec_.predicate.range.has_value()) {
    const auto& p = *spec_.predicate.range;
    const int64_t v = chunk.column(p.column).NumericAt(row);
    if (v < p.lo || v > p.hi) return false;
  }
  if (spec_.predicate.pattern.has_value()) {
    const auto& p = *spec_.predicate.pattern;
    const std::string_view s = chunk.column(p.column).StringAt(row);
    if (s.find(p.pattern) == std::string_view::npos) return false;
  }
  return true;
}

Status QueryExecutor::Consume(const BinaryChunk& chunk) {
  for (size_t col : spec_.RequiredColumns()) {
    if (!chunk.HasColumn(col)) {
      return Status::InvalidArgument(
          StringPrintf("chunk %llu lacks required column %zu",
                       static_cast<unsigned long long>(chunk.chunk_index()),
                       col));
    }
  }
  const size_t rows = chunk.num_rows();
  result_.rows_scanned += rows;

  // Fast path: no predicate, no group-by, no min/max, all-uint32 sum
  // columns. This is the micro-benchmark query shape, so it is worth a
  // tight loop.
  if (spec_.predicate.empty() && !spec_.group_by_column.has_value() &&
      spec_.minmax_columns.empty()) {
    bool all_u32 = true;
    for (size_t col : spec_.sum_columns) {
      if (chunk.column(col).type() != FieldType::kUint32) {
        all_u32 = false;
        break;
      }
    }
    if (all_u32) {
      uint64_t sum = 0;
      for (size_t col : spec_.sum_columns) {
        for (uint32_t v : chunk.column(col).AsUint32()) sum += v;
      }
      result_.total_sum += sum;
      result_.rows_matched += rows;
      return Status::OK();
    }
  }

  for (size_t r = 0; r < rows; ++r) {
    if (!Matches(chunk, r)) continue;
    ++result_.rows_matched;
    uint64_t row_sum = 0;
    for (size_t col : spec_.sum_columns) {
      row_sum += static_cast<uint64_t>(chunk.column(col).NumericAt(r));
    }
    result_.total_sum += row_sum;
    for (size_t col : spec_.minmax_columns) {
      const int64_t v = chunk.column(col).NumericAt(r);
      auto [it, inserted] =
          result_.column_ranges.emplace(col, ColumnRange{v, v});
      if (!inserted) {
        it->second.min_value = std::min(it->second.min_value, v);
        it->second.max_value = std::max(it->second.max_value, v);
      }
    }
    if (spec_.group_by_column.has_value()) {
      const ColumnVector& key_col = chunk.column(*spec_.group_by_column);
      std::string key;
      if (key_col.type() == FieldType::kString) {
        key = std::string(key_col.StringAt(r));
      } else {
        AppendUint64(&key, static_cast<uint64_t>(key_col.NumericAt(r)));
      }
      GroupAggregate& agg = result_.groups[key];
      ++agg.count;
      agg.sum += row_sum;
    }
  }
  return Status::OK();
}

QueryResult QueryExecutor::Finish() { return std::move(result_); }

Result<QueryResult> RunQuery(const QuerySpec& spec, ChunkStream* stream) {
  return RunQuery(spec, stream, nullptr);
}

Result<QueryResult> RunQuery(const QuerySpec& spec, ChunkStream* stream,
                             obs::SpanProfiler* profiler) {
  QueryExecutor executor(spec);
  while (true) {
    auto next = stream->Next();
    if (!next.ok()) return next.status();
    if (!next->has_value()) break;
    obs::SpanProfiler::Scope scope(profiler, obs::QueryStage::kEngine);
    SCANRAW_RETURN_IF_ERROR(executor.Consume(***next));
  }
  return executor.Finish();
}

}  // namespace scanraw
