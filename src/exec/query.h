// Query descriptors for the chunk-at-a-time execution engine. The engine
// supports the paper's evaluation workloads: SELECT SUM(C_i + ... + C_k)
// FROM file (§5.1 micro-benchmarks) and group-by aggregates with pattern
// matching predicates (§5.2, the CIGAR distribution query).
#ifndef SCANRAW_EXEC_QUERY_H_
#define SCANRAW_EXEC_QUERY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "columnar/binary_chunk.h"
#include "common/result.h"
#include "obs/span_profiler.h"

namespace scanraw {

// value(column) in [lo, hi]; column must be numeric.
struct RangePredicate {
  size_t column = 0;
  int64_t lo = 0;
  int64_t hi = 0;
};

// string(column) contains `pattern` (SQL LIKE '%pattern%'); column must be
// a string column.
struct PatternPredicate {
  size_t column = 0;
  std::string pattern;
};

// Conjunction of the optional predicates.
struct Predicate {
  std::optional<RangePredicate> range;
  std::optional<PatternPredicate> pattern;

  bool empty() const { return !range.has_value() && !pattern.has_value(); }
};

struct QuerySpec {
  // SUM(sum over these columns) per matching row; may be empty (COUNT only).
  std::vector<size_t> sum_columns;
  // Report MIN/MAX over matching rows for these numeric columns.
  std::vector<size_t> minmax_columns;
  // Group results by this (string or numeric) column.
  std::optional<size_t> group_by_column;
  Predicate predicate;

  // Union of every column the query touches, sorted ascending. This is what
  // ScanRaw must materialize for each chunk.
  std::vector<size_t> RequiredColumns() const;
};

struct GroupAggregate {
  uint64_t count = 0;
  uint64_t sum = 0;
};

struct ColumnRange {
  int64_t min_value = 0;
  int64_t max_value = 0;
};

struct QueryResult {
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  uint64_t total_sum = 0;  // wrapping modulo 2^64
  std::map<std::string, GroupAggregate> groups;  // empty unless group-by
  // MIN/MAX per requested column over matching rows; a column is absent
  // when no row matched.
  std::map<size_t, ColumnRange> column_ranges;

  // AVG over the summed columns (total_sum / matches), 0 with no matches.
  double Average() const {
    return rows_matched == 0 ? 0.0
                             : static_cast<double>(total_sum) /
                                   static_cast<double>(rows_matched);
  }
};

// Accumulates a query over a sequence of chunks. Not thread-safe; the
// execution engine consumes chunks on a single thread (the paper's engine
// parallelizes internally, which is orthogonal to ScanRaw).
class QueryExecutor {
 public:
  explicit QueryExecutor(QuerySpec spec);

  // Folds one chunk into the running aggregate. The chunk must carry every
  // required column.
  Status Consume(const BinaryChunk& chunk);

  // Returns the final aggregate. Consume must not be called afterwards.
  QueryResult Finish();

 private:
  // Row-level predicate check.
  bool Matches(const BinaryChunk& chunk, size_t row) const;

  QuerySpec spec_;
  QueryResult result_;
};

// Pull-based chunk source: ScanRaw query runs and HeapScan adapters both
// implement this so the engine is agnostic to where chunks come from.
class ChunkStream {
 public:
  virtual ~ChunkStream() = default;
  // nullopt signals end of stream.
  virtual Result<std::optional<BinaryChunkPtr>> Next() = 0;
};

// Drains `stream` through a QueryExecutor.
Result<QueryResult> RunQuery(const QuerySpec& spec, ChunkStream* stream);

// Same, recording each Consume as an ENGINE span in `profiler` (nullable)
// so EXPLAIN ANALYZE can attribute engine time vs. pipeline time.
Result<QueryResult> RunQuery(const QuerySpec& spec, ChunkStream* stream,
                             obs::SpanProfiler* profiler);

}  // namespace scanraw

#endif  // SCANRAW_EXEC_QUERY_H_
