// BoundedQueue: the producer/consumer buffer connecting pipeline stages
// (§3.1: "Buffers are characteristic to any pipeline implementation and
// operate using the standard producer-consumer paradigm ... The entire
// process is regulated by the size of the buffers").
#ifndef SCANRAW_PIPELINE_BOUNDED_QUEUE_H_
#define SCANRAW_PIPELINE_BOUNDED_QUEUE_H_

#include <deque>
#include <optional>
#include <utility>

#include "common/thread_annotations.h"

namespace scanraw {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  // Blocks while full. Returns false if the queue was closed.
  bool Push(T item) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (items_.size() >= capacity_ && !closed_) not_full_.Wait(lock);
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  // Non-blocking push; returns false when full or closed. On failure `item`
  // is left untouched so the caller can retry with a blocking Push.
  bool TryPush(T&& item) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  // Blocks while empty. Returns nullopt once the queue is closed AND empty.
  std::optional<T> Pop() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) not_empty_.Wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> TryPop() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  // After Close, pushes fail and pops drain the remaining items.
  void Close() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }
  size_t size() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }
  bool Full() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size() >= capacity_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_{LockRank::kBoundedQueue, "BoundedQueue.mu"};
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace scanraw

#endif  // SCANRAW_PIPELINE_BOUNDED_QUEUE_H_
