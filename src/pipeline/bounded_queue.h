// BoundedQueue: the producer/consumer buffer connecting pipeline stages
// (§3.1: "Buffers are characteristic to any pipeline implementation and
// operate using the standard producer-consumer paradigm ... The entire
// process is regulated by the size of the buffers").
#ifndef SCANRAW_PIPELINE_BOUNDED_QUEUE_H_
#define SCANRAW_PIPELINE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace scanraw {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  // Blocks while full. Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; returns false when full or closed. On failure `item`
  // is left untouched so the caller can retry with a blocking Push.
  bool TryPush(T&& item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty. Returns nullopt once the queue is closed AND empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // After Close, pushes fail and pops drain the remaining items.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }
  bool Full() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size() >= capacity_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace scanraw

#endif  // SCANRAW_PIPELINE_BOUNDED_QUEUE_H_
