#include "pipeline/thread_pool.h"

namespace scanraw {

ThreadPool::ThreadPool(size_t num_workers) {
  threads_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    work_available_.NotifyAll();
  }
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    {
      MutexLock lock(mu_);
      if (tasks_counter_ != nullptr) tasks_counter_->Add(1);
    }
    // Sequential mode: the caller is the worker.
    task();
    return;
  }
  {
    MutexLock lock(mu_);
    if (tasks_counter_ != nullptr) tasks_counter_->Add(1);
    queue_.push_back(std::move(task));
    if (queue_gauge_ != nullptr) queue_gauge_->Add(1);
  }
  work_available_.NotifyOne();
}

void ThreadPool::WaitIdle() {
  if (threads_.empty()) return;
  MutexLock lock(mu_);
  while (!queue_.empty() || busy_ != 0) all_idle_.Wait(lock);
}

size_t ThreadPool::busy_workers() const {
  MutexLock lock(mu_);
  return busy_;
}

size_t ThreadPool::queued_tasks() const {
  MutexLock lock(mu_);
  return queue_.size();
}

void ThreadPool::SetIdleCallback(std::function<void()> callback) {
  MutexLock lock(mu_);
  idle_callback_ = std::move(callback);
}

void ThreadPool::BindMetrics(obs::Gauge* busy_workers, obs::Gauge* queue_depth,
                             obs::Counter* tasks_submitted) {
  MutexLock lock(mu_);
  busy_gauge_ = busy_workers;
  queue_gauge_ = queue_depth;
  tasks_counter_ = tasks_submitted;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) work_available_.Wait(lock);
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
      if (queue_gauge_ != nullptr) queue_gauge_->Add(-1);
      if (busy_gauge_ != nullptr) busy_gauge_->Add(1);
    }
    task();
    std::function<void()> idle_cb;
    {
      MutexLock lock(mu_);
      --busy_;
      if (busy_gauge_ != nullptr) busy_gauge_->Add(-1);
      if (queue_.empty() && busy_ == 0) all_idle_.NotifyAll();
      if (queue_.size() < threads_.size()) idle_cb = idle_callback_;
    }
    if (idle_cb) idle_cb();
  }
}

}  // namespace scanraw
