#include "pipeline/thread_pool.h"

namespace scanraw {

ThreadPool::ThreadPool(size_t num_workers) {
  threads_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    work_available_.notify_all();
  }
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (tasks_counter_ != nullptr) tasks_counter_->Add(1);
    }
    // Sequential mode: the caller is the worker.
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tasks_counter_ != nullptr) tasks_counter_->Add(1);
    queue_.push_back(std::move(task));
    if (queue_gauge_ != nullptr) queue_gauge_->Add(1);
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [&] { return queue_.empty() && busy_ == 0; });
}

size_t ThreadPool::busy_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return busy_;
}

size_t ThreadPool::queued_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::SetIdleCallback(std::function<void()> callback) {
  std::lock_guard<std::mutex> lock(mu_);
  idle_callback_ = std::move(callback);
}

void ThreadPool::BindMetrics(obs::Gauge* busy_workers, obs::Gauge* queue_depth,
                             obs::Counter* tasks_submitted) {
  std::lock_guard<std::mutex> lock(mu_);
  busy_gauge_ = busy_workers;
  queue_gauge_ = queue_depth;
  tasks_counter_ = tasks_submitted;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
      if (queue_gauge_ != nullptr) queue_gauge_->Add(-1);
      if (busy_gauge_ != nullptr) busy_gauge_->Add(1);
    }
    task();
    std::function<void()> idle_cb;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_;
      if (busy_gauge_ != nullptr) busy_gauge_->Add(-1);
      if (queue_.empty() && busy_ == 0) all_idle_.notify_all();
      if (queue_.size() < threads_.size()) idle_cb = idle_callback_;
    }
    if (idle_cb) idle_cb();
  }
}

}  // namespace scanraw
