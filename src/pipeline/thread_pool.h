// Worker thread pool with the scheduling semantics of §3.2: stand-alone
// consumer threads request workers for chunk-sized tasks; the pool tracks
// idle workers so the SCANRAW scheduler can detect CPU saturation and
// "worker threads become available" events (the speculative-loading
// triggers). A pool of size 0 runs tasks inline, which is the paper's
// sequential configuration (Figure 4's "0 worker threads").
#ifndef SCANRAW_PIPELINE_THREAD_POOL_H_
#define SCANRAW_PIPELINE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace scanraw {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. With zero workers the task runs on the calling thread
  // before Submit returns.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void WaitIdle();

  size_t num_workers() const { return threads_.size(); }
  // Workers currently executing a task.
  size_t busy_workers() const;
  size_t queued_tasks() const;

  // Registers a callback fired each time a worker finishes a task and the
  // pool has spare capacity again ("resume" hook for the scheduler). Must be
  // set before tasks are submitted; pass nullptr to clear.
  void SetIdleCallback(std::function<void()> callback);

  // Wires live gauges (delta-updated, so several pools may share one gauge
  // and it reads as the aggregate) and a submitted-task counter. Call
  // before tasks are submitted; nullptr detaches.
  void BindMetrics(obs::Gauge* busy_workers, obs::Gauge* queue_depth,
                   obs::Counter* tasks_submitted);

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::function<void()> idle_callback_;
  size_t busy_ = 0;
  bool shutdown_ = false;
  obs::Gauge* busy_gauge_ = nullptr;
  obs::Gauge* queue_gauge_ = nullptr;
  obs::Counter* tasks_counter_ = nullptr;
};

}  // namespace scanraw

#endif  // SCANRAW_PIPELINE_THREAD_POOL_H_
