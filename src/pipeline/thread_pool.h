// Worker thread pool with the scheduling semantics of §3.2: stand-alone
// consumer threads request workers for chunk-sized tasks; the pool tracks
// idle workers so the SCANRAW scheduler can detect CPU saturation and
// "worker threads become available" events (the speculative-loading
// triggers). A pool of size 0 runs tasks inline, which is the paper's
// sequential configuration (Figure 4's "0 worker threads").
#ifndef SCANRAW_PIPELINE_THREAD_POOL_H_
#define SCANRAW_PIPELINE_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace scanraw {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. With zero workers the task runs on the calling thread
  // before Submit returns.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  // Blocks until every submitted task has finished.
  void WaitIdle() EXCLUDES(mu_);

  size_t num_workers() const { return threads_.size(); }
  // Workers currently executing a task.
  size_t busy_workers() const EXCLUDES(mu_);
  size_t queued_tasks() const EXCLUDES(mu_);

  // Registers a callback fired each time a worker finishes a task and the
  // pool has spare capacity again ("resume" hook for the scheduler). Must be
  // set before tasks are submitted; pass nullptr to clear.
  void SetIdleCallback(std::function<void()> callback) EXCLUDES(mu_);

  // Wires live gauges (delta-updated, so several pools may share one gauge
  // and it reads as the aggregate) and a submitted-task counter. Call
  // before tasks are submitted; nullptr detaches.
  void BindMetrics(obs::Gauge* busy_workers, obs::Gauge* queue_depth,
                   obs::Counter* tasks_submitted) EXCLUDES(mu_);

 private:
  void WorkerLoop();

  mutable Mutex mu_{LockRank::kThreadPool, "ThreadPool.mu"};
  CondVar work_available_;
  CondVar all_idle_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  // Started in the constructor, joined in the destructor; const between.
  std::vector<std::thread> threads_;
  std::function<void()> idle_callback_ GUARDED_BY(mu_);
  size_t busy_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  obs::Gauge* busy_gauge_ GUARDED_BY(mu_) = nullptr;
  obs::Gauge* queue_gauge_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* tasks_counter_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace scanraw

#endif  // SCANRAW_PIPELINE_THREAD_POOL_H_
