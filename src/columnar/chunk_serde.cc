#include "columnar/chunk_serde.h"

#include <cstring>

#include "common/string_util.h"

namespace scanraw {

namespace {

constexpr uint32_t kChunkMagic = 0x53435243;  // "SCRC"

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetBytes(size_t n, std::string_view* out) {
    if (pos_ + n > data_.size()) return false;
    *out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool GetRaw(void* dst, size_t n) {
    if (pos_ + n > data_.size()) return false;
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::string_view data_;
  size_t pos_ = 0;
};

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(Reader* reader, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  uint8_t byte = 0;
  while (shift <= 63) {
    if (!reader->GetU8(&byte)) return false;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// Zigzag-varint delta stream over the column's integer values. Deltas are
// computed with wrapping unsigned arithmetic so int64 extremes are safe.
void EncodeVarintDelta(const ColumnVector& vec, std::string* out) {
  uint64_t previous = 0;
  for (size_t i = 0; i < vec.size(); ++i) {
    const uint64_t v = static_cast<uint64_t>(vec.NumericAt(i));
    PutVarint(out, ZigZag(static_cast<int64_t>(v - previous)));
    previous = v;
  }
}

bool DecodeVarintDelta(Reader* reader, FieldType type, size_t num_values,
                       ColumnVector* out) {
  uint64_t previous = 0;
  for (size_t i = 0; i < num_values; ++i) {
    uint64_t raw = 0;
    if (!GetVarint(reader, &raw)) return false;
    previous += static_cast<uint64_t>(UnZigZag(raw));
    if (type == FieldType::kUint32) {
      if (previous > UINT32_MAX) return false;
      out->AppendUint32(static_cast<uint32_t>(previous));
    } else {
      out->AppendInt64(static_cast<int64_t>(previous));
    }
  }
  return true;
}

}  // namespace

uint64_t Fnv1aHash(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

Status SerializeChunk(const BinaryChunk& chunk, std::string* out,
                      bool compress) {
  std::string body;
  PutU64(&body, chunk.chunk_index());
  PutU64(&body, chunk.num_rows());
  PutU32(&body, static_cast<uint32_t>(chunk.num_columns()));
  for (size_t col : chunk.ColumnIds()) {
    const ColumnVector& vec = chunk.column(col);
    PutU64(&body, col);
    PutU8(&body, static_cast<uint8_t>(vec.type()));
    // Adaptive: delta-encode integer columns only when it actually beats
    // the raw page (clustered data wins; random 32-bit data would expand).
    std::string delta_payload;
    bool delta = false;
    if (compress && (vec.type() == FieldType::kUint32 ||
                     vec.type() == FieldType::kInt64)) {
      EncodeVarintDelta(vec, &delta_payload);
      delta = delta_payload.size() < vec.fixed_data().size();
    }
    PutU8(&body, static_cast<uint8_t>(delta ? ColumnEncoding::kVarintDelta
                                            : ColumnEncoding::kRawBytes));
    if (delta) {
      PutU64(&body, delta_payload.size());
      body.append(delta_payload);
    } else if (IsFixedWidth(vec.type())) {
      const auto& data = vec.fixed_data();
      PutU64(&body, data.size());
      body.append(reinterpret_cast<const char*>(data.data()), data.size());
    } else {
      const auto& arena = vec.string_arena();
      const auto& offsets = vec.string_offsets();
      PutU64(&body, arena.size());
      body.append(arena);
      PutU64(&body, offsets.size());
      body.append(reinterpret_cast<const char*>(offsets.data()),
                  offsets.size() * sizeof(uint32_t));
    }
  }
  PutU32(out, kChunkMagic);
  PutU64(out, body.size());
  PutU64(out, Fnv1aHash(body));
  out->append(body);
  return Status::OK();
}

Result<BinaryChunk> DeserializeChunk(std::string_view data) {
  Reader reader(data);
  uint32_t magic = 0;
  uint64_t body_size = 0, checksum = 0;
  if (!reader.GetU32(&magic) || magic != kChunkMagic) {
    return Status::Corruption("bad chunk magic");
  }
  if (!reader.GetU64(&body_size) || !reader.GetU64(&checksum)) {
    return Status::Corruption("truncated chunk header");
  }
  std::string_view body;
  if (!reader.GetBytes(body_size, &body)) {
    return Status::Corruption("truncated chunk body");
  }
  if (Fnv1aHash(body) != checksum) {
    return Status::Corruption("chunk checksum mismatch");
  }

  Reader br(body);
  uint64_t chunk_index = 0, num_rows = 0;
  uint32_t num_columns = 0;
  if (!br.GetU64(&chunk_index) || !br.GetU64(&num_rows) ||
      !br.GetU32(&num_columns)) {
    return Status::Corruption("truncated chunk body header");
  }
  BinaryChunk chunk(chunk_index);
  chunk.set_num_rows(num_rows);
  for (uint32_t i = 0; i < num_columns; ++i) {
    uint64_t col = 0;
    uint8_t type_raw = 0;
    uint8_t encoding_raw = 0;
    if (!br.GetU64(&col) || !br.GetU8(&type_raw) || !br.GetU8(&encoding_raw)) {
      return Status::Corruption("truncated column header");
    }
    if (type_raw > static_cast<uint8_t>(FieldType::kString)) {
      return Status::Corruption("unknown column type");
    }
    if (encoding_raw > static_cast<uint8_t>(ColumnEncoding::kVarintDelta)) {
      return Status::Corruption("unknown column encoding");
    }
    const FieldType type = static_cast<FieldType>(type_raw);
    const auto encoding = static_cast<ColumnEncoding>(encoding_raw);
    ColumnVector vec(type);
    if (encoding == ColumnEncoding::kVarintDelta) {
      if (type != FieldType::kUint32 && type != FieldType::kInt64) {
        return Status::Corruption("delta encoding on non-integer column");
      }
      uint64_t len = 0;
      std::string_view payload;
      if (!br.GetU64(&len) || !br.GetBytes(len, &payload)) {
        return Status::Corruption("truncated delta column payload");
      }
      Reader pr(payload);
      vec.Reserve(num_rows);
      if (!DecodeVarintDelta(&pr, type, num_rows, &vec) ||
          pr.remaining() != 0) {
        return Status::Corruption("invalid delta column payload");
      }
    } else if (IsFixedWidth(type)) {
      uint64_t len = 0;
      std::string_view payload;
      if (!br.GetU64(&len) || !br.GetBytes(len, &payload)) {
        return Status::Corruption("truncated fixed column payload");
      }
      if (len != num_rows * FixedWidth(type)) {
        return Status::Corruption("fixed column payload size mismatch");
      }
      std::vector<uint8_t> bytes(payload.begin(), payload.end());
      vec.SetFixedData(std::move(bytes), num_rows);
    } else {
      uint64_t arena_len = 0, offsets_len = 0;
      std::string_view arena, offsets_raw;
      if (!br.GetU64(&arena_len) || !br.GetBytes(arena_len, &arena) ||
          !br.GetU64(&offsets_len) ||
          !br.GetBytes(offsets_len * sizeof(uint32_t), &offsets_raw)) {
        return Status::Corruption("truncated string column payload");
      }
      if (offsets_len != num_rows + 1 && !(offsets_len == 0 && num_rows == 0)) {
        return Status::Corruption("string offsets count mismatch");
      }
      std::vector<uint32_t> offsets(offsets_len);
      if (!offsets_raw.empty()) {
        // Guard: an empty string_view may carry a null data pointer, which
        // memcpy must not receive even for a zero-byte copy.
        std::memcpy(offsets.data(), offsets_raw.data(), offsets_raw.size());
      }
      if (!offsets.empty() && offsets.back() != arena_len) {
        return Status::Corruption("string arena size mismatch");
      }
      vec.SetStringData(std::string(arena), std::move(offsets));
    }
    Status s = chunk.AddColumn(col, std::move(vec));
    if (!s.ok()) return s;
  }
  return chunk;
}

}  // namespace scanraw
