// ColumnVector: a typed array of values — the in-memory unit of the binary
// representation (§3.1: "tuples are vertically partitioned along columns
// represented as arrays in memory").
#ifndef SCANRAW_COLUMNAR_COLUMN_VECTOR_H_
#define SCANRAW_COLUMNAR_COLUMN_VECTOR_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "format/field_type.h"

namespace scanraw {

// Supplier of recycled backing buffers for ColumnVector (and the READ
// chunker's text buffers). Acquired buffers are always empty (size 0) but
// keep the capacity of whatever they backed before, so steady-state
// pipeline iterations allocate nothing. Implemented by
// scanraw::ChunkBufferPool; defined here so the parser can recycle without
// depending on the scanraw/ layer.
class ColumnBufferSource {
 public:
  virtual ~ColumnBufferSource() = default;
  virtual std::vector<uint8_t> AcquireFixed() = 0;
  virtual std::string AcquireString() = 0;
  virtual std::vector<uint32_t> AcquireOffsets() = 0;
  virtual void ReleaseFixed(std::vector<uint8_t> buffer) = 0;
  virtual void ReleaseString(std::string buffer) = 0;
  virtual void ReleaseOffsets(std::vector<uint32_t> buffer) = 0;
};

class ColumnVector {
 public:
  ColumnVector() = default;
  explicit ColumnVector(FieldType type) : type_(type) {}

  FieldType type() const { return type_; }
  size_t size() const { return num_values_; }
  bool empty() const { return num_values_ == 0; }

  void Reserve(size_t n) {
    if (IsFixedWidth(type_)) {
      fixed_.reserve(n * FixedWidth(type_));
    } else {
      string_offsets_.reserve(n + 1);
    }
  }

  // -- appends (type must match; unchecked in release builds) --
  void AppendUint32(uint32_t v) { AppendFixed(&v, sizeof(v)); }
  void AppendInt64(int64_t v) { AppendFixed(&v, sizeof(v)); }
  void AppendDouble(double v) { AppendFixed(&v, sizeof(v)); }

  // Bulk appends: grow by `n` values in one resize and return a pointer to
  // the new block for the caller to fill (the columnar parser writes one
  // whole column through these instead of one AppendFixed per field). The
  // block is zero-initialized by the resize.
  uint32_t* AppendUint32Block(size_t n) {
    return static_cast<uint32_t*>(AppendBlock(n, sizeof(uint32_t)));
  }
  int64_t* AppendInt64Block(size_t n) {
    return static_cast<int64_t*>(AppendBlock(n, sizeof(int64_t)));
  }
  double* AppendDoubleBlock(size_t n) {
    return static_cast<double*>(AppendBlock(n, sizeof(double)));
  }

  // -- buffer recycling (see ChunkBufferPool) --
  // Swaps in recycled, empty backing buffers for this vector's type.
  void AdoptBuffersFrom(ColumnBufferSource* source) {
    if (IsFixedWidth(type_)) {
      fixed_ = source->AcquireFixed();
    } else {
      string_arena_ = source->AcquireString();
      string_offsets_ = source->AcquireOffsets();
    }
    num_values_ = 0;
  }
  // Hands every backing buffer (and its capacity) back; the vector is empty
  // afterwards. Safe on buffers that never came from a source.
  void ReleaseBuffersTo(ColumnBufferSource* source) {
    source->ReleaseFixed(std::move(fixed_));
    source->ReleaseString(std::move(string_arena_));
    source->ReleaseOffsets(std::move(string_offsets_));
    fixed_.clear();
    string_arena_.clear();
    string_offsets_.clear();
    num_values_ = 0;
  }
  void AppendString(std::string_view v) {
    if (string_offsets_.empty()) string_offsets_.push_back(0);
    string_arena_.append(v);
    string_offsets_.push_back(static_cast<uint32_t>(string_arena_.size()));
    ++num_values_;
  }

  // -- typed access --
  std::span<const uint32_t> AsUint32() const {
    return {reinterpret_cast<const uint32_t*>(fixed_.data()), num_values_};
  }
  std::span<const int64_t> AsInt64() const {
    return {reinterpret_cast<const int64_t*>(fixed_.data()), num_values_};
  }
  std::span<const double> AsDouble() const {
    return {reinterpret_cast<const double*>(fixed_.data()), num_values_};
  }
  std::string_view StringAt(size_t i) const {
    return std::string_view(string_arena_)
        .substr(string_offsets_[i], string_offsets_[i + 1] - string_offsets_[i]);
  }

  // Scalar access by row, returned as int64 (uint32 widened); only valid for
  // numeric columns.
  int64_t NumericAt(size_t i) const {
    switch (type_) {
      case FieldType::kUint32:
        return AsUint32()[i];
      case FieldType::kInt64:
        return AsInt64()[i];
      case FieldType::kDouble:
        return static_cast<int64_t>(AsDouble()[i]);
      case FieldType::kString:
        break;
    }
    return 0;
  }

  // Bytes of payload (used for cache accounting and page sizing).
  size_t MemoryBytes() const {
    return fixed_.size() + string_arena_.size() +
           string_offsets_.size() * sizeof(uint32_t);
  }

  // -- raw (de)serialization support, see chunk_serde.cc --
  const std::vector<uint8_t>& fixed_data() const { return fixed_; }
  const std::string& string_arena() const { return string_arena_; }
  const std::vector<uint32_t>& string_offsets() const {
    return string_offsets_;
  }
  void SetFixedData(std::vector<uint8_t> data, size_t num_values) {
    fixed_ = std::move(data);
    num_values_ = num_values;
  }
  void SetStringData(std::string arena, std::vector<uint32_t> offsets) {
    string_arena_ = std::move(arena);
    string_offsets_ = std::move(offsets);
    num_values_ = string_offsets_.empty() ? 0 : string_offsets_.size() - 1;
  }

 private:
  void AppendFixed(const void* src, size_t width) {
    const size_t old = fixed_.size();
    fixed_.resize(old + width);
    std::memcpy(fixed_.data() + old, src, width);
    ++num_values_;
  }

  void* AppendBlock(size_t n, size_t width) {
    const size_t old = fixed_.size();
    fixed_.resize(old + n * width);
    num_values_ += n;
    return fixed_.data() + old;
  }

  FieldType type_ = FieldType::kUint32;
  size_t num_values_ = 0;
  std::vector<uint8_t> fixed_;        // fixed-width payload
  std::string string_arena_;          // concatenated string payload
  std::vector<uint32_t> string_offsets_;  // size()+1 boundaries into arena
};

}  // namespace scanraw

#endif  // SCANRAW_COLUMNAR_COLUMN_VECTOR_H_
