// Serialization of BinaryChunks to and from the database storage format:
// each column is written as a contiguous page image that can be memory-mapped
// back into the in-memory array representation (§3.1: "each column is
// assigned an independent set of pages which can be directly mapped into the
// in-memory array representation").
#ifndef SCANRAW_COLUMNAR_CHUNK_SERDE_H_
#define SCANRAW_COLUMNAR_CHUNK_SERDE_H_

#include <string>

#include "columnar/binary_chunk.h"
#include "common/result.h"

namespace scanraw {

// Per-column storage encodings. kVarintDelta applies zigzag-varint delta
// coding to integer columns — close to free on random data, and several
// times smaller on clustered data (pairs with the §3.3 sorted-write
// option). Doubles and strings always use kRawBytes.
enum class ColumnEncoding : uint8_t {
  kRawBytes = 0,
  kVarintDelta = 1,
};

// Serializes the whole chunk (header + one page image per column) into
// `out`. The encoding is self-describing and checksummed. With `compress`
// set, integer columns use kVarintDelta.
Status SerializeChunk(const BinaryChunk& chunk, std::string* out,
                      bool compress = false);

// Inverse of SerializeChunk. Returns Corruption on checksum or framing
// mismatch. `data` must contain exactly one serialized chunk.
Result<BinaryChunk> DeserializeChunk(std::string_view data);

// FNV-1a 64-bit, used for page checksums.
uint64_t Fnv1aHash(std::string_view data);

}  // namespace scanraw

#endif  // SCANRAW_COLUMNAR_CHUNK_SERDE_H_
