#include "columnar/binary_chunk.h"

#include "common/string_util.h"

namespace scanraw {

Status BinaryChunk::AddColumn(size_t col, ColumnVector vector) {
  if (num_rows_ != 0 && vector.size() != num_rows_) {
    return Status::InvalidArgument(StringPrintf(
        "column %zu has %zu rows, chunk has %zu", col, vector.size(),
        num_rows_));
  }
  if (num_rows_ == 0) num_rows_ = vector.size();
  columns_[col] = std::move(vector);
  return Status::OK();
}

Status BinaryChunk::MergeColumnsFrom(const BinaryChunk& other) {
  if (other.chunk_index_ != chunk_index_) {
    return Status::InvalidArgument("merging chunks with different indexes");
  }
  if (other.num_rows_ != num_rows_ && num_rows_ != 0 && other.num_rows_ != 0) {
    return Status::InvalidArgument("merging chunks with different row counts");
  }
  if (num_rows_ == 0) num_rows_ = other.num_rows_;
  for (const auto& [id, vec] : other.columns_) {
    if (!columns_.count(id)) columns_[id] = vec;
  }
  return Status::OK();
}

size_t BinaryChunk::MemoryBytes() const {
  size_t total = sizeof(*this);
  for (const auto& [_, vec] : columns_) total += vec.MemoryBytes();
  return total;
}

}  // namespace scanraw
