#include "columnar/chunk_sort.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"

namespace scanraw {

ColumnVector GatherColumn(const ColumnVector& column,
                          const std::vector<uint32_t>& permutation) {
  ColumnVector out(column.type());
  out.Reserve(permutation.size());
  switch (column.type()) {
    case FieldType::kUint32: {
      auto values = column.AsUint32();
      for (uint32_t i : permutation) out.AppendUint32(values[i]);
      break;
    }
    case FieldType::kInt64: {
      auto values = column.AsInt64();
      for (uint32_t i : permutation) out.AppendInt64(values[i]);
      break;
    }
    case FieldType::kDouble: {
      auto values = column.AsDouble();
      for (uint32_t i : permutation) out.AppendDouble(values[i]);
      break;
    }
    case FieldType::kString: {
      for (uint32_t i : permutation) out.AppendString(column.StringAt(i));
      break;
    }
  }
  return out;
}

Result<std::vector<uint32_t>> SortPermutation(const BinaryChunk& chunk,
                                              size_t column) {
  if (!chunk.HasColumn(column)) {
    return Status::InvalidArgument(
        StringPrintf("chunk lacks sort column %zu", column));
  }
  const ColumnVector& key = chunk.column(column);
  std::vector<uint32_t> perm(chunk.num_rows());
  std::iota(perm.begin(), perm.end(), 0);
  if (key.type() == FieldType::kString) {
    std::stable_sort(perm.begin(), perm.end(),
                     [&key](uint32_t a, uint32_t b) {
                       return key.StringAt(a) < key.StringAt(b);
                     });
  } else {
    std::stable_sort(perm.begin(), perm.end(),
                     [&key](uint32_t a, uint32_t b) {
                       return key.NumericAt(a) < key.NumericAt(b);
                     });
  }
  return perm;
}

Result<BinaryChunk> SortChunkByColumn(const BinaryChunk& chunk,
                                      size_t column) {
  std::vector<uint32_t> perm;
  SCANRAW_ASSIGN_OR_RETURN(perm, SortPermutation(chunk, column));
  BinaryChunk sorted(chunk.chunk_index());
  sorted.set_num_rows(chunk.num_rows());
  for (size_t col : chunk.ColumnIds()) {
    SCANRAW_RETURN_IF_ERROR(
        sorted.AddColumn(col, GatherColumn(chunk.column(col), perm)));
  }
  return sorted;
}

}  // namespace scanraw
