// Chunk reordering: WRITE can sort the rows of each chunk on a clustering
// column before loading (§3.3: "WRITE can sort data in each chunk prior to
// loading"), so that values inside the stored pages are clustered for
// future range scans.
#ifndef SCANRAW_COLUMNAR_CHUNK_SORT_H_
#define SCANRAW_COLUMNAR_CHUNK_SORT_H_

#include <cstdint>
#include <vector>

#include "columnar/binary_chunk.h"
#include "common/result.h"

namespace scanraw {

// Reorders a column by `permutation` (new_row i takes old row
// permutation[i]). The permutation must be a bijection over [0, size).
ColumnVector GatherColumn(const ColumnVector& column,
                          const std::vector<uint32_t>& permutation);

// Returns the row permutation that sorts `chunk` ascending by `column`
// (numeric: by value; string: lexicographic). Stable.
Result<std::vector<uint32_t>> SortPermutation(const BinaryChunk& chunk,
                                              size_t column);

// Returns a copy of `chunk` with every column reordered so that `column`
// is ascending.
Result<BinaryChunk> SortChunkByColumn(const BinaryChunk& chunk,
                                      size_t column);

}  // namespace scanraw

#endif  // SCANRAW_COLUMNAR_CHUNK_SORT_H_
