// BinaryChunk: a chunk converted to the database processing representation.
// Columns are independent arrays; a chunk need not carry every column of the
// table (§3.1: "not all the columns in a table have to be present in a
// binary chunk") — queries project subsets and partial loading stores them.
#ifndef SCANRAW_COLUMNAR_BINARY_CHUNK_H_
#define SCANRAW_COLUMNAR_BINARY_CHUNK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "columnar/column_vector.h"
#include "common/result.h"

namespace scanraw {

class BinaryChunk {
 public:
  BinaryChunk() = default;
  explicit BinaryChunk(uint64_t chunk_index) : chunk_index_(chunk_index) {}

  uint64_t chunk_index() const { return chunk_index_; }
  void set_chunk_index(uint64_t idx) { chunk_index_ = idx; }

  size_t num_rows() const { return num_rows_; }
  void set_num_rows(size_t n) { num_rows_ = n; }

  bool HasColumn(size_t col) const { return columns_.count(col) > 0; }
  std::vector<size_t> ColumnIds() const {
    std::vector<size_t> ids;
    ids.reserve(columns_.size());
    for (const auto& [id, _] : columns_) ids.push_back(id);
    return ids;
  }
  size_t num_columns() const { return columns_.size(); }

  // Adds (or replaces) column `col`. The vector's length must equal
  // num_rows() if rows were already set; otherwise it defines num_rows().
  Status AddColumn(size_t col, ColumnVector vector);

  // Requires HasColumn(col).
  const ColumnVector& column(size_t col) const { return columns_.at(col); }

  // Merges columns from `other` (same chunk_index / row count) into this
  // chunk; used when a query needs columns from both the database and the
  // raw file.
  Status MergeColumnsFrom(const BinaryChunk& other);

  // Hands every column's backing buffers to `source` for reuse (see
  // ChunkBufferPool::WrapChunk); the chunk is empty afterwards.
  void ReleaseBuffersTo(ColumnBufferSource* source) {
    for (auto& [id, vec] : columns_) vec.ReleaseBuffersTo(source);
    columns_.clear();
    num_rows_ = 0;
  }

  size_t MemoryBytes() const;

 private:
  uint64_t chunk_index_ = 0;
  size_t num_rows_ = 0;
  std::map<size_t, ColumnVector> columns_;  // ordered for deterministic serde
};

using BinaryChunkPtr = std::shared_ptr<const BinaryChunk>;

}  // namespace scanraw

#endif  // SCANRAW_COLUMNAR_BINARY_CHUNK_H_
