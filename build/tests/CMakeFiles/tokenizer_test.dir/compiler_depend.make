# Empty compiler generated dependencies file for tokenizer_test.
# This may be replaced when dependencies are built.
