# Empty compiler generated dependencies file for sql_parser_test.
# This may be replaced when dependencies are built.
