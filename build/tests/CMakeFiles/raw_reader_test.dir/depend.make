# Empty dependencies file for raw_reader_test.
# This may be replaced when dependencies are built.
