file(REMOVE_RECURSE
  "CMakeFiles/raw_reader_test.dir/raw_reader_test.cc.o"
  "CMakeFiles/raw_reader_test.dir/raw_reader_test.cc.o.d"
  "raw_reader_test"
  "raw_reader_test.pdb"
  "raw_reader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_reader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
