# Empty dependencies file for scanraw_features_test.
# This may be replaced when dependencies are built.
