file(REMOVE_RECURSE
  "CMakeFiles/scanraw_features_test.dir/scanraw_features_test.cc.o"
  "CMakeFiles/scanraw_features_test.dir/scanraw_features_test.cc.o.d"
  "scanraw_features_test"
  "scanraw_features_test.pdb"
  "scanraw_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanraw_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
