# Empty compiler generated dependencies file for scanraw_test.
# This may be replaced when dependencies are built.
