file(REMOVE_RECURSE
  "CMakeFiles/scanraw_test.dir/scanraw_test.cc.o"
  "CMakeFiles/scanraw_test.dir/scanraw_test.cc.o.d"
  "scanraw_test"
  "scanraw_test.pdb"
  "scanraw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanraw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
