# Empty compiler generated dependencies file for sketches_test.
# This may be replaced when dependencies are built.
