file(REMOVE_RECURSE
  "CMakeFiles/sketches_test.dir/sketches_test.cc.o"
  "CMakeFiles/sketches_test.dir/sketches_test.cc.o.d"
  "sketches_test"
  "sketches_test.pdb"
  "sketches_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketches_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
