file(REMOVE_RECURSE
  "CMakeFiles/scanraw_stress_test.dir/scanraw_stress_test.cc.o"
  "CMakeFiles/scanraw_stress_test.dir/scanraw_stress_test.cc.o.d"
  "scanraw_stress_test"
  "scanraw_stress_test.pdb"
  "scanraw_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanraw_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
