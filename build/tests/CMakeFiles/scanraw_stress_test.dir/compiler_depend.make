# Empty compiler generated dependencies file for scanraw_stress_test.
# This may be replaced when dependencies are built.
