file(REMOVE_RECURSE
  "CMakeFiles/genomics_test.dir/genomics_test.cc.o"
  "CMakeFiles/genomics_test.dir/genomics_test.cc.o.d"
  "genomics_test"
  "genomics_test.pdb"
  "genomics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genomics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
