# Empty compiler generated dependencies file for chunk_cache_test.
# This may be replaced when dependencies are built.
