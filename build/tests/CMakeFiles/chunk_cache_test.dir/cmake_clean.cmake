file(REMOVE_RECURSE
  "CMakeFiles/chunk_cache_test.dir/chunk_cache_test.cc.o"
  "CMakeFiles/chunk_cache_test.dir/chunk_cache_test.cc.o.d"
  "chunk_cache_test"
  "chunk_cache_test.pdb"
  "chunk_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chunk_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
