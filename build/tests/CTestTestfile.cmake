# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/columnar_test[1]_include.cmake")
include("/root/repo/build/tests/tokenizer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/chunk_cache_test[1]_include.cmake")
include("/root/repo/build/tests/raw_reader_test[1]_include.cmake")
include("/root/repo/build/tests/scanraw_test[1]_include.cmake")
include("/root/repo/build/tests/genomics_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/sql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/sketches_test[1]_include.cmake")
include("/root/repo/build/tests/scanraw_features_test[1]_include.cmake")
include("/root/repo/build/tests/scanraw_stress_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
