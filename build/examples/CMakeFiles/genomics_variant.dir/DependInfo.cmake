
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/genomics_variant.cpp" "examples/CMakeFiles/genomics_variant.dir/genomics_variant.cpp.o" "gcc" "examples/CMakeFiles/genomics_variant.dir/genomics_variant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scanraw_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scanraw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scanraw_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scanraw_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scanraw_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scanraw_format.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scanraw_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scanraw_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scanraw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
