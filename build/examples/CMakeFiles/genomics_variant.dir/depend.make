# Empty dependencies file for genomics_variant.
# This may be replaced when dependencies are built.
