file(REMOVE_RECURSE
  "CMakeFiles/genomics_variant.dir/genomics_variant.cpp.o"
  "CMakeFiles/genomics_variant.dir/genomics_variant.cpp.o.d"
  "genomics_variant"
  "genomics_variant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genomics_variant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
