file(REMOVE_RECURSE
  "CMakeFiles/telemetry_jsonl.dir/telemetry_jsonl.cpp.o"
  "CMakeFiles/telemetry_jsonl.dir/telemetry_jsonl.cpp.o.d"
  "telemetry_jsonl"
  "telemetry_jsonl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_jsonl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
