# Empty compiler generated dependencies file for telemetry_jsonl.
# This may be replaced when dependencies are built.
