# Empty compiler generated dependencies file for query_sequence.
# This may be replaced when dependencies are built.
