file(REMOVE_RECURSE
  "CMakeFiles/query_sequence.dir/query_sequence.cpp.o"
  "CMakeFiles/query_sequence.dir/query_sequence.cpp.o.d"
  "query_sequence"
  "query_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
