file(REMOVE_RECURSE
  "CMakeFiles/selective_scan.dir/selective_scan.cpp.o"
  "CMakeFiles/selective_scan.dir/selective_scan.cpp.o.d"
  "selective_scan"
  "selective_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selective_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
