# Empty compiler generated dependencies file for selective_scan.
# This may be replaced when dependencies are built.
