# Empty compiler generated dependencies file for micro_stages.
# This may be replaced when dependencies are built.
