file(REMOVE_RECURSE
  "CMakeFiles/micro_stages.dir/micro_stages.cc.o"
  "CMakeFiles/micro_stages.dir/micro_stages.cc.o.d"
  "micro_stages"
  "micro_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
