file(REMOVE_RECURSE
  "CMakeFiles/ablation_policies.dir/ablation_policies.cc.o"
  "CMakeFiles/ablation_policies.dir/ablation_policies.cc.o.d"
  "ablation_policies"
  "ablation_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
