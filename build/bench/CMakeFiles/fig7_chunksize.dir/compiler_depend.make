# Empty compiler generated dependencies file for fig7_chunksize.
# This may be replaced when dependencies are built.
