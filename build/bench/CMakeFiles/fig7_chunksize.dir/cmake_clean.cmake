file(REMOVE_RECURSE
  "CMakeFiles/fig7_chunksize.dir/fig7_chunksize.cc.o"
  "CMakeFiles/fig7_chunksize.dir/fig7_chunksize.cc.o.d"
  "fig7_chunksize"
  "fig7_chunksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_chunksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
