file(REMOVE_RECURSE
  "CMakeFiles/fig9_utilization.dir/fig9_utilization.cc.o"
  "CMakeFiles/fig9_utilization.dir/fig9_utilization.cc.o.d"
  "fig9_utilization"
  "fig9_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
