# Empty dependencies file for fig9_utilization.
# This may be replaced when dependencies are built.
