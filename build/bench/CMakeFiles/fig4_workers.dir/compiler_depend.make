# Empty compiler generated dependencies file for fig4_workers.
# This may be replaced when dependencies are built.
