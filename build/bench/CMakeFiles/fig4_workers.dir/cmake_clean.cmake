file(REMOVE_RECURSE
  "CMakeFiles/fig4_workers.dir/fig4_workers.cc.o"
  "CMakeFiles/fig4_workers.dir/fig4_workers.cc.o.d"
  "fig4_workers"
  "fig4_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
