# Empty compiler generated dependencies file for table1_genomics.
# This may be replaced when dependencies are built.
