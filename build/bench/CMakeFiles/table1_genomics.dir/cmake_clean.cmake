file(REMOVE_RECURSE
  "CMakeFiles/table1_genomics.dir/table1_genomics.cc.o"
  "CMakeFiles/table1_genomics.dir/table1_genomics.cc.o.d"
  "table1_genomics"
  "table1_genomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_genomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
