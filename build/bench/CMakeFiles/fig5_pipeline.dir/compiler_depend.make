# Empty compiler generated dependencies file for fig5_pipeline.
# This may be replaced when dependencies are built.
