file(REMOVE_RECURSE
  "CMakeFiles/fig5_pipeline.dir/fig5_pipeline.cc.o"
  "CMakeFiles/fig5_pipeline.dir/fig5_pipeline.cc.o.d"
  "fig5_pipeline"
  "fig5_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
