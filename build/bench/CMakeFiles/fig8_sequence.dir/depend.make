# Empty dependencies file for fig8_sequence.
# This may be replaced when dependencies are built.
