file(REMOVE_RECURSE
  "CMakeFiles/fig8_sequence.dir/fig8_sequence.cc.o"
  "CMakeFiles/fig8_sequence.dir/fig8_sequence.cc.o.d"
  "fig8_sequence"
  "fig8_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
