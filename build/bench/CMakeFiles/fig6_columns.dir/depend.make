# Empty dependencies file for fig6_columns.
# This may be replaced when dependencies are built.
