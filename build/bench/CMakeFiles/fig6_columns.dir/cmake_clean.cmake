file(REMOVE_RECURSE
  "CMakeFiles/fig6_columns.dir/fig6_columns.cc.o"
  "CMakeFiles/fig6_columns.dir/fig6_columns.cc.o.d"
  "fig6_columns"
  "fig6_columns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_columns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
