file(REMOVE_RECURSE
  "CMakeFiles/scanraw_core.dir/scanraw/chunk_cache.cc.o"
  "CMakeFiles/scanraw_core.dir/scanraw/chunk_cache.cc.o.d"
  "CMakeFiles/scanraw_core.dir/scanraw/raw_reader.cc.o"
  "CMakeFiles/scanraw_core.dir/scanraw/raw_reader.cc.o.d"
  "CMakeFiles/scanraw_core.dir/scanraw/scan_raw.cc.o"
  "CMakeFiles/scanraw_core.dir/scanraw/scan_raw.cc.o.d"
  "CMakeFiles/scanraw_core.dir/scanraw/scanraw_manager.cc.o"
  "CMakeFiles/scanraw_core.dir/scanraw/scanraw_manager.cc.o.d"
  "libscanraw_core.a"
  "libscanraw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanraw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
