file(REMOVE_RECURSE
  "libscanraw_core.a"
)
