# Empty compiler generated dependencies file for scanraw_core.
# This may be replaced when dependencies are built.
