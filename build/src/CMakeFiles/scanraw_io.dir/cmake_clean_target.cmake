file(REMOVE_RECURSE
  "libscanraw_io.a"
)
