
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/disk_arbiter.cc" "src/CMakeFiles/scanraw_io.dir/io/disk_arbiter.cc.o" "gcc" "src/CMakeFiles/scanraw_io.dir/io/disk_arbiter.cc.o.d"
  "/root/repo/src/io/file.cc" "src/CMakeFiles/scanraw_io.dir/io/file.cc.o" "gcc" "src/CMakeFiles/scanraw_io.dir/io/file.cc.o.d"
  "/root/repo/src/io/rate_limiter.cc" "src/CMakeFiles/scanraw_io.dir/io/rate_limiter.cc.o" "gcc" "src/CMakeFiles/scanraw_io.dir/io/rate_limiter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scanraw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
