# Empty compiler generated dependencies file for scanraw_io.
# This may be replaced when dependencies are built.
