file(REMOVE_RECURSE
  "CMakeFiles/scanraw_io.dir/io/disk_arbiter.cc.o"
  "CMakeFiles/scanraw_io.dir/io/disk_arbiter.cc.o.d"
  "CMakeFiles/scanraw_io.dir/io/file.cc.o"
  "CMakeFiles/scanraw_io.dir/io/file.cc.o.d"
  "CMakeFiles/scanraw_io.dir/io/rate_limiter.cc.o"
  "CMakeFiles/scanraw_io.dir/io/rate_limiter.cc.o.d"
  "libscanraw_io.a"
  "libscanraw_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanraw_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
