file(REMOVE_RECURSE
  "CMakeFiles/scanraw_sim.dir/sim/calibrate.cc.o"
  "CMakeFiles/scanraw_sim.dir/sim/calibrate.cc.o.d"
  "CMakeFiles/scanraw_sim.dir/sim/pipeline_sim.cc.o"
  "CMakeFiles/scanraw_sim.dir/sim/pipeline_sim.cc.o.d"
  "libscanraw_sim.a"
  "libscanraw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanraw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
