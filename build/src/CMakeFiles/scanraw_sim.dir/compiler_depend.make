# Empty compiler generated dependencies file for scanraw_sim.
# This may be replaced when dependencies are built.
