file(REMOVE_RECURSE
  "libscanraw_sim.a"
)
