# Empty dependencies file for scanraw_genomics.
# This may be replaced when dependencies are built.
