file(REMOVE_RECURSE
  "CMakeFiles/scanraw_genomics.dir/genomics/bam_like.cc.o"
  "CMakeFiles/scanraw_genomics.dir/genomics/bam_like.cc.o.d"
  "CMakeFiles/scanraw_genomics.dir/genomics/sam.cc.o"
  "CMakeFiles/scanraw_genomics.dir/genomics/sam.cc.o.d"
  "libscanraw_genomics.a"
  "libscanraw_genomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanraw_genomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
