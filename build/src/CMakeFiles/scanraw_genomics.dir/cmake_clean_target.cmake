file(REMOVE_RECURSE
  "libscanraw_genomics.a"
)
