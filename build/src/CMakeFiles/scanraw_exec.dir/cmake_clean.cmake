file(REMOVE_RECURSE
  "CMakeFiles/scanraw_exec.dir/exec/query.cc.o"
  "CMakeFiles/scanraw_exec.dir/exec/query.cc.o.d"
  "libscanraw_exec.a"
  "libscanraw_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanraw_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
