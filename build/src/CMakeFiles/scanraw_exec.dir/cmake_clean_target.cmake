file(REMOVE_RECURSE
  "libscanraw_exec.a"
)
