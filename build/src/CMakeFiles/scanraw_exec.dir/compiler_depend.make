# Empty compiler generated dependencies file for scanraw_exec.
# This may be replaced when dependencies are built.
