
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/sql_parser.cc" "src/CMakeFiles/scanraw_sql.dir/sql/sql_parser.cc.o" "gcc" "src/CMakeFiles/scanraw_sql.dir/sql/sql_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scanraw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scanraw_format.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scanraw_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scanraw_columnar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
