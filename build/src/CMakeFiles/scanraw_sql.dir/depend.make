# Empty dependencies file for scanraw_sql.
# This may be replaced when dependencies are built.
