file(REMOVE_RECURSE
  "libscanraw_sql.a"
)
