file(REMOVE_RECURSE
  "CMakeFiles/scanraw_sql.dir/sql/sql_parser.cc.o"
  "CMakeFiles/scanraw_sql.dir/sql/sql_parser.cc.o.d"
  "libscanraw_sql.a"
  "libscanraw_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanraw_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
