file(REMOVE_RECURSE
  "libscanraw_datagen.a"
)
