file(REMOVE_RECURSE
  "CMakeFiles/scanraw_datagen.dir/datagen/csv_generator.cc.o"
  "CMakeFiles/scanraw_datagen.dir/datagen/csv_generator.cc.o.d"
  "CMakeFiles/scanraw_datagen.dir/datagen/jsonl_generator.cc.o"
  "CMakeFiles/scanraw_datagen.dir/datagen/jsonl_generator.cc.o.d"
  "libscanraw_datagen.a"
  "libscanraw_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanraw_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
