# Empty dependencies file for scanraw_datagen.
# This may be replaced when dependencies are built.
