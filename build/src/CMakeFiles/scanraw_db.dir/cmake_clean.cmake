file(REMOVE_RECURSE
  "CMakeFiles/scanraw_db.dir/db/catalog.cc.o"
  "CMakeFiles/scanraw_db.dir/db/catalog.cc.o.d"
  "CMakeFiles/scanraw_db.dir/db/heap_scan.cc.o"
  "CMakeFiles/scanraw_db.dir/db/heap_scan.cc.o.d"
  "CMakeFiles/scanraw_db.dir/db/sketches.cc.o"
  "CMakeFiles/scanraw_db.dir/db/sketches.cc.o.d"
  "CMakeFiles/scanraw_db.dir/db/statistics.cc.o"
  "CMakeFiles/scanraw_db.dir/db/statistics.cc.o.d"
  "CMakeFiles/scanraw_db.dir/db/storage_manager.cc.o"
  "CMakeFiles/scanraw_db.dir/db/storage_manager.cc.o.d"
  "libscanraw_db.a"
  "libscanraw_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanraw_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
