
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/catalog.cc" "src/CMakeFiles/scanraw_db.dir/db/catalog.cc.o" "gcc" "src/CMakeFiles/scanraw_db.dir/db/catalog.cc.o.d"
  "/root/repo/src/db/heap_scan.cc" "src/CMakeFiles/scanraw_db.dir/db/heap_scan.cc.o" "gcc" "src/CMakeFiles/scanraw_db.dir/db/heap_scan.cc.o.d"
  "/root/repo/src/db/sketches.cc" "src/CMakeFiles/scanraw_db.dir/db/sketches.cc.o" "gcc" "src/CMakeFiles/scanraw_db.dir/db/sketches.cc.o.d"
  "/root/repo/src/db/statistics.cc" "src/CMakeFiles/scanraw_db.dir/db/statistics.cc.o" "gcc" "src/CMakeFiles/scanraw_db.dir/db/statistics.cc.o.d"
  "/root/repo/src/db/storage_manager.cc" "src/CMakeFiles/scanraw_db.dir/db/storage_manager.cc.o" "gcc" "src/CMakeFiles/scanraw_db.dir/db/storage_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scanraw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scanraw_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scanraw_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scanraw_format.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
