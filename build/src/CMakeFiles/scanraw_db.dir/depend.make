# Empty dependencies file for scanraw_db.
# This may be replaced when dependencies are built.
