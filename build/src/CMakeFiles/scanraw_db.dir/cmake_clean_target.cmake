file(REMOVE_RECURSE
  "libscanraw_db.a"
)
