file(REMOVE_RECURSE
  "CMakeFiles/scanraw_pipeline.dir/pipeline/thread_pool.cc.o"
  "CMakeFiles/scanraw_pipeline.dir/pipeline/thread_pool.cc.o.d"
  "libscanraw_pipeline.a"
  "libscanraw_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanraw_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
