# Empty compiler generated dependencies file for scanraw_pipeline.
# This may be replaced when dependencies are built.
