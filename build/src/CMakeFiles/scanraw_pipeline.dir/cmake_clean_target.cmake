file(REMOVE_RECURSE
  "libscanraw_pipeline.a"
)
