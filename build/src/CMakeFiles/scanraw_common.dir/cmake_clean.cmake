file(REMOVE_RECURSE
  "CMakeFiles/scanraw_common.dir/common/clock.cc.o"
  "CMakeFiles/scanraw_common.dir/common/clock.cc.o.d"
  "CMakeFiles/scanraw_common.dir/common/status.cc.o"
  "CMakeFiles/scanraw_common.dir/common/status.cc.o.d"
  "CMakeFiles/scanraw_common.dir/common/string_util.cc.o"
  "CMakeFiles/scanraw_common.dir/common/string_util.cc.o.d"
  "libscanraw_common.a"
  "libscanraw_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanraw_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
