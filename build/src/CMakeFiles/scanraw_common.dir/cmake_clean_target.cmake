file(REMOVE_RECURSE
  "libscanraw_common.a"
)
