# Empty dependencies file for scanraw_common.
# This may be replaced when dependencies are built.
