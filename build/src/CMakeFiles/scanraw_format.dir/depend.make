# Empty dependencies file for scanraw_format.
# This may be replaced when dependencies are built.
