file(REMOVE_RECURSE
  "CMakeFiles/scanraw_format.dir/format/json_tokenizer.cc.o"
  "CMakeFiles/scanraw_format.dir/format/json_tokenizer.cc.o.d"
  "CMakeFiles/scanraw_format.dir/format/parser.cc.o"
  "CMakeFiles/scanraw_format.dir/format/parser.cc.o.d"
  "CMakeFiles/scanraw_format.dir/format/schema.cc.o"
  "CMakeFiles/scanraw_format.dir/format/schema.cc.o.d"
  "CMakeFiles/scanraw_format.dir/format/tokenizer.cc.o"
  "CMakeFiles/scanraw_format.dir/format/tokenizer.cc.o.d"
  "libscanraw_format.a"
  "libscanraw_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanraw_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
