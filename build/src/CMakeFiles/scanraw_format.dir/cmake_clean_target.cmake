file(REMOVE_RECURSE
  "libscanraw_format.a"
)
