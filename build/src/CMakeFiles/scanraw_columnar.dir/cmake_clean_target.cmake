file(REMOVE_RECURSE
  "libscanraw_columnar.a"
)
