
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/columnar/binary_chunk.cc" "src/CMakeFiles/scanraw_columnar.dir/columnar/binary_chunk.cc.o" "gcc" "src/CMakeFiles/scanraw_columnar.dir/columnar/binary_chunk.cc.o.d"
  "/root/repo/src/columnar/chunk_serde.cc" "src/CMakeFiles/scanraw_columnar.dir/columnar/chunk_serde.cc.o" "gcc" "src/CMakeFiles/scanraw_columnar.dir/columnar/chunk_serde.cc.o.d"
  "/root/repo/src/columnar/chunk_sort.cc" "src/CMakeFiles/scanraw_columnar.dir/columnar/chunk_sort.cc.o" "gcc" "src/CMakeFiles/scanraw_columnar.dir/columnar/chunk_sort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scanraw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
