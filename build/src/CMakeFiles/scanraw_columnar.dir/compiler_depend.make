# Empty compiler generated dependencies file for scanraw_columnar.
# This may be replaced when dependencies are built.
