file(REMOVE_RECURSE
  "CMakeFiles/scanraw_columnar.dir/columnar/binary_chunk.cc.o"
  "CMakeFiles/scanraw_columnar.dir/columnar/binary_chunk.cc.o.d"
  "CMakeFiles/scanraw_columnar.dir/columnar/chunk_serde.cc.o"
  "CMakeFiles/scanraw_columnar.dir/columnar/chunk_serde.cc.o.d"
  "CMakeFiles/scanraw_columnar.dir/columnar/chunk_sort.cc.o"
  "CMakeFiles/scanraw_columnar.dir/columnar/chunk_sort.cc.o.d"
  "libscanraw_columnar.a"
  "libscanraw_columnar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanraw_columnar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
