# Empty compiler generated dependencies file for scanraw_datagen_tool.
# This may be replaced when dependencies are built.
