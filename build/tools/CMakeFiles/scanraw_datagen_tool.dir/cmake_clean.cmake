file(REMOVE_RECURSE
  "CMakeFiles/scanraw_datagen_tool.dir/scanraw_datagen.cc.o"
  "CMakeFiles/scanraw_datagen_tool.dir/scanraw_datagen.cc.o.d"
  "scanraw_datagen"
  "scanraw_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanraw_datagen_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
