file(REMOVE_RECURSE
  "CMakeFiles/scanraw_cli.dir/scanraw_cli.cc.o"
  "CMakeFiles/scanraw_cli.dir/scanraw_cli.cc.o.d"
  "scanraw_cli"
  "scanraw_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanraw_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
