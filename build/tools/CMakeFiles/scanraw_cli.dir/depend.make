# Empty dependencies file for scanraw_cli.
# This may be replaced when dependencies are built.
