# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke "bash" "-c" "set -e;     d=\$(mktemp -d); trap 'rm -rf \$d' EXIT;     /root/repo/build/tools/scanraw_datagen csv --out \$d/t.csv --rows 5000 --cols 4;     /root/repo/build/tools/scanraw_cli --db \$d/t.db --catalog \$d/t.catalog       --table t=\$d/t.csv=csv4 --policy full       'SELECT SUM(C0+C1+C2+C3) FROM t' | tee \$d/run1.txt;     grep -q 'rows matched' \$d/run1.txt;     grep -q '100% of t loaded' \$d/run1.txt;     /root/repo/build/tools/scanraw_cli --db \$d/t.db --catalog \$d/t.catalog       --table t=\$d/t.csv=csv4       'SELECT COUNT(*) FROM t WHERE C0 BETWEEN 0 AND 99999' | tee \$d/run2.txt;     grep -q 'recovered catalog' \$d/run2.txt")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
