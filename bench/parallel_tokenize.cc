// Scaling benchmark for the speculative intra-file parallel TOKENIZE
// (format/parallel_chunker). Times three things over a fig5-style wide
// chunk (64 uint32 columns x 4096 rows) and a quoted variant of it:
//
//  * the frozen sequential SIMD tokenizer (the baseline tier),
//  * ParallelTokenizeChunk at 1/2/4/8 total threads (pool workers + the
//    participating caller),
//  * the quote-aware record scan, sequential FSM vs. speculative ranges.
//
// The main table (gated by tools/bench_compare against
// bench/golden/BENCH_parallel_tokenize.json in CI) holds ms-per-chunk;
// throughput and speedup-vs-sequential ride along as extras. On a
// single-core host the parallel rows degenerate to the sequential time plus
// fan-out overhead — the golden values are whatever the reference machine
// measured, so the gate still catches regressions in either tier.

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/string_util.h"
#include "format/parallel_chunker.h"
#include "format/tokenizer.h"
#include "pipeline/thread_pool.h"

namespace scanraw {
namespace {

constexpr size_t kColumns = 64;
constexpr size_t kRows = 4096;

TextChunk MakeUnquotedChunk() {
  Random rng(42);
  std::string data;
  for (size_t r = 0; r < kRows; ++r) {
    for (size_t c = 0; c < kColumns; ++c) {
      if (c > 0) data.push_back(',');
      AppendUint64(&data, rng.NextUint32() & 0x7FFFFFFFu);
    }
    data.push_back('\n');
  }
  return MakeTextChunk(std::move(data));
}

// Same shape, but every eighth column is a quoted string with embedded
// delimiters and doubled quotes (quoted newlines excluded here so the row
// count stays comparable; the record-scan cases cover those).
TextChunk MakeQuotedChunk() {
  Random rng(43);
  std::string data;
  for (size_t r = 0; r < kRows; ++r) {
    for (size_t c = 0; c < kColumns; ++c) {
      if (c > 0) data.push_back(',');
      if (c % 8 == 7) {
        data.push_back('"');
        data.push_back('v');
        AppendUint64(&data, rng.NextUint32() & 0xFFFFu);
        if (rng.OneIn(2)) data.push_back(',');
        if (rng.OneIn(3)) data += "\"\"";
        data.push_back('"');
      } else {
        AppendUint64(&data, rng.NextUint32() & 0x7FFFFFFFu);
      }
    }
    data.push_back('\n');
  }
  return MakeTextChunk(std::move(data));
}

// Seconds per call, min over repetitions of a calibrated batch (same
// estimator as micro_stages).
double TimeIt(const std::function<void()>& fn) {
  constexpr int64_t kTargetBatchNanos = 50'000'000;  // 50 ms
  constexpr int kReps = 5;
  RealClock* clock = RealClock::Instance();
  fn();  // warm-up
  int64_t t0 = clock->NowNanos();
  fn();
  const int64_t once = std::max<int64_t>(clock->NowNanos() - t0, 1);
  const int64_t iters = std::max<int64_t>(kTargetBatchNanos / once, 1);
  double best = 1e100;
  for (int rep = 0; rep < kReps; ++rep) {
    t0 = clock->NowNanos();
    for (int64_t i = 0; i < iters; ++i) fn();
    const double per_call = static_cast<double>(clock->NowNanos() - t0) /
                            static_cast<double>(iters) * 1e-9;
    best = std::min(best, per_call);
  }
  return best;
}

}  // namespace

int Run() {
  const TextChunk unquoted = MakeUnquotedChunk();
  const TextChunk quoted = MakeQuotedChunk();

  TokenizeOptions topts;
  topts.schema_fields = kColumns;
  TokenizeOptions qopts = topts;
  qopts.quoted = true;

  // One pool per thread count, workers = threads - 1 (the caller is the
  // remaining thread).
  const size_t kThreads[] = {1, 2, 4, 8};
  std::vector<std::unique_ptr<ThreadPool>> pools;
  for (size_t t : kThreads) pools.push_back(std::make_unique<ThreadPool>(t - 1));

  struct Row {
    std::string key;
    double seconds = 0;
    size_t bytes = 0;
    double speedup = 0;  // vs. the matching sequential row; 0 = baseline
  };
  std::vector<Row> rows;

  auto parallel_tokenize = [&](const TextChunk& chunk,
                               const TokenizeOptions& opts, ThreadPool* pool,
                               size_t threads) {
    ParallelTokenizeOptions ptopts;
    ptopts.pool = pool;
    ptopts.num_ranges = threads;
    ptopts.min_range_bytes = 1;
    SpeculationStats stats;
    auto map = ParallelTokenizeChunk(chunk, opts, ptopts, &stats);
    bench::CheckOk(map.status(), "parallel tokenize");
  };

  // -- TOKENIZE, unquoted then quoted ------------------------------------
  for (const bool q : {false, true}) {
    const TextChunk& chunk = q ? quoted : unquoted;
    const TokenizeOptions& opts = q ? qopts : topts;
    const std::string tag = q ? "quoted" : "u32";
    const double seq = TimeIt([&] {
      auto map = TokenizeChunk(chunk, opts);
      bench::CheckOk(map.status(), "tokenize");
    });
    rows.push_back({"tokenize_seq/" + tag, seq, chunk.data.size(), 0});
    for (size_t i = 0; i < 4; ++i) {
      const double par = TimeIt([&] {
        parallel_tokenize(chunk, opts, pools[i].get(), kThreads[i]);
      });
      rows.push_back({"tokenize_par/" + tag + "/t" +
                          std::to_string(kThreads[i]),
                      par, chunk.data.size(), seq / par});
    }
  }

  // -- quote-aware record scan: sequential FSM vs. speculative ranges ----
  {
    const RecordDialect dialect{true, '"'};
    const double seq = TimeIt([&] {
      std::vector<uint32_t> newlines;
      FindRecordNewlines(quoted.data.data(), 0, quoted.data.size(), dialect,
                         false, &newlines);
    });
    rows.push_back({"recscan_seq/quoted", seq, quoted.data.size(), 0});
    for (size_t i = 0; i < 4; ++i) {
      RecordScanOptions sopts;
      sopts.dialect = dialect;
      sopts.pool = pools[i].get();
      sopts.num_ranges = kThreads[i];
      sopts.min_range_bytes = 1;
      const double par = TimeIt([&] {
        SpeculationStats stats;
        std::vector<uint32_t> newlines;
        ParallelFindRecordNewlines(quoted.data.data(), 0, quoted.data.size(),
                                   false, sopts, &stats, &newlines);
      });
      rows.push_back({"recscan_par/quoted/t" + std::to_string(kThreads[i]),
                      par, quoted.data.size(), seq / par});
    }
  }

  bench::TablePrinter table({"stage", "ms_per_chunk"});
  std::string speedups = "{";
  std::string throughput = "{";
  bool first = true;
  for (const Row& row : rows) {
    table.AddRow({row.key, bench::Fmt("%.4f", row.seconds * 1e3)});
    const double mbps =
        static_cast<double>(row.bytes) / row.seconds / (1024.0 * 1024.0);
    if (!first) {
      speedups += ",";
      throughput += ",";
    }
    first = false;
    speedups += "\"" + row.key + "\":" + bench::Fmt("%.2f", row.speedup);
    throughput += "\"" + row.key + "\":" + bench::Fmt("%.1f", mbps);
    std::printf("%-26s %9.4f ms  %8.1f MB/s  %s\n", row.key.c_str(),
                row.seconds * 1e3, mbps,
                row.speedup > 0
                    ? (bench::Fmt("%.2f", row.speedup) + "x vs seq").c_str()
                    : "baseline");
  }
  speedups += "}";
  throughput += "}";

  std::printf("\n");
  table.Print();
  bench::BenchJsonWriter writer("parallel_tokenize");
  writer.AddExtra("rows_per_chunk", std::to_string(kRows));
  writer.AddExtra("columns", std::to_string(kColumns));
  writer.AddExtra("host_threads",
                  std::to_string(std::thread::hardware_concurrency()));
  writer.AddExtra("speedup_vs_seq", speedups);
  writer.AddExtra("throughput_mb_s", throughput);
  return writer.Write(table) ? 0 : 1;
}

}  // namespace scanraw

int main() { return scanraw::Run(); }
