// Microbenchmarks for the conversion stages. Two layers:
//
//  1. A self-timed "golden" harness (always run, or alone with
//     --golden-only) that times the vectorized TOKENIZE/PARSE hot path
//     against the frozen scalar reference (bench/reference_scalar.h) and
//     writes BENCH_micro_stages.json for the bench_compare CI gate. The
//     main table holds only the new-path times (larger = worse, gated
//     against bench/golden/); the scalar times and the speedup ratios ride
//     along as extras.
//
//  2. The google-benchmark suite with per-stage counters (TOKENIZE and
//     PARSE throughput by column count, chunk serialization, BAM decode) —
//     the raw numbers behind the Figure 5 cost model.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string_view>

#include "bench/bench_util.h"
#include "bench/reference_scalar.h"
#include "columnar/chunk_serde.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/string_util.h"
#include "format/parallel_chunker.h"
#include "format/parser.h"
#include "format/tokenizer.h"
#include "genomics/bam_like.h"
#include "pipeline/thread_pool.h"

namespace scanraw {
namespace {

TextChunk MakeCsvChunk(size_t columns, size_t rows) {
  Random rng(42);
  std::string data;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns; ++c) {
      if (c > 0) data.push_back(',');
      AppendUint64(&data, rng.NextUint32() & 0x7FFFFFFFu);
    }
    data.push_back('\n');
  }
  return MakeTextChunk(std::move(data));
}

Schema AllDoubleSchema(size_t count) {
  std::vector<ColumnDef> cols(count);
  for (size_t i = 0; i < count; ++i) {
    cols[i].name = "D" + std::to_string(i);
    cols[i].type = FieldType::kDouble;
  }
  return Schema(std::move(cols));
}

TextChunk MakeDoubleCsvChunk(size_t columns, size_t rows) {
  Random rng(7);
  std::string data;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns; ++c) {
      if (c > 0) data.push_back(',');
      data += bench::Fmt("%.6f", rng.NextDouble() * 1e4 - 5e3);
    }
    data.push_back('\n');
  }
  return MakeTextChunk(std::move(data));
}

// ------------------------------------------------------- golden harness ---

// Seconds per call, min over `reps` repetitions of a calibrated batch. The
// minimum is the standard noise-robust estimator for CI gates.
double TimeIt(const std::function<void()>& fn) {
  constexpr int64_t kTargetBatchNanos = 50'000'000;  // 50 ms
  constexpr int kReps = 5;
  RealClock* clock = RealClock::Instance();
  fn();  // warm-up
  int64_t t0 = clock->NowNanos();
  fn();
  const int64_t once = std::max<int64_t>(clock->NowNanos() - t0, 1);
  const int64_t iters = std::max<int64_t>(kTargetBatchNanos / once, 1);
  double best = 1e100;
  for (int rep = 0; rep < kReps; ++rep) {
    t0 = clock->NowNanos();
    for (int64_t i = 0; i < iters; ++i) fn();
    const double per_call = static_cast<double>(clock->NowNanos() - t0) /
                            static_cast<double>(iters) * 1e-9;
    best = std::min(best, per_call);
  }
  return best;
}

struct GoldenCase {
  std::string key;
  std::function<void()> vectorized;
  std::function<void()> scalar;
};

int RunGolden() {
  constexpr size_t kRows = 4096;
  // Workloads live beyond the lambdas below.
  static const TextChunk u32_16 = MakeCsvChunk(16, kRows);
  static const TextChunk u32_64 = MakeCsvChunk(64, kRows);
  static const TextChunk dbl_16 = MakeDoubleCsvChunk(16, kRows);

  auto tokenize_case = [](const TextChunk& chunk, size_t columns,
                          const char* key) {
    TokenizeOptions opts;
    opts.schema_fields = columns;
    return GoldenCase{
        key,
        [&chunk, opts] {
          auto map = TokenizeChunk(chunk, opts);
          bench::CheckOk(map.status(), "tokenize");
          benchmark::DoNotOptimize(map);
        },
        [&chunk, opts] {
          auto map = reference::RefTokenizeChunk(chunk, opts);
          bench::CheckOk(map.status(), "ref tokenize");
          benchmark::DoNotOptimize(map);
        }};
  };
  auto parse_case = [](const TextChunk& chunk, const Schema& schema,
                       const char* key) {
    TokenizeOptions topts;
    topts.schema_fields = schema.num_columns();
    auto map = TokenizeChunk(chunk, topts);
    bench::CheckOk(map.status(), "tokenize for parse");
    auto m = std::make_shared<PositionalMap>(std::move(*map));
    return GoldenCase{
        key,
        [&chunk, m, schema] {
          auto parsed = ParseChunk(chunk, *m, schema, ParseOptions{});
          bench::CheckOk(parsed.status(), "parse");
          benchmark::DoNotOptimize(parsed);
        },
        [&chunk, m, schema] {
          auto parsed = reference::RefParseChunk(chunk, *m, schema,
                                                 ParseOptions{});
          bench::CheckOk(parsed.status(), "ref parse");
          benchmark::DoNotOptimize(parsed);
        }};
  };

  // Third tier: the speculative parallel tokenizer vs. the sequential SIMD
  // path it must beat on multi-core hosts (bench/parallel_tokenize has the
  // full thread-scaling sweep; this single case keeps the tier under the
  // same regression gate as the rest of the hot path).
  static ThreadPool pool(3);
  auto parallel_case = [](const TextChunk& chunk, size_t columns,
                          const char* key) {
    TokenizeOptions opts;
    opts.schema_fields = columns;
    return GoldenCase{
        key,
        [&chunk, opts] {
          ParallelTokenizeOptions ptopts;
          ptopts.pool = &pool;
          ptopts.num_ranges = 4;
          ptopts.min_range_bytes = 1;
          SpeculationStats stats;
          auto map = ParallelTokenizeChunk(chunk, opts, ptopts, &stats);
          bench::CheckOk(map.status(), "parallel tokenize");
          benchmark::DoNotOptimize(map);
        },
        [&chunk, opts] {
          auto map = TokenizeChunk(chunk, opts);
          bench::CheckOk(map.status(), "tokenize");
          benchmark::DoNotOptimize(map);
        }};
  };

  std::vector<GoldenCase> cases;
  cases.push_back(tokenize_case(u32_16, 16, "tokenize/16"));
  cases.push_back(tokenize_case(u32_64, 64, "tokenize/64"));
  cases.push_back(parallel_case(u32_64, 64, "tokenize_par/64"));
  cases.push_back(parse_case(u32_16, Schema::AllUint32(16), "parse_u32/16"));
  cases.push_back(parse_case(u32_64, Schema::AllUint32(64), "parse_u32/64"));
  cases.push_back(parse_case(dbl_16, AllDoubleSchema(16), "parse_dbl/16"));

  bench::TablePrinter table({"stage", "ms_per_chunk"});
  bench::TablePrinter scalar_table({"stage", "ms_per_chunk"});
  std::string speedups = "{";
  for (size_t i = 0; i < cases.size(); ++i) {
    const GoldenCase& c = cases[i];
    const double vec_s = TimeIt(c.vectorized);
    const double ref_s = TimeIt(c.scalar);
    table.AddRow({c.key, bench::Fmt("%.4f", vec_s * 1e3)});
    scalar_table.AddRow({c.key, bench::Fmt("%.4f", ref_s * 1e3)});
    if (i > 0) speedups += ",";
    speedups += "\"" + c.key + "\":" + bench::Fmt("%.2f", ref_s / vec_s);
    std::printf("%-14s vectorized %8.4f ms   scalar %8.4f ms   speedup %.2fx\n",
                c.key.c_str(), vec_s * 1e3, ref_s * 1e3, ref_s / vec_s);
  }
  speedups += "}";

  std::printf("\n");
  table.Print();
  bench::BenchJsonWriter writer("micro_stages");
  writer.AddExtra("rows_per_chunk", std::to_string(kRows));
  writer.AddExtra("scalar", bench::BenchJsonWriter::TableJson(scalar_table));
  writer.AddExtra("speedups", speedups);
  return writer.Write(table) ? 0 : 1;
}

// ------------------------------------------------- google-benchmark suite --

void BM_Tokenize(benchmark::State& state) {
  const size_t columns = static_cast<size_t>(state.range(0));
  const size_t rows = 4096;
  TextChunk chunk = MakeCsvChunk(columns, rows);
  TokenizeOptions opts;
  opts.schema_fields = columns;
  for (auto _ : state) {
    auto map = TokenizeChunk(chunk, opts);
    benchmark::DoNotOptimize(map);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(chunk.data.size()));
}
BENCHMARK(BM_Tokenize)->Arg(2)->Arg(16)->Arg(64)->Arg(256);

void BM_TokenizeScalarRef(benchmark::State& state) {
  const size_t columns = static_cast<size_t>(state.range(0));
  const size_t rows = 4096;
  TextChunk chunk = MakeCsvChunk(columns, rows);
  TokenizeOptions opts;
  opts.schema_fields = columns;
  for (auto _ : state) {
    auto map = reference::RefTokenizeChunk(chunk, opts);
    benchmark::DoNotOptimize(map);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(chunk.data.size()));
}
BENCHMARK(BM_TokenizeScalarRef)->Arg(2)->Arg(16)->Arg(64)->Arg(256);

void BM_Parse(benchmark::State& state) {
  const size_t columns = static_cast<size_t>(state.range(0));
  const size_t rows = 4096;
  TextChunk chunk = MakeCsvChunk(columns, rows);
  const Schema schema = Schema::AllUint32(columns);
  TokenizeOptions topts;
  topts.schema_fields = columns;
  auto map = TokenizeChunk(chunk, topts);
  for (auto _ : state) {
    auto parsed = ParseChunk(chunk, *map, schema, ParseOptions{});
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * columns));
}
BENCHMARK(BM_Parse)->Arg(2)->Arg(16)->Arg(64)->Arg(256);

void BM_ParseScalarRef(benchmark::State& state) {
  const size_t columns = static_cast<size_t>(state.range(0));
  const size_t rows = 4096;
  TextChunk chunk = MakeCsvChunk(columns, rows);
  const Schema schema = Schema::AllUint32(columns);
  TokenizeOptions topts;
  topts.schema_fields = columns;
  auto map = TokenizeChunk(chunk, topts);
  for (auto _ : state) {
    auto parsed = reference::RefParseChunk(chunk, *map, schema,
                                           ParseOptions{});
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * columns));
}
BENCHMARK(BM_ParseScalarRef)->Arg(2)->Arg(16)->Arg(64)->Arg(256);

void BM_SelectiveParse(benchmark::State& state) {
  const size_t columns = 64;
  const size_t projected = static_cast<size_t>(state.range(0));
  TextChunk chunk = MakeCsvChunk(columns, 4096);
  const Schema schema = Schema::AllUint32(columns);
  TokenizeOptions topts;
  topts.schema_fields = columns;
  auto map = TokenizeChunk(chunk, topts);
  ParseOptions popts;
  for (size_t c = 0; c < projected; ++c) popts.projected_columns.push_back(c);
  for (auto _ : state) {
    auto parsed = ParseChunk(chunk, *map, schema, popts);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_SelectiveParse)->Arg(1)->Arg(8)->Arg(32)->Arg(64);

void BM_ChunkSerde(benchmark::State& state) {
  TextChunk text = MakeCsvChunk(16, 4096);
  const Schema schema = Schema::AllUint32(16);
  TokenizeOptions topts;
  topts.schema_fields = 16;
  auto map = TokenizeChunk(text, topts);
  auto chunk = ParseChunk(text, *map, schema, ParseOptions{});
  for (auto _ : state) {
    std::string blob;
    Status serde = SerializeChunk(*chunk, &blob);
    if (!serde.ok()) {
      state.SkipWithError(serde.ToString().c_str());
      break;
    }
    auto back = DeserializeChunk(blob);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_ChunkSerde);

void BM_BamDecode(benchmark::State& state) {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                     "/scanraw_micro.bam";
  SamGenSpec spec;
  spec.num_reads = 4096;
  auto gen = GenerateBamFile(path, spec);
  if (!gen.ok()) {
    state.SkipWithError(gen.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto reader = BamReader::Open(path);
    SamRecord record;
    uint64_t count = 0;
    while (true) {
      auto more = (*reader)->NextRecord(&record);
      if (!more.ok() || !*more) break;
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_BamDecode);

}  // namespace
}  // namespace scanraw

int main(int argc, char** argv) {
  bool golden_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--golden-only") golden_only = true;
  }
  const int golden_rc = scanraw::RunGolden();
  if (golden_only || golden_rc != 0) return golden_rc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
