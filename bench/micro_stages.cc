// Google-benchmark microbenchmarks for the conversion stages: TOKENIZE and
// PARSE throughput by column count, chunk serialization, and the BAM-like
// sequential decoder — the raw numbers behind the Figure 5 cost model.

#include <benchmark/benchmark.h>

#include "columnar/chunk_serde.h"
#include "common/random.h"
#include "common/string_util.h"
#include "format/parser.h"
#include "format/tokenizer.h"
#include "genomics/bam_like.h"

namespace scanraw {
namespace {

TextChunk MakeCsvChunk(size_t columns, size_t rows) {
  Random rng(42);
  std::string data;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns; ++c) {
      if (c > 0) data.push_back(',');
      AppendUint64(&data, rng.NextUint32() & 0x7FFFFFFFu);
    }
    data.push_back('\n');
  }
  return MakeTextChunk(std::move(data));
}

void BM_Tokenize(benchmark::State& state) {
  const size_t columns = static_cast<size_t>(state.range(0));
  const size_t rows = 4096;
  TextChunk chunk = MakeCsvChunk(columns, rows);
  TokenizeOptions opts;
  opts.schema_fields = columns;
  for (auto _ : state) {
    auto map = TokenizeChunk(chunk, opts);
    benchmark::DoNotOptimize(map);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(chunk.data.size()));
}
BENCHMARK(BM_Tokenize)->Arg(2)->Arg(16)->Arg(64)->Arg(256);

void BM_Parse(benchmark::State& state) {
  const size_t columns = static_cast<size_t>(state.range(0));
  const size_t rows = 4096;
  TextChunk chunk = MakeCsvChunk(columns, rows);
  const Schema schema = Schema::AllUint32(columns);
  TokenizeOptions topts;
  topts.schema_fields = columns;
  auto map = TokenizeChunk(chunk, topts);
  for (auto _ : state) {
    auto parsed = ParseChunk(chunk, *map, schema, ParseOptions{});
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * columns));
}
BENCHMARK(BM_Parse)->Arg(2)->Arg(16)->Arg(64)->Arg(256);

void BM_SelectiveParse(benchmark::State& state) {
  const size_t columns = 64;
  const size_t projected = static_cast<size_t>(state.range(0));
  TextChunk chunk = MakeCsvChunk(columns, 4096);
  const Schema schema = Schema::AllUint32(columns);
  TokenizeOptions topts;
  topts.schema_fields = columns;
  auto map = TokenizeChunk(chunk, topts);
  ParseOptions popts;
  for (size_t c = 0; c < projected; ++c) popts.projected_columns.push_back(c);
  for (auto _ : state) {
    auto parsed = ParseChunk(chunk, *map, schema, popts);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_SelectiveParse)->Arg(1)->Arg(8)->Arg(32)->Arg(64);

void BM_ChunkSerde(benchmark::State& state) {
  TextChunk text = MakeCsvChunk(16, 4096);
  const Schema schema = Schema::AllUint32(16);
  TokenizeOptions topts;
  topts.schema_fields = 16;
  auto map = TokenizeChunk(text, topts);
  auto chunk = ParseChunk(text, *map, schema, ParseOptions{});
  for (auto _ : state) {
    std::string blob;
    Status serde = SerializeChunk(*chunk, &blob);
    if (!serde.ok()) {
      state.SkipWithError(serde.ToString().c_str());
      break;
    }
    auto back = DeserializeChunk(blob);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_ChunkSerde);

void BM_BamDecode(benchmark::State& state) {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                     "/scanraw_micro.bam";
  SamGenSpec spec;
  spec.num_reads = 4096;
  auto gen = GenerateBamFile(path, spec);
  if (!gen.ok()) {
    state.SkipWithError(gen.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto reader = BamReader::Open(path);
    SamRecord record;
    uint64_t count = 0;
    while (true) {
      auto more = (*reader)->NextRecord(&record);
      if (!more.ok() || !*more) break;
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_BamDecode);

}  // namespace
}  // namespace scanraw

BENCHMARK_MAIN();
