// Table 1 — ScanRaw performance on SAM/BAM genomics data: the CIGAR
// distribution variant query (group-by aggregate with a pattern-matching
// predicate) under five configurations. Synthetic SAM/BAM-like files stand
// in for the 1000 Genomes NA12878 data (see DESIGN.md); the BAM-like
// decoder is sequential by construction, reproducing the BAMTools
// bottleneck the paper measured.

#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "genomics/bam_like.h"
#include "genomics/sam.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace {

constexpr uint64_t kReads = 200000;
constexpr uint64_t kChunkRows = 1 << 13;
constexpr uint64_t kDiskBandwidth = 200ull << 20;

struct Timed {
  double seconds = 0;
  QueryResult result;
};

Timed TimeIt(const std::function<Result<QueryResult>()>& fn,
             const char* what) {
  RealClock clock;
  const int64_t t0 = clock.NowNanos();
  auto result = fn();
  const double elapsed = static_cast<double>(clock.NowNanos() - t0) * 1e-9;
  bench::CheckOk(result.status(), what);
  return Timed{elapsed, std::move(*result)};
}

std::unique_ptr<ScanRawManager> MakeManager(const std::string& sam_path,
                                            LoadPolicy policy,
                                            const std::string& tag) {
  ScanRawManager::Config config;
  config.db_path = bench::MustTempPath("table1_" + tag + ".db");
  config.disk_bandwidth = kDiskBandwidth;
  auto manager = ScanRawManager::Create(config);
  bench::CheckOk(manager.status(), "create manager");
  ScanRawOptions options;
  options.policy = policy;
  options.num_workers = 4;
  options.chunk_rows = kChunkRows;
  options.cache_capacity_chunks = 0;  // isolate the format comparison
  bench::CheckOk(
      (*manager)->RegisterRawFile("reads", sam_path, SamSchema(), options),
      "register");
  return std::move(*manager);
}

}  // namespace
}  // namespace scanraw

int main() {
  using scanraw::bench::Fmt;
  const std::string sam_path = scanraw::bench::MustTempPath("table1.sam");
  const std::string bam_path = scanraw::bench::MustTempPath("table1.bam");
  scanraw::SamGenSpec spec;
  spec.num_reads = scanraw::kReads;
  spec.seed = 2014;
  std::printf("Table 1 — SAM/BAM variant query (synthetic files standing in "
              "for 1000 Genomes\nNA12878; %llu reads)\n\n",
              static_cast<unsigned long long>(scanraw::kReads));
  auto sam_info = scanraw::GenerateSamFile(sam_path, spec);
  scanraw::bench::CheckOk(sam_info.status(), "generate sam");
  auto bam_info = scanraw::GenerateBamFile(bam_path, spec);
  scanraw::bench::CheckOk(bam_info.status(), "generate bam");
  std::printf("SAM file: %.1f MB text; BAM-like file: %.1f MB binary\n\n",
              sam_info->file_bytes / 1048576.0,
              bam_info->file_bytes / 1048576.0);

  const scanraw::QuerySpec query =
      scanraw::CigarDistributionQuery(spec.pattern);
  scanraw::bench::TablePrinter table({"method", "time (s)", "vs ext (SAM)"});
  double external_sam_time = 0;
  auto verify = [&](const scanraw::QueryResult& r, const char* what) {
    if (r.rows_matched != sam_info->matching_reads) {
      std::fprintf(stderr, "%s: wrong result\n", what);
      std::exit(1);
    }
  };

  {
    auto manager = scanraw::MakeManager(
        sam_path, scanraw::LoadPolicy::kExternalTables, "ext");
    auto timed = scanraw::TimeIt(
        [&] { return manager->Query("reads", query); }, "external SAM");
    verify(timed.result, "external SAM");
    external_sam_time = timed.seconds;
    table.AddRow({"External tables (SAM)", Fmt("%.2f", timed.seconds),
                  "1.00x"});
  }
  {
    auto timed = scanraw::TimeIt(
        [&]() -> scanraw::Result<scanraw::QueryResult> {
          auto reader = scanraw::BamReader::Open(bam_path);
          if (!reader.ok()) return reader.status();
          scanraw::BamChunkStream stream(std::move(*reader),
                                         scanraw::kChunkRows);
          return scanraw::RunQuery(query, &stream);
        },
        "external BAM");
    verify(timed.result, "external BAM");
    table.AddRow({"External tables (BAM + bamlib)", Fmt("%.2f", timed.seconds),
                  Fmt("%.2fx", timed.seconds / external_sam_time)});
  }
  double db_time = 0;
  {
    auto manager = scanraw::MakeManager(
        sam_path, scanraw::LoadPolicy::kFullLoad, "load");
    auto timed = scanraw::TimeIt(
        [&] { return manager->Query("reads", query); }, "data loading SAM");
    verify(timed.result, "data loading SAM");
    table.AddRow({"Data loading (SAM)", Fmt("%.2f", timed.seconds),
                  Fmt("%.2fx", timed.seconds / external_sam_time)});
    // Database processing: the second query runs purely from the database.
    auto timed_db = scanraw::TimeIt(
        [&] { return manager->Query("reads", query); }, "database query");
    verify(timed_db.result, "database query");
    db_time = timed_db.seconds;
    table.AddRow({"Database processing", Fmt("%.2f", db_time),
                  Fmt("%.2fx", db_time / external_sam_time)});
  }
  {
    auto manager = scanraw::MakeManager(
        sam_path, scanraw::LoadPolicy::kSpeculativeLoading, "spec");
    auto timed = scanraw::TimeIt(
        [&] { return manager->Query("reads", query); }, "speculative SAM");
    verify(timed.result, "speculative SAM");
    table.AddRow({"Speculative loading (SAM)", Fmt("%.2f", timed.seconds),
                  Fmt("%.2fx", timed.seconds / external_sam_time)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): database processing fastest; speculative "
      "loading ==\nexternal tables (SAM); data loading slower than external "
      "tables; BAM + sequential\nlibrary slowest by a wide margin despite "
      "the smaller file, because decompression\nis single-threaded while "
      "ScanRaw parallelizes SAM tokenize/parse.\n");
  return 0;
}
