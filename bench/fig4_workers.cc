// Figure 4 — execution time (a), percentage of loaded data (b), and
// speedup (c) as a function of the number of worker threads, for
// speculative loading, load & process (full load), and external tables.
//
// Series regenerated with the testbed-scale simulator (16 virtual cores,
// 436 MB/s disk, 2^26 x 64 file = 128 chunks of 2^19 rows), using the
// paper-anchored cost model. A small real-pipeline cross-check at host
// scale follows, verifying the same policy ordering live.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/csv_generator.h"
#include "scanraw/scanraw_manager.h"
#include "sim/calibrate.h"
#include "sim/pipeline_sim.h"

namespace scanraw {
namespace {

constexpr size_t kWorkerAxis[] = {0, 1, 2, 4, 6, 8, 10, 12, 14, 16};

SimConfig MakeConfig(LoadPolicy policy, size_t workers) {
  SimConfig config;
  config.num_chunks = 128;  // 2^26 rows / 2^19 rows per chunk
  config.workers = workers;
  config.policy = policy;
  CostModelInput input;  // 64 columns, 2^19-row chunks, 436 MB/s
  config.costs = PaperChunkCosts(input);
  return config;
}

void RunSimulated() {
  std::printf("Figure 4 (simulated, 16-core / 436 MB/s testbed model; "
              "2^26 x 64 CSV, 128 chunks)\n\n");
  bench::TablePrinter table({"workers", "spec-load (s)", "load&proc (s)",
                             "ext-tables (s)", "loaded %", "speedup",
                             "ideal"});
  double baseline = 0;
  for (size_t w : kWorkerAxis) {
    SimResult spec = SimulatePipeline(
        MakeConfig(LoadPolicy::kSpeculativeLoading, w));
    SimResult full = SimulatePipeline(MakeConfig(LoadPolicy::kFullLoad, w));
    SimResult ext =
        SimulatePipeline(MakeConfig(LoadPolicy::kExternalTables, w));
    if (w == 0) baseline = spec.exec_seconds;
    const double loaded_pct =
        100.0 * static_cast<double>(spec.chunks_written_at_exec) / 128.0;
    table.AddRow({std::to_string(w), bench::Fmt("%.1f", spec.exec_seconds),
                  bench::Fmt("%.1f", full.exec_seconds),
                  bench::Fmt("%.1f", ext.exec_seconds),
                  bench::Fmt("%.1f", loaded_pct),
                  bench::Fmt("%.2f", baseline / spec.exec_seconds),
                  bench::Fmt("%.0f", w == 0 ? 1.0 : static_cast<double>(w))});
  }
  table.Print();
  bench::BenchJsonWriter("fig4_workers").Write(table);
  std::printf(
      "\nExpected shape (paper): time levels off once I/O-bound (~6 "
      "workers); full loading\nmatches external tables while CPU-bound, "
      "costs extra once I/O-bound; speculative\nloads ~all chunks while "
      "CPU-bound and ~none once I/O-bound; speculative ==\nexternal tables "
      "for >= 1 worker.\n\n");
}

void RunRealCrossCheck() {
  std::printf("Real-pipeline cross-check (host scale: 2^18 x 16 CSV, "
              "50 MB/s simulated disk)\n\n");
  const std::string csv = bench::MustTempPath("fig4_cross.csv");
  CsvSpec spec;
  spec.num_rows = 1 << 18;
  spec.num_columns = 16;
  auto info = GenerateCsvFile(csv, spec);
  bench::CheckOk(info.status(), "generate csv");

  bench::TablePrinter table({"workers", "policy", "time (s)", "loaded %"});
  for (size_t workers : {1, 2, 4}) {
    for (LoadPolicy policy :
         {LoadPolicy::kSpeculativeLoading, LoadPolicy::kFullLoad,
          LoadPolicy::kExternalTables}) {
      ScanRawManager::Config config;
      config.db_path = bench::MustTempPath("fig4_cross.db");
      config.disk_bandwidth = 50ull << 20;
      auto manager = ScanRawManager::Create(config);
      bench::CheckOk(manager.status(), "create manager");
      ScanRawOptions options;
      options.policy = policy;
      options.num_workers = workers;
      options.chunk_rows = 1 << 14;  // 16 chunks
      options.cache_capacity_chunks = 4;
      bench::CheckOk(
          (*manager)->RegisterRawFile("t", csv, CsvSchema(spec), options),
          "register");
      QuerySpec query;
      for (size_t c = 0; c < spec.num_columns; ++c) {
        query.sum_columns.push_back(c);
      }
      RealClock clock;
      const int64_t t0 = clock.NowNanos();
      auto result = (*manager)->Query("t", query);
      const double elapsed =
          static_cast<double>(clock.NowNanos() - t0) * 1e-9;
      bench::CheckOk(result.status(), "query");
      if (result->total_sum != info->total_sum) {
        std::fprintf(stderr, "result mismatch!\n");
        std::exit(1);
      }
      ScanRaw* op = (*manager)->GetOperator("t");
      double loaded = 0;
      if (op != nullptr) {
        // Count only what was loaded by query end (do not wait for the
        // trailing safeguard writes).
        loaded = 100.0 * (*manager)->catalog()->GetTable("t")->LoadedFraction();
      }
      table.AddRow({std::to_string(workers),
                    std::string(LoadPolicyName(policy)),
                    bench::Fmt("%.2f", elapsed), bench::Fmt("%.0f", loaded)});
    }
  }
  table.Print();
  bench::BenchJsonWriter("fig4_workers_real").Write(table);
  std::printf("\n");
}

}  // namespace
}  // namespace scanraw

int main() {
  scanraw::RunSimulated();
  scanraw::RunRealCrossCheck();
  return 0;
}
