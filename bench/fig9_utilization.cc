// Figure 9 — CPU and I/O utilization over processing progress for a
// 256-column raw file under speculative loading with 8 workers (CPU-bound:
// CPU utilization reaches 800%). Regenerated from the simulator's event
// trace: the scheduler alternates READ and WRITE on the exclusive disk,
// so I/O utilization dips while single chunks are written and returns to
// 100% when sequential reading resumes.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/calibrate.h"
#include "sim/pipeline_sim.h"

namespace scanraw {
namespace {

constexpr int kBuckets = 20;

}  // namespace
}  // namespace scanraw

int main() {
  using scanraw::bench::Fmt;
  scanraw::CostModelInput input;
  input.num_columns = 256;
  scanraw::SimConfig config;
  config.num_chunks = 128;
  config.workers = 8;
  config.policy = scanraw::LoadPolicy::kSpeculativeLoading;
  config.costs = scanraw::PaperChunkCosts(input);
  config.record_trace = true;
  scanraw::SimResult result = scanraw::SimulatePipeline(config);

  std::printf("Figure 9 — resource utilization, speculative loading, "
              "256-column file, 8 workers\n(simulated testbed; CPU%% is "
              "busy workers x 100, max 800)\n\n");

  const double horizon = result.writes_drained_seconds;
  std::vector<double> cpu(scanraw::kBuckets, 0.0);
  std::vector<double> io_read(scanraw::kBuckets, 0.0);
  std::vector<double> io_write(scanraw::kBuckets, 0.0);
  std::vector<double> weight(scanraw::kBuckets, 0.0);
  const double bucket_width = horizon / scanraw::kBuckets;
  for (const auto& s : result.trace) {
    // Distribute each homogeneous interval over the buckets it overlaps.
    const int b0 = std::max(
        0, std::min(scanraw::kBuckets - 1,
                    static_cast<int>(s.t0 / bucket_width)));
    const int b1 = std::max(
        0, std::min(scanraw::kBuckets - 1,
                    static_cast<int>(s.t1 / bucket_width)));
    for (int b = b0; b <= b1; ++b) {
      const double lo = std::max(s.t0, b * bucket_width);
      const double hi = std::min(s.t1, (b + 1) * bucket_width);
      const double dt = hi - lo;
      if (dt <= 0) continue;
      cpu[b] += dt * s.busy_workers * 100.0;
      if (s.disk == 1) io_read[b] += dt * 100.0;
      if (s.disk == 2) io_write[b] += dt * 100.0;
      weight[b] += dt;
    }
  }

  scanraw::bench::TablePrinter table(
      {"progress %", "CPU %", "I/O %", "read %", "write %"});
  for (int b = 0; b < scanraw::kBuckets; ++b) {
    if (weight[b] <= 0) continue;
    const double c = cpu[b] / weight[b];
    const double r = io_read[b] / weight[b];
    const double w = io_write[b] / weight[b];
    table.AddRow({std::to_string((b + 1) * 100 / scanraw::kBuckets),
                  Fmt("%.0f", c), Fmt("%.0f", r + w), Fmt("%.0f", r),
                  Fmt("%.0f", w)});
  }
  table.Print();
  {
    scanraw::bench::BenchJsonWriter writer("fig9_utilization");
    writer.AddExtra("chunks_written_at_exec",
                    std::to_string(result.chunks_written_at_exec));
    writer.AddExtra("num_chunks", std::to_string(config.num_chunks));
    writer.Write(table);
  }
  std::printf("\nchunks loaded speculatively by query end: %zu / %zu\n",
              result.chunks_written_at_exec, config.num_chunks);
  std::printf(
      "\nExpected shape (paper): CPU pegged near 800%% (CPU-bound); the "
      "disk alternates\nbetween reading bursts at 100%% and lower-"
      "utilization stretches where single chunks\nare written whenever "
      "READ blocks.\n");
  return 0;
}
