// CI gate: attaching a persistent QueryLog to a cold external-table scan
// must cost at most ~2% wall time. The log appends one JSONL line per
// query off the scan's critical path, so any measurable slowdown here
// means serialization or IO leaked into query execution.
//
// Method: two identical managers over the same CSV — one with a QueryLog
// attached, one without — external-tables policy with the cache disabled,
// so every query re-scans the raw file (worst case: the fixed per-query
// logging cost is amortized over the *smallest* useful amount of work).
// Runs are interleaved A/B to cancel drift (page cache, CPU frequency);
// the gate compares medians.
//
//   bench/querylog_overhead [--threshold=PCT] [--iters=N]
//
// Exits nonzero if the logged median exceeds the plain median by more
// than the threshold (default 2%) beyond an absolute noise floor.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "datagen/csv_generator.h"
#include "io/file.h"
#include "obs/query_log.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace {

constexpr uint64_t kRows = 1 << 17;
constexpr size_t kColumns = 8;
constexpr uint64_t kChunkRows = 1 << 13;  // 16 chunks
constexpr int kWarmups = 2;

// Fixed timing jitter we refuse to attribute to the query log. CI machines
// routinely wobble a few hundred microseconds per run; the gate is about
// systematic overhead, not scheduler luck.
constexpr double kNoiseFloorSeconds = 0.001;

ScanRawOptions ColdScanOptions() {
  ScanRawOptions options;
  options.policy = LoadPolicy::kExternalTables;
  options.cache_capacity_chunks = 0;  // no residency: every query is cold
  options.num_workers = 4;
  options.chunk_rows = kChunkRows;
  return options;
}

struct Setup {
  std::unique_ptr<ScanRawManager> manager;
  std::unique_ptr<obs::QueryLog> log;
};

Setup MakeManager(const std::string& csv, const CsvSpec& spec,
                  const std::string& tag, bool with_log) {
  Setup setup;
  ScanRawManager::Config config;
  config.db_path = bench::MustTempPath("qlog_overhead_" + tag + ".db");
  auto manager = ScanRawManager::Create(config);
  bench::CheckOk(manager.status(), "create manager");
  setup.manager = std::move(*manager);

  ScanRawOptions options = ColdScanOptions();
  if (with_log) {
    const std::string log_path =
        bench::MustTempPath("qlog_overhead_" + tag + ".jsonl");
    bench::CheckOk(RemoveFileIfExists(log_path), "clean log");
    bench::CheckOk(RemoveFileIfExists(log_path + ".1"), "clean log");
    auto log = obs::QueryLog::Open(log_path);
    bench::CheckOk(log.status(), "open query log");
    setup.log = std::move(*log);
    options.query_log = setup.log.get();
  }
  bench::CheckOk(
      setup.manager->RegisterRawFile("t", csv, CsvSchema(spec), options),
      "register");
  return setup;
}

double MedianSeconds(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace
}  // namespace scanraw

int main(int argc, char** argv) {
  using scanraw::bench::Fmt;
  double threshold_pct = 2.0;
  int iters = 9;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
      threshold_pct = std::atof(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::atoi(argv[i] + 8);
    } else {
      std::fprintf(stderr, "usage: %s [--threshold=PCT] [--iters=N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (iters < 1) iters = 1;

  const std::string csv = scanraw::bench::MustTempPath("qlog_overhead.csv");
  scanraw::CsvSpec spec;
  spec.num_rows = scanraw::kRows;
  spec.num_columns = scanraw::kColumns;
  auto info = scanraw::GenerateCsvFile(csv, spec);
  scanraw::bench::CheckOk(info.status(), "generate csv");

  auto plain = scanraw::MakeManager(csv, spec, "plain", /*with_log=*/false);
  auto logged = scanraw::MakeManager(csv, spec, "logged", /*with_log=*/true);

  scanraw::QuerySpec query;
  for (size_t c = 0; c < scanraw::kColumns; ++c) {
    query.sum_columns.push_back(c);
  }

  scanraw::RealClock clock;
  auto run_once = [&](scanraw::ScanRawManager* manager) {
    const int64_t t0 = clock.NowNanos();
    auto result = manager->Query("t", query);
    const double seconds =
        static_cast<double>(clock.NowNanos() - t0) * 1e-9;
    scanraw::bench::CheckOk(result.status(), "query");
    if (result->total_sum != info->total_sum) {
      std::fprintf(stderr, "FAIL: wrong sum %llu (want %llu)\n",
                   static_cast<unsigned long long>(result->total_sum),
                   static_cast<unsigned long long>(info->total_sum));
      std::exit(1);
    }
    return seconds;
  };

  // Warm the page cache and the thread pools on both sides before timing.
  for (int i = 0; i < scanraw::kWarmups; ++i) {
    run_once(plain.manager.get());
    run_once(logged.manager.get());
  }

  std::vector<double> plain_seconds, logged_seconds;
  for (int i = 0; i < iters; ++i) {
    // Interleave and alternate which side goes first within the pair, so
    // slow drift (thermal, page cache churn) hits both sides equally.
    if (i % 2 == 0) {
      plain_seconds.push_back(run_once(plain.manager.get()));
      logged_seconds.push_back(run_once(logged.manager.get()));
    } else {
      logged_seconds.push_back(run_once(logged.manager.get()));
      plain_seconds.push_back(run_once(plain.manager.get()));
    }
  }

  const double plain_med = scanraw::MedianSeconds(plain_seconds);
  const double logged_med = scanraw::MedianSeconds(logged_seconds);
  const double delta = logged_med - plain_med;
  const double overhead_pct = 100.0 * delta / plain_med;

  scanraw::bench::TablePrinter table(
      {"configuration", "median (ms)", "min (ms)", "overhead"});
  const auto min_of = [](const std::vector<double>& v) {
    return *std::min_element(v.begin(), v.end());
  };
  table.AddRow({"cold scan, no log", Fmt("%.2f", plain_med * 1e3),
                Fmt("%.2f", min_of(plain_seconds) * 1e3), "-"});
  table.AddRow({"cold scan, query log", Fmt("%.2f", logged_med * 1e3),
                Fmt("%.2f", min_of(logged_seconds) * 1e3),
                Fmt("%+.2f%%", overhead_pct)});
  std::printf("Query-log overhead gate (%llu x %zu cold scans, "
              "median of %d interleaved)\n",
              static_cast<unsigned long long>(scanraw::kRows),
              scanraw::kColumns, iters);
  table.Print();

  if (delta > scanraw::kNoiseFloorSeconds &&
      overhead_pct > threshold_pct) {
    std::printf("FAIL: query logging adds %.2f%% (%.2f ms) to a cold scan; "
                "gate is %.1f%% beyond a %.1f ms noise floor\n",
                overhead_pct, delta * 1e3, threshold_pct,
                scanraw::kNoiseFloorSeconds * 1e3);
    return 1;
  }
  std::printf("OK: query logging overhead %.2f%% (threshold %.1f%%)\n",
              overhead_pct, threshold_pct);
  return 0;
}
