// CI gate: the live introspection plane — stats server thread, stall
// watchdog, 1 Hz time-series sampling, and stage heartbeats — must cost at
// most ~2% wall time on a cold scan. Every hook on the hot path is a
// relaxed atomic (heartbeat beats, rate counters) and every consumer runs
// on its own thread, so any measurable slowdown means a lock or a syscall
// leaked into query execution.
//
// Method: two identical managers over the same CSV — one bare, one with
// the full introspection plane enabled — external-tables policy with the
// cache disabled, so every query re-scans the raw file (worst case: the
// fixed per-query observability cost is amortized over the *smallest*
// useful amount of work). Runs are interleaved A/B to cancel drift; the
// gate compares medians.
//
//   bench/introspection_overhead [--threshold=PCT] [--iters=N]
//
// Exits nonzero if the instrumented median exceeds the bare median by more
// than the threshold (default 2%) beyond an absolute noise floor.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "datagen/csv_generator.h"
#include "obs/stats_server.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace {

constexpr uint64_t kRows = 1 << 17;
constexpr size_t kColumns = 8;
constexpr uint64_t kChunkRows = 1 << 13;  // 16 chunks
constexpr int kWarmups = 2;

// Fixed timing jitter we refuse to attribute to the introspection plane.
constexpr double kNoiseFloorSeconds = 0.001;

struct Setup {
  std::unique_ptr<ScanRawManager> manager;
  std::unique_ptr<obs::StatsServer> server;
};

Setup MakeManager(const std::string& csv, const CsvSpec& spec,
                  const std::string& tag, bool instrumented) {
  Setup setup;
  ScanRawManager::Config config;
  config.db_path = bench::MustTempPath("introspection_" + tag + ".db");
  if (instrumented) {
    config.watchdog_ms = 5000;  // armed, never expected to fire
  }
  auto manager = ScanRawManager::Create(config);
  bench::CheckOk(manager.status(), "create manager");
  setup.manager = std::move(*manager);

  ScanRawOptions options;
  options.policy = LoadPolicy::kExternalTables;
  options.cache_capacity_chunks = 0;  // no residency: every query is cold
  options.num_workers = 4;
  options.chunk_rows = kChunkRows;
  if (instrumented) {
    options.timeseries_interval_ms = 1000;  // 1 Hz rings
  }
  bench::CheckOk(
      setup.manager->RegisterRawFile("t", csv, CsvSchema(spec), options),
      "register");

  if (instrumented) {
    obs::StatsServerOptions server_options;
    server_options.port = 0;  // ephemeral
    server_options.telemetry = setup.manager->telemetry();
    server_options.watchdog = setup.manager->watchdog();
    ScanRawManager* mgr = setup.manager.get();
    server_options.statusz_section = [mgr] { return mgr->Statusz(); };
    setup.server = std::make_unique<obs::StatsServer>(server_options);
    bench::CheckOk(setup.server->Start(), "start stats server");
  }
  return setup;
}

double MedianSeconds(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace
}  // namespace scanraw

int main(int argc, char** argv) {
  using scanraw::bench::Fmt;
  double threshold_pct = 2.0;
  // More samples than the querylog gate: the deltas here are tiny (idle
  // threads, relaxed atomics), so the median needs a tighter distribution
  // to keep scheduler jitter from tripping a 2% gate.
  int iters = 21;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
      threshold_pct = std::atof(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::atoi(argv[i] + 8);
    } else {
      std::fprintf(stderr, "usage: %s [--threshold=PCT] [--iters=N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (iters < 1) iters = 1;

  const std::string csv =
      scanraw::bench::MustTempPath("introspection_overhead.csv");
  scanraw::CsvSpec spec;
  spec.num_rows = scanraw::kRows;
  spec.num_columns = scanraw::kColumns;
  auto info = scanraw::GenerateCsvFile(csv, spec);
  scanraw::bench::CheckOk(info.status(), "generate csv");

  auto bare =
      scanraw::MakeManager(csv, spec, "bare", /*instrumented=*/false);
  auto live =
      scanraw::MakeManager(csv, spec, "live", /*instrumented=*/true);

  scanraw::QuerySpec query;
  for (size_t c = 0; c < scanraw::kColumns; ++c) {
    query.sum_columns.push_back(c);
  }

  scanraw::RealClock clock;
  auto run_once = [&](scanraw::ScanRawManager* manager) {
    const int64_t t0 = clock.NowNanos();
    auto result = manager->Query("t", query);
    const double seconds =
        static_cast<double>(clock.NowNanos() - t0) * 1e-9;
    scanraw::bench::CheckOk(result.status(), "query");
    if (result->total_sum != info->total_sum) {
      std::fprintf(stderr, "FAIL: wrong sum %llu (want %llu)\n",
                   static_cast<unsigned long long>(result->total_sum),
                   static_cast<unsigned long long>(info->total_sum));
      std::exit(1);
    }
    return seconds;
  };

  // Warm the page cache and the thread pools on both sides before timing.
  for (int i = 0; i < scanraw::kWarmups; ++i) {
    run_once(bare.manager.get());
    run_once(live.manager.get());
  }

  std::vector<double> bare_seconds, live_seconds;
  for (int i = 0; i < iters; ++i) {
    // Interleave and alternate which side goes first within the pair, so
    // slow drift (thermal, page cache churn) hits both sides equally.
    if (i % 2 == 0) {
      bare_seconds.push_back(run_once(bare.manager.get()));
      live_seconds.push_back(run_once(live.manager.get()));
    } else {
      live_seconds.push_back(run_once(live.manager.get()));
      bare_seconds.push_back(run_once(bare.manager.get()));
    }
  }

  // The instrumented side must have kept its plane alive the whole time.
  if (live.manager->watchdog() == nullptr ||
      live.manager->watchdog()->stalls_detected() != 0) {
    std::fprintf(stderr, "FAIL: watchdog missing or false-positived\n");
    return 1;
  }

  const double bare_med = scanraw::MedianSeconds(bare_seconds);
  const double live_med = scanraw::MedianSeconds(live_seconds);
  const double delta = live_med - bare_med;
  const double overhead_pct = 100.0 * delta / bare_med;

  scanraw::bench::TablePrinter table(
      {"configuration", "median (ms)", "min (ms)", "overhead"});
  const auto min_of = [](const std::vector<double>& v) {
    return *std::min_element(v.begin(), v.end());
  };
  table.AddRow({"cold scan, bare", Fmt("%.2f", bare_med * 1e3),
                Fmt("%.2f", min_of(bare_seconds) * 1e3), "-"});
  table.AddRow({"cold scan, introspection", Fmt("%.2f", live_med * 1e3),
                Fmt("%.2f", min_of(live_seconds) * 1e3),
                Fmt("%+.2f%%", overhead_pct)});
  std::printf("Introspection overhead gate (%llu x %zu cold scans, "
              "median of %d interleaved; stats server + watchdog + 1 Hz "
              "rings + heartbeats)\n",
              static_cast<unsigned long long>(scanraw::kRows),
              scanraw::kColumns, iters);
  table.Print();

  if (delta > scanraw::kNoiseFloorSeconds &&
      overhead_pct > threshold_pct) {
    std::printf("FAIL: introspection adds %.2f%% (%.2f ms) to a cold scan; "
                "gate is %.1f%% beyond a %.1f ms noise floor\n",
                overhead_pct, delta * 1e3, threshold_pct,
                scanraw::kNoiseFloorSeconds * 1e3);
    return 1;
  }
  std::printf("OK: introspection overhead %.2f%% (threshold %.1f%%)\n",
              overhead_pct, threshold_pct);
  return 0;
}
