// Figure 7 — effect of the chunk size (rows per chunk) on execution time
// for 2, 8 and 16 worker threads. Simulated at testbed scale (2^26 x 64
// file, paper-anchored cost model): the total work is constant, but small
// chunks multiply the dynamic task-allocation overhead while very large
// chunks limit pipeline overlap.

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/calibrate.h"
#include "sim/pipeline_sim.h"

namespace scanraw {
namespace {

constexpr uint64_t kTotalRows = 1ull << 26;
constexpr uint64_t kChunkSizes[] = {1 << 14, 1 << 16, 1 << 18, 1 << 20};
constexpr size_t kWorkers[] = {2, 8, 16};

double Measure(uint64_t chunk_rows, size_t workers) {
  CostModelInput input;
  input.rows_per_chunk = chunk_rows;
  SimConfig config;
  config.num_chunks = static_cast<size_t>(kTotalRows / chunk_rows);
  config.workers = workers;
  config.policy = LoadPolicy::kExternalTables;
  config.costs = PaperChunkCosts(input);
  return SimulatePipeline(config).exec_seconds;
}

}  // namespace
}  // namespace scanraw

int main() {
  using scanraw::bench::Fmt;
  std::printf("Figure 7 — chunk size vs execution time (simulated 16-core "
              "testbed, 2^26 x 64 file)\n\n");
  scanraw::bench::TablePrinter table(
      {"chunk rows", "2 workers (s)", "8 workers (s)", "16 workers (s)"});
  for (uint64_t chunk : scanraw::kChunkSizes) {
    std::vector<std::string> row{std::to_string(chunk)};
    for (size_t workers : scanraw::kWorkers) {
      row.push_back(Fmt("%.1f", scanraw::Measure(chunk, workers)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): small chunks (2^14) pay the per-task "
      "scheduling overhead —\nworst with few workers; 2^17-2^19 rows per "
      "chunk is the sweet spot; very large\nchunks lose some overlap while "
      "filling/draining the pipeline.\n");
  return 0;
}
