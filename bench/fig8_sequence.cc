// Figure 8 — execution time for a sequence of 6 identical queries under
// speculative loading, buffered loading, load+db processing, and external
// tables: (a) per-query time, (b) cumulative time. Measured on the REAL
// pipeline at host scale with an emulated fixed-bandwidth disk; the binary
// cache holds 1/4 of the file's chunks, as in the paper.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "datagen/csv_generator.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace {

constexpr uint64_t kRows = 1 << 17;
constexpr size_t kColumns = 16;
constexpr uint64_t kChunkRows = 1 << 13;  // 16 chunks
constexpr size_t kCacheChunks = 4;        // 1/4 of the chunks
constexpr int kQueries = 6;

std::vector<double> RunSequence(const std::string& csv, const CsvSpec& spec,
                                LoadPolicy policy, uint64_t expected_sum) {
  ScanRawManager::Config config;
  config.db_path = csv + "." + std::string(LoadPolicyName(policy)) + ".db";
  config.disk_bandwidth = 30ull << 20;  // make I/O visible on a cached host
  auto manager = ScanRawManager::Create(config);
  bench::CheckOk(manager.status(), "create manager");
  ScanRawOptions options;
  options.policy = policy;
  options.num_workers = 4;
  options.chunk_rows = kChunkRows;
  options.cache_capacity_chunks = kCacheChunks;
  bench::CheckOk(
      (*manager)->RegisterRawFile("t", csv, CsvSchema(spec), options),
      "register");
  QuerySpec query;
  for (size_t c = 0; c < kColumns; ++c) query.sum_columns.push_back(c);

  std::vector<double> times;
  RealClock clock;
  for (int q = 0; q < kQueries; ++q) {
    const int64_t t0 = clock.NowNanos();
    auto result = (*manager)->Query("t", query);
    times.push_back(static_cast<double>(clock.NowNanos() - t0) * 1e-9);
    bench::CheckOk(result.status(), "query");
    if (result->total_sum != expected_sum) {
      std::fprintf(stderr, "result mismatch on query %d\n", q + 1);
      std::exit(1);
    }
  }
  return times;
}

}  // namespace
}  // namespace scanraw

int main() {
  using scanraw::bench::Fmt;
  const std::string csv = scanraw::bench::MustTempPath("fig8.csv");
  scanraw::CsvSpec spec;
  spec.num_rows = scanraw::kRows;
  spec.num_columns = scanraw::kColumns;
  auto info = scanraw::GenerateCsvFile(csv, spec);
  scanraw::bench::CheckOk(info.status(), "generate csv");

  std::printf("Figure 8 — 6-query sequence (real pipeline, %llu x %zu file, "
              "16 chunks, cache = 4\nchunks, 30 MB/s emulated disk)\n\n",
              static_cast<unsigned long long>(scanraw::kRows),
              scanraw::kColumns);

  struct Series {
    const char* name;
    scanraw::LoadPolicy policy;
    std::vector<double> times;
  };
  std::vector<Series> series{
      {"spec. loading", scanraw::LoadPolicy::kSpeculativeLoading, {}},
      {"buffer loading", scanraw::LoadPolicy::kBufferedLoading, {}},
      {"load+db", scanraw::LoadPolicy::kFullLoad, {}},
      {"external tables", scanraw::LoadPolicy::kExternalTables, {}},
  };
  for (auto& s : series) {
    s.times = scanraw::RunSequence(csv, spec, s.policy, info->total_sum);
  }

  std::printf("(a) execution time for query i (seconds)\n");
  scanraw::bench::TablePrinter per_query(
      {"query", series[0].name, series[1].name, series[2].name,
       series[3].name});
  for (int q = 0; q < scanraw::kQueries; ++q) {
    per_query.AddRow({std::to_string(q + 1), Fmt("%.2f", series[0].times[q]),
                      Fmt("%.2f", series[1].times[q]),
                      Fmt("%.2f", series[2].times[q]),
                      Fmt("%.2f", series[3].times[q])});
  }
  per_query.Print();

  std::printf("\n(b) cumulative execution time up to query i (seconds)\n");
  scanraw::bench::TablePrinter cumulative(
      {"query", series[0].name, series[1].name, series[2].name,
       series[3].name});
  std::vector<double> sums(series.size(), 0.0);
  for (int q = 0; q < scanraw::kQueries; ++q) {
    std::vector<std::string> row{std::to_string(q + 1)};
    for (size_t s = 0; s < series.size(); ++s) {
      sums[s] += series[s].times[q];
      row.push_back(Fmt("%.2f", sums[s]));
    }
    cumulative.AddRow(std::move(row));
  }
  cumulative.Print();

  std::printf(
      "\nExpected shape (paper): external tables is flat; load+db pays "
      "everything on query 1\nthen is fastest; buffered loading spreads the "
      "cost over the first queries;\nspeculative matches external tables on "
      "query 1, then converges to database speed\nwithin a few queries and "
      "has the best cumulative time throughout.\n");
  return 0;
}
