// Scalar reference implementations of the conversion hot path, frozen at
// the pre-vectorization behavior: per-field memchr tokenizing, digit-loop /
// strtod scalar parsing, and row-at-a-time chunk conversion. Used by the
// equivalence tests (the vectorized path must produce byte-identical
// output) and by the micro_stages bench as the speedup baseline. Not built
// into the library — intentionally not updated when the production path
// changes.
#ifndef SCANRAW_BENCH_REFERENCE_SCALAR_H_
#define SCANRAW_BENCH_REFERENCE_SCALAR_H_

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "columnar/binary_chunk.h"
#include "common/result.h"
#include "common/string_util.h"
#include "format/parser.h"
#include "format/positional_map.h"
#include "format/schema.h"
#include "format/text_chunk.h"
#include "format/tokenizer.h"

namespace scanraw {
namespace reference {

inline TextChunk RefMakeTextChunk(std::string data, uint64_t chunk_index = 0,
                                  uint64_t file_offset = 0) {
  TextChunk chunk;
  chunk.chunk_index = chunk_index;
  chunk.file_offset = file_offset;
  chunk.data = std::move(data);
  if (!chunk.data.empty()) chunk.line_starts.push_back(0);
  for (size_t i = 0; i + 1 < chunk.data.size(); ++i) {
    if (chunk.data[i] == '\n') {
      chunk.line_starts.push_back(static_cast<uint32_t>(i + 1));
    }
  }
  return chunk;
}

inline uint32_t RefLineEnd(const TextChunk& chunk, size_t r) {
  uint32_t end = (r + 1 < chunk.line_starts.size())
                     ? chunk.line_starts[r + 1]
                     : static_cast<uint32_t>(chunk.data.size());
  const std::string& d = chunk.data;
  while (end > chunk.line_starts[r] &&
         (d[end - 1] == '\n' || d[end - 1] == '\r')) {
    --end;
  }
  return end;
}

inline Result<PositionalMap> RefTokenizeChunk(const TextChunk& chunk,
                                              const TokenizeOptions& options) {
  if (options.schema_fields == 0) {
    return Status::InvalidArgument("schema_fields must be > 0");
  }
  const size_t fields = options.EffectiveFields();
  const char delim = options.delimiter;
  const char* data = chunk.data.data();
  PositionalMap map(chunk.num_rows(), fields);

  for (size_t r = 0; r < chunk.num_rows(); ++r) {
    uint32_t pos = chunk.line_starts[r];
    const uint32_t end = RefLineEnd(chunk, r);
    map.Set(r, 0, pos);
    for (size_t f = 1; f < fields; ++f) {
      const char* hit = static_cast<const char*>(
          std::memchr(data + pos, delim, end - pos));
      if (hit == nullptr) {
        return Status::Corruption(StringPrintf(
            "chunk %llu row %zu: expected %zu fields, found %zu",
            static_cast<unsigned long long>(chunk.chunk_index), r, fields, f));
      }
      pos = static_cast<uint32_t>(hit - data) + 1;
      map.Set(r, f, pos);
    }
    const char* hit =
        static_cast<const char*>(std::memchr(data + pos, delim, end - pos));
    uint32_t last_end = (hit != nullptr && fields < options.schema_fields)
                            ? static_cast<uint32_t>(hit - data)
                            : end;
    if (hit != nullptr && fields == options.schema_fields) {
      return Status::Corruption(StringPrintf(
          "chunk %llu row %zu: more fields than the %zu in the schema",
          static_cast<unsigned long long>(chunk.chunk_index), r, fields));
    }
    map.Set(r, fields, last_end);
  }
  return map;
}

inline Result<uint32_t> RefParseUint32(std::string_view text) {
  if (text.empty()) return Status::Corruption("empty uint32 field");
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::Corruption("invalid uint32: '" + std::string(text) + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > UINT32_MAX) {
      return Status::Corruption("uint32 overflow: '" + std::string(text) +
                                "'");
    }
  }
  return static_cast<uint32_t>(value);
}

inline Result<int64_t> RefParseInt64(std::string_view text) {
  if (text.empty()) return Status::Corruption("empty int64 field");
  size_t i = 0;
  bool negative = false;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    i = 1;
    if (text.size() == 1) return Status::Corruption("lone sign in int64");
  }
  uint64_t magnitude = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') {
      return Status::Corruption("invalid int64: '" + std::string(text) + "'");
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (magnitude > (UINT64_MAX - digit) / 10) {
      return Status::Corruption("int64 overflow: '" + std::string(text) + "'");
    }
    magnitude = magnitude * 10 + digit;
  }
  const uint64_t limit = negative ? (1ull << 63) : (1ull << 63) - 1;
  if (magnitude > limit) {
    return Status::Corruption("int64 overflow: '" + std::string(text) + "'");
  }
  return negative ? static_cast<int64_t>(0 - magnitude)
                  : static_cast<int64_t>(magnitude);
}

inline Result<double> RefParseDouble(std::string_view text) {
  if (text.empty()) return Status::Corruption("empty double field");
  char buf[64];
  if (text.size() >= sizeof(buf)) {
    return Status::Corruption("double field too long");
  }
  std::copy(text.begin(), text.end(), buf);
  buf[text.size()] = '\0';
  char* end = nullptr;
  const double value = std::strtod(buf, &end);
  if (end != buf + text.size()) {
    return Status::Corruption("invalid double: '" + std::string(text) + "'");
  }
  return value;
}

inline Status RefAppendField(std::string_view text, FieldType type,
                             ColumnVector* out) {
  switch (type) {
    case FieldType::kUint32: {
      auto v = RefParseUint32(text);
      if (!v.ok()) return v.status();
      out->AppendUint32(*v);
      return Status::OK();
    }
    case FieldType::kInt64: {
      auto v = RefParseInt64(text);
      if (!v.ok()) return v.status();
      out->AppendInt64(*v);
      return Status::OK();
    }
    case FieldType::kDouble: {
      auto v = RefParseDouble(text);
      if (!v.ok()) return v.status();
      out->AppendDouble(*v);
      return Status::OK();
    }
    case FieldType::kString:
      out->AppendString(text);
      return Status::OK();
  }
  return Status::Internal("unknown field type");
}

inline Result<int64_t> RefParseNumeric(std::string_view text, FieldType type) {
  switch (type) {
    case FieldType::kUint32: {
      auto v = RefParseUint32(text);
      if (!v.ok()) return v.status();
      return static_cast<int64_t>(*v);
    }
    case FieldType::kInt64:
      return RefParseInt64(text);
    case FieldType::kDouble: {
      auto v = RefParseDouble(text);
      if (!v.ok()) return v.status();
      return static_cast<int64_t>(*v);
    }
    case FieldType::kString:
      break;
  }
  return Status::InvalidArgument("push-down filter on non-numeric column");
}

// Row-at-a-time chunk conversion, exactly as the pre-columnar parser did it.
inline Result<BinaryChunk> RefParseChunk(const TextChunk& chunk,
                                         const PositionalMap& map,
                                         const Schema& schema,
                                         const ParseOptions& options) {
  std::vector<size_t> cols = options.projected_columns;
  if (cols.empty()) {
    cols.resize(schema.num_columns());
    for (size_t i = 0; i < cols.size(); ++i) cols[i] = i;
  }
  for (size_t c : cols) {
    if (c >= schema.num_columns()) {
      return Status::InvalidArgument(
          StringPrintf("projected column %zu out of range", c));
    }
    if (c >= map.fields_per_row()) {
      return Status::InvalidArgument(StringPrintf(
          "column %zu not covered by positional map (%zu fields)", c,
          map.fields_per_row()));
    }
  }
  if (options.pushdown.has_value()) {
    const size_t pc = options.pushdown->column;
    if (pc >= map.fields_per_row()) {
      return Status::InvalidArgument("push-down column not tokenized");
    }
    if (schema.column(pc).type == FieldType::kString) {
      return Status::InvalidArgument("push-down filter on string column");
    }
  }
  if (map.num_rows() != chunk.num_rows()) {
    return Status::InvalidArgument("positional map / chunk row mismatch");
  }

  const std::string_view data(chunk.data);
  std::vector<ColumnVector> vectors;
  vectors.reserve(cols.size());
  for (size_t c : cols) vectors.emplace_back(schema.column(c).type);

  for (size_t r = 0; r < chunk.num_rows(); ++r) {
    if (options.pushdown.has_value()) {
      const auto& pd = *options.pushdown;
      const std::string_view field = data.substr(
          map.FieldStart(r, pd.column),
          map.FieldEnd(r, pd.column) - map.FieldStart(r, pd.column));
      auto v = RefParseNumeric(field, schema.column(pd.column).type);
      if (!v.ok()) return v.status();
      if (*v < pd.min_value || *v > pd.max_value) continue;
    }
    for (size_t i = 0; i < cols.size(); ++i) {
      const size_t c = cols[i];
      const std::string_view field =
          data.substr(map.FieldStart(r, c),
                      map.FieldEnd(r, c) - map.FieldStart(r, c));
      Status s = RefAppendField(field, schema.column(c).type, &vectors[i]);
      if (!s.ok()) {
        return Status(
            s.code(),
            StringPrintf("chunk %llu row %zu col %zu: ",
                         static_cast<unsigned long long>(chunk.chunk_index),
                         r, c) +
                std::string(s.message()));
      }
    }
  }

  BinaryChunk out(chunk.chunk_index);
  for (size_t i = 0; i < cols.size(); ++i) {
    SCANRAW_RETURN_IF_ERROR(out.AddColumn(cols[i], std::move(vectors[i])));
  }
  if (out.num_columns() > 0 && out.num_rows() == 0) out.set_num_rows(0);
  return out;
}

}  // namespace reference
}  // namespace scanraw

#endif  // SCANRAW_BENCH_REFERENCE_SCALAR_H_
