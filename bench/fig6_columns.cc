// Figure 6 — effect of the number of projected columns and of the starting
// position of the first column on execution time (selective tokenizing and
// parsing). Real pipeline, external tables, 8 workers, 64-column file, as
// in the paper (scaled row count).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "datagen/csv_generator.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace {

constexpr uint64_t kRows = 1 << 16;
constexpr size_t kColumns = 64;
constexpr size_t kCounts[] = {1, 8, 16, 32};
constexpr size_t kPositions[] = {0, 8, 16, 32};

double MeasureQuery(const std::string& csv, const CsvSpec& spec,
                    size_t first_column, size_t count) {
  ScanRawManager::Config config;
  config.db_path = csv + ".db";
  config.disk_bandwidth = 436ull << 20;
  auto manager = ScanRawManager::Create(config);
  bench::CheckOk(manager.status(), "create manager");
  ScanRawOptions options;
  options.policy = LoadPolicy::kExternalTables;
  options.num_workers = 8;
  options.chunk_rows = 1 << 13;
  bench::CheckOk(
      (*manager)->RegisterRawFile("t", csv, CsvSchema(spec), options),
      "register");
  QuerySpec query;
  for (size_t c = first_column; c < first_column + count && c < kColumns;
       ++c) {
    query.sum_columns.push_back(c);
  }
  RealClock clock;
  const int64_t t0 = clock.NowNanos();
  auto result = (*manager)->Query("t", query);
  bench::CheckOk(result.status(), "query");
  return static_cast<double>(clock.NowNanos() - t0) * 1e-9;
}

}  // namespace
}  // namespace scanraw

int main() {
  using scanraw::bench::Fmt;
  const std::string csv = scanraw::bench::MustTempPath("fig6.csv");
  scanraw::CsvSpec spec;
  spec.num_rows = scanraw::kRows;
  spec.num_columns = scanraw::kColumns;
  auto info = scanraw::GenerateCsvFile(csv, spec);
  scanraw::bench::CheckOk(info.status(), "generate csv");

  std::printf("Figure 6 — projected column count x start position "
              "(real pipeline, external tables,\n8 workers, %llu x 64 "
              "file)\n\n",
              static_cast<unsigned long long>(scanraw::kRows));
  scanraw::bench::TablePrinter table(
      {"position", "1 col (s)", "8 cols (s)", "16 cols (s)", "32 cols (s)"});
  for (size_t pos : scanraw::kPositions) {
    std::vector<std::string> row{"pos " + std::to_string(pos)};
    for (size_t count : scanraw::kCounts) {
      row.push_back(Fmt("%.3f", scanraw::MeasureQuery(csv, spec, pos, count)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): more projected columns cost slightly more "
      "(<~5%% growth in\nconversion); the starting position has no visible "
      "effect because the extra\ntokenizing is hidden by parallel "
      "execution.\n");
  return 0;
}
