// CI gate for the persisted positional-map index: a warm restart over a
// previously-mapped table must tokenize ZERO bytes and answer
// byte-identically to the cold scan — and it should be measurably faster,
// since TOKENIZE is the scan's dominant CPU stage.
//
// Method: per iteration, a cold manager scans the CSV (external-tables
// policy, binary cache off, so the scan does real READ+TOKENIZE+PARSE
// work) and saves the catalog, writing the `<catalog>.posmap.<table>`
// sidecar. A second manager then simulates the restart: reuse_existing_db
// + LoadCatalog + AttachOptions, and runs the same query. The gate
// hard-fails if the warm scan tokenizes a single byte, misses the
// sidecar maps on any chunk, or returns a different sum.
//
//   bench/restart_warm [--iters=N]
//
// Emits BENCH_restart_warm.json (cold/warm medians) for bench_compare.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "datagen/csv_generator.h"
#include "io/file.h"
#include "obs/explain.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace {

constexpr uint64_t kRows = 1 << 17;
constexpr size_t kColumns = 8;
constexpr uint64_t kChunkRows = 1 << 13;  // 16 chunks
constexpr int kWarmups = 1;

ScanRawOptions PosmapOptions() {
  ScanRawOptions options;
  options.policy = LoadPolicy::kExternalTables;
  options.cache_capacity_chunks = 0;  // no residency: every query is cold
  options.num_workers = 4;
  options.chunk_rows = kChunkRows;
  options.cache_positional_maps = true;
  options.positional_map_cache_chunks = 32;
  options.persist_positional_maps = true;
  return options;
}

double MedianSeconds(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace
}  // namespace scanraw

int main(int argc, char** argv) {
  using scanraw::bench::CheckOk;
  using scanraw::bench::Fmt;
  int iters = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::atoi(argv[i] + 8);
    } else {
      std::fprintf(stderr, "usage: %s [--iters=N]\n", argv[0]);
      return 2;
    }
  }
  if (iters < 1) iters = 1;

  const std::string csv = scanraw::bench::MustTempPath("restart_warm.csv");
  const std::string db = scanraw::bench::MustTempPath("restart_warm.db");
  const std::string catalog =
      scanraw::bench::MustTempPath("restart_warm.catalog");
  scanraw::CsvSpec spec;
  spec.num_rows = scanraw::kRows;
  spec.num_columns = scanraw::kColumns;
  auto info = scanraw::GenerateCsvFile(csv, spec);
  CheckOk(info.status(), "generate csv");

  scanraw::QuerySpec query;
  for (size_t c = 0; c < scanraw::kColumns; ++c) {
    query.sum_columns.push_back(c);
  }

  scanraw::RealClock clock;
  uint64_t cold_tokenized = 0;
  std::vector<double> cold_seconds, warm_seconds;

  for (int i = 0; i < scanraw::kWarmups + iters; ++i) {
    const bool timed = i >= scanraw::kWarmups;
    CheckOk(scanraw::RemoveFileIfExists(db), "clean db");
    CheckOk(scanraw::RemoveFileIfExists(catalog), "clean catalog");
    CheckOk(scanraw::RemoveFileIfExists(catalog + ".posmap.t"),
            "clean sidecar");

    // Cold: scan from scratch and persist catalog + posmap sidecar.
    {
      scanraw::ScanRawManager::Config config;
      config.db_path = db;
      auto manager = scanraw::ScanRawManager::Create(config);
      CheckOk(manager.status(), "create cold manager");
      CheckOk((*manager)->RegisterRawFile(
                  "t", csv, scanraw::CsvSchema(spec), scanraw::PosmapOptions()),
              "register");
      scanraw::obs::ExplainReport cold;
      const int64_t t0 = clock.NowNanos();
      auto result = (*manager)->Query("t", query, &cold);
      const double seconds =
          static_cast<double>(clock.NowNanos() - t0) * 1e-9;
      CheckOk(result.status(), "cold query");
      if (result->total_sum != info->total_sum) {
        std::fprintf(stderr, "FAIL: cold scan sum %llu (want %llu)\n",
                     static_cast<unsigned long long>(result->total_sum),
                     static_cast<unsigned long long>(info->total_sum));
        return 1;
      }
      cold_tokenized = cold.bytes_tokenized;
      CheckOk((*manager)->SaveCatalog(catalog), "save catalog");
      if (timed) cold_seconds.push_back(seconds);
    }

    // Warm: restart from the catalog; the sidecar maps must cover every
    // chunk so the scan tokenizes nothing.
    {
      scanraw::ScanRawManager::Config config;
      config.db_path = db;
      config.reuse_existing_db = true;
      auto manager = scanraw::ScanRawManager::Create(config);
      CheckOk(manager.status(), "create warm manager");
      CheckOk((*manager)->LoadCatalog(catalog), "load catalog");
      if ((*manager)->last_recovery().posmaps_dropped != 0) {
        std::fprintf(stderr, "FAIL: warm restart dropped the sidecar\n");
        return 1;
      }
      CheckOk((*manager)->AttachOptions("t", scanraw::PosmapOptions()),
              "attach");
      scanraw::obs::ExplainReport warm;
      const int64_t t0 = clock.NowNanos();
      auto result = (*manager)->Query("t", query, &warm);
      const double seconds =
          static_cast<double>(clock.NowNanos() - t0) * 1e-9;
      CheckOk(result.status(), "warm query");
      if (result->total_sum != info->total_sum) {
        std::fprintf(stderr, "FAIL: warm scan sum %llu (want %llu)\n",
                     static_cast<unsigned long long>(result->total_sum),
                     static_cast<unsigned long long>(info->total_sum));
        return 1;
      }
      if (warm.bytes_tokenized != 0) {
        std::fprintf(stderr,
                     "FAIL: warm restart tokenized %llu bytes (want 0)\n",
                     static_cast<unsigned long long>(warm.bytes_tokenized));
        return 1;
      }
      const uint64_t chunks = scanraw::kRows / scanraw::kChunkRows;
      if (warm.posmap_disk_hits != chunks) {
        std::fprintf(stderr,
                     "FAIL: warm restart hit %llu/%llu chunks from the "
                     "sidecar\n",
                     static_cast<unsigned long long>(warm.posmap_disk_hits),
                     static_cast<unsigned long long>(chunks));
        return 1;
      }
      if (timed) warm_seconds.push_back(seconds);
    }
  }

  const double cold_med = scanraw::MedianSeconds(cold_seconds);
  const double warm_med = scanraw::MedianSeconds(warm_seconds);
  const auto min_of = [](const std::vector<double>& v) {
    return *std::min_element(v.begin(), v.end());
  };

  scanraw::bench::TablePrinter table(
      {"scan", "median_ms", "min_ms", "tokenized_bytes"});
  table.AddRow({"cold", Fmt("%.2f", cold_med * 1e3),
                Fmt("%.2f", min_of(cold_seconds) * 1e3),
                std::to_string(static_cast<unsigned long long>(
                    cold_tokenized))});
  table.AddRow({"warm_restart", Fmt("%.2f", warm_med * 1e3),
                Fmt("%.2f", min_of(warm_seconds) * 1e3), "0"});
  std::printf("Warm-restart gate (%llu x %zu rows, median of %d runs)\n",
              static_cast<unsigned long long>(scanraw::kRows),
              scanraw::kColumns, iters);
  table.Print();
  std::printf("warm restart runs %.2fx the cold scan "
              "(0 of %llu bytes tokenized)\n",
              cold_med / warm_med,
              static_cast<unsigned long long>(cold_tokenized));

  scanraw::bench::BenchJsonWriter writer("restart_warm");
  writer.AddExtra("num_rows", std::to_string(scanraw::kRows));
  writer.AddExtra("columns", std::to_string(scanraw::kColumns));
  writer.AddExtra("chunks",
                  std::to_string(scanraw::kRows / scanraw::kChunkRows));
  writer.AddExtra("speedup_vs_cold", Fmt("%.2f", cold_med / warm_med));
  if (!writer.Write(table)) return 1;
  std::printf("OK: warm restart tokenized 0 bytes\n");
  return 0;
}
