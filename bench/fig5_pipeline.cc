// Figure 5 — time spent per chunk in each pipeline stage (READ, TOKENIZE,
// PARSE, WRITE) as a function of the number of columns (2..256), absolute
// (a) and relative (b). Measured on the REAL pipeline with full loading,
// like the paper; the disk is emulated at 436 MB/s so READ/WRITE times are
// meaningful on a page-cached host. Row count is scaled down from the
// paper's 2^26; per-chunk stage times are averages, so the shape is
// preserved.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/csv_generator.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace {

constexpr size_t kColumnAxis[] = {2, 4, 8, 16, 32, 64, 128, 256};
constexpr uint64_t kRows = 1 << 15;
constexpr uint64_t kChunkRows = 1 << 12;  // 8 chunks per file

struct StageTimes {
  double read_s, tokenize_s, parse_s, write_s;
  double total() const { return read_s + tokenize_s + parse_s + write_s; }
};

StageTimes MeasureColumns(size_t columns) {
  const std::string csv =
      bench::MustTempPath("fig5_" + std::to_string(columns) + ".csv");
  CsvSpec spec;
  spec.num_rows = kRows;
  spec.num_columns = columns;
  auto info = GenerateCsvFile(csv, spec);
  bench::CheckOk(info.status(), "generate csv");

  ScanRawManager::Config config;
  config.db_path = csv + ".db";
  config.disk_bandwidth = 436ull << 20;
  auto manager = ScanRawManager::Create(config);
  bench::CheckOk(manager.status(), "create manager");
  ScanRawOptions options;
  options.policy = LoadPolicy::kFullLoad;  // WRITE included, as in the paper
  options.num_workers = 2;
  options.chunk_rows = kChunkRows;
  bench::CheckOk(
      (*manager)->RegisterRawFile("t", csv, CsvSchema(spec), options),
      "register");
  QuerySpec query;
  for (size_t c = 0; c < columns; ++c) query.sum_columns.push_back(c);
  auto result = (*manager)->Query("t", query);
  bench::CheckOk(result.status(), "query");

  ScanRaw* op = (*manager)->GetOperator("t");
  if (op == nullptr) {
    std::fprintf(stderr, "operator retired too early\n");
    std::exit(1);
  }
  const PipelineProfile& profile = op->profile();
  auto per_chunk = [](const Stopwatch& watch) {
    return watch.intervals() == 0
               ? 0.0
               : watch.TotalSeconds() /
                     static_cast<double>(watch.intervals());
  };
  return StageTimes{per_chunk(profile.read_time),
                    per_chunk(profile.tokenize_time),
                    per_chunk(profile.parse_time),
                    per_chunk(profile.write_time)};
}

}  // namespace
}  // namespace scanraw

int main() {
  using scanraw::bench::Fmt;
  std::printf("Figure 5 — per-chunk pipeline stage times vs #columns "
              "(real pipeline, full load,\n%llu rows, %llu-row chunks, "
              "436 MB/s emulated disk)\n\n",
              static_cast<unsigned long long>(scanraw::kRows),
              static_cast<unsigned long long>(scanraw::kChunkRows));

  scanraw::bench::TablePrinter abs({"columns", "READ (ms)", "TOKENIZE (ms)",
                                    "PARSE (ms)", "WRITE (ms)"});
  scanraw::bench::TablePrinter rel({"columns", "READ %", "TOKENIZE %",
                                    "PARSE %", "WRITE %", "I/O %"});
  for (size_t columns : scanraw::kColumnAxis) {
    auto t = scanraw::MeasureColumns(columns);
    abs.AddRow({std::to_string(columns), Fmt("%.2f", t.read_s * 1e3),
                Fmt("%.2f", t.tokenize_s * 1e3), Fmt("%.2f", t.parse_s * 1e3),
                Fmt("%.2f", t.write_s * 1e3)});
    const double total = t.total();
    rel.AddRow({std::to_string(columns), Fmt("%.1f", 100 * t.read_s / total),
                Fmt("%.1f", 100 * t.tokenize_s / total),
                Fmt("%.1f", 100 * t.parse_s / total),
                Fmt("%.1f", 100 * t.write_s / total),
                Fmt("%.1f", 100 * (t.read_s + t.write_s) / total)});
  }
  std::printf("(a) absolute time per chunk\n");
  abs.Print();
  std::printf("\n(b) relative distribution\n");
  rel.Print();

  scanraw::bench::BenchJsonWriter writer("fig5_pipeline");
  writer.AddExtra("relative",
                  scanraw::bench::BenchJsonWriter::TableJson(rel));
  writer.Write(abs);
  std::printf(
      "\nExpected shape (paper): per-chunk time ~doubles with column count; "
      "PARSE dominates\nbeyond ~16 columns; the I/O share (READ+WRITE) falls "
      "from ~45%% at 2 columns to ~20%%\nat 256 columns while PARSE grows "
      "toward ~60%%.\n");
  return 0;
}
