// Shared helpers for the figure/table benchmark binaries: aligned table
// printing and temp-file management. Each bench prints the same rows/series
// the paper reports for its figure.
#ifndef SCANRAW_BENCH_BENCH_UTIL_H_
#define SCANRAW_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/status.h"

namespace scanraw {
namespace bench {

inline std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  std::string base = env != nullptr ? env : "/tmp";
  return base + "/scanraw_bench";
}

inline std::string TempPath(const std::string& name) {
  const std::string dir = TempDir();
  std::string cmd = "mkdir -p " + dir;
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "failed to create %s\n", dir.c_str());
  }
  return dir + "/" + name;
}

// Aborts the bench with a message on error — benches have no caller to
// propagate to.
inline void CheckOk(const Status& status, const char* context) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", context, status.ToString().c_str());
    std::exit(1);
  }
}

// Fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const auto& h : headers_) widths_.push_back(h.size());
  }

  void AddRow(std::vector<std::string> cells) {
    for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    PrintRow(headers_);
    std::string sep;
    for (size_t i = 0; i < headers_.size(); ++i) {
      sep += std::string(widths_[i] + 2, '-');
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) PrintRow(row);
  }

 private:
  void PrintRow(const std::vector<std::string>& cells) const {
    for (size_t i = 0; i < cells.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths_[i]), cells[i].c_str());
    }
    std::printf("\n");
  }

  std::vector<std::string> headers_;
  std::vector<size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace bench
}  // namespace scanraw

#endif  // SCANRAW_BENCH_BENCH_UTIL_H_
