// Shared helpers for the figure/table benchmark binaries: aligned table
// printing and temp-file management. Each bench prints the same rows/series
// the paper reports for its figure.
#ifndef SCANRAW_BENCH_BENCH_UTIL_H_
#define SCANRAW_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace scanraw {
namespace bench {

inline std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  std::string base = env != nullptr ? env : "/tmp";
  return base + "/scanraw_bench";
}

// Path for a scratch file under TempDir(), creating the directory if
// needed. Fails (rather than returning a path writes would fail on) when
// the directory cannot be created.
inline Result<std::string> TempPath(const std::string& name) {
  const std::string dir = TempDir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + dir + ": " + ec.message());
  }
  return dir + "/" + name;
}

// Aborts the bench with a message on error — benches have no caller to
// propagate to.
inline void CheckOk(const Status& status, const char* context) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", context, status.ToString().c_str());
    std::exit(1);
  }
}

// TempPath for the benches themselves: aborts on failure, like CheckOk.
inline std::string MustTempPath(const std::string& name) {
  auto path = TempPath(name);
  if (!path.ok()) CheckOk(path.status(), "temp path");
  return *path;
}

// Fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const auto& h : headers_) widths_.push_back(h.size());
  }

  void AddRow(std::vector<std::string> cells) {
    for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    PrintRow(headers_);
    std::string sep;
    for (size_t i = 0; i < headers_.size(); ++i) {
      sep += std::string(widths_[i] + 2, '-');
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) PrintRow(row);
  }

 private:
  void PrintRow(const std::vector<std::string>& cells) const {
    for (size_t i = 0; i < cells.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths_[i]), cells[i].c_str());
    }
    std::printf("\n");
  }

 public:
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

// Machine-readable bench artifact: writes BENCH_<name>.json next to the
// working directory (override the directory with SCANRAW_BENCH_OUT). The
// schema is {"bench":name,"headers":[...],"rows":[[...]],"extra":{...}} —
// every cell is the same string the table printed, so the JSON mirrors the
// human-readable output exactly.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string name) : name_(std::move(name)) {}

  // Extra top-level key/value pairs (values embedded verbatim, so pass
  // valid JSON — numbers, or strings already quoted via obs::JsonEscape).
  void AddExtra(const std::string& key, const std::string& json_value) {
    extra_.emplace_back(key, json_value);
  }

  // {"headers":[...],"rows":[[...]]} for one table — also usable as an
  // AddExtra value to attach secondary tables.
  static std::string TableJson(const TablePrinter& table) {
    std::string json = "{\"headers\":[";
    for (size_t i = 0; i < table.headers().size(); ++i) {
      if (i > 0) json += ",";
      json += "\"" + obs::JsonEscape(table.headers()[i]) + "\"";
    }
    json += "],\"rows\":[";
    for (size_t r = 0; r < table.rows().size(); ++r) {
      if (r > 0) json += ",";
      json += "[";
      const auto& row = table.rows()[r];
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) json += ",";
        json += "\"" + obs::JsonEscape(row[i]) + "\"";
      }
      json += "]";
    }
    json += "]}";
    return json;
  }

  // Serializes the printed table (headers + rows) plus the extras.
  bool Write(const TablePrinter& table) const {
    const std::string table_json = TableJson(table);
    // Splice the table members into the top-level object.
    std::string json = "{\"bench\":\"" + obs::JsonEscape(name_) + "\"," +
                       table_json.substr(1, table_json.size() - 2);
    for (const auto& [key, value] : extra_) {
      json += ",\"" + obs::JsonEscape(key) + "\":" + value;
    }
    json += "}\n";

    const std::string path = OutPath();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench json: cannot open %s\n", path.c_str());
      return false;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("bench artifact: %s\n", path.c_str());
    return true;
  }

  std::string OutPath() const {
    const char* dir = std::getenv("SCANRAW_BENCH_OUT");
    std::string base = dir != nullptr ? std::string(dir) + "/" : "";
    return base + "BENCH_" + name_ + ".json";
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> extra_;
};

}  // namespace bench
}  // namespace scanraw

#endif  // SCANRAW_BENCH_BENCH_UTIL_H_
