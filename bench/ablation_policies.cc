// Ablations of the design choices DESIGN.md calls out:
//   1. safeguard on/off — without the end-of-scan flush, an I/O-bound
//      workload never converges to database performance;
//   2. biased LRU (evict loaded chunks first) vs plain LRU — the bias keeps
//      unloaded chunks resident so the safeguard can load them;
//   3. invisible-loading quota sweep — how the per-query write budget
//      trades first-query slowdown against convergence speed.
// All measured on the real pipeline.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "datagen/csv_generator.h"
#include "scanraw/chunk_cache.h"
#include "scanraw/scan_raw.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace {

constexpr uint64_t kRows = 1 << 16;
constexpr size_t kColumns = 8;
constexpr uint64_t kChunkRows = 1 << 12;  // 16 chunks
constexpr int kQueries = 5;

struct SequenceOutcome {
  std::vector<double> loaded_fraction;  // after each query (writes drained)
  std::vector<double> query_seconds;
};

SequenceOutcome RunSequence(const std::string& csv, const CsvSpec& spec,
                            const ScanRawOptions& options,
                            const std::string& tag) {
  ScanRawManager::Config config;
  config.db_path = bench::MustTempPath("ablation_" + tag + ".db");
  config.disk_bandwidth = 100ull << 20;
  auto manager = ScanRawManager::Create(config);
  bench::CheckOk(manager.status(), "create manager");
  bench::CheckOk(
      (*manager)->RegisterRawFile("t", csv, CsvSchema(spec), options),
      "register");
  QuerySpec query;
  for (size_t c = 0; c < kColumns; ++c) query.sum_columns.push_back(c);

  SequenceOutcome outcome;
  RealClock clock;
  for (int q = 0; q < kQueries; ++q) {
    const int64_t t0 = clock.NowNanos();
    auto result = (*manager)->Query("t", query);
    outcome.query_seconds.push_back(
        static_cast<double>(clock.NowNanos() - t0) * 1e-9);
    bench::CheckOk(result.status(), "query");
    ScanRaw* op = (*manager)->GetOperator("t");
    if (op != nullptr) op->WaitForWrites();
    outcome.loaded_fraction.push_back(
        (*manager)->catalog()->GetTable("t")->LoadedFraction());
  }
  return outcome;
}

ScanRawOptions BaseOptions() {
  ScanRawOptions options;
  options.policy = LoadPolicy::kSpeculativeLoading;
  options.num_workers = 4;
  options.chunk_rows = kChunkRows;
  options.cache_capacity_chunks = 4;
  return options;
}

}  // namespace
}  // namespace scanraw

int main() {
  using scanraw::bench::Fmt;
  const std::string csv = scanraw::bench::MustTempPath("ablation.csv");
  scanraw::CsvSpec spec;
  spec.num_rows = scanraw::kRows;
  spec.num_columns = scanraw::kColumns;
  auto info = scanraw::GenerateCsvFile(csv, spec);
  scanraw::bench::CheckOk(info.status(), "generate csv");

  std::printf("Ablation studies (real pipeline, %llu x %zu file, 16 chunks, "
              "cache = 4 chunks)\n\n",
              static_cast<unsigned long long>(scanraw::kRows),
              scanraw::kColumns);

  // ---- 1. safeguard on/off -------------------------------------------
  {
    auto on = scanraw::BaseOptions();
    auto off = scanraw::BaseOptions();
    off.safeguard_enabled = false;
    auto with = scanraw::RunSequence(csv, spec, on, "safeguard_on");
    auto without = scanraw::RunSequence(csv, spec, off, "safeguard_off");
    std::printf("1. Safeguard flush (speculative loading)\n");
    scanraw::bench::TablePrinter table(
        {"query", "loaded % (safeguard on)", "loaded % (safeguard off)"});
    for (int q = 0; q < scanraw::kQueries; ++q) {
      table.AddRow({std::to_string(q + 1),
                    Fmt("%.0f", 100 * with.loaded_fraction[q]),
                    Fmt("%.0f", 100 * without.loaded_fraction[q])});
    }
    table.Print();
    std::printf("Without the safeguard, loading only happens when READ "
                "blocks; on an I/O-bound\nhost it can stall entirely.\n\n");
  }

  // ---- 2. biased vs plain LRU ----------------------------------------
  {
    // Driven directly against the cache: unloaded chunks become resident
    // first (converted early in the scan), then already-loaded chunks pass
    // through (database reads), then more conversions arrive. The biased
    // policy sacrifices the loaded chunks and keeps the unloaded ones
    // resident for the safeguard flush; plain LRU evicts the unloaded
    // chunks because they are the coldest.
    std::printf("2. Cache eviction bias (evict already-loaded chunks first)\n");
    scanraw::bench::TablePrinter table(
        {"policy", "unloaded chunks still resident", "evicted before load"});
    for (bool bias : {true, false}) {
      scanraw::ChunkCache cache(8, bias);
      auto dummy = std::make_shared<const scanraw::BinaryChunk>(0);
      size_t lost = 0;
      for (uint64_t i = 0; i < 4; ++i) {        // early conversions
        for (const auto& ev : cache.Insert(i, dummy, /*loaded=*/false)) {
          if (!ev.was_loaded) ++lost;
        }
      }
      for (uint64_t i = 100; i < 108; ++i) {    // database reads pass through
        for (const auto& ev : cache.Insert(i, dummy, /*loaded=*/true)) {
          if (!ev.was_loaded) ++lost;
        }
      }
      for (uint64_t i = 4; i < 8; ++i) {        // late conversions
        for (const auto& ev : cache.Insert(i, dummy, /*loaded=*/false)) {
          if (!ev.was_loaded) ++lost;
        }
      }
      table.AddRow({bias ? "biased LRU" : "plain LRU",
                    std::to_string(cache.UnloadedChunks().size()),
                    std::to_string(lost)});
    }
    table.Print();
    std::printf("The bias keeps unloaded chunks resident through bursts of "
                "loaded traffic, so the\nsafeguard flush can still load "
                "them (\"chunks stored in binary format are more\nlikely "
                "to be replaced\", 3.1).\n\n");
  }

  // ---- 2b. positional map cache on/off -------------------------------
  {
    std::printf("2b. Positional map cache (external tables, re-scan "
                "workload)\n");
    scanraw::bench::TablePrinter table(
        {"map cache", "q1 (s)", "q2 (s)", "q3 (s)", "tokenized chunks"});
    for (bool enabled : {false, true}) {
      auto options = scanraw::BaseOptions();
      options.policy = scanraw::LoadPolicy::kExternalTables;
      options.cache_capacity_chunks = 0;  // force raw re-scans
      options.cache_positional_maps = enabled;
      scanraw::ScanRawManager::Config config;
      config.db_path = scanraw::bench::MustTempPath(
          std::string("ablation_pmc_") + (enabled ? "on" : "off") + ".db");
      config.disk_bandwidth = 100ull << 20;
      auto manager = scanraw::ScanRawManager::Create(config);
      scanraw::bench::CheckOk(manager.status(), "create manager");
      scanraw::bench::CheckOk(
          (*manager)->RegisterRawFile("t", csv, scanraw::CsvSchema(spec),
                                      options),
          "register");
      scanraw::ScanRaw op("t", (*manager)->catalog(), (*manager)->storage(),
                          (*manager)->arbiter(), (*manager)->limiter(),
                          options);
      scanraw::QuerySpec query;
      for (size_t c = 0; c < scanraw::kColumns; ++c) {
        query.sum_columns.push_back(c);
      }
      scanraw::RealClock clock;
      std::vector<std::string> row{enabled ? "on" : "off"};
      for (int q = 0; q < 3; ++q) {
        const int64_t t0 = clock.NowNanos();
        auto result = op.ExecuteQuery(query);
        scanraw::bench::CheckOk(result.status(), "query");
        row.push_back(
            Fmt("%.3f", static_cast<double>(clock.NowNanos() - t0) * 1e-9));
      }
      row.push_back(std::to_string(op.profile().tokenize_time.intervals()));
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("With the cache on, queries 2+ skip TOKENIZE entirely "
                "(16 chunks tokenized once\ninstead of on every scan).\n\n");
  }

  // ---- 3. invisible-loading quota sweep ------------------------------
  {
    std::printf("3. Invisible loading: chunks-per-query quota sweep\n");
    scanraw::bench::TablePrinter table(
        {"quota", "q1 time (s)", "q5 time (s)", "loaded % after q5"});
    for (size_t quota : {1, 2, 4, 8}) {
      auto options = scanraw::BaseOptions();
      options.policy = scanraw::LoadPolicy::kInvisibleLoading;
      options.invisible_chunks_per_query = quota;
      auto outcome = scanraw::RunSequence(csv, spec, options,
                                          "quota" + std::to_string(quota));
      table.AddRow({std::to_string(quota),
                    Fmt("%.2f", outcome.query_seconds.front()),
                    Fmt("%.2f", outcome.query_seconds.back()),
                    Fmt("%.0f", 100 * outcome.loaded_fraction.back())});
    }
    table.Print();
    std::printf("Larger quotas converge faster but tax every query; "
                "speculative loading gets the\nsame convergence without the "
                "fixed per-query cost.\n");
  }
  return 0;
}
