// Quickstart: query a raw CSV file through ScanRaw with zero load time.
//
// The first query runs straight off the raw file (instant access, like an
// external table); speculative loading stores converted chunks in the
// database whenever the disk is idle, so repeated queries get faster until
// they run at database speed — without ever paying an explicit load step.
//
//   ./quickstart [rows] [columns]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/clock.h"
#include "datagen/csv_generator.h"
#include "scanraw/scanraw_manager.h"

namespace {

std::string TempPath(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/" + name;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scanraw;

  // 1. Create (or point at) a raw file. Here: a synthetic CSV.
  CsvSpec data_spec;
  data_spec.num_rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
  data_spec.num_columns = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 16;
  const std::string csv_path = TempPath("quickstart.csv");
  auto file_info = GenerateCsvFile(csv_path, data_spec);
  if (!file_info.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 file_info.status().ToString().c_str());
    return 1;
  }
  std::printf("raw file: %s (%llu rows x %zu columns, %.1f MB)\n",
              csv_path.c_str(),
              static_cast<unsigned long long>(file_info->num_rows),
              file_info->num_columns, file_info->file_bytes / 1048576.0);

  // 2. Bring up the engine: one database file, one emulated 100 MB/s disk
  //    shared by raw reads and database I/O.
  ScanRawManager::Config config;
  config.db_path = TempPath("quickstart.db");
  config.disk_bandwidth = 100ull << 20;
  auto manager = ScanRawManager::Create(config);
  if (!manager.ok()) {
    std::fprintf(stderr, "create: %s\n", manager.status().ToString().c_str());
    return 1;
  }

  // 3. Register the raw file as a table. Nothing is read yet.
  ScanRawOptions options;  // speculative loading is the default policy
  options.num_workers = 4;
  options.chunk_rows = data_spec.num_rows / 16 + 1;
  options.cache_capacity_chunks = 4;
  Status s = (*manager)->RegisterRawFile("events", csv_path,
                                         CsvSchema(data_spec), options);
  if (!s.ok()) {
    std::fprintf(stderr, "register: %s\n", s.ToString().c_str());
    return 1;
  }

  // 4. Query it — SELECT SUM(C0 + C1 + ... ) FROM events.
  QuerySpec query;
  for (size_t c = 0; c < data_spec.num_columns; ++c) {
    query.sum_columns.push_back(c);
  }

  RealClock clock;
  std::printf("\n%-8s%-12s%-18s%s\n", "query", "time (s)", "result",
              "fraction loaded");
  for (int q = 1; q <= 5; ++q) {
    const int64_t t0 = clock.NowNanos();
    auto result = (*manager)->Query("events", query);
    const double elapsed = static_cast<double>(clock.NowNanos() - t0) * 1e-9;
    if (!result.ok()) {
      std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
      return 1;
    }
    if (result->total_sum != file_info->total_sum) {
      std::fprintf(stderr, "wrong answer!\n");
      return 1;
    }
    // Loading progress so far (background writes may still be draining).
    ScanRaw* op = (*manager)->GetOperator("events");
    if (op != nullptr) op->WaitForWrites();
    auto meta = (*manager)->catalog()->GetTable("events");
    std::printf("%-8d%-12.3f%-18llu%.0f%%%s\n", q, elapsed,
                static_cast<unsigned long long>(result->total_sum),
                100.0 * meta->LoadedFraction(),
                (*manager)->IsRetired("events")
                    ? "  (operator retired: pure database scan)"
                    : "");
  }
  std::printf(
      "\nEvery query returned the same answer; the raw file was loaded "
      "incrementally on\nidle disk time, and once fully loaded the ScanRaw "
      "operator retired itself.\n");
  return 0;
}
