// Genomics walkthrough — the paper's motivating example (§1): compute the
// distribution of the CIGAR field across reads whose sequence exhibits a
// given pattern, directly over a SAM-like alignment file, as a SQL-style
// group-by aggregate instead of a custom SAMtools program.
//
//   ./genomics_variant [reads] [pattern]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "genomics/bam_like.h"
#include "genomics/sam.h"
#include "scanraw/scanraw_manager.h"

namespace {

std::string TempPath(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/" + name;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scanraw;

  SamGenSpec spec;
  spec.num_reads = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  if (argc > 2) spec.pattern = argv[2];

  const std::string sam_path = TempPath("variant.sam");
  const std::string bam_path = TempPath("variant.bam");
  auto sam_info = GenerateSamFile(sam_path, spec);
  if (!sam_info.ok()) {
    std::fprintf(stderr, "%s\n", sam_info.status().ToString().c_str());
    return 1;
  }
  auto bam_info = GenerateBamFile(bam_path, spec);
  if (!bam_info.ok()) {
    std::fprintf(stderr, "%s\n", bam_info.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %llu reads: %s (%.1f MB text), %s (%.1f MB "
              "binary)\n\n",
              static_cast<unsigned long long>(spec.num_reads),
              sam_path.c_str(), sam_info->file_bytes / 1048576.0,
              bam_path.c_str(), bam_info->file_bytes / 1048576.0);

  // SQL equivalent:
  //   SELECT CIGAR, COUNT(*) FROM reads WHERE SEQ LIKE '%<pattern>%'
  //   GROUP BY CIGAR;
  const QuerySpec query = CigarDistributionQuery(spec.pattern);

  // --- in-situ over the SAM text file, via ScanRaw -----------------------
  ScanRawManager::Config config;
  config.db_path = TempPath("variant.db");
  auto manager = ScanRawManager::Create(config);
  if (!manager.ok()) {
    std::fprintf(stderr, "%s\n", manager.status().ToString().c_str());
    return 1;
  }
  ScanRawOptions options;
  options.num_workers = 4;
  options.chunk_rows = 1 << 14;
  Status s =
      (*manager)->RegisterRawFile("reads", sam_path, SamSchema(), options);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto result = (*manager)->Query("reads", query);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("CIGAR distribution over reads containing \"%s\" "
              "(%llu of %llu reads match):\n\n",
              spec.pattern.c_str(),
              static_cast<unsigned long long>(result->rows_matched),
              static_cast<unsigned long long>(result->rows_scanned));
  std::printf("  %-12s%s\n", "CIGAR", "count");
  for (const auto& [cigar, agg] : result->groups) {
    std::printf("  %-12s%llu\n", cigar.c_str(),
                static_cast<unsigned long long>(agg.count));
  }

  // --- same query through the sequential BAM-like library ----------------
  auto reader = BamReader::Open(bam_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  BamChunkStream stream(std::move(*reader), 1 << 14);
  auto bam_result = RunQuery(query, &stream);
  if (!bam_result.ok()) {
    std::fprintf(stderr, "%s\n", bam_result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nBAM-like file agrees: %llu matching reads, %zu CIGAR "
              "groups.\n",
              static_cast<unsigned long long>(bam_result->rows_matched),
              bam_result->groups.size());
  return 0;
}
