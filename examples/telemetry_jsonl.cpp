// Telemetry over JSON-lines: queries a newline-delimited JSON file in situ
// (no loading step), answers several questions in ONE shared pass with
// multi-query execution (the paper's §7 future work), and runs an ad-hoc
// SQL statement through the bundled parser.
//
//   ./telemetry_jsonl [records]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "datagen/jsonl_generator.h"
#include "scanraw/scan_raw.h"
#include "scanraw/scanraw_manager.h"
#include "sql/sql_parser.h"

namespace {

std::string TempPath(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/" + name;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scanraw;

  // Synthetic telemetry: one JSON object per record, 8 numeric metrics.
  CsvSpec spec;
  spec.num_rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  spec.num_columns = 8;
  spec.max_value = 10000;  // metric readings in [0, 10000)
  const std::string path = TempPath("telemetry.jsonl");
  auto info = GenerateJsonlFile(path, spec);
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }
  std::printf("telemetry file: %s (%llu records, %.1f MB of JSON)\n\n",
              path.c_str(),
              static_cast<unsigned long long>(info->num_rows),
              info->file_bytes / 1048576.0);

  ScanRawManager::Config config;
  config.db_path = TempPath("telemetry.db");
  auto manager = ScanRawManager::Create(config);
  if (!manager.ok()) {
    std::fprintf(stderr, "%s\n", manager.status().ToString().c_str());
    return 1;
  }
  ScanRawOptions options;
  options.raw_format = RawFormat::kJsonLines;
  options.num_workers = 4;
  options.chunk_rows = 1 << 14;
  const Schema schema = CsvSchema(spec);
  Status s = (*manager)->RegisterRawFile("telemetry", path, schema, options);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // --- one shared pass, three questions ----------------------------------
  QuerySpec totals;  // SELECT SUM(C0 + ... + C7)
  for (size_t c = 0; c < spec.num_columns; ++c) {
    totals.sum_columns.push_back(c);
  }
  QuerySpec extremes;  // SELECT MIN(C0), MAX(C0)
  extremes.minmax_columns = {0};
  QuerySpec alerts;  // SELECT COUNT(*) WHERE C1 >= 9900
  alerts.predicate.range = RangePredicate{1, 9900, INT64_MAX};

  // The manager creates the operator on first use; grab it to use the
  // multi-query API directly.
  QuerySpec warm;
  warm.sum_columns = {0};
  if (!(*manager)->Query("telemetry", warm).ok()) return 1;
  ScanRaw* op = (*manager)->GetOperator("telemetry");
  if (op == nullptr) {
    std::fprintf(stderr, "operator missing\n");
    return 1;
  }
  auto batch = op->ExecuteQueries({totals, extremes, alerts});
  if (!batch.ok()) {
    std::fprintf(stderr, "%s\n", batch.status().ToString().c_str());
    return 1;
  }
  std::printf("one shared scan answered three queries:\n");
  std::printf("  total of all metrics:  %llu\n",
              static_cast<unsigned long long>((*batch)[0].total_sum));
  std::printf("  metric C0 range:       [%lld, %lld]\n",
              static_cast<long long>((*batch)[1].column_ranges.at(0).min_value),
              static_cast<long long>((*batch)[1].column_ranges.at(0).max_value));
  std::printf("  readings with C1 >= 9900: %llu of %llu\n\n",
              static_cast<unsigned long long>((*batch)[2].rows_matched),
              static_cast<unsigned long long>((*batch)[2].rows_scanned));

  // --- ad-hoc SQL ---------------------------------------------------------
  const std::string sql =
      "SELECT AVG(C2) FROM telemetry WHERE C3 BETWEEN 5000 AND 9999";
  auto parsed = ParseSelect(sql, schema);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto result = (*manager)->Query(parsed->table, parsed->spec);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n  -> avg = %.2f over %llu matching records\n", sql.c_str(),
              result->Average(),
              static_cast<unsigned long long>(result->rows_matched));
  return 0;
}
