// Selective access paths: projection-driven partial loading, serving later
// queries from partially loaded columns, and statistics-based chunk
// skipping (§3.3) — the metadata features around the core pipeline.
//
//   ./selective_scan

#include <cstdio>
#include <cstdlib>
#include <string>

#include "datagen/csv_generator.h"
#include "scanraw/scanraw_manager.h"

namespace {

std::string TempPath(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/" + name;
}

#define CHECK_OK(expr)                                             \
  do {                                                             \
    auto _s = (expr);                                              \
    if (!_s.ok()) {                                                \
      std::fprintf(stderr, "%s\n", _s.ToString().c_str());         \
      return 1;                                                    \
    }                                                              \
  } while (0)

}  // namespace

int main() {
  using namespace scanraw;

  CsvSpec spec;
  spec.num_rows = 100000;
  spec.num_columns = 32;
  const std::string csv = TempPath("selective.csv");
  auto info = GenerateCsvFile(csv, spec);
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }

  ScanRawManager::Config config;
  config.db_path = TempPath("selective.db");
  auto manager_or = ScanRawManager::Create(config);
  if (!manager_or.ok()) {
    std::fprintf(stderr, "%s\n", manager_or.status().ToString().c_str());
    return 1;
  }
  auto& manager = *manager_or;
  ScanRawOptions options;
  options.policy = LoadPolicy::kFullLoad;  // load whatever each query touches
  options.num_workers = 4;
  options.chunk_rows = 1 << 13;
  CHECK_OK(manager->RegisterRawFile("t", csv, CsvSchema(spec), options));

  // --- 1. projection loads only the touched columns ---------------------
  QuerySpec narrow;
  narrow.sum_columns = {3, 7};
  auto r1 = manager->Query("t", narrow);
  CHECK_OK(r1.status());
  auto meta = manager->catalog()->GetTable("t");
  std::printf("after SUM(C3+C7): loaded fraction = %.1f%% (only the 2 "
              "projected columns of %zu\nare in the database)\n\n",
              100 * meta->LoadedFraction(), spec.num_columns);

  // --- 2. a query inside the loaded columns never touches the raw file --
  QuerySpec subset;
  subset.sum_columns = {3};
  auto r2 = manager->Query("t", subset);
  CHECK_OK(r2.status());
  ScanRaw* op = manager->GetOperator("t");
  std::printf("SUM(C3) answered from cache + database segments "
              "(raw chunks read so far: %llu,\nunchanged by the second "
              "query)\n\n",
              static_cast<unsigned long long>(
                  op->profile().chunks_from_raw.load()));

  // --- 3. statistics-based chunk skipping --------------------------------
  // Load everything first so every chunk has min/max statistics.
  QuerySpec all;
  for (size_t c = 0; c < spec.num_columns; ++c) all.sum_columns.push_back(c);
  CHECK_OK(manager->Query("t", all).status());

  QuerySpec impossible = all;
  impossible.predicate.range = RangePredicate{0, int64_t{1} << 40,
                                              int64_t{1} << 41};
  auto r3 = manager->Query("t", impossible);
  CHECK_OK(r3.status());
  std::printf("predicate C0 in [2^40, 2^41]: %llu rows scanned — min/max "
              "statistics proved every\nchunk irrelevant, so none was "
              "read\n\n",
              static_cast<unsigned long long>(r3->rows_scanned));

  QuerySpec selective = all;
  selective.predicate.range = RangePredicate{0, 0, 1 << 20};
  auto r4 = manager->Query("t", selective);
  CHECK_OK(r4.status());
  std::printf("predicate C0 in [0, 2^20]: %llu of %llu rows matched "
              "(selectivity %.4f%%)\n",
              static_cast<unsigned long long>(r4->rows_matched),
              static_cast<unsigned long long>(spec.num_rows),
              100.0 * static_cast<double>(r4->rows_matched) /
                  static_cast<double>(spec.num_rows));
  return 0;
}
