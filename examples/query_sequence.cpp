// Loading-policy comparison over a query sequence — a miniature of the
// paper's Figure 8. Runs the same aggregate query six times under each
// WRITE scheduling policy and prints per-query times, cumulative times, and
// how much of the file each policy loaded.
//
//   ./query_sequence [rows]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/clock.h"
#include "datagen/csv_generator.h"
#include "scanraw/scanraw_manager.h"

namespace {

std::string TempPath(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/" + name;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scanraw;

  CsvSpec spec;
  spec.num_rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 131072;
  spec.num_columns = 16;
  const std::string csv = TempPath("sequence.csv");
  auto info = GenerateCsvFile(csv, spec);
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }

  constexpr int kQueries = 6;
  const LoadPolicy policies[] = {
      LoadPolicy::kSpeculativeLoading, LoadPolicy::kBufferedLoading,
      LoadPolicy::kInvisibleLoading, LoadPolicy::kFullLoad,
      LoadPolicy::kExternalTables};

  std::printf("%llu x %zu CSV, 16 chunks, cache = 4 chunks, 30 MB/s "
              "emulated disk, %d queries\n\n",
              static_cast<unsigned long long>(spec.num_rows),
              spec.num_columns, kQueries);
  std::printf("%-22s", "policy");
  for (int q = 1; q <= kQueries; ++q) std::printf("   q%d", q);
  std::printf("   total  loaded\n");

  for (LoadPolicy policy : policies) {
    ScanRawManager::Config config;
    config.db_path =
        TempPath("sequence_" + std::string(LoadPolicyName(policy)) + ".db");
    config.disk_bandwidth = 30ull << 20;
    auto manager = ScanRawManager::Create(config);
    if (!manager.ok()) {
      std::fprintf(stderr, "%s\n", manager.status().ToString().c_str());
      return 1;
    }
    ScanRawOptions options;
    options.policy = policy;
    options.num_workers = 4;
    options.chunk_rows = spec.num_rows / 16 + 1;
    options.cache_capacity_chunks = 4;
    Status s =
        (*manager)->RegisterRawFile("t", csv, CsvSchema(spec), options);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    QuerySpec query;
    for (size_t c = 0; c < spec.num_columns; ++c) {
      query.sum_columns.push_back(c);
    }

    RealClock clock;
    double total = 0;
    std::printf("%-22s", std::string(LoadPolicyName(policy)).c_str());
    for (int q = 0; q < kQueries; ++q) {
      const int64_t t0 = clock.NowNanos();
      auto result = (*manager)->Query("t", query);
      const double elapsed =
          static_cast<double>(clock.NowNanos() - t0) * 1e-9;
      if (!result.ok() || result->total_sum != info->total_sum) {
        std::fprintf(stderr, "query failed or wrong result\n");
        return 1;
      }
      total += elapsed;
      std::printf("%5.2f", elapsed);
    }
    ScanRaw* op = (*manager)->GetOperator("t");
    if (op != nullptr) op->WaitForWrites();
    std::printf("%8.2f%7.0f%%\n", total,
                100.0 * (*manager)->catalog()->GetTable("t")->LoadedFraction());
  }
  std::printf(
      "\nSpeculative loading starts as fast as external tables and "
      "converges to database\nspeed; the synchronous policies pay for "
      "loading inside query time.\n");
  return 0;
}
