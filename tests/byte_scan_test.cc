// Tests for the bulk byte scanners behind TOKENIZE and the READ chunker.
// The SIMD paths process 16/32 bytes per step, so the interesting inputs
// sit at and around block boundaries; every case is also checked against a
// naive per-byte reference.

#include "common/byte_scan.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace scanraw {
namespace bytescan {
namespace {

std::vector<size_t> NaiveFind(const std::string& s, size_t from, size_t end,
                              char needle) {
  std::vector<size_t> out;
  for (size_t i = from; i < end; ++i) {
    if (s[i] == needle) out.push_back(i);
  }
  return out;
}

TEST(FindByteTest, BasicAndBoundaries) {
  const std::string s = "abc,def,ghi";
  EXPECT_EQ(FindByte(s.data(), 0, s.size(), ','), 3u);
  EXPECT_EQ(FindByte(s.data(), 4, s.size(), ','), 7u);
  EXPECT_EQ(FindByte(s.data(), 8, s.size(), ','), kNpos);
  EXPECT_EQ(FindByte(s.data(), 0, s.size(), 'a'), 0u);
  EXPECT_EQ(FindByte(s.data(), 0, s.size(), 'i'), s.size() - 1);
  EXPECT_EQ(FindByte(s.data(), 5, 5, ','), kNpos);  // empty range
  EXPECT_EQ(FindByte(s.data(), 7, 8, ','), 7u);     // one-byte range
}

TEST(FindEitherTest, FirstOfTwoNeedlesWins) {
  // Long enough to exercise the 16-byte SIMD blocks plus the tail.
  std::string s(50, 'x');
  s[17] = 'b';
  s[33] = 'a';
  EXPECT_EQ(FindEither(s.data(), 0, s.size(), 'a', 'b'), 17u);
  EXPECT_EQ(FindEither(s.data(), 18, s.size(), 'a', 'b'), 33u);
  EXPECT_EQ(FindEither(s.data(), 34, s.size(), 'a', 'b'), kNpos);
  EXPECT_EQ(FindEither(s.data(), 0, 0, 'a', 'b'), kNpos);
  // Needle in the scalar tail after the last full block.
  s[49] = 'a';
  EXPECT_EQ(FindEither(s.data(), 34, s.size(), 'a', 'b'), 49u);
}

TEST(FindAnyOf4Test, AllFourNeedles) {
  std::string s(70, '_');
  s[5] = 'a';
  s[20] = 'b';
  s[40] = 'c';
  s[69] = 'd';
  EXPECT_EQ(FindAnyOf4(s.data(), 0, s.size(), 'a', 'b', 'c', 'd'), 5u);
  EXPECT_EQ(FindAnyOf4(s.data(), 6, s.size(), 'a', 'b', 'c', 'd'), 20u);
  EXPECT_EQ(FindAnyOf4(s.data(), 21, s.size(), 'a', 'b', 'c', 'd'), 40u);
  EXPECT_EQ(FindAnyOf4(s.data(), 41, s.size(), 'a', 'b', 'c', 'd'), 69u);
  EXPECT_EQ(FindAnyOf4(s.data(), 41, 69, 'a', 'b', 'c', 'd'), kNpos);
}

TEST(FindNTest, MatchesAtBlockBoundaries) {
  // One match at each position around the SSE (16) and AVX (32) block
  // edges; every one must be found with the right bias applied.
  for (size_t at : {0u, 15u, 16u, 17u, 31u, 32u, 33u, 63u, 64u}) {
    std::string s(80, 'x');
    s[at] = ',';
    uint32_t out[4] = {};
    size_t next = 0;
    const size_t n = FindN(s.data(), 0, s.size(), ',', out, 4, 1, &next);
    ASSERT_EQ(n, 1u) << "at=" << at;
    EXPECT_EQ(out[0], static_cast<uint32_t>(at) + 1) << "at=" << at;
    EXPECT_EQ(next, kNpos);
  }
}

TEST(FindNTest, StopsAtMaxHitsAndReportsOverflowMatch) {
  const std::string s = "a,b,c,d,e,f";
  uint32_t out[3] = {};
  size_t next = 0;
  const size_t n = FindN(s.data(), 0, s.size(), ',', out, 3, 0, &next);
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 3u);
  EXPECT_EQ(out[2], 5u);
  EXPECT_EQ(next, 7u);  // the fourth comma
}

TEST(FindNTest, OverflowMatchInSameSimdBlock) {
  // All matches inside one 16-byte block: the drain loop itself must stop
  // at max_hits and surface the overflow position.
  const std::string s = ",,,,,,,,,,,,,,,,";  // 16 commas
  uint32_t out[5] = {};
  size_t next = 0;
  const size_t n = FindN(s.data(), 0, s.size(), ',', out, 5, 0, &next);
  ASSERT_EQ(n, 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(next, 5u);
}

TEST(FindNTest, EmptyRange) {
  const std::string s = "abc";
  uint32_t out[1] = {};
  size_t next = 0;
  EXPECT_EQ(FindN(s.data(), 2, 2, 'a', out, 1, 0, &next), 0u);
  EXPECT_EQ(next, kNpos);
}

TEST(FindAllTest, AppendsWithBias) {
  const std::string s = "r1\nr2\nr3\n";
  std::vector<uint32_t> starts = {0};  // pre-seeded first line
  const size_t n =
      FindAll(s.data(), 0, s.size(), '\n', s.size(), /*bias=*/1, &starts);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(starts, (std::vector<uint32_t>{0, 3, 6, 9}));
}

TEST(FindAllTest, RespectsMaxHits) {
  const std::string s = "a\nb\nc\nd\n";
  std::vector<uint32_t> out;
  EXPECT_EQ(FindAll(s.data(), 0, s.size(), '\n', 2, 0, &out), 2u);
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 3}));
}

TEST(FindAllTest, BatchesPastInternalBatchSize) {
  // More matches than the internal 1024-slot batch: the overflow match that
  // ends one batch must start the next (no dropped or duplicated match).
  std::string s;
  std::vector<uint32_t> expected;
  Random rng(7);
  for (size_t i = 0; i < 3000; ++i) {
    const size_t pad = rng.Uniform(3);
    s.append(pad, 'x');
    expected.push_back(static_cast<uint32_t>(s.size()));
    s.push_back(';');
  }
  std::vector<uint32_t> out;
  const size_t n = FindAll(s.data(), 0, s.size(), ';', s.size(), 0, &out);
  EXPECT_EQ(n, 3000u);
  EXPECT_EQ(out, expected);
}

TEST(FindNTest, RandomizedAgainstNaiveScan) {
  Random rng(1234);
  for (int iter = 0; iter < 200; ++iter) {
    const size_t len = rng.Uniform(300);
    std::string s;
    for (size_t i = 0; i < len; ++i) {
      // Dense needle population so block-internal multi-hits are common.
      s.push_back(rng.OneIn(4) ? ',' : static_cast<char>('a' + rng.Uniform(4)));
    }
    const size_t from = len == 0 ? 0 : rng.Uniform(len);
    const auto naive = NaiveFind(s, from, len, ',');

    std::vector<uint32_t> all;
    FindAll(s.data(), from, len, ',', len + 1, 0, &all);
    ASSERT_EQ(all.size(), naive.size()) << "iter=" << iter;
    for (size_t i = 0; i < naive.size(); ++i) {
      EXPECT_EQ(all[i], naive[i]) << "iter=" << iter;
    }

    // FindN with a cap strictly below the match count must report the first
    // uncaptured match.
    if (naive.size() >= 2) {
      std::vector<uint32_t> capped(naive.size() - 1);
      size_t next = 0;
      const size_t n = FindN(s.data(), from, len, ',', capped.data(),
                             capped.size(), 0, &next);
      EXPECT_EQ(n, naive.size() - 1);
      EXPECT_EQ(next, naive.back());
    }
  }
}

}  // namespace
}  // namespace bytescan
}  // namespace scanraw
