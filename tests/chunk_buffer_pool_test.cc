// Tests for ChunkBufferPool: buffer recycling across READ/TOKENIZE/PARSE,
// the retention cap, the hit/miss/idle metrics, and the Wrap* shared-ptr
// hooks that return buffers when the last chunk reference drops.

#include "scanraw/chunk_buffer_pool.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "columnar/binary_chunk.h"
#include "format/text_chunk.h"
#include "obs/metrics.h"

namespace scanraw {
namespace {

TEST(ChunkBufferPoolTest, EmptyPoolHandsOutFreshBuffers) {
  ChunkBufferPool pool;
  obs::Counter hits, misses;
  obs::Gauge idle;
  pool.BindMetrics(&hits, &misses, &idle);

  EXPECT_TRUE(pool.AcquireFixed().empty());
  EXPECT_TRUE(pool.AcquireString().empty());
  EXPECT_TRUE(pool.AcquireOffsets().empty());
  EXPECT_EQ(hits.value(), 0u);
  EXPECT_EQ(misses.value(), 3u);
  EXPECT_EQ(pool.idle_buffers(), 0u);
}

TEST(ChunkBufferPoolTest, RecyclesCapacityAcrossAcquireRelease) {
  ChunkBufferPool pool;
  obs::Counter hits, misses;
  obs::Gauge idle;
  pool.BindMetrics(&hits, &misses, &idle);

  std::string s(1 << 16, 'x');
  const size_t cap = s.capacity();
  pool.ReleaseString(std::move(s));
  EXPECT_EQ(pool.idle_buffers(), 1u);
  EXPECT_EQ(idle.value(), 1);

  std::string back = pool.AcquireString();
  EXPECT_TRUE(back.empty());          // recycled buffers come back empty...
  EXPECT_GE(back.capacity(), cap);    // ...with their capacity intact.
  EXPECT_EQ(hits.value(), 1u);
  EXPECT_EQ(misses.value(), 0u);
  EXPECT_EQ(pool.idle_buffers(), 0u);
  EXPECT_EQ(idle.value(), 0);
}

TEST(ChunkBufferPoolTest, DropsZeroCapacityReleases) {
  ChunkBufferPool pool;
  pool.ReleaseFixed({});
  pool.ReleaseString({});
  pool.ReleaseOffsets({});
  EXPECT_EQ(pool.idle_buffers(), 0u);
}

TEST(ChunkBufferPoolTest, RetentionCapDropsExcessBuffers) {
  ChunkBufferPool pool(/*max_pooled_per_kind=*/2);
  for (int i = 0; i < 5; ++i) {
    std::vector<uint8_t> buf;
    buf.reserve(64);
    pool.ReleaseFixed(std::move(buf));
  }
  EXPECT_EQ(pool.idle_buffers(), 2u);
}

TEST(ChunkBufferPoolTest, FreeListsAreIndependentPerKind) {
  ChunkBufferPool pool;
  std::vector<uint8_t> fixed;
  fixed.reserve(16);
  pool.ReleaseFixed(std::move(fixed));
  // The fixed free list must not satisfy a string/offsets acquire.
  EXPECT_EQ(pool.AcquireString().capacity(), std::string().capacity());
  EXPECT_TRUE(pool.AcquireOffsets().empty());
  EXPECT_EQ(pool.idle_buffers(), 1u);
  EXPECT_GE(pool.AcquireFixed().capacity(), 16u);
  EXPECT_EQ(pool.idle_buffers(), 0u);
}

TEST(ChunkBufferPoolTest, ReleaseTextTakesDataAndLineStarts) {
  ChunkBufferPool pool;
  TextChunk chunk =
      MakeTextChunk("field_one,field_two\nfield_three,field_four\n", 3);
  ASSERT_EQ(chunk.num_rows(), 2u);
  pool.ReleaseText(&chunk);
  EXPECT_TRUE(chunk.data.empty());
  EXPECT_TRUE(chunk.line_starts.empty());
  EXPECT_EQ(pool.idle_buffers(), 2u);  // one string + one offsets vector

  EXPECT_FALSE(pool.AcquireText().capacity() == 0);
  EXPECT_FALSE(pool.AcquireLineStarts().capacity() == 0);
}

TEST(ChunkBufferPoolTest, WrapTextReturnsBuffersWhenLastReferenceDrops) {
  auto pool = std::make_shared<ChunkBufferPool>();
  auto shared = ChunkBufferPool::WrapText(
      MakeTextChunk("wide_enough_to_leave_the_sso_buffer,y\n"), pool);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->num_rows(), 1u);

  auto second = shared;  // TOKENIZE and PARSE both hold the chunk
  shared.reset();
  EXPECT_EQ(pool->idle_buffers(), 0u);  // still referenced
  second.reset();
  EXPECT_EQ(pool->idle_buffers(), 2u);  // text + line starts came home
}

TEST(ChunkBufferPoolTest, WrapChunkReturnsColumnBuffers) {
  auto pool = std::make_shared<ChunkBufferPool>();
  BinaryChunk chunk(9);
  ColumnVector u32(FieldType::kUint32);
  u32.AppendUint32(1);
  u32.AppendUint32(2);
  ColumnVector str(FieldType::kString);
  str.AppendString("hello from a string long enough to live on the heap");
  str.AppendString("world");
  ASSERT_TRUE(chunk.AddColumn(0, std::move(u32)).ok());
  ASSERT_TRUE(chunk.AddColumn(1, std::move(str)).ok());

  BinaryChunkPtr ptr = ChunkBufferPool::WrapChunk(std::move(chunk), pool);
  ASSERT_NE(ptr, nullptr);
  EXPECT_EQ(ptr->num_rows(), 2u);
  ptr.reset();
  // uint32 column: fixed payload. string column: arena + offsets.
  EXPECT_EQ(pool->idle_buffers(), 3u);
}

TEST(ChunkBufferPoolTest, NullPoolWrapsDegradeToPlainSharedPtr) {
  auto text = ChunkBufferPool::WrapText(MakeTextChunk("a\n"), nullptr);
  ASSERT_NE(text, nullptr);
  EXPECT_EQ(text->num_rows(), 1u);

  BinaryChunk chunk(0);
  ColumnVector v(FieldType::kUint32);
  v.AppendUint32(7);
  ASSERT_TRUE(chunk.AddColumn(0, std::move(v)).ok());
  BinaryChunkPtr ptr = ChunkBufferPool::WrapChunk(std::move(chunk), nullptr);
  ASSERT_NE(ptr, nullptr);
  EXPECT_EQ(ptr->column(0).AsUint32()[0], 7u);
}

TEST(ChunkBufferPoolTest, MetricsAreOptional) {
  ChunkBufferPool pool;  // no BindMetrics
  std::string s(128, 'a');
  pool.ReleaseString(std::move(s));
  EXPECT_GE(pool.AcquireString().capacity(), 128u);
}

TEST(ChunkBufferPoolTest, SteadyStateReusesInsteadOfAllocating) {
  ChunkBufferPool pool;
  obs::Counter hits, misses;
  obs::Gauge idle;
  pool.BindMetrics(&hits, &misses, &idle);

  // Prime the pool with one round-trip, then loop acquire→release: every
  // later acquire must be a hit.
  std::string buf(4096, 'b');
  pool.ReleaseString(std::move(buf));
  for (int i = 0; i < 10; ++i) {
    std::string b = pool.AcquireString();
    b.assign(4096, 'c');
    pool.ReleaseString(std::move(b));
  }
  EXPECT_EQ(hits.value(), 10u);
  EXPECT_EQ(misses.value(), 0u);
}

}  // namespace
}  // namespace scanraw
