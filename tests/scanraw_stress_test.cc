// Randomized end-to-end property tests: for random operator configurations
// (policy, workers, cache size, odd chunk sizes, feature flags) and random
// query specs, ScanRaw over the raw file must agree exactly with a naive
// in-memory reference executor — on the first query and on re-queries that
// mix cache, database and raw sources.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "datagen/csv_generator.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace {

constexpr uint64_t kRows = 6000;
constexpr size_t kCols = 6;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/stress_" + name;
}

// Replays the generator's value stream so the reference sees exactly the
// file's contents.
std::vector<std::vector<uint32_t>> MaterializeValues(const CsvSpec& spec) {
  Random rng(spec.seed);
  std::vector<std::vector<uint32_t>> rows(spec.num_rows);
  for (auto& row : rows) {
    row.resize(spec.num_columns);
    for (size_t c = 0; c < spec.num_columns; ++c) {
      row[c] = rng.NextUint32() % spec.max_value;
    }
  }
  return rows;
}

QueryResult ReferenceExecute(const std::vector<std::vector<uint32_t>>& rows,
                             const QuerySpec& spec) {
  QueryResult result;
  for (const auto& row : rows) {
    ++result.rows_scanned;
    if (spec.predicate.range.has_value()) {
      const auto& p = *spec.predicate.range;
      const int64_t v = row[p.column];
      if (v < p.lo || v > p.hi) continue;
    }
    ++result.rows_matched;
    uint64_t row_sum = 0;
    for (size_t c : spec.sum_columns) row_sum += row[c];
    result.total_sum += row_sum;
    for (size_t c : spec.minmax_columns) {
      const int64_t v = row[c];
      auto [it, inserted] =
          result.column_ranges.emplace(c, ColumnRange{v, v});
      if (!inserted) {
        it->second.min_value = std::min(it->second.min_value, v);
        it->second.max_value = std::max(it->second.max_value, v);
      }
    }
    if (spec.group_by_column.has_value()) {
      std::string key = std::to_string(row[*spec.group_by_column]);
      GroupAggregate& agg = result.groups[key];
      ++agg.count;
      agg.sum += row_sum;
    }
  }
  return result;
}

QuerySpec RandomQuery(Random* rng) {
  QuerySpec spec;
  const uint64_t n_sums = rng->Uniform(kCols) + (rng->OneIn(4) ? 0 : 1);
  for (uint64_t i = 0; i < n_sums; ++i) {
    spec.sum_columns.push_back(rng->Uniform(kCols));
  }
  std::sort(spec.sum_columns.begin(), spec.sum_columns.end());
  spec.sum_columns.erase(
      std::unique(spec.sum_columns.begin(), spec.sum_columns.end()),
      spec.sum_columns.end());
  if (rng->OneIn(3)) {
    spec.minmax_columns.push_back(rng->Uniform(kCols));
  }
  if (rng->OneIn(2)) {
    const size_t col = rng->Uniform(kCols);
    // Bounds spanning none / some / all of the [0, 2^31) value range.
    const int64_t a = static_cast<int64_t>(rng->Uniform(1ull << 32)) -
                      (1 << 30);
    const int64_t b = a + static_cast<int64_t>(rng->Uniform(1ull << 31));
    spec.predicate.range = RangePredicate{col, a, b};
  }
  if (rng->OneIn(4)) {
    // Group by a low-cardinality projection? Columns are near-unique, so
    // cap the damage by grouping only on small trials.
    spec.group_by_column = rng->Uniform(kCols);
  }
  return spec;
}

void ExpectEqualResults(const QueryResult& got, const QueryResult& want,
                        const std::string& context,
                        bool compare_scanned = true) {
  // Statistics-based chunk skipping legitimately reduces rows_scanned for
  // filtered queries, so callers disable that comparison there.
  if (compare_scanned) {
    EXPECT_EQ(got.rows_scanned, want.rows_scanned) << context;
  }
  EXPECT_EQ(got.rows_matched, want.rows_matched) << context;
  EXPECT_EQ(got.total_sum, want.total_sum) << context;
  EXPECT_EQ(got.column_ranges.size(), want.column_ranges.size()) << context;
  for (const auto& [col, range] : want.column_ranges) {
    ASSERT_TRUE(got.column_ranges.count(col)) << context;
    EXPECT_EQ(got.column_ranges.at(col).min_value, range.min_value)
        << context;
    EXPECT_EQ(got.column_ranges.at(col).max_value, range.max_value)
        << context;
  }
  ASSERT_EQ(got.groups.size(), want.groups.size()) << context;
  for (const auto& [key, agg] : want.groups) {
    ASSERT_TRUE(got.groups.count(key)) << context << " group " << key;
    EXPECT_EQ(got.groups.at(key).count, agg.count) << context;
    EXPECT_EQ(got.groups.at(key).sum, agg.sum) << context;
  }
}

TEST(StressTest, RandomConfigurationsMatchReference) {
  CsvSpec file_spec;
  file_spec.num_rows = kRows;
  file_spec.num_columns = kCols;
  file_spec.seed = 20140622;
  const std::string csv = TempPath("data.csv");
  ASSERT_TRUE(GenerateCsvFile(csv, file_spec).ok());
  const auto rows = MaterializeValues(file_spec);

  Random rng(99);
  constexpr LoadPolicy kPolicies[] = {
      LoadPolicy::kExternalTables, LoadPolicy::kFullLoad,
      LoadPolicy::kSpeculativeLoading, LoadPolicy::kInvisibleLoading,
      LoadPolicy::kBufferedLoading};

  for (int trial = 0; trial < 10; ++trial) {
    ScanRawOptions options;
    options.policy = kPolicies[rng.Uniform(5)];
    options.num_workers = rng.Uniform(5);            // 0..4
    options.cache_capacity_chunks = rng.Uniform(9);  // 0..8
    options.chunk_rows = 97 + rng.Uniform(1400);     // odd, non-power-of-2
    options.text_buffer_capacity = 1 + rng.Uniform(8);
    options.position_buffer_capacity = 1 + rng.Uniform(8);
    options.output_buffer_capacity = 1 + rng.Uniform(8);
    options.cache_positional_maps = rng.OneIn(2);
    options.collect_sketches = rng.OneIn(2);
    options.delay_admission_for_writes = rng.OneIn(3);
    if (rng.OneIn(3)) options.sort_column_before_load = rng.Uniform(kCols);
    options.invisible_chunks_per_query = 1 + rng.Uniform(4);

    ScanRawManager::Config config;
    config.db_path = TempPath("trial" + std::to_string(trial) + ".db");
    auto manager = ScanRawManager::Create(config);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE((*manager)
                    ->RegisterRawFile("t", csv, CsvSchema(file_spec), options)
                    .ok());

    const std::string base_context =
        "trial " + std::to_string(trial) + " policy " +
        std::string(LoadPolicyName(options.policy)) + " workers " +
        std::to_string(options.num_workers) + " chunk_rows " +
        std::to_string(options.chunk_rows);
    for (int q = 0; q < 4; ++q) {
      const QuerySpec spec = RandomQuery(&rng);
      auto result = (*manager)->Query("t", spec);
      ASSERT_TRUE(result.ok())
          << base_context << ": " << result.status().ToString();
      // Chunk skipping can legitimately reduce rows_scanned; compare
      // everything else, and rows_scanned only when no range predicate.
      QueryResult want = ReferenceExecute(rows, spec);
      const std::string context = base_context + " query " + std::to_string(q);
      EXPECT_EQ(result->rows_matched, want.rows_matched) << context;
      EXPECT_EQ(result->total_sum, want.total_sum) << context;
      if (!spec.predicate.range.has_value()) {
        EXPECT_EQ(result->rows_scanned, want.rows_scanned) << context;
      }
      for (const auto& [col, range] : want.column_ranges) {
        ASSERT_TRUE(result->column_ranges.count(col)) << context;
        EXPECT_EQ(result->column_ranges.at(col).min_value, range.min_value)
            << context;
        EXPECT_EQ(result->column_ranges.at(col).max_value, range.max_value)
            << context;
      }
      ASSERT_EQ(result->groups.size(), want.groups.size()) << context;
      for (const auto& [key, agg] : want.groups) {
        ASSERT_TRUE(result->groups.count(key)) << context;
        EXPECT_EQ(result->groups.at(key).count, agg.count) << context;
        EXPECT_EQ(result->groups.at(key).sum, agg.sum) << context;
      }
    }
  }
}

// A long alternating sequence on one operator: correctness must hold while
// the loaded fraction only grows and the same answer comes back every time.
TEST(StressTest, LongAlternatingSequenceOnOneOperator) {
  CsvSpec file_spec;
  file_spec.num_rows = kRows;
  file_spec.num_columns = kCols;
  file_spec.seed = 7;
  const std::string csv = TempPath("seq.csv");
  ASSERT_TRUE(GenerateCsvFile(csv, file_spec).ok());
  const auto rows = MaterializeValues(file_spec);

  ScanRawOptions options;
  options.policy = LoadPolicy::kSpeculativeLoading;
  options.num_workers = 3;
  options.chunk_rows = 333;
  options.cache_capacity_chunks = 5;
  ScanRawManager::Config config;
  config.db_path = TempPath("seq.db");
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE(
      (*manager)
          ->RegisterRawFile("t", csv, CsvSchema(file_spec), options)
          .ok());

  Random rng(5);
  double last_fraction = 0;
  for (int q = 0; q < 12; ++q) {
    const QuerySpec spec = RandomQuery(&rng);
    auto result = (*manager)->Query("t", spec);
    ASSERT_TRUE(result.ok()) << "query " << q;
    QueryResult want = ReferenceExecute(rows, spec);
    ExpectEqualResults(*result, want, "query " + std::to_string(q),
                       /*compare_scanned=*/!spec.predicate.range.has_value());
    ScanRaw* op = (*manager)->GetOperator("t");
    if (op != nullptr) op->WaitForWrites();
    auto meta = (*manager)->catalog()->GetTable("t");
    ASSERT_TRUE(meta.ok());
    EXPECT_GE(meta->LoadedFraction(), last_fraction) << "query " << q;
    last_fraction = meta->LoadedFraction();
  }
}

}  // namespace
}  // namespace scanraw
