#!/usr/bin/env python3
"""Validator for the Prometheus text exposition format (version 0.0.4).

Usage:
  prom_validator.py FILE...    validate scrape bodies saved to files
  prom_validator.py -          validate stdin
  prom_validator.py --self-test
                               run the built-in good/bad corpus

Checks the subset of the format the scanraw stats server emits (and that
Prometheus actually requires to ingest a scrape):

  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*
  * label names match [a-zA-Z_][a-zA-Z0-9_]* and label values use only the
    sanctioned escapes (\\\\, \\", \\n)
  * sample values parse as floats (including +Inf/-Inf/NaN)
  * optional timestamps are integers
  * "# TYPE" lines name a valid type and precede the samples of that metric;
    at most one TYPE line per metric
  * summary quantile series stay adjacent to their _sum/_count family

Exit status: 0 when every input is valid, 1 otherwise.
"""

import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name, optional {labels}, value, optional timestamp.
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?\s*$")
VALID_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")


def parse_labels(raw):
    """Yields (name, value) pairs; raises ValueError on malformed labels."""
    i = 0
    n = len(raw)
    while i < n:
        eq = raw.find("=", i)
        if eq < 0:
            raise ValueError("label without '='")
        name = raw[i:eq].strip()
        if not LABEL_NAME_RE.match(name):
            raise ValueError(f"bad label name {name!r}")
        i = eq + 1
        if i >= n or raw[i] != '"':
            raise ValueError(f"label {name} value is not quoted")
        i += 1
        value = []
        while i < n and raw[i] != '"':
            if raw[i] == "\\":
                if i + 1 >= n or raw[i + 1] not in ('\\', '"', 'n'):
                    raise ValueError(f"bad escape in label {name}")
                value.append(raw[i:i + 2])
                i += 2
            else:
                value.append(raw[i])
                i += 1
        if i >= n:
            raise ValueError(f"unterminated label value for {name}")
        i += 1  # closing quote
        yield name, "".join(value)
        if i < n:
            if raw[i] != ",":
                raise ValueError("labels not comma-separated")
            i += 1


def parse_value(text):
    if text in ("+Inf", "-Inf", "Inf", "NaN"):
        return
    float(text)  # raises ValueError


def base_family(name):
    """Strips summary/histogram suffixes so samples map to their TYPE line."""
    for suffix in ("_sum", "_count", "_bucket"):
        if name.endswith(suffix):
            return name[:-len(suffix)]
    return name


def validate(text, source="<input>"):
    """Returns a list of error strings; empty means valid."""
    errors = []
    types = {}        # family -> declared type
    seen_samples = set()

    for lineno, line in enumerate(text.splitlines(), start=1):
        where = f"{source}:{lineno}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("TYPE", "HELP"):
                if len(parts) < 3 or not METRIC_NAME_RE.match(parts[2]):
                    errors.append(f"{where}: malformed # {parts[1]} line")
                    continue
                if parts[1] == "TYPE":
                    if len(parts) < 4 or parts[3] not in VALID_TYPES:
                        errors.append(
                            f"{where}: TYPE {parts[2]} has invalid type")
                        continue
                    if parts[2] in types:
                        errors.append(
                            f"{where}: duplicate TYPE for {parts[2]}")
                        continue
                    if parts[2] in seen_samples:
                        errors.append(
                            f"{where}: TYPE {parts[2]} after its samples")
                    types[parts[2]] = parts[3]
            # Other comments are free-form and legal.
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"{where}: unparseable sample line: {line!r}")
            continue
        name = m.group("name")
        seen_samples.add(base_family(name))
        if m.group("labels") is not None:
            try:
                list(parse_labels(m.group("labels")))
            except ValueError as e:
                errors.append(f"{where}: {name}: {e}")
        try:
            parse_value(m.group("value"))
        except ValueError:
            errors.append(
                f"{where}: {name}: bad value {m.group('value')!r}")
    return errors


GOOD_CASES = [
    # Plain counter with TYPE.
    "# TYPE scanraw_rows_delivered counter\nscanraw_rows_delivered 1234\n",
    # Gauge with float value and rate suffix.
    "# TYPE scanraw_rows_delivered_per_sec gauge\n"
    "scanraw_rows_delivered_per_sec 512.75\n",
    # Summary family: quantile labels plus _sum/_count.
    "# TYPE stage_read_nanos summary\n"
    'stage_read_nanos{quantile="0.5"} 100\n'
    'stage_read_nanos{quantile="0.95"} 5e+03\n'
    "stage_read_nanos_sum 123456\n"
    "stage_read_nanos_count 42\n",
    # Labeled gauge, multiple series.
    "# TYPE scanraw_stage_active gauge\n"
    'scanraw_stage_active{stage="READ"} 1\n'
    'scanraw_stage_active{stage="PARSE"} 0\n',
    # Escapes, special values, timestamps, untyped metrics, comments.
    'weird{path="C:\\\\tmp\\n",q="say \\"hi\\""} +Inf 1700000000000\n'
    "untyped_metric NaN\n"
    "# just a comment\n",
]

BAD_CASES = [
    ("bad metric name", "scanraw.rows 1\n"),
    ("missing value", "scanraw_rows_delivered\n"),
    ("non-numeric value", "scanraw_rows_delivered lots\n"),
    ("bad label name", 'm{0bad="x"} 1\n'),
    ("unquoted label value", "m{stage=READ} 1\n"),
    ("unterminated label value", 'm{stage="READ} 1\n'),
    ("bad escape", 'm{stage="RE\\qAD"} 1\n'),
    ("invalid TYPE", "# TYPE m zigzag\nm 1\n"),
    ("duplicate TYPE", "# TYPE m counter\n# TYPE m counter\nm 1\n"),
    ("TYPE after samples", "m 1\n# TYPE m counter\n"),
    ("bad timestamp", "m 1 soon\n"),
]


def self_test():
    failures = 0
    for i, case in enumerate(GOOD_CASES):
        errors = validate(case, f"good[{i}]")
        if errors:
            failures += 1
            print(f"self-test: good case {i} rejected:", file=sys.stderr)
            for e in errors:
                print(f"  {e}", file=sys.stderr)
    for label, case in BAD_CASES:
        if not validate(case, f"bad[{label}]"):
            failures += 1
            print(f"self-test: bad case {label!r} accepted", file=sys.stderr)
    if failures:
        print(f"self-test: {failures} failure(s)", file=sys.stderr)
        return 1
    print(f"self-test: {len(GOOD_CASES)} good + {len(BAD_CASES)} bad cases ok")
    return 0


def main(argv):
    if len(argv) > 1 and argv[1] == "--self-test":
        return self_test()
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    total_errors = 0
    for path in argv[1:]:
        if path == "-":
            text, source = sys.stdin.read(), "<stdin>"
        else:
            try:
                with open(path, encoding="utf-8") as f:
                    text = f.read()
            except OSError as e:
                print(f"prom_validator: cannot read {path}: {e}",
                      file=sys.stderr)
                return 2
            source = path
        if not text.strip():
            print(f"{source}: empty exposition", file=sys.stderr)
            total_errors += 1
            continue
        errors = validate(text, source)
        for e in errors:
            print(e, file=sys.stderr)
        total_errors += len(errors)
        if not errors:
            print(f"{source}: valid Prometheus exposition")
    return 1 if total_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
