#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "io/fault_injection.h"
#include "io/file.h"
#include "obs/log.h"

namespace scanraw {
namespace obs {
namespace {

std::string TestPath(const std::string& suffix) {
  std::string name = testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name();
  std::string path = testing::TempDir() + "/log_" + name + "_" + suffix;
  // The sink appends; a leftover file from a previous run must not leak
  // its lines into this one.
  std::remove(path.c_str());
  return path;
}

std::vector<std::string> ReadLines(const std::string& path) {
  auto content = ReadFileToString(path);
  EXPECT_TRUE(content.ok()) << content.status().ToString();
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < content->size()) {
    size_t end = content->find('\n', start);
    if (end == std::string::npos) end = content->size();
    if (end > start) lines.push_back(content->substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

TEST(LogLevelTest, ParseAcceptsAliasesAnyCase) {
  LogLevel level;
  ASSERT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  ASSERT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  ASSERT_TRUE(ParseLogLevel("Warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  ASSERT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  ASSERT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  ASSERT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("loud", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
}

TEST(LogLevelTest, NamesRoundTrip) {
  EXPECT_EQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_EQ(LogLevelName(LogLevel::kWarn), "WARN");
  EXPECT_EQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST(LoggerTest, ThresholdFiltersLowerLevels) {
  Logger logger;
  logger.SetStderrEnabled(false);
  logger.SetThreshold(LogLevel::kWarn);
  EXPECT_FALSE(logger.ShouldLog(LogLevel::kDebug));
  EXPECT_FALSE(logger.ShouldLog(LogLevel::kInfo));
  EXPECT_TRUE(logger.ShouldLog(LogLevel::kWarn));
  EXPECT_TRUE(logger.ShouldLog(LogLevel::kError));
  logger.SetThreshold(LogLevel::kOff);
  EXPECT_FALSE(logger.ShouldLog(LogLevel::kError));
}

TEST(LoggerTest, JsonlSinkRecordsStructuredLines) {
  const std::string path = TestPath("sink.jsonl");
  Logger logger;
  logger.SetStderrEnabled(false);
  logger.SetThreshold(LogLevel::kDebug);
  ASSERT_TRUE(logger.OpenJsonlSink(path).ok());
  LogSite site{"unit_test.cc", 42};
  logger.Log(&site, LogLevel::kInfo, "rows=%d table=%s", 7, "t");
  logger.Log(&site, LogLevel::kError, "query \"q1\" failed");
  logger.CloseJsonlSink();
  EXPECT_EQ(logger.lines_emitted(), 2u);

  auto lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  // Structured JSONL: level, site, and the formatted (escaped) message.
  EXPECT_NE(lines[0].find("\"level\":\"INFO\""), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("unit_test.cc"), std::string::npos);
  EXPECT_NE(lines[0].find("rows=7 table=t"), std::string::npos);
  EXPECT_NE(lines[1].find("\"level\":\"ERROR\""), std::string::npos);
  EXPECT_NE(lines[1].find("\\\"q1\\\""), std::string::npos) << lines[1];
}

TEST(LoggerTest, SinkWritesGoThroughFaultInjection) {
  const std::string path = TestPath("faulty.jsonl");
  FaultPlan plan;
  plan.append_error_rate = 1.0;
  ScopedFaultInjection fault(plan);
  Logger logger;
  logger.SetStderrEnabled(false);
  ASSERT_TRUE(logger.OpenJsonlSink(path).ok());
  LogSite site{"unit_test.cc", 1};
  // The append fails inside the sink; logging itself must not crash or
  // propagate (a diagnostics channel never takes down the pipeline).
  logger.Log(&site, LogLevel::kWarn, "into the void");
  logger.CloseJsonlSink();
  EXPECT_GT(fault.injector()->counters().append_errors.load(), 0u);
}

TEST(LoggerTest, PerSiteTokenBucketSuppressesBursts) {
  Logger logger;
  logger.SetStderrEnabled(false);
  logger.SetThreshold(LogLevel::kDebug);
  logger.SetRateLimit(/*per_second=*/1.0, /*burst=*/3.0);
  LogSite chatty{"chatty.cc", 10};
  for (int i = 0; i < 50; ++i) {
    logger.Log(&chatty, LogLevel::kInfo, "spam %d", i);
  }
  // The burst passes; the rest is dropped (a token or two may refill while
  // the loop runs, so bound rather than pin the counts).
  EXPECT_GE(logger.lines_emitted(), 3u);
  EXPECT_LE(logger.lines_emitted(), 6u);
  EXPECT_GE(logger.lines_suppressed(), 44u);
  EXPECT_GT(chatty.suppressed.load(), 0u);
  // A different call site has its own bucket.
  LogSite other{"other.cc", 20};
  uint64_t before = logger.lines_emitted();
  logger.Log(&other, LogLevel::kInfo, "first from elsewhere");
  EXPECT_EQ(logger.lines_emitted(), before + 1);
}

TEST(LoggerTest, ErrorsBypassTheBucket) {
  Logger logger;
  logger.SetStderrEnabled(false);
  logger.SetRateLimit(1.0, 1.0);
  LogSite site{"errors.cc", 5};
  for (int i = 0; i < 20; ++i) {
    logger.Log(&site, LogLevel::kError, "must not drop %d", i);
  }
  EXPECT_EQ(logger.lines_emitted(), 20u);
  EXPECT_EQ(logger.lines_suppressed(), 0u);
}

TEST(LoggerTest, DisabledRateLimitPassesEverything) {
  Logger logger;
  logger.SetStderrEnabled(false);
  logger.SetRateLimit(0.0, 0.0);  // <= 0 disables limiting
  LogSite site{"nolimit.cc", 9};
  for (int i = 0; i < 100; ++i) {
    logger.Log(&site, LogLevel::kInfo, "line %d", i);
  }
  EXPECT_EQ(logger.lines_emitted(), 100u);
  EXPECT_EQ(logger.lines_suppressed(), 0u);
}

TEST(LoggerTest, GlobalIsAProcessSingleton) {
  Logger* a = Logger::Global();
  Logger* b = Logger::Global();
  EXPECT_EQ(a, b);
  ASSERT_NE(a, nullptr);
}

TEST(LoggerTest, MacrosCompileAndRespectThreshold) {
  Logger* global = Logger::Global();
  LogLevel saved = global->threshold();
  global->SetStderrEnabled(false);
  global->SetThreshold(LogLevel::kOff);
  uint64_t before = global->lines_emitted();
  LOG_DEBUG("d %d", 1);
  LOG_INFO("i %s", "x");
  LOG_WARN("w");
  LOG_ERROR("e");
  EXPECT_EQ(global->lines_emitted(), before);  // all below kOff
  global->SetThreshold(saved);
  global->SetStderrEnabled(true);
}

}  // namespace
}  // namespace obs
}  // namespace scanraw
