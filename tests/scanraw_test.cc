#include <gtest/gtest.h>

#include "datagen/csv_generator.h"
#include "io/file.h"
#include "scanraw/scan_raw.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// Fixture generating a small CSV file and a fresh manager per test.
class ScanRawTest : public testing::Test {
 protected:
  static constexpr uint64_t kRows = 4000;
  static constexpr size_t kCols = 8;
  static constexpr uint64_t kChunkRows = 500;  // 8 chunks

  void SetUp() override {
    std::string name = testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    for (char& c : name) {
      if (c == '/') c = '_';  // parameterized test names contain '/'
    }
    csv_path_ = TempPath("scanraw_" + name + ".csv");
    CsvSpec spec;
    spec.num_rows = kRows;
    spec.num_columns = kCols;
    spec.seed = 42;
    auto info = GenerateCsvFile(csv_path_, spec);
    ASSERT_TRUE(info.ok());
    info_ = *info;
    schema_ = CsvSchema(spec);
  }

  std::unique_ptr<ScanRawManager> MakeManager(const ScanRawOptions& options) {
    ScanRawManager::Config config;
    config.db_path = csv_path_ + ".db";
    auto manager = ScanRawManager::Create(config);
    EXPECT_TRUE(manager.ok());
    EXPECT_TRUE((*manager)->RegisterRawFile("t", csv_path_, schema_, options)
                    .ok());
    return std::move(*manager);
  }

  static ScanRawOptions BaseOptions(LoadPolicy policy) {
    ScanRawOptions options;
    options.policy = policy;
    options.num_workers = 2;
    options.chunk_rows = kChunkRows;
    options.cache_capacity_chunks = 4;  // half the chunks fit
    return options;
  }

  QuerySpec SumAllQuery() const {
    QuerySpec spec;
    for (size_t c = 0; c < kCols; ++c) spec.sum_columns.push_back(c);
    return spec;
  }

  std::string csv_path_;
  CsvFileInfo info_;
  Schema schema_;
};

TEST_F(ScanRawTest, ExternalTablesCorrectAcrossQueries) {
  auto manager = MakeManager(BaseOptions(LoadPolicy::kExternalTables));
  for (int q = 0; q < 3; ++q) {
    auto result = manager->Query("t", SumAllQuery());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->total_sum, info_.total_sum);
    EXPECT_EQ(result->rows_scanned, kRows);
  }
  // External tables never load anything.
  EXPECT_DOUBLE_EQ(manager->catalog()->GetTable("t")->LoadedFraction(), 0.0);
  EXPECT_FALSE(manager->IsRetired("t"));
}

TEST_F(ScanRawTest, FullLoadLoadsEverythingFirstQuery) {
  auto manager = MakeManager(BaseOptions(LoadPolicy::kFullLoad));
  auto result = manager->Query("t", SumAllQuery());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_sum, info_.total_sum);
  auto meta = manager->catalog()->GetTable("t");
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(meta->FullyLoaded());
  EXPECT_EQ(meta->chunks.size(), kRows / kChunkRows);

  // Second query: answered from the database (operator retired).
  auto again = manager->Query("t", SumAllQuery());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->total_sum, info_.total_sum);
  EXPECT_TRUE(manager->IsRetired("t"));
}

TEST_F(ScanRawTest, SpeculativeConvergesToFullLoad) {
  auto manager = MakeManager(BaseOptions(LoadPolicy::kSpeculativeLoading));
  double last_fraction = 0.0;
  for (int q = 0; q < 8; ++q) {
    auto result = manager->Query("t", SumAllQuery());
    ASSERT_TRUE(result.ok()) << "query " << q << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->total_sum, info_.total_sum) << "query " << q;
    ScanRaw* op = manager->GetOperator("t");
    if (op != nullptr) op->WaitForWrites();
    const double fraction = manager->catalog()->GetTable("t")->LoadedFraction();
    // Loaded fraction is monotone non-decreasing across queries.
    EXPECT_GE(fraction, last_fraction) << "query " << q;
    // The safeguard guarantees progress on every query until fully loaded.
    if (last_fraction < 1.0) {
      EXPECT_GT(fraction, last_fraction) << "query " << q;
    }
    last_fraction = fraction;
    if (fraction >= 1.0) break;
  }
  EXPECT_DOUBLE_EQ(last_fraction, 1.0);
  // All queries after full load still produce correct results.
  auto result = manager->Query("t", SumAllQuery());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_sum, info_.total_sum);
  EXPECT_TRUE(manager->IsRetired("t"));
}

TEST_F(ScanRawTest, InvisibleLoadingLoadsFixedAmountPerQuery) {
  auto options = BaseOptions(LoadPolicy::kInvisibleLoading);
  options.invisible_chunks_per_query = 2;
  auto manager = MakeManager(options);
  const size_t total_chunks = kRows / kChunkRows;
  size_t last_loaded = 0;
  for (size_t q = 1; q <= total_chunks / 2; ++q) {
    auto result = manager->Query("t", SumAllQuery());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->total_sum, info_.total_sum);
    auto meta = manager->catalog()->GetTable("t");
    size_t loaded = 0;
    for (const auto& c : meta->chunks) {
      if (c.loaded_columns.size() == kCols) ++loaded;
    }
    EXPECT_EQ(loaded - last_loaded, 2u) << "query " << q;
    last_loaded = loaded;
  }
  EXPECT_EQ(last_loaded, total_chunks);
}

TEST_F(ScanRawTest, BufferedLoadingWritesOnEviction) {
  auto options = BaseOptions(LoadPolicy::kBufferedLoading);
  options.cache_capacity_chunks = 3;  // 8 chunks -> 5 evictions on query 1
  auto manager = MakeManager(options);
  auto result = manager->Query("t", SumAllQuery());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_sum, info_.total_sum);
  ScanRaw* op = manager->GetOperator("t");
  ASSERT_NE(op, nullptr);
  op->WaitForWrites();
  auto meta = manager->catalog()->GetTable("t");
  size_t loaded = 0;
  for (const auto& c : meta->chunks) {
    if (c.loaded_columns.size() == kCols) ++loaded;
  }
  // Everything except what still fits in the cache was evicted and loaded.
  EXPECT_EQ(loaded, kRows / kChunkRows - options.cache_capacity_chunks);
}

TEST_F(ScanRawTest, SafeguardDisabledMayStall) {
  auto options = BaseOptions(LoadPolicy::kSpeculativeLoading);
  options.safeguard_enabled = false;
  // Huge buffers: READ never blocks, so no speculative trigger fires and,
  // without the safeguard, nothing is ever loaded.
  options.text_buffer_capacity = 64;
  options.position_buffer_capacity = 64;
  options.output_buffer_capacity = 64;
  auto manager = MakeManager(options);
  for (int q = 0; q < 3; ++q) {
    auto result = manager->Query("t", SumAllQuery());
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->total_sum, info_.total_sum);
  }
  ScanRaw* op = manager->GetOperator("t");
  ASSERT_NE(op, nullptr);
  op->WaitForWrites();
  EXPECT_DOUBLE_EQ(manager->catalog()->GetTable("t")->LoadedFraction(), 0.0);
}

TEST_F(ScanRawTest, ProjectionQueriesLoadOnlyProjectedColumns) {
  auto manager = MakeManager(BaseOptions(LoadPolicy::kFullLoad));
  QuerySpec spec;
  spec.sum_columns = {1, 3};
  auto result = manager->Query("t", spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_sum,
            info_.column_sums[1] + info_.column_sums[3]);
  auto meta = manager->catalog()->GetTable("t");
  for (const auto& c : meta->chunks) {
    EXPECT_EQ(c.loaded_columns, (std::set<size_t>{1, 3}));
  }
  EXPECT_FALSE(meta->FullyLoaded());

  // A query over different columns goes back to the raw file and loads the
  // extra columns as new segments.
  QuerySpec spec2;
  spec2.sum_columns = {0, 1, 2, 3, 4, 5, 6, 7};
  auto result2 = manager->Query("t", spec2);
  ASSERT_TRUE(result2.ok()) << result2.status().ToString();
  EXPECT_EQ(result2->total_sum, info_.total_sum);
  meta = manager->catalog()->GetTable("t");
  EXPECT_TRUE(meta->FullyLoaded());
}

TEST_F(ScanRawTest, SubsetQueryServedFromDbSegments) {
  auto manager = MakeManager(BaseOptions(LoadPolicy::kFullLoad));
  // Load columns {1,3} first.
  QuerySpec wide;
  wide.sum_columns = {1, 3};
  ASSERT_TRUE(manager->Query("t", wide).ok());
  // Query on {1} alone: every chunk has column 1 loaded -> database reads.
  QuerySpec narrow;
  narrow.sum_columns = {1};
  auto result = manager->Query("t", narrow);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_sum, info_.column_sums[1]);
  ScanRaw* op = manager->GetOperator("t");
  ASSERT_NE(op, nullptr);
  // Nothing new read from raw during the second query: chunks came from the
  // cache or the database.
  EXPECT_EQ(op->profile().chunks_from_raw.load(), kRows / kChunkRows);
}

TEST_F(ScanRawTest, RangePredicateWithChunkSkipping) {
  auto manager = MakeManager(BaseOptions(LoadPolicy::kFullLoad));
  QuerySpec spec = SumAllQuery();
  ASSERT_TRUE(manager->Query("t", spec).ok());  // loads + collects stats

  // A selective predicate: re-compute expected result by scanning the file.
  QuerySpec filtered = SumAllQuery();
  filtered.predicate.range = RangePredicate{0, 0, 1000000};
  auto result = manager->Query("t", filtered);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result->rows_matched, kRows);

  // Impossible predicate: statistics skip every chunk.
  QuerySpec impossible = SumAllQuery();
  impossible.predicate.range = RangePredicate{0, 1ll << 40, 1ll << 41};
  auto none = manager->Query("t", impossible);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->rows_matched, 0u);
  EXPECT_EQ(none->rows_scanned, 0u);  // no chunk even read
}

TEST_F(ScanRawTest, SequentialModeWorks) {
  auto options = BaseOptions(LoadPolicy::kSpeculativeLoading);
  options.num_workers = 0;  // fully sequential conversion
  auto manager = MakeManager(options);
  auto result = manager->Query("t", SumAllQuery());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_sum, info_.total_sum);
}

TEST_F(ScanRawTest, CacheHitsOnSecondQuery) {
  auto options = BaseOptions(LoadPolicy::kExternalTables);
  options.cache_capacity_chunks = 16;  // whole file fits
  auto manager = MakeManager(options);
  ASSERT_TRUE(manager->Query("t", SumAllQuery()).ok());
  ScanRaw* op = manager->GetOperator("t");
  ASSERT_NE(op, nullptr);
  const uint64_t raw_after_first = op->profile().chunks_from_raw.load();
  EXPECT_EQ(raw_after_first, kRows / kChunkRows);
  ASSERT_TRUE(manager->Query("t", SumAllQuery()).ok());
  // Second query fully served from cache: no additional raw reads.
  EXPECT_EQ(op->profile().chunks_from_raw.load(), raw_after_first);
  EXPECT_EQ(op->profile().chunks_from_cache.load(), kRows / kChunkRows);
}

TEST_F(ScanRawTest, AbandonedQueryRunShutsDownCleanly) {
  auto options = BaseOptions(LoadPolicy::kSpeculativeLoading);
  options.output_buffer_capacity = 1;  // guarantee a stuffed pipeline
  ScanRawManager::Config config;
  config.db_path = csv_path_ + ".db";
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE(
      (*manager)->RegisterRawFile("t", csv_path_, schema_, options).ok());
  ScanRaw op("t", (*manager)->catalog(), (*manager)->storage(),
             (*manager)->arbiter(), nullptr, options);
  auto run = op.StartQuery({0, 1});
  ASSERT_TRUE(run.ok());
  // Consume two chunks, then abandon mid-stream.
  ASSERT_TRUE((*run)->Next().ok());
  ASSERT_TRUE((*run)->Next().ok());
  run->reset();  // destructor must not hang
}

TEST_F(ScanRawTest, MissingRawFileReportsError) {
  ScanRawManager::Config config;
  config.db_path = TempPath("missing.db");
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ScanRawOptions options = BaseOptions(LoadPolicy::kExternalTables);
  ASSERT_TRUE((*manager)
                  ->RegisterRawFile("ghost", TempPath("no_such_file.csv"),
                                    schema_, options)
                  .ok());
  auto result = (*manager)->Query("ghost", SumAllQuery());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError());
}

TEST_F(ScanRawTest, MalformedRowReportsCorruption) {
  const std::string bad_path = TempPath("bad.csv");
  ASSERT_TRUE(WriteStringToFile(
                  bad_path, "1,2,3,4,5,6,7,8\n1,2,oops,4,5,6,7,8\n")
                  .ok());
  ScanRawManager::Config config;
  config.db_path = bad_path + ".db";
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)
                  ->RegisterRawFile("bad", bad_path, schema_,
                                    BaseOptions(LoadPolicy::kExternalTables))
                  .ok());
  auto result = (*manager)->Query("bad", SumAllQuery());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST_F(ScanRawTest, WrongColumnCountReportsCorruption) {
  const std::string bad_path = TempPath("short_row.csv");
  ASSERT_TRUE(WriteStringToFile(bad_path, "1,2,3,4,5,6,7,8\n1,2,3\n").ok());
  ScanRawManager::Config config;
  config.db_path = bad_path + ".db";
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)
                  ->RegisterRawFile("bad", bad_path, schema_,
                                    BaseOptions(LoadPolicy::kExternalTables))
                  .ok());
  auto result = (*manager)->Query("bad", SumAllQuery());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST_F(ScanRawTest, OutOfRangeColumnRejected) {
  auto manager = MakeManager(BaseOptions(LoadPolicy::kExternalTables));
  QuerySpec spec;
  spec.sum_columns = {99};
  auto result = manager->Query("t", spec);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

// Policy sweep: every policy produces identical, correct results across a
// 4-query sequence, and the catalog never double-counts a chunk.
class PolicySweepTest
    : public ScanRawTest,
      public testing::WithParamInterface<LoadPolicy> {};

TEST_P(PolicySweepTest, CorrectAndExactlyOnce) {
  auto manager = MakeManager(BaseOptions(GetParam()));
  for (int q = 0; q < 4; ++q) {
    auto result = manager->Query("t", SumAllQuery());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->total_sum, info_.total_sum) << "query " << q;
    EXPECT_EQ(result->rows_scanned, kRows) << "query " << q;
  }
  // Invariants on the catalog: each chunk's loaded column set never exceeds
  // the schema and rows per chunk total the file.
  auto meta = manager->catalog()->GetTable("t");
  ASSERT_TRUE(meta.ok());
  uint64_t total_rows = 0;
  for (const auto& c : meta->chunks) {
    EXPECT_LE(c.loaded_columns.size(), kCols);
    total_rows += c.num_rows;
  }
  EXPECT_EQ(total_rows, kRows);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweepTest,
    testing::Values(LoadPolicy::kExternalTables, LoadPolicy::kFullLoad,
                    LoadPolicy::kSpeculativeLoading,
                    LoadPolicy::kInvisibleLoading,
                    LoadPolicy::kBufferedLoading),
    [](const testing::TestParamInfo<LoadPolicy>& info) {
      std::string name(LoadPolicyName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Worker sweep: results identical from sequential to wide pools.
class WorkerSweepTest : public ScanRawTest,
                        public testing::WithParamInterface<size_t> {};

TEST_P(WorkerSweepTest, SumMatchesGroundTruth) {
  auto options = BaseOptions(LoadPolicy::kSpeculativeLoading);
  options.num_workers = GetParam();
  auto manager = MakeManager(options);
  auto result = manager->Query("t", SumAllQuery());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_sum, info_.total_sum);
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerSweepTest,
                         testing::Values(0, 1, 2, 4, 8));

TEST(DatagenTest, GeneratedFileMatchesSpec) {
  const std::string path = testing::TempDir() + "/datagen.csv";
  CsvSpec spec;
  spec.num_rows = 100;
  spec.num_columns = 3;
  spec.seed = 7;
  auto info = GenerateCsvFile(path, spec);
  ASSERT_TRUE(info.ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  // 100 lines.
  size_t lines = 0;
  for (char c : *contents) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 100u);
  EXPECT_EQ(info->file_bytes, contents->size());
  // Ground truth sums match a manual re-parse.
  uint64_t sum = 0;
  uint64_t field = 0;
  for (char c : *contents) {
    if (c == ',' || c == '\n') {
      sum += field;
      field = 0;
    } else {
      field = field * 10 + static_cast<uint64_t>(c - '0');
    }
  }
  EXPECT_EQ(sum, info->total_sum);
  uint64_t col_total = 0;
  for (uint64_t s : info->column_sums) col_total += s;
  EXPECT_EQ(col_total, info->total_sum);
}

TEST(DatagenTest, DeterministicForSeed) {
  const std::string p1 = testing::TempDir() + "/datagen_a.csv";
  const std::string p2 = testing::TempDir() + "/datagen_b.csv";
  CsvSpec spec;
  spec.num_rows = 50;
  spec.num_columns = 4;
  spec.seed = 99;
  ASSERT_TRUE(GenerateCsvFile(p1, spec).ok());
  ASSERT_TRUE(GenerateCsvFile(p2, spec).ok());
  EXPECT_EQ(*ReadFileToString(p1), *ReadFileToString(p2));
}

TEST(DatagenTest, InvalidSpecsRejected) {
  CsvSpec spec;
  spec.num_rows = 10;
  spec.num_columns = 0;
  EXPECT_TRUE(GenerateCsvFile(testing::TempDir() + "/x.csv", spec)
                  .status()
                  .IsInvalidArgument());
  spec.num_columns = 2;
  spec.max_value = 0;
  EXPECT_TRUE(GenerateCsvFile(testing::TempDir() + "/x.csv", spec)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace scanraw
