#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "db/sketches.h"

namespace scanraw {
namespace {

TEST(KmvSketchTest, ExactBelowK) {
  KmvSketch sketch(64);
  for (int i = 0; i < 50; ++i) sketch.AddInt(i);
  EXPECT_TRUE(sketch.IsExact());
  EXPECT_DOUBLE_EQ(sketch.EstimateDistinct(), 50.0);
}

TEST(KmvSketchTest, DuplicatesDoNotInflate) {
  KmvSketch sketch(64);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 30; ++i) sketch.AddInt(i);
  }
  EXPECT_DOUBLE_EQ(sketch.EstimateDistinct(), 30.0);
}

TEST(KmvSketchTest, EstimatesLargeCardinality) {
  KmvSketch sketch(256);
  const int n = 100000;
  for (int i = 0; i < n; ++i) sketch.AddInt(i);
  EXPECT_FALSE(sketch.IsExact());
  const double estimate = sketch.EstimateDistinct();
  EXPECT_NEAR(estimate, n, 0.15 * n);  // KMV error ~1/sqrt(k) ~ 6%
}

TEST(KmvSketchTest, StringsAndReScanIdempotent) {
  KmvSketch a(128), b(128);
  std::vector<std::string> values;
  for (int i = 0; i < 500; ++i) values.push_back("val" + std::to_string(i));
  for (const auto& v : values) a.AddString(v);
  // b sees the same values three times over.
  for (int round = 0; round < 3; ++round) {
    for (const auto& v : values) b.AddString(v);
  }
  EXPECT_DOUBLE_EQ(a.EstimateDistinct(), b.EstimateDistinct());
}

TEST(KmvSketchTest, MergeEqualsUnion) {
  KmvSketch a(128), b(128), all(128);
  for (int i = 0; i < 1000; ++i) {
    if (i % 2 == 0) {
      a.AddInt(i);
    } else {
      b.AddInt(i);
    }
    all.AddInt(i);
  }
  a.Merge(b);
  EXPECT_NEAR(a.EstimateDistinct(), all.EstimateDistinct(), 1e-9);
}

TEST(ReservoirSampleTest, KeepsEverythingBelowCapacity) {
  ReservoirSample sample(16);
  for (int i = 0; i < 10; ++i) sample.Add(i);
  EXPECT_EQ(sample.samples().size(), 10u);
  EXPECT_EQ(sample.values_seen(), 10u);
}

TEST(ReservoirSampleTest, BoundedAndUniformish) {
  ReservoirSample sample(100, /*seed=*/7);
  const int n = 100000;
  for (int i = 0; i < n; ++i) sample.Add(i);
  EXPECT_EQ(sample.samples().size(), 100u);
  EXPECT_EQ(sample.values_seen(), static_cast<uint64_t>(n));
  // A uniform sample's mean should be near n/2.
  double mean = 0;
  for (int64_t v : sample.samples()) mean += static_cast<double>(v);
  mean /= 100.0;
  EXPECT_NEAR(mean, n / 2.0, n * 0.15);
  // All sampled values are actual inputs.
  for (int64_t v : sample.samples()) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, n);
  }
}

TEST(ReservoirSampleTest, DeterministicForSeed) {
  ReservoirSample a(10, 3), b(10, 3);
  for (int i = 0; i < 1000; ++i) {
    a.Add(i);
    b.Add(i);
  }
  EXPECT_EQ(a.samples(), b.samples());
}

BinaryChunk MakeChunk(uint64_t index, size_t rows, uint32_t modulus) {
  BinaryChunk chunk(index);
  ColumnVector num(FieldType::kUint32), str(FieldType::kString);
  for (size_t r = 0; r < rows; ++r) {
    num.AppendUint32(static_cast<uint32_t>(r % modulus));
    str.AppendString("s" + std::to_string(r % modulus));
  }
  EXPECT_TRUE(chunk.AddColumn(0, std::move(num)).ok());
  EXPECT_TRUE(chunk.AddColumn(1, std::move(str)).ok());
  return chunk;
}

TEST(TableSketchesTest, PerColumnDistinct) {
  TableSketches sketches(256, 32);
  sketches.AddChunk(MakeChunk(0, 1000, 10));
  sketches.AddChunk(MakeChunk(1, 1000, 10));
  EXPECT_EQ(sketches.chunks_added(), 2u);
  EXPECT_DOUBLE_EQ(sketches.EstimateDistinct(0), 10.0);
  EXPECT_DOUBLE_EQ(sketches.EstimateDistinct(1), 10.0);  // strings too
  EXPECT_DOUBLE_EQ(sketches.EstimateDistinct(99), 0.0);  // unseen column
  // Numeric sample exists; string columns only feed the distinct sketch.
  EXPECT_FALSE(sketches.Sample(0).empty());
  EXPECT_TRUE(sketches.Sample(1).empty());
}

}  // namespace
}  // namespace scanraw
