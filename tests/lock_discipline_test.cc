// Death tests for the runtime lock-discipline sentinel (SCANRAW_LOCK_DEBUG,
// common/lock_debug.h). This TU is compiled with SCANRAW_LOCK_DEBUG=1
// regardless of build type (see tests/CMakeLists.txt), so the Mutex /
// MutexLock / CondVar hooks in thread_annotations.h are live here even when
// the linked libraries were built without them — the wrappers keep an
// identical layout in both modes, and the sentinel implementation in
// scanraw_common is always compiled.
//
// The blocking-I/O tests work end to end because io/file.cc calls
// lockdebug::AssertSafeToBlock unconditionally: this TU's hooks populate
// the per-thread held stack, and the library-side check reads it.

#include <chrono>
#include <string>
#include <thread>

#include "common/lock_debug.h"
#include "common/thread_annotations.h"
#include "gtest/gtest.h"
#include "io/file.h"

namespace scanraw {
namespace {

#if !defined(SCANRAW_LOCK_DEBUG)
#error "lock_discipline_test must be compiled with SCANRAW_LOCK_DEBUG"
#endif

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

TEST(LockDisciplineTest, CleanNestedAcquisitionPasses) {
  Mutex outer(LockRank::kScanRawManager, "test.outer");
  Mutex inner(LockRank::kChunkCache, "test.inner");
  EXPECT_EQ(lockdebug::HeldCount(), 0u);
  {
    MutexLock lock_outer(outer);
    EXPECT_EQ(lockdebug::HeldCount(), 1u);
    {
      MutexLock lock_inner(inner);  // 1000 -> 370: strictly decreasing
      EXPECT_EQ(lockdebug::HeldCount(), 2u);
    }
    EXPECT_EQ(lockdebug::HeldCount(), 1u);
  }
  EXPECT_EQ(lockdebug::HeldCount(), 0u);
}

TEST(LockDisciplineDeathTest, RankInversionAborts) {
  Mutex low(LockRank::kMetrics, "test.low");
  Mutex high(LockRank::kWatchdog, "test.high");
  EXPECT_DEATH(
      {
        MutexLock lock_low(low);
        MutexLock lock_high(high);  // 120 held, acquiring 850: inversion
      },
      "rank order violation");
}

TEST(LockDisciplineDeathTest, EqualRankAborts) {
  Mutex a(LockRank::kCatalog, "test.a");
  Mutex b(LockRank::kCatalog, "test.b");
  EXPECT_DEATH(
      {
        MutexLock lock_a(a);
        MutexLock lock_b(b);  // equal ranks: still a violation
      },
      "rank order violation");
}

TEST(LockDisciplineDeathTest, AbbaCycleCaught) {
  // The classic ABBA pair: thread 1 takes A then B, thread 2 takes B then
  // A. Under declared ranks (A=420 outranks B=370) thread 1's order is
  // legal and thread 2's B-then-A is an upward acquisition — the sentinel
  // aborts thread 2 deterministically on its second acquire, on EVERY
  // schedule, without needing the two threads to actually interleave into
  // the deadlock.
  Mutex a(LockRank::kScanInflight, "test.abba.a");
  Mutex b(LockRank::kChunkCache, "test.abba.b");
  {
    MutexLock lock_a(a);  // thread 1's legal order
    MutexLock lock_b(b);
  }
  EXPECT_DEATH(
      {
        MutexLock lock_b(b);
        MutexLock lock_a(a);  // thread 2's side of the ABBA
      },
      "rank order violation");
}

TEST(LockDisciplineDeathTest, ViolationReportNamesBothLocks) {
  // gtest's fallback regex engine has no multi-line classes, so assert the
  // two names with separate (cheap, forked) death checks.
  Mutex low(LockRank::kMetrics, "test.report.low");
  Mutex high(LockRank::kQueryLog, "test.report.high");
  EXPECT_DEATH(
      {
        MutexLock lock_low(low);
        MutexLock lock_high(high);
      },
      "acquiring: rank 950  test\\.report\\.high");
  EXPECT_DEATH(
      {
        MutexLock lock_low(low);
        MutexLock lock_high(high);
      },
      "while holding: rank 120  test\\.report\\.low");
}

TEST(LockDisciplineDeathTest, BlockingIoUnderLowRankLockAborts) {
  Mutex leaf(LockRank::kChunkCache, "test.io.leaf");
  const std::string path = TempPath("lock_discipline_io.txt");
  EXPECT_DEATH(
      {
        MutexLock lock(leaf);  // rank 370 < kIoBoundary
        (void)WriteStringToFile(path, "boom");
      },
      "blocking call below the I/O boundary");
}

TEST(LockDisciplineTest, BlockingIoAboveBoundaryPasses) {
  Mutex coarse(LockRank::kStorageWrite, "test.io.coarse");
  const std::string path = TempPath("lock_discipline_io_ok.txt");
  MutexLock lock(coarse);  // rank 800: explicitly allowed to do I/O
  ASSERT_TRUE(WriteStringToFile(path, "fine").ok());
  (void)RemoveFileIfExists(path);
}

TEST(LockDisciplineDeathTest, CondVarWaitUnderOtherLowRankLockAborts) {
  Mutex held(LockRank::kThreadPool, "test.wait.held");
  Mutex waited(LockRank::kBoundedQueue, "test.wait.waited");
  CondVar cv;
  EXPECT_DEATH(
      {
        MutexLock lock_held(held);      // 400
        MutexLock lock_waited(waited);  // 390: legal order
        // The wait releases `waited` but blocks while `held` (< boundary)
        // stays held.
        cv.WaitFor(lock_waited, std::chrono::milliseconds(1));
      },
      "blocking call below the I/O boundary");
}

TEST(LockDisciplineTest, CondVarWaitOwnLockIsExempt) {
  Mutex mu(LockRank::kBoundedQueue, "test.wait.own");
  CondVar cv;
  MutexLock lock(mu);
  // The lock the wait itself releases is exempt from the boundary check.
  EXPECT_EQ(cv.WaitFor(lock, std::chrono::milliseconds(1)),
            std::cv_status::timeout);
}

TEST(LockDisciplineTest, TryLockTracksHeldStack) {
  Mutex mu(LockRank::kMetrics, "test.trylock");
  ASSERT_TRUE(mu.TryLock());
  EXPECT_EQ(lockdebug::HeldCount(), 1u);
  mu.Unlock();
  EXPECT_EQ(lockdebug::HeldCount(), 0u);
}

TEST(LockDisciplineTest, SnapshotNamesHeldLocks) {
  Mutex mu(LockRank::kCatalog, "test.snapshot.mu");
  MutexLock lock(mu);
  const std::string snap = lockdebug::SnapshotAllThreads();
  EXPECT_NE(snap.find("test.snapshot.mu"), std::string::npos) << snap;
  EXPECT_NE(snap.find("300"), std::string::npos) << snap;
}

TEST(LockDisciplineTest, SnapshotSeesOtherThreads) {
  // The holder parks on a CondVar while keeping `mu` held, so `mu` must sit
  // above the I/O boundary — blocking with a sub-boundary lock held is
  // itself a violation (see CondVarWaitUnderOtherLowRankLockAborts).
  Mutex mu(LockRank::kStorageWrite, "test.snapshot.other");
  Mutex sync(LockRank::kLeaf, "test.snapshot.sync");
  CondVar cv;
  bool seen = false;
  bool release = false;
  std::thread holder([&] {
    MutexLock lock_mu(mu);
    MutexLock lock(sync);
    seen = true;
    cv.NotifyAll();
    while (!release) cv.Wait(lock);
  });
  std::string snap;
  {
    MutexLock lock(sync);
    while (!seen) cv.Wait(lock);
    snap = lockdebug::SnapshotAllThreads();
    release = true;
    cv.NotifyAll();
  }
  holder.join();
  EXPECT_NE(snap.find("test.snapshot.other"), std::string::npos) << snap;
}

TEST(LockDisciplineTest, UnrankedLocksAreExemptFromOrdering) {
  // Tests and scratch code may use the default constructor; acquisition
  // order among unranked locks is not checked (the lint rule keeps them
  // out of src/).
  Mutex a;
  Mutex b;
  MutexLock lock_a(a);
  MutexLock lock_b(b);
  EXPECT_EQ(lockdebug::HeldCount(), 2u);
}

}  // namespace
}  // namespace scanraw
