#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

#include "common/clock.h"
#include "io/disk_arbiter.h"
#include "io/file.h"
#include "io/rate_limiter.h"

namespace scanraw {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(FileTest, WriteThenReadRoundTrip) {
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(WriteStringToFile(path, "hello scanraw").ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello scanraw");
  auto size = GetFileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 13u);
  EXPECT_TRUE(FileExists(path));
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
  EXPECT_FALSE(FileExists(path));
}

TEST(FileTest, OpenMissingFileFails) {
  auto file = RandomAccessFile::Open(TempPath("does_not_exist"));
  ASSERT_FALSE(file.ok());
  EXPECT_TRUE(file.status().IsIoError());
}

TEST(FileTest, ReadAtOffsets) {
  const std::string path = TempPath("offsets.txt");
  ASSERT_TRUE(WriteStringToFile(path, "0123456789").ok());
  auto file = RandomAccessFile::Open(path);
  ASSERT_TRUE(file.ok());
  char buf[4];
  auto n = (*file)->ReadAt(3, 4, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);
  EXPECT_EQ(std::string(buf, 4), "3456");
  // Read past EOF returns the available bytes.
  n = (*file)->ReadAt(8, 4, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  // Read entirely past EOF returns 0.
  n = (*file)->ReadAt(100, 4, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST(FileTest, StatsTrackBytes) {
  const std::string path = TempPath("stats.txt");
  IoStats stats;
  {
    auto writer = WritableFile::Create(path, nullptr, &stats);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("abcdef").ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  EXPECT_EQ(stats.bytes_written.load(), 6u);
  auto file = RandomAccessFile::Open(path, nullptr, &stats);
  ASSERT_TRUE(file.ok());
  char buf[6];
  ASSERT_TRUE((*file)->ReadAt(0, 6, buf).ok());
  EXPECT_EQ(stats.bytes_read.load(), 6u);
  EXPECT_EQ(stats.read_calls.load(), 1u);
  EXPECT_EQ(stats.write_calls.load(), 1u);
}

TEST(FileTest, AppendAfterCloseFails) {
  const std::string path = TempPath("closed.txt");
  auto writer = WritableFile::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_TRUE((*writer)->Append("x").IsIoError());
}

TEST(RateLimiterTest, UnlimitedNeverBlocks) {
  RateLimiter limiter(0);
  limiter.Acquire(1ull << 40);
  EXPECT_EQ(limiter.total_admitted(), 1ull << 40);
}

TEST(RateLimiterTest, EnforcesApproximateRate) {
  RealClock clock;
  // 10 MB/s; admit 2 MB => should take roughly 0.15-0.2s after burst credit.
  RateLimiter limiter(10 * 1000 * 1000, &clock);
  const int64_t start = clock.NowNanos();
  for (int i = 0; i < 20; ++i) limiter.Acquire(100 * 1000);
  const double elapsed = static_cast<double>(clock.NowNanos() - start) * 1e-9;
  // 2 MB at 10 MB/s is 0.2s; the 0.05s burst allowance reduces it.
  EXPECT_GT(elapsed, 0.10);
  EXPECT_LT(elapsed, 0.6);
  EXPECT_EQ(limiter.total_admitted(), 2ull * 1000 * 1000);
}

TEST(RateLimiterTest, OversizedRequestAdmittedWithDebt) {
  RealClock clock;
  RateLimiter limiter(1000 * 1000, &clock);  // 1 MB/s, burst = 50 KB
  const int64_t start = clock.NowNanos();
  limiter.Acquire(200 * 1000);  // 4x the burst: admitted, leaves debt
  const double first = static_cast<double>(clock.NowNanos() - start) * 1e-9;
  EXPECT_LT(first, 0.1);  // did not wait for the whole 0.2s
  limiter.Acquire(10 * 1000);  // must pay back the debt first
  const double total = static_cast<double>(clock.NowNanos() - start) * 1e-9;
  EXPECT_GT(total, 0.1);
}

TEST(DiskArbiterTest, ExclusiveAccess) {
  DiskArbiter arbiter;
  EXPECT_EQ(arbiter.current_user(), DiskUser::kNone);
  arbiter.Acquire(DiskUser::kReader);
  EXPECT_EQ(arbiter.current_user(), DiskUser::kReader);
  EXPECT_FALSE(arbiter.TryAcquire(DiskUser::kWriter));
  arbiter.Release(DiskUser::kReader);
  EXPECT_TRUE(arbiter.TryAcquire(DiskUser::kWriter));
  EXPECT_EQ(arbiter.current_user(), DiskUser::kWriter);
  arbiter.Release(DiskUser::kWriter);
}

TEST(DiskArbiterTest, DoubleReleaseIsNoOp) {
  DiskArbiter arbiter;
  arbiter.Acquire(DiskUser::kReader);
  arbiter.Release(DiskUser::kReader);
  arbiter.Release(DiskUser::kReader);  // must not corrupt state
  EXPECT_EQ(arbiter.current_user(), DiskUser::kNone);
}

TEST(DiskArbiterTest, BlockedWriterProceedsAfterRelease) {
  DiskArbiter arbiter;
  arbiter.Acquire(DiskUser::kReader);
  std::atomic<bool> writer_got_disk{false};
  std::thread writer([&] {
    arbiter.Acquire(DiskUser::kWriter);
    writer_got_disk = true;
    arbiter.Release(DiskUser::kWriter);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(writer_got_disk.load());
  arbiter.Release(DiskUser::kReader);
  writer.join();
  EXPECT_TRUE(writer_got_disk.load());
}

TEST(DiskArbiterTest, TracksBusyTime) {
  VirtualClock clock;
  DiskArbiter arbiter(&clock);
  arbiter.Acquire(DiskUser::kReader);
  clock.AdvanceNanos(100);
  arbiter.Release(DiskUser::kReader);
  arbiter.Acquire(DiskUser::kWriter);
  clock.AdvanceNanos(40);
  arbiter.Release(DiskUser::kWriter);
  EXPECT_EQ(arbiter.reader_busy_nanos(), 100);
  EXPECT_EQ(arbiter.writer_busy_nanos(), 40);
}

TEST(DiskArbiterTest, ScopedAccessReleases) {
  DiskArbiter arbiter;
  {
    ScopedDiskAccess access(&arbiter, DiskUser::kWriter);
    EXPECT_EQ(arbiter.current_user(), DiskUser::kWriter);
  }
  EXPECT_EQ(arbiter.current_user(), DiskUser::kNone);
  // Null arbiter is tolerated (unthrottled configurations).
  ScopedDiskAccess noop(nullptr, DiskUser::kReader);
}

}  // namespace
}  // namespace scanraw
