// PositionalMapCache unit tests: FIFO eviction order, the widen path's
// FIFO refresh, O(1) byte accounting against the running total, byte-bound
// eviction, dialect-mismatch drops, disk-origin reporting, Snapshot
// filtering, and a concurrent Lookup/Insert hammer for TSan.
#include "scanraw/positional_map_cache.h"

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "format/positional_map.h"

namespace scanraw {
namespace {

std::shared_ptr<const PositionalMap> MakeMap(size_t rows, size_t fields) {
  return std::make_shared<PositionalMap>(rows, fields);
}

PosmapDialect QuotedDialect() {
  PosmapDialect d;
  d.quoted = true;
  return d;
}

TEST(PositionalMapCacheTest, EvictsInFifoOrder) {
  const PosmapDialect dialect;
  PositionalMapCache cache(3);
  cache.Insert(10, MakeMap(4, 3), dialect);
  cache.Insert(11, MakeMap(4, 3), dialect);
  cache.Insert(12, MakeMap(4, 3), dialect);
  // A lookup must not promote: FIFO, not LRU.
  EXPECT_NE(cache.Lookup(10, dialect), nullptr);
  cache.Insert(13, MakeMap(4, 3), dialect);  // evicts 10, the oldest
  EXPECT_EQ(cache.Lookup(10, dialect), nullptr);
  EXPECT_NE(cache.Lookup(11, dialect), nullptr);
  cache.Insert(14, MakeMap(4, 3), dialect);  // evicts 11
  EXPECT_EQ(cache.Lookup(11, dialect), nullptr);
  EXPECT_NE(cache.Lookup(12, dialect), nullptr);
  EXPECT_NE(cache.Lookup(13, dialect), nullptr);
  EXPECT_NE(cache.Lookup(14, dialect), nullptr);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(PositionalMapCacheTest, WidenRefreshesFifoPosition) {
  const PosmapDialect dialect;
  PositionalMapCache cache(3);
  cache.Insert(1, MakeMap(4, 2), dialect);
  cache.Insert(2, MakeMap(4, 3), dialect);
  cache.Insert(3, MakeMap(4, 3), dialect);
  // Widening chunk 1 moves it to the FIFO tail: it now survives the next
  // two evictions while 2 and 3 go first.
  cache.Insert(1, MakeMap(4, 4), dialect);
  cache.Insert(4, MakeMap(4, 3), dialect);  // evicts 2
  cache.Insert(5, MakeMap(4, 3), dialect);  // evicts 3
  EXPECT_EQ(cache.Lookup(2, dialect), nullptr);
  EXPECT_EQ(cache.Lookup(3, dialect), nullptr);
  auto widened = cache.Lookup(1, dialect);
  ASSERT_NE(widened, nullptr);
  EXPECT_EQ(widened->fields_per_row(), 4u);
}

TEST(PositionalMapCacheTest, ByteAccountingMatchesEntries) {
  const PosmapDialect dialect;
  PositionalMapCache cache(8);
  auto a = MakeMap(10, 3);  // 10 rows x 4 slots
  auto b = MakeMap(20, 5);  // 20 rows x 6 slots
  cache.Insert(1, a, dialect);
  cache.Insert(2, b, dialect);
  EXPECT_EQ(cache.MemoryBytes(), a->MemoryBytes() + b->MemoryBytes());
  // Widening replaces a's bytes with the wider map's bytes.
  auto a_wide = MakeMap(10, 6);
  cache.Insert(1, a_wide, dialect);
  EXPECT_EQ(cache.MemoryBytes(), a_wide->MemoryBytes() + b->MemoryBytes());
  // A narrower same-dialect map is ignored; bytes unchanged.
  cache.Insert(1, MakeMap(10, 2), dialect);
  EXPECT_EQ(cache.MemoryBytes(), a_wide->MemoryBytes() + b->MemoryBytes());
  // Dropping an entry (dialect mismatch) releases its bytes.
  EXPECT_EQ(cache.Lookup(2, QuotedDialect()), nullptr);
  EXPECT_EQ(cache.MemoryBytes(), a_wide->MemoryBytes());
}

TEST(PositionalMapCacheTest, ByteBoundEvicts) {
  const PosmapDialect dialect;
  const size_t map_bytes = MakeMap(16, 3)->MemoryBytes();
  // Room for two maps by bytes, many by count.
  PositionalMapCache cache(100, 2 * map_bytes);
  cache.Insert(1, MakeMap(16, 3), dialect);
  cache.Insert(2, MakeMap(16, 3), dialect);
  EXPECT_EQ(cache.size(), 2u);
  cache.Insert(3, MakeMap(16, 3), dialect);  // byte bound evicts 1
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(1, dialect), nullptr);
  EXPECT_NE(cache.Lookup(2, dialect), nullptr);
  EXPECT_NE(cache.Lookup(3, dialect), nullptr);
  EXPECT_LE(cache.MemoryBytes(), 2 * map_bytes);
}

TEST(PositionalMapCacheTest, WidenPastByteBoundEvictsOthersNotSelf) {
  const PosmapDialect dialect;
  const size_t small_bytes = MakeMap(16, 3)->MemoryBytes();
  PositionalMapCache cache(100, 3 * small_bytes);
  cache.Insert(1, MakeMap(16, 3), dialect);
  cache.Insert(2, MakeMap(16, 3), dialect);
  cache.Insert(3, MakeMap(16, 3), dialect);
  // Widening chunk 1 to 3x its slot width blows the byte bound; the cache
  // must evict the older entries 2 and 3, never the just-widened entry.
  cache.Insert(1, MakeMap(16, 11), dialect);
  EXPECT_EQ(cache.Lookup(2, dialect), nullptr);
  EXPECT_EQ(cache.Lookup(3, dialect), nullptr);
  auto survivor = cache.Lookup(1, dialect);
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(survivor->fields_per_row(), 11u);
  EXPECT_EQ(cache.MemoryBytes(), survivor->MemoryBytes());
}

TEST(PositionalMapCacheTest, DialectMismatchDropsEntry) {
  const PosmapDialect comma;
  PosmapDialect tab;
  tab.delimiter = '\t';
  PositionalMapCache cache(4);
  cache.Insert(1, MakeMap(4, 3), comma);
  EXPECT_EQ(cache.dialect_drops(), 0u);
  // Lookup under the wrong dialect drops the entry and misses.
  EXPECT_EQ(cache.Lookup(1, tab), nullptr);
  EXPECT_EQ(cache.dialect_drops(), 1u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.MemoryBytes(), 0u);
  // The original dialect misses too now — the entry is gone, not hidden.
  EXPECT_EQ(cache.Lookup(1, comma), nullptr);
  EXPECT_EQ(cache.dialect_drops(), 1u);
}

TEST(PositionalMapCacheTest, DialectChangeReplacesOutright) {
  const PosmapDialect comma;
  PositionalMapCache cache(4);
  cache.Insert(1, MakeMap(4, 6), comma);
  // A narrower map under a different dialect still replaces: the old map is
  // useless under the new rules, width comparison does not apply.
  cache.Insert(1, MakeMap(4, 2), QuotedDialect());
  auto map = cache.Lookup(1, QuotedDialect());
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->fields_per_row(), 2u);
}

TEST(PositionalMapCacheTest, ReportsDiskOrigin) {
  const PosmapDialect dialect;
  PositionalMapCache cache(4);
  cache.Insert(1, MakeMap(4, 3), dialect, PosmapOrigin::kDisk);
  cache.Insert(2, MakeMap(4, 3), dialect);  // defaults to kBuilt
  PosmapOrigin origin = PosmapOrigin::kBuilt;
  ASSERT_NE(cache.Lookup(1, dialect, &origin), nullptr);
  EXPECT_EQ(origin, PosmapOrigin::kDisk);
  ASSERT_NE(cache.Lookup(2, dialect, &origin), nullptr);
  EXPECT_EQ(origin, PosmapOrigin::kBuilt);
  // Widening a disk entry with freshly built work flips its provenance.
  cache.Insert(1, MakeMap(4, 5), dialect);
  ASSERT_NE(cache.Lookup(1, dialect, &origin), nullptr);
  EXPECT_EQ(origin, PosmapOrigin::kBuilt);
}

TEST(PositionalMapCacheTest, SnapshotFiltersByDialect) {
  const PosmapDialect comma;
  PositionalMapCache cache(8);
  cache.Insert(3, MakeMap(4, 3), comma);
  cache.Insert(1, MakeMap(4, 3), comma);
  cache.Insert(2, MakeMap(4, 3), QuotedDialect());
  auto snap = cache.Snapshot(comma);
  ASSERT_EQ(snap.size(), 2u);
  // Chunk order, regardless of insertion order.
  EXPECT_EQ(snap[0].first, 1u);
  EXPECT_EQ(snap[1].first, 3u);
  EXPECT_EQ(cache.Snapshot(QuotedDialect()).size(), 1u);
}

TEST(PositionalMapCacheTest, ZeroCapacityDisablesCache) {
  const PosmapDialect dialect;
  PositionalMapCache cache(0);
  cache.Insert(1, MakeMap(4, 3), dialect);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(1, dialect), nullptr);
  EXPECT_EQ(cache.MemoryBytes(), 0u);
}

TEST(PositionalMapCacheTest, ConcurrentLookupInsert) {
  const PosmapDialect comma;
  PosmapDialect tab;
  tab.delimiter = '\t';
  PositionalMapCache cache(16, 1 << 16);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &comma, &tab, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t chunk = static_cast<uint64_t>((t * 7 + i) % 32);
        const PosmapDialect& dialect = (i % 5 == 0) ? tab : comma;
        if (i % 3 == 0) {
          cache.Insert(chunk, MakeMap(8, 1 + (i % 6)), dialect,
                       (i % 2 == 0) ? PosmapOrigin::kBuilt
                                    : PosmapOrigin::kDisk);
        } else {
          PosmapOrigin origin;
          auto map = cache.Lookup(chunk, dialect, &origin);
          if (map != nullptr) EXPECT_GT(map->fields_per_row(), 0u);
        }
        if (i % 101 == 0) {
          (void)cache.Snapshot(dialect);
          (void)cache.MemoryBytes();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), 16u);
  EXPECT_LE(cache.MemoryBytes(), static_cast<size_t>(1) << 16);
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(kThreads) * ((kOpsPerThread * 2) / 3));
}

}  // namespace
}  // namespace scanraw
