#include <gtest/gtest.h>

#include "exec/query.h"

namespace scanraw {
namespace {

BinaryChunk MakeNumericChunk(uint64_t index,
                             std::vector<std::vector<uint32_t>> columns) {
  BinaryChunk chunk(index);
  for (size_t c = 0; c < columns.size(); ++c) {
    ColumnVector vec(FieldType::kUint32);
    for (uint32_t v : columns[c]) vec.AppendUint32(v);
    EXPECT_TRUE(chunk.AddColumn(c, std::move(vec)).ok());
  }
  return chunk;
}

TEST(QuerySpecTest, RequiredColumnsUnion) {
  QuerySpec spec;
  spec.sum_columns = {3, 1, 3};
  spec.group_by_column = 5;
  spec.predicate.range = RangePredicate{2, 0, 10};
  spec.predicate.pattern = PatternPredicate{7, "x"};
  EXPECT_EQ(spec.RequiredColumns(), (std::vector<size_t>{1, 2, 3, 5, 7}));
}

TEST(QuerySpecTest, EmptySpec) {
  QuerySpec spec;
  EXPECT_TRUE(spec.RequiredColumns().empty());
  EXPECT_TRUE(spec.predicate.empty());
}

TEST(QueryExecutorTest, SumAllColumns) {
  QuerySpec spec;
  spec.sum_columns = {0, 1};
  QueryExecutor exec(spec);
  ASSERT_TRUE(exec.Consume(MakeNumericChunk(0, {{1, 2, 3}, {10, 20, 30}})).ok());
  ASSERT_TRUE(exec.Consume(MakeNumericChunk(1, {{4}, {40}})).ok());
  QueryResult r = exec.Finish();
  EXPECT_EQ(r.rows_scanned, 4u);
  EXPECT_EQ(r.rows_matched, 4u);
  EXPECT_EQ(r.total_sum, 1u + 2 + 3 + 10 + 20 + 30 + 4 + 40);
}

TEST(QueryExecutorTest, CountOnly) {
  QuerySpec spec;  // no sum columns
  QueryExecutor exec(spec);
  ASSERT_TRUE(exec.Consume(MakeNumericChunk(0, {{1, 2, 3}})).ok());
  QueryResult r = exec.Finish();
  EXPECT_EQ(r.rows_matched, 3u);
  EXPECT_EQ(r.total_sum, 0u);
}

TEST(QueryExecutorTest, RangePredicate) {
  QuerySpec spec;
  spec.sum_columns = {1};
  spec.predicate.range = RangePredicate{0, 2, 3};
  QueryExecutor exec(spec);
  ASSERT_TRUE(
      exec.Consume(MakeNumericChunk(0, {{1, 2, 3, 4}, {10, 20, 30, 40}})).ok());
  QueryResult r = exec.Finish();
  EXPECT_EQ(r.rows_scanned, 4u);
  EXPECT_EQ(r.rows_matched, 2u);
  EXPECT_EQ(r.total_sum, 50u);
}

TEST(QueryExecutorTest, PatternPredicateAndGroupBy) {
  BinaryChunk chunk(0);
  ColumnVector cigar(FieldType::kString), seq(FieldType::kString),
      qual(FieldType::kUint32);
  const std::vector<std::string> cigars = {"100M", "50M2D48M", "100M", "99M1I"};
  const std::vector<std::string> seqs = {"ACGTACGT", "TTTT", "ACGGGGT", "CCCC"};
  for (size_t i = 0; i < 4; ++i) {
    cigar.AppendString(cigars[i]);
    seq.AppendString(seqs[i]);
    qual.AppendUint32(static_cast<uint32_t>(i + 1));
  }
  ASSERT_TRUE(chunk.AddColumn(0, std::move(cigar)).ok());
  ASSERT_TRUE(chunk.AddColumn(1, std::move(seq)).ok());
  ASSERT_TRUE(chunk.AddColumn(2, std::move(qual)).ok());

  QuerySpec spec;
  spec.group_by_column = 0;
  spec.sum_columns = {2};
  spec.predicate.pattern = PatternPredicate{1, "ACG"};  // rows 0 and 2 match
  QueryExecutor exec(spec);
  ASSERT_TRUE(exec.Consume(chunk).ok());
  QueryResult r = exec.Finish();
  EXPECT_EQ(r.rows_matched, 2u);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups.at("100M").count, 2u);
  EXPECT_EQ(r.groups.at("100M").sum, 1u + 3u);
}

TEST(QueryExecutorTest, GroupByNumericColumn) {
  QuerySpec spec;
  spec.group_by_column = 0;
  QueryExecutor exec(spec);
  ASSERT_TRUE(exec.Consume(MakeNumericChunk(0, {{7, 7, 9}})).ok());
  QueryResult r = exec.Finish();
  EXPECT_EQ(r.groups.at("7").count, 2u);
  EXPECT_EQ(r.groups.at("9").count, 1u);
}

TEST(QueryExecutorTest, MissingColumnRejected) {
  QuerySpec spec;
  spec.sum_columns = {5};
  QueryExecutor exec(spec);
  EXPECT_TRUE(
      exec.Consume(MakeNumericChunk(0, {{1}})).IsInvalidArgument());
}

TEST(QueryExecutorTest, CombinedPredicates) {
  BinaryChunk chunk(0);
  ColumnVector num(FieldType::kUint32), str(FieldType::kString);
  num.AppendUint32(5);
  num.AppendUint32(15);
  num.AppendUint32(25);
  str.AppendString("hit");
  str.AppendString("hit");
  str.AppendString("miss");
  ASSERT_TRUE(chunk.AddColumn(0, std::move(num)).ok());
  ASSERT_TRUE(chunk.AddColumn(1, std::move(str)).ok());
  QuerySpec spec;
  spec.predicate.range = RangePredicate{0, 10, 30};
  spec.predicate.pattern = PatternPredicate{1, "hit"};
  QueryExecutor exec(spec);
  ASSERT_TRUE(exec.Consume(chunk).ok());
  EXPECT_EQ(exec.Finish().rows_matched, 1u);  // only row 1 passes both
}

class VectorChunkStream : public ChunkStream {
 public:
  explicit VectorChunkStream(std::vector<BinaryChunkPtr> chunks)
      : chunks_(std::move(chunks)) {}
  Result<std::optional<BinaryChunkPtr>> Next() override {
    if (pos_ >= chunks_.size()) return std::optional<BinaryChunkPtr>();
    return std::optional<BinaryChunkPtr>(chunks_[pos_++]);
  }

 private:
  std::vector<BinaryChunkPtr> chunks_;
  size_t pos_ = 0;
};

TEST(RunQueryTest, DrainsStream) {
  std::vector<BinaryChunkPtr> chunks;
  chunks.push_back(std::make_shared<const BinaryChunk>(
      MakeNumericChunk(0, {{1, 2}})));
  chunks.push_back(std::make_shared<const BinaryChunk>(
      MakeNumericChunk(1, {{3}})));
  VectorChunkStream stream(std::move(chunks));
  QuerySpec spec;
  spec.sum_columns = {0};
  auto result = RunQuery(spec, &stream);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_sum, 6u);
  EXPECT_EQ(result->rows_scanned, 3u);
}

class FailingStream : public ChunkStream {
 public:
  Result<std::optional<BinaryChunkPtr>> Next() override {
    return Status::IoError("stream broke");
  }
};

TEST(RunQueryTest, PropagatesStreamError) {
  FailingStream stream;
  QuerySpec spec;
  auto result = RunQuery(spec, &stream);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError());
}

TEST(QueryExecutorTest, MinMaxColumns) {
  QuerySpec spec;
  spec.minmax_columns = {0, 1};
  QueryExecutor exec(spec);
  ASSERT_TRUE(
      exec.Consume(MakeNumericChunk(0, {{5, 1, 9}, {100, 300, 200}})).ok());
  ASSERT_TRUE(exec.Consume(MakeNumericChunk(1, {{7}, {50}})).ok());
  QueryResult r = exec.Finish();
  EXPECT_EQ(r.column_ranges.at(0).min_value, 1);
  EXPECT_EQ(r.column_ranges.at(0).max_value, 9);
  EXPECT_EQ(r.column_ranges.at(1).min_value, 50);
  EXPECT_EQ(r.column_ranges.at(1).max_value, 300);
}

TEST(QueryExecutorTest, MinMaxRespectsPredicate) {
  QuerySpec spec;
  spec.minmax_columns = {1};
  spec.predicate.range = RangePredicate{0, 2, 3};
  QueryExecutor exec(spec);
  ASSERT_TRUE(
      exec.Consume(MakeNumericChunk(0, {{1, 2, 3, 4}, {10, 20, 30, 40}})).ok());
  QueryResult r = exec.Finish();
  EXPECT_EQ(r.column_ranges.at(1).min_value, 20);
  EXPECT_EQ(r.column_ranges.at(1).max_value, 30);
}

TEST(QueryExecutorTest, MinMaxAbsentWhenNoMatch) {
  QuerySpec spec;
  spec.minmax_columns = {0};
  spec.predicate.range = RangePredicate{0, 1000, 2000};
  QueryExecutor exec(spec);
  ASSERT_TRUE(exec.Consume(MakeNumericChunk(0, {{1, 2}})).ok());
  EXPECT_TRUE(exec.Finish().column_ranges.empty());
}

TEST(QueryExecutorTest, AverageFromSumAndCount) {
  QuerySpec spec;
  spec.sum_columns = {0};
  QueryExecutor exec(spec);
  ASSERT_TRUE(exec.Consume(MakeNumericChunk(0, {{10, 20, 30}})).ok());
  QueryResult r = exec.Finish();
  EXPECT_DOUBLE_EQ(r.Average(), 20.0);
  QueryResult empty;
  EXPECT_DOUBLE_EQ(empty.Average(), 0.0);
}

TEST(QuerySpecTest, MinMaxColumnsAreRequired) {
  QuerySpec spec;
  spec.minmax_columns = {6, 2};
  EXPECT_EQ(spec.RequiredColumns(), (std::vector<size_t>{2, 6}));
}

// Overflow behavior: sums wrap modulo 2^64 deterministically.
TEST(QueryExecutorTest, SumWrapsModulo64) {
  QuerySpec spec;
  spec.sum_columns = {0};
  QueryExecutor exec(spec);
  BinaryChunk chunk(0);
  ColumnVector vec(FieldType::kUint32);
  for (int i = 0; i < 8; ++i) vec.AppendUint32(4294967295u);
  ASSERT_TRUE(chunk.AddColumn(0, std::move(vec)).ok());
  ASSERT_TRUE(exec.Consume(chunk).ok());
  EXPECT_EQ(exec.Finish().total_sum, 8ull * 4294967295ull);
}

}  // namespace
}  // namespace scanraw
