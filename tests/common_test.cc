#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace scanraw {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::Corruption("bad page");
  Status copy = s;
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.message(), "bad page");
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsCorruption());
  Status assigned;
  assigned = copy;
  EXPECT_TRUE(assigned.IsCorruption());
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string(1000, 'x');
  std::string v = std::move(r).value();
  EXPECT_EQ(v.size(), 1000u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  int h = 0;
  SCANRAW_ASSIGN_OR_RETURN(h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_TRUE(UseHalf(7, &out).IsInvalidArgument());
}

TEST(ClockTest, RealClockIsMonotonic) {
  RealClock* clock = RealClock::Instance();
  int64_t a = clock->NowNanos();
  int64_t b = clock->NowNanos();
  EXPECT_LE(a, b);
}

TEST(ClockTest, VirtualClockAdvancesOnlyWhenTold) {
  VirtualClock clock;
  EXPECT_EQ(clock.NowNanos(), 0);
  clock.AdvanceNanos(1500);
  EXPECT_EQ(clock.NowNanos(), 1500);
  clock.AdvanceSeconds(2.0);
  EXPECT_EQ(clock.NowNanos(), 1500 + 2000000000);
  clock.SetNanos(7);
  EXPECT_EQ(clock.NowNanos(), 7);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 7e-9);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, CoversRange) {
  Random rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(StopwatchTest, AccumulatesIntervals) {
  VirtualClock clock;
  Stopwatch watch(&clock);
  watch.Start();
  clock.AdvanceNanos(100);
  watch.Stop();
  watch.Start();
  clock.AdvanceNanos(50);
  watch.Stop();
  EXPECT_EQ(watch.TotalNanos(), 150);
  EXPECT_EQ(watch.intervals(), 2);
  watch.Reset();
  EXPECT_EQ(watch.TotalNanos(), 0);
}

TEST(StopwatchTest, ScopedTimerCharges) {
  VirtualClock clock;
  Stopwatch watch(&clock);
  {
    ScopedTimer timer(&watch, &clock);
    clock.AdvanceNanos(33);
  }
  EXPECT_EQ(watch.TotalNanos(), 33);
}

TEST(StopwatchTest, ThreadSafeAccumulation) {
  Stopwatch watch;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&watch] {
      for (int i = 0; i < 1000; ++i) watch.AddNanos(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(watch.TotalNanos(), 4000);
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(5ull * 1024 * 1024), "5.00 MB");
  EXPECT_EQ(HumanBytes(3ull * 1024 * 1024 * 1024), "3.00 GB");
}

TEST(StringUtilTest, HumanDuration) {
  EXPECT_EQ(HumanDuration(2.5), "2.50 s");
  EXPECT_EQ(HumanDuration(0.0025), "2.50 ms");
  EXPECT_EQ(HumanDuration(25e-6), "25.00 us");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitSingleField) {
  auto parts = SplitString("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(StringUtilTest, AppendUint64) {
  std::string s = "x=";
  AppendUint64(&s, 0);
  EXPECT_EQ(s, "x=0");
  s.clear();
  AppendUint64(&s, 18446744073709551615ull);
  EXPECT_EQ(s, "18446744073709551615");
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "ok"), "7-ok");
  // Long outputs exercise the heap path.
  std::string big(500, 'y');
  EXPECT_EQ(StringPrintf("%s", big.c_str()).size(), 500u);
}

}  // namespace
}  // namespace scanraw
